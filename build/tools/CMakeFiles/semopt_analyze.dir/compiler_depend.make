# Empty compiler generated dependencies file for semopt_analyze.
# This may be replaced when dependencies are built.
