file(REMOVE_RECURSE
  "CMakeFiles/semopt_analyze.dir/semopt_analyze.cc.o"
  "CMakeFiles/semopt_analyze.dir/semopt_analyze.cc.o.d"
  "semopt_analyze"
  "semopt_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
