file(REMOVE_RECURSE
  "CMakeFiles/semopt_shell.dir/semopt_shell.cc.o"
  "CMakeFiles/semopt_shell.dir/semopt_shell.cc.o.d"
  "semopt_shell"
  "semopt_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
