# Empty compiler generated dependencies file for semopt_shell.
# This may be replaced when dependencies are built.
