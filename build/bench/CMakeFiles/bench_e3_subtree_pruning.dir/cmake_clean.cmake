file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_subtree_pruning.dir/bench_e3_subtree_pruning.cc.o"
  "CMakeFiles/bench_e3_subtree_pruning.dir/bench_e3_subtree_pruning.cc.o.d"
  "bench_e3_subtree_pruning"
  "bench_e3_subtree_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_subtree_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
