# Empty dependencies file for bench_e3_subtree_pruning.
# This may be replaced when dependencies are built.
