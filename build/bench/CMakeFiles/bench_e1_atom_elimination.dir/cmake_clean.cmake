file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_atom_elimination.dir/bench_e1_atom_elimination.cc.o"
  "CMakeFiles/bench_e1_atom_elimination.dir/bench_e1_atom_elimination.cc.o.d"
  "bench_e1_atom_elimination"
  "bench_e1_atom_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_atom_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
