# Empty dependencies file for bench_e1_atom_elimination.
# This may be replaced when dependencies are built.
