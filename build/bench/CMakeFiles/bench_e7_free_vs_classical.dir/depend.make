# Empty dependencies file for bench_e7_free_vs_classical.
# This may be replaced when dependencies are built.
