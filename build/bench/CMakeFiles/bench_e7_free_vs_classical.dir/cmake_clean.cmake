file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_free_vs_classical.dir/bench_e7_free_vs_classical.cc.o"
  "CMakeFiles/bench_e7_free_vs_classical.dir/bench_e7_free_vs_classical.cc.o.d"
  "bench_e7_free_vs_classical"
  "bench_e7_free_vs_classical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_free_vs_classical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
