# Empty compiler generated dependencies file for bench_e6_vs_magic_sets.
# This may be replaced when dependencies are built.
