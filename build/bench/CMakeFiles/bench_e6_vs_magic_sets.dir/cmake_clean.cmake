file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_vs_magic_sets.dir/bench_e6_vs_magic_sets.cc.o"
  "CMakeFiles/bench_e6_vs_magic_sets.dir/bench_e6_vs_magic_sets.cc.o.d"
  "bench_e6_vs_magic_sets"
  "bench_e6_vs_magic_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_vs_magic_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
