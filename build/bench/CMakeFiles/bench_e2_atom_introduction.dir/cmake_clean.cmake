file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_atom_introduction.dir/bench_e2_atom_introduction.cc.o"
  "CMakeFiles/bench_e2_atom_introduction.dir/bench_e2_atom_introduction.cc.o.d"
  "bench_e2_atom_introduction"
  "bench_e2_atom_introduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_atom_introduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
