# Empty compiler generated dependencies file for bench_e2_atom_introduction.
# This may be replaced when dependencies are built.
