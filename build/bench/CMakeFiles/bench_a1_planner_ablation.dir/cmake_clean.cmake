file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_planner_ablation.dir/bench_a1_planner_ablation.cc.o"
  "CMakeFiles/bench_a1_planner_ablation.dir/bench_a1_planner_ablation.cc.o.d"
  "bench_a1_planner_ablation"
  "bench_a1_planner_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_planner_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
