file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_residue_generation.dir/bench_e4_residue_generation.cc.o"
  "CMakeFiles/bench_e4_residue_generation.dir/bench_e4_residue_generation.cc.o.d"
  "bench_e4_residue_generation"
  "bench_e4_residue_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_residue_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
