# Empty compiler generated dependencies file for bench_e4_residue_generation.
# This may be replaced when dependencies are built.
