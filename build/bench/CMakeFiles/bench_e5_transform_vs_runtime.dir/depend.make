# Empty dependencies file for bench_e5_transform_vs_runtime.
# This may be replaced when dependencies are built.
