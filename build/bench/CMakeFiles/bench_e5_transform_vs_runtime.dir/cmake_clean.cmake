file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_transform_vs_runtime.dir/bench_e5_transform_vs_runtime.cc.o"
  "CMakeFiles/bench_e5_transform_vs_runtime.dir/bench_e5_transform_vs_runtime.cc.o.d"
  "bench_e5_transform_vs_runtime"
  "bench_e5_transform_vs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_transform_vs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
