file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_magic_slicing.dir/bench_a2_magic_slicing.cc.o"
  "CMakeFiles/bench_a2_magic_slicing.dir/bench_a2_magic_slicing.cc.o.d"
  "bench_a2_magic_slicing"
  "bench_a2_magic_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_magic_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
