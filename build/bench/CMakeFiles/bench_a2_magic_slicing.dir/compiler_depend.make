# Empty compiler generated dependencies file for bench_a2_magic_slicing.
# This may be replaced when dependencies are built.
