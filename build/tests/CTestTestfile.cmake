# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/ast_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/magic_test[1]_include.cmake")
include("/root/repo/build/tests/expansion_test[1]_include.cmake")
include("/root/repo/build/tests/subsumption_test[1]_include.cmake")
include("/root/repo/build/tests/residue_generator_test[1]_include.cmake")
include("/root/repo/build/tests/isolation_test[1]_include.cmake")
include("/root/repo/build/tests/push_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_residues_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/iqa_test[1]_include.cmake")
include("/root/repo/build/tests/factor_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_random_test[1]_include.cmake")
include("/root/repo/build/tests/shell_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/semopt_property_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
