file(REMOVE_RECURSE
  "CMakeFiles/magic_test.dir/magic_test.cc.o"
  "CMakeFiles/magic_test.dir/magic_test.cc.o.d"
  "magic_test"
  "magic_test.pdb"
  "magic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
