# Empty compiler generated dependencies file for magic_test.
# This may be replaced when dependencies are built.
