
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iqa/CMakeFiles/semopt_iqa.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/semopt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/semopt_shell_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/magic/CMakeFiles/semopt_magic.dir/DependInfo.cmake"
  "/root/repo/build/src/semopt/CMakeFiles/semopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/semopt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/semopt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/semopt_io.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/semopt_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/semopt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/semopt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
