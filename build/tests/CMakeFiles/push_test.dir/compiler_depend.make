# Empty compiler generated dependencies file for push_test.
# This may be replaced when dependencies are built.
