file(REMOVE_RECURSE
  "CMakeFiles/push_test.dir/push_test.cc.o"
  "CMakeFiles/push_test.dir/push_test.cc.o.d"
  "push_test"
  "push_test.pdb"
  "push_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/push_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
