file(REMOVE_RECURSE
  "CMakeFiles/shell_test.dir/shell_test.cc.o"
  "CMakeFiles/shell_test.dir/shell_test.cc.o.d"
  "shell_test"
  "shell_test.pdb"
  "shell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
