# Empty dependencies file for runtime_residues_test.
# This may be replaced when dependencies are built.
