file(REMOVE_RECURSE
  "CMakeFiles/runtime_residues_test.dir/runtime_residues_test.cc.o"
  "CMakeFiles/runtime_residues_test.dir/runtime_residues_test.cc.o.d"
  "runtime_residues_test"
  "runtime_residues_test.pdb"
  "runtime_residues_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_residues_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
