# Empty dependencies file for semopt_property_test.
# This may be replaced when dependencies are built.
