file(REMOVE_RECURSE
  "CMakeFiles/semopt_property_test.dir/semopt_property_test.cc.o"
  "CMakeFiles/semopt_property_test.dir/semopt_property_test.cc.o.d"
  "semopt_property_test"
  "semopt_property_test.pdb"
  "semopt_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
