# Empty compiler generated dependencies file for isolation_test.
# This may be replaced when dependencies are built.
