file(REMOVE_RECURSE
  "CMakeFiles/isolation_test.dir/isolation_test.cc.o"
  "CMakeFiles/isolation_test.dir/isolation_test.cc.o.d"
  "isolation_test"
  "isolation_test.pdb"
  "isolation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
