file(REMOVE_RECURSE
  "CMakeFiles/residue_generator_test.dir/residue_generator_test.cc.o"
  "CMakeFiles/residue_generator_test.dir/residue_generator_test.cc.o.d"
  "residue_generator_test"
  "residue_generator_test.pdb"
  "residue_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/residue_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
