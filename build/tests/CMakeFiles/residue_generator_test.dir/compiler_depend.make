# Empty compiler generated dependencies file for residue_generator_test.
# This may be replaced when dependencies are built.
