# Empty dependencies file for optimizer_random_test.
# This may be replaced when dependencies are built.
