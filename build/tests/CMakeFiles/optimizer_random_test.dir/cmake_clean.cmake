file(REMOVE_RECURSE
  "CMakeFiles/optimizer_random_test.dir/optimizer_random_test.cc.o"
  "CMakeFiles/optimizer_random_test.dir/optimizer_random_test.cc.o.d"
  "optimizer_random_test"
  "optimizer_random_test.pdb"
  "optimizer_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
