file(REMOVE_RECURSE
  "CMakeFiles/expansion_test.dir/expansion_test.cc.o"
  "CMakeFiles/expansion_test.dir/expansion_test.cc.o.d"
  "expansion_test"
  "expansion_test.pdb"
  "expansion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expansion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
