# Empty compiler generated dependencies file for expansion_test.
# This may be replaced when dependencies are built.
