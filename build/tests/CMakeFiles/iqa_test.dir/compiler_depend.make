# Empty compiler generated dependencies file for iqa_test.
# This may be replaced when dependencies are built.
