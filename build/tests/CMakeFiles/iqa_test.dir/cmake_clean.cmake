file(REMOVE_RECURSE
  "CMakeFiles/iqa_test.dir/iqa_test.cc.o"
  "CMakeFiles/iqa_test.dir/iqa_test.cc.o.d"
  "iqa_test"
  "iqa_test.pdb"
  "iqa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
