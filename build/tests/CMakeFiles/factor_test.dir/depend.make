# Empty dependencies file for factor_test.
# This may be replaced when dependencies are built.
