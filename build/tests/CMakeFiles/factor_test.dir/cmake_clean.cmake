file(REMOVE_RECURSE
  "CMakeFiles/factor_test.dir/factor_test.cc.o"
  "CMakeFiles/factor_test.dir/factor_test.cc.o.d"
  "factor_test"
  "factor_test.pdb"
  "factor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
