# Empty dependencies file for subsumption_test.
# This may be replaced when dependencies are built.
