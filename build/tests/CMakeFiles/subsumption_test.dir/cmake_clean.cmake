file(REMOVE_RECURSE
  "CMakeFiles/subsumption_test.dir/subsumption_test.cc.o"
  "CMakeFiles/subsumption_test.dir/subsumption_test.cc.o.d"
  "subsumption_test"
  "subsumption_test.pdb"
  "subsumption_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsumption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
