file(REMOVE_RECURSE
  "CMakeFiles/semopt_eval.dir/builtins.cc.o"
  "CMakeFiles/semopt_eval.dir/builtins.cc.o.d"
  "CMakeFiles/semopt_eval.dir/constraint_check.cc.o"
  "CMakeFiles/semopt_eval.dir/constraint_check.cc.o.d"
  "CMakeFiles/semopt_eval.dir/eval_stats.cc.o"
  "CMakeFiles/semopt_eval.dir/eval_stats.cc.o.d"
  "CMakeFiles/semopt_eval.dir/explain.cc.o"
  "CMakeFiles/semopt_eval.dir/explain.cc.o.d"
  "CMakeFiles/semopt_eval.dir/fixpoint.cc.o"
  "CMakeFiles/semopt_eval.dir/fixpoint.cc.o.d"
  "CMakeFiles/semopt_eval.dir/incremental.cc.o"
  "CMakeFiles/semopt_eval.dir/incremental.cc.o.d"
  "CMakeFiles/semopt_eval.dir/query.cc.o"
  "CMakeFiles/semopt_eval.dir/query.cc.o.d"
  "CMakeFiles/semopt_eval.dir/rule_executor.cc.o"
  "CMakeFiles/semopt_eval.dir/rule_executor.cc.o.d"
  "libsemopt_eval.a"
  "libsemopt_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
