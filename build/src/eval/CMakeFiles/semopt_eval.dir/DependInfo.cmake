
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/builtins.cc" "src/eval/CMakeFiles/semopt_eval.dir/builtins.cc.o" "gcc" "src/eval/CMakeFiles/semopt_eval.dir/builtins.cc.o.d"
  "/root/repo/src/eval/constraint_check.cc" "src/eval/CMakeFiles/semopt_eval.dir/constraint_check.cc.o" "gcc" "src/eval/CMakeFiles/semopt_eval.dir/constraint_check.cc.o.d"
  "/root/repo/src/eval/eval_stats.cc" "src/eval/CMakeFiles/semopt_eval.dir/eval_stats.cc.o" "gcc" "src/eval/CMakeFiles/semopt_eval.dir/eval_stats.cc.o.d"
  "/root/repo/src/eval/explain.cc" "src/eval/CMakeFiles/semopt_eval.dir/explain.cc.o" "gcc" "src/eval/CMakeFiles/semopt_eval.dir/explain.cc.o.d"
  "/root/repo/src/eval/fixpoint.cc" "src/eval/CMakeFiles/semopt_eval.dir/fixpoint.cc.o" "gcc" "src/eval/CMakeFiles/semopt_eval.dir/fixpoint.cc.o.d"
  "/root/repo/src/eval/incremental.cc" "src/eval/CMakeFiles/semopt_eval.dir/incremental.cc.o" "gcc" "src/eval/CMakeFiles/semopt_eval.dir/incremental.cc.o.d"
  "/root/repo/src/eval/query.cc" "src/eval/CMakeFiles/semopt_eval.dir/query.cc.o" "gcc" "src/eval/CMakeFiles/semopt_eval.dir/query.cc.o.d"
  "/root/repo/src/eval/rule_executor.cc" "src/eval/CMakeFiles/semopt_eval.dir/rule_executor.cc.o" "gcc" "src/eval/CMakeFiles/semopt_eval.dir/rule_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/semopt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/semopt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/semopt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/semopt_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
