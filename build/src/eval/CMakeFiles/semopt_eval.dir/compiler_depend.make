# Empty compiler generated dependencies file for semopt_eval.
# This may be replaced when dependencies are built.
