file(REMOVE_RECURSE
  "libsemopt_eval.a"
)
