file(REMOVE_RECURSE
  "libsemopt_shell_lib.a"
)
