# Empty dependencies file for semopt_shell_lib.
# This may be replaced when dependencies are built.
