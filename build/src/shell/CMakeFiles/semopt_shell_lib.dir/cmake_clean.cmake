file(REMOVE_RECURSE
  "CMakeFiles/semopt_shell_lib.dir/shell.cc.o"
  "CMakeFiles/semopt_shell_lib.dir/shell.cc.o.d"
  "libsemopt_shell_lib.a"
  "libsemopt_shell_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_shell_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
