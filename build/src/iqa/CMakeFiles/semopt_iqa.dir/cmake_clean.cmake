file(REMOVE_RECURSE
  "CMakeFiles/semopt_iqa.dir/knowledge_query.cc.o"
  "CMakeFiles/semopt_iqa.dir/knowledge_query.cc.o.d"
  "CMakeFiles/semopt_iqa.dir/reachability.cc.o"
  "CMakeFiles/semopt_iqa.dir/reachability.cc.o.d"
  "libsemopt_iqa.a"
  "libsemopt_iqa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_iqa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
