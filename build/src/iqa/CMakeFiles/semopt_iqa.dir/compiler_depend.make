# Empty compiler generated dependencies file for semopt_iqa.
# This may be replaced when dependencies are built.
