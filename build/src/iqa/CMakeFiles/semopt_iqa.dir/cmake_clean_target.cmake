file(REMOVE_RECURSE
  "libsemopt_iqa.a"
)
