file(REMOVE_RECURSE
  "libsemopt_ast.a"
)
