
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/atom.cc" "src/ast/CMakeFiles/semopt_ast.dir/atom.cc.o" "gcc" "src/ast/CMakeFiles/semopt_ast.dir/atom.cc.o.d"
  "/root/repo/src/ast/program.cc" "src/ast/CMakeFiles/semopt_ast.dir/program.cc.o" "gcc" "src/ast/CMakeFiles/semopt_ast.dir/program.cc.o.d"
  "/root/repo/src/ast/rename.cc" "src/ast/CMakeFiles/semopt_ast.dir/rename.cc.o" "gcc" "src/ast/CMakeFiles/semopt_ast.dir/rename.cc.o.d"
  "/root/repo/src/ast/rule.cc" "src/ast/CMakeFiles/semopt_ast.dir/rule.cc.o" "gcc" "src/ast/CMakeFiles/semopt_ast.dir/rule.cc.o.d"
  "/root/repo/src/ast/substitution.cc" "src/ast/CMakeFiles/semopt_ast.dir/substitution.cc.o" "gcc" "src/ast/CMakeFiles/semopt_ast.dir/substitution.cc.o.d"
  "/root/repo/src/ast/term.cc" "src/ast/CMakeFiles/semopt_ast.dir/term.cc.o" "gcc" "src/ast/CMakeFiles/semopt_ast.dir/term.cc.o.d"
  "/root/repo/src/ast/unify.cc" "src/ast/CMakeFiles/semopt_ast.dir/unify.cc.o" "gcc" "src/ast/CMakeFiles/semopt_ast.dir/unify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/semopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
