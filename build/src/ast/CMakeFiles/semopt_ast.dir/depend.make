# Empty dependencies file for semopt_ast.
# This may be replaced when dependencies are built.
