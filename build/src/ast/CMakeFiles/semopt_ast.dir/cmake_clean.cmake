file(REMOVE_RECURSE
  "CMakeFiles/semopt_ast.dir/atom.cc.o"
  "CMakeFiles/semopt_ast.dir/atom.cc.o.d"
  "CMakeFiles/semopt_ast.dir/program.cc.o"
  "CMakeFiles/semopt_ast.dir/program.cc.o.d"
  "CMakeFiles/semopt_ast.dir/rename.cc.o"
  "CMakeFiles/semopt_ast.dir/rename.cc.o.d"
  "CMakeFiles/semopt_ast.dir/rule.cc.o"
  "CMakeFiles/semopt_ast.dir/rule.cc.o.d"
  "CMakeFiles/semopt_ast.dir/substitution.cc.o"
  "CMakeFiles/semopt_ast.dir/substitution.cc.o.d"
  "CMakeFiles/semopt_ast.dir/term.cc.o"
  "CMakeFiles/semopt_ast.dir/term.cc.o.d"
  "CMakeFiles/semopt_ast.dir/unify.cc.o"
  "CMakeFiles/semopt_ast.dir/unify.cc.o.d"
  "libsemopt_ast.a"
  "libsemopt_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
