# Empty compiler generated dependencies file for semopt_ast.
# This may be replaced when dependencies are built.
