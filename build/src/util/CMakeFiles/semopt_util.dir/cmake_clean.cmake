file(REMOVE_RECURSE
  "CMakeFiles/semopt_util.dir/interner.cc.o"
  "CMakeFiles/semopt_util.dir/interner.cc.o.d"
  "CMakeFiles/semopt_util.dir/status.cc.o"
  "CMakeFiles/semopt_util.dir/status.cc.o.d"
  "CMakeFiles/semopt_util.dir/string_util.cc.o"
  "CMakeFiles/semopt_util.dir/string_util.cc.o.d"
  "libsemopt_util.a"
  "libsemopt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
