# Empty dependencies file for semopt_util.
# This may be replaced when dependencies are built.
