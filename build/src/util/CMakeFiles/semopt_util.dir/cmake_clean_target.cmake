file(REMOVE_RECURSE
  "libsemopt_util.a"
)
