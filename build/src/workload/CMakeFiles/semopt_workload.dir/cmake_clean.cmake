file(REMOVE_RECURSE
  "CMakeFiles/semopt_workload.dir/genealogy.cc.o"
  "CMakeFiles/semopt_workload.dir/genealogy.cc.o.d"
  "CMakeFiles/semopt_workload.dir/honors.cc.o"
  "CMakeFiles/semopt_workload.dir/honors.cc.o.d"
  "CMakeFiles/semopt_workload.dir/organization.cc.o"
  "CMakeFiles/semopt_workload.dir/organization.cc.o.d"
  "CMakeFiles/semopt_workload.dir/university.cc.o"
  "CMakeFiles/semopt_workload.dir/university.cc.o.d"
  "libsemopt_workload.a"
  "libsemopt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
