
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/genealogy.cc" "src/workload/CMakeFiles/semopt_workload.dir/genealogy.cc.o" "gcc" "src/workload/CMakeFiles/semopt_workload.dir/genealogy.cc.o.d"
  "/root/repo/src/workload/honors.cc" "src/workload/CMakeFiles/semopt_workload.dir/honors.cc.o" "gcc" "src/workload/CMakeFiles/semopt_workload.dir/honors.cc.o.d"
  "/root/repo/src/workload/organization.cc" "src/workload/CMakeFiles/semopt_workload.dir/organization.cc.o" "gcc" "src/workload/CMakeFiles/semopt_workload.dir/organization.cc.o.d"
  "/root/repo/src/workload/university.cc" "src/workload/CMakeFiles/semopt_workload.dir/university.cc.o" "gcc" "src/workload/CMakeFiles/semopt_workload.dir/university.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/semopt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/semopt_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/semopt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
