file(REMOVE_RECURSE
  "libsemopt_workload.a"
)
