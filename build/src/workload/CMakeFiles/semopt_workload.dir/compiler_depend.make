# Empty compiler generated dependencies file for semopt_workload.
# This may be replaced when dependencies are built.
