# Empty dependencies file for semopt_analysis.
# This may be replaced when dependencies are built.
