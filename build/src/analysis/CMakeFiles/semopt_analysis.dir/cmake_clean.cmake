file(REMOVE_RECURSE
  "CMakeFiles/semopt_analysis.dir/dependency_graph.cc.o"
  "CMakeFiles/semopt_analysis.dir/dependency_graph.cc.o.d"
  "CMakeFiles/semopt_analysis.dir/rectify.cc.o"
  "CMakeFiles/semopt_analysis.dir/rectify.cc.o.d"
  "CMakeFiles/semopt_analysis.dir/recursion.cc.o"
  "CMakeFiles/semopt_analysis.dir/recursion.cc.o.d"
  "CMakeFiles/semopt_analysis.dir/safety.cc.o"
  "CMakeFiles/semopt_analysis.dir/safety.cc.o.d"
  "CMakeFiles/semopt_analysis.dir/stratify.cc.o"
  "CMakeFiles/semopt_analysis.dir/stratify.cc.o.d"
  "libsemopt_analysis.a"
  "libsemopt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
