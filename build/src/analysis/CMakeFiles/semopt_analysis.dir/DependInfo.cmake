
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dependency_graph.cc" "src/analysis/CMakeFiles/semopt_analysis.dir/dependency_graph.cc.o" "gcc" "src/analysis/CMakeFiles/semopt_analysis.dir/dependency_graph.cc.o.d"
  "/root/repo/src/analysis/rectify.cc" "src/analysis/CMakeFiles/semopt_analysis.dir/rectify.cc.o" "gcc" "src/analysis/CMakeFiles/semopt_analysis.dir/rectify.cc.o.d"
  "/root/repo/src/analysis/recursion.cc" "src/analysis/CMakeFiles/semopt_analysis.dir/recursion.cc.o" "gcc" "src/analysis/CMakeFiles/semopt_analysis.dir/recursion.cc.o.d"
  "/root/repo/src/analysis/safety.cc" "src/analysis/CMakeFiles/semopt_analysis.dir/safety.cc.o" "gcc" "src/analysis/CMakeFiles/semopt_analysis.dir/safety.cc.o.d"
  "/root/repo/src/analysis/stratify.cc" "src/analysis/CMakeFiles/semopt_analysis.dir/stratify.cc.o" "gcc" "src/analysis/CMakeFiles/semopt_analysis.dir/stratify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/semopt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
