file(REMOVE_RECURSE
  "libsemopt_analysis.a"
)
