# Empty compiler generated dependencies file for semopt_parser.
# This may be replaced when dependencies are built.
