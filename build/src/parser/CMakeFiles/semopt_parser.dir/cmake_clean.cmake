file(REMOVE_RECURSE
  "CMakeFiles/semopt_parser.dir/lexer.cc.o"
  "CMakeFiles/semopt_parser.dir/lexer.cc.o.d"
  "CMakeFiles/semopt_parser.dir/parser.cc.o"
  "CMakeFiles/semopt_parser.dir/parser.cc.o.d"
  "libsemopt_parser.a"
  "libsemopt_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
