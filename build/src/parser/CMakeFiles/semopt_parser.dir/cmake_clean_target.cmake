file(REMOVE_RECURSE
  "libsemopt_parser.a"
)
