file(REMOVE_RECURSE
  "CMakeFiles/semopt_io.dir/fact_io.cc.o"
  "CMakeFiles/semopt_io.dir/fact_io.cc.o.d"
  "libsemopt_io.a"
  "libsemopt_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
