# Empty compiler generated dependencies file for semopt_io.
# This may be replaced when dependencies are built.
