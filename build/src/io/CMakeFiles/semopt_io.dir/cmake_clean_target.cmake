file(REMOVE_RECURSE
  "libsemopt_io.a"
)
