# Empty compiler generated dependencies file for semopt_magic.
# This may be replaced when dependencies are built.
