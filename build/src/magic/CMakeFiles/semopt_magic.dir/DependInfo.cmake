
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/magic/adornment.cc" "src/magic/CMakeFiles/semopt_magic.dir/adornment.cc.o" "gcc" "src/magic/CMakeFiles/semopt_magic.dir/adornment.cc.o.d"
  "/root/repo/src/magic/magic_sets.cc" "src/magic/CMakeFiles/semopt_magic.dir/magic_sets.cc.o" "gcc" "src/magic/CMakeFiles/semopt_magic.dir/magic_sets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/semopt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/semopt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/semopt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semopt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/semopt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/semopt_parser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
