file(REMOVE_RECURSE
  "CMakeFiles/semopt_magic.dir/adornment.cc.o"
  "CMakeFiles/semopt_magic.dir/adornment.cc.o.d"
  "CMakeFiles/semopt_magic.dir/magic_sets.cc.o"
  "CMakeFiles/semopt_magic.dir/magic_sets.cc.o.d"
  "libsemopt_magic.a"
  "libsemopt_magic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_magic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
