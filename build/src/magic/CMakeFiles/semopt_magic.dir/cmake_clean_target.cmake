file(REMOVE_RECURSE
  "libsemopt_magic.a"
)
