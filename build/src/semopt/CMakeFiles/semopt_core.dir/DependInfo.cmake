
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semopt/ap_graph.cc" "src/semopt/CMakeFiles/semopt_core.dir/ap_graph.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/ap_graph.cc.o.d"
  "/root/repo/src/semopt/expanded_form.cc" "src/semopt/CMakeFiles/semopt_core.dir/expanded_form.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/expanded_form.cc.o.d"
  "/root/repo/src/semopt/expansion.cc" "src/semopt/CMakeFiles/semopt_core.dir/expansion.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/expansion.cc.o.d"
  "/root/repo/src/semopt/factor.cc" "src/semopt/CMakeFiles/semopt_core.dir/factor.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/factor.cc.o.d"
  "/root/repo/src/semopt/isolation.cc" "src/semopt/CMakeFiles/semopt_core.dir/isolation.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/isolation.cc.o.d"
  "/root/repo/src/semopt/optimizer.cc" "src/semopt/CMakeFiles/semopt_core.dir/optimizer.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/optimizer.cc.o.d"
  "/root/repo/src/semopt/pattern_graph.cc" "src/semopt/CMakeFiles/semopt_core.dir/pattern_graph.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/pattern_graph.cc.o.d"
  "/root/repo/src/semopt/push.cc" "src/semopt/CMakeFiles/semopt_core.dir/push.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/push.cc.o.d"
  "/root/repo/src/semopt/residue.cc" "src/semopt/CMakeFiles/semopt_core.dir/residue.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/residue.cc.o.d"
  "/root/repo/src/semopt/residue_generator.cc" "src/semopt/CMakeFiles/semopt_core.dir/residue_generator.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/residue_generator.cc.o.d"
  "/root/repo/src/semopt/runtime_residues.cc" "src/semopt/CMakeFiles/semopt_core.dir/runtime_residues.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/runtime_residues.cc.o.d"
  "/root/repo/src/semopt/sd_graph.cc" "src/semopt/CMakeFiles/semopt_core.dir/sd_graph.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/sd_graph.cc.o.d"
  "/root/repo/src/semopt/subsumption.cc" "src/semopt/CMakeFiles/semopt_core.dir/subsumption.cc.o" "gcc" "src/semopt/CMakeFiles/semopt_core.dir/subsumption.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/semopt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/semopt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/semopt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/semopt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semopt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/semopt_parser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
