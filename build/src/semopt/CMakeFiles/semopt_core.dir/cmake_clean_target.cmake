file(REMOVE_RECURSE
  "libsemopt_core.a"
)
