# Empty dependencies file for semopt_core.
# This may be replaced when dependencies are built.
