file(REMOVE_RECURSE
  "CMakeFiles/semopt_core.dir/ap_graph.cc.o"
  "CMakeFiles/semopt_core.dir/ap_graph.cc.o.d"
  "CMakeFiles/semopt_core.dir/expanded_form.cc.o"
  "CMakeFiles/semopt_core.dir/expanded_form.cc.o.d"
  "CMakeFiles/semopt_core.dir/expansion.cc.o"
  "CMakeFiles/semopt_core.dir/expansion.cc.o.d"
  "CMakeFiles/semopt_core.dir/factor.cc.o"
  "CMakeFiles/semopt_core.dir/factor.cc.o.d"
  "CMakeFiles/semopt_core.dir/isolation.cc.o"
  "CMakeFiles/semopt_core.dir/isolation.cc.o.d"
  "CMakeFiles/semopt_core.dir/optimizer.cc.o"
  "CMakeFiles/semopt_core.dir/optimizer.cc.o.d"
  "CMakeFiles/semopt_core.dir/pattern_graph.cc.o"
  "CMakeFiles/semopt_core.dir/pattern_graph.cc.o.d"
  "CMakeFiles/semopt_core.dir/push.cc.o"
  "CMakeFiles/semopt_core.dir/push.cc.o.d"
  "CMakeFiles/semopt_core.dir/residue.cc.o"
  "CMakeFiles/semopt_core.dir/residue.cc.o.d"
  "CMakeFiles/semopt_core.dir/residue_generator.cc.o"
  "CMakeFiles/semopt_core.dir/residue_generator.cc.o.d"
  "CMakeFiles/semopt_core.dir/runtime_residues.cc.o"
  "CMakeFiles/semopt_core.dir/runtime_residues.cc.o.d"
  "CMakeFiles/semopt_core.dir/sd_graph.cc.o"
  "CMakeFiles/semopt_core.dir/sd_graph.cc.o.d"
  "CMakeFiles/semopt_core.dir/subsumption.cc.o"
  "CMakeFiles/semopt_core.dir/subsumption.cc.o.d"
  "libsemopt_core.a"
  "libsemopt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
