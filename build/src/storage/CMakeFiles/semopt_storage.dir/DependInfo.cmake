
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/database.cc" "src/storage/CMakeFiles/semopt_storage.dir/database.cc.o" "gcc" "src/storage/CMakeFiles/semopt_storage.dir/database.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/storage/CMakeFiles/semopt_storage.dir/relation.cc.o" "gcc" "src/storage/CMakeFiles/semopt_storage.dir/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/semopt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
