# Empty compiler generated dependencies file for semopt_storage.
# This may be replaced when dependencies are built.
