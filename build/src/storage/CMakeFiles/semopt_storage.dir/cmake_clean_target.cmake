file(REMOVE_RECURSE
  "libsemopt_storage.a"
)
