file(REMOVE_RECURSE
  "CMakeFiles/semopt_storage.dir/database.cc.o"
  "CMakeFiles/semopt_storage.dir/database.cc.o.d"
  "CMakeFiles/semopt_storage.dir/relation.cc.o"
  "CMakeFiles/semopt_storage.dir/relation.cc.o.d"
  "libsemopt_storage.a"
  "libsemopt_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semopt_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
