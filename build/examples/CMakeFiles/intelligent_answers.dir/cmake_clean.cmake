file(REMOVE_RECURSE
  "CMakeFiles/intelligent_answers.dir/intelligent_answers.cpp.o"
  "CMakeFiles/intelligent_answers.dir/intelligent_answers.cpp.o.d"
  "intelligent_answers"
  "intelligent_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intelligent_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
