# Empty dependencies file for intelligent_answers.
# This may be replaced when dependencies are built.
