# Empty dependencies file for org_triples.
# This may be replaced when dependencies are built.
