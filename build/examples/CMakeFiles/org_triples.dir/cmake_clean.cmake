file(REMOVE_RECURSE
  "CMakeFiles/org_triples.dir/org_triples.cpp.o"
  "CMakeFiles/org_triples.dir/org_triples.cpp.o.d"
  "org_triples"
  "org_triples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/org_triples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
