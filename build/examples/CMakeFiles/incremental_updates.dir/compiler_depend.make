# Empty compiler generated dependencies file for incremental_updates.
# This may be replaced when dependencies are built.
