# Empty compiler generated dependencies file for university_eval.
# This may be replaced when dependencies are built.
