file(REMOVE_RECURSE
  "CMakeFiles/university_eval.dir/university_eval.cpp.o"
  "CMakeFiles/university_eval.dir/university_eval.cpp.o.d"
  "university_eval"
  "university_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
