# Empty compiler generated dependencies file for ancestry_pruning.
# This may be replaced when dependencies are built.
