file(REMOVE_RECURSE
  "CMakeFiles/ancestry_pruning.dir/ancestry_pruning.cpp.o"
  "CMakeFiles/ancestry_pruning.dir/ancestry_pruning.cpp.o.d"
  "ancestry_pruning"
  "ancestry_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ancestry_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
