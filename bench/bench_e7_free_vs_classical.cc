// Experiment E7 (paper §2, Examples 2.1/3.2): free residues versus the
// classical expanded-form residues of Chakravarthy et al.
//
// Claim reproduced: on recursive rules the classical rule-level residue
// is trivial (P = P' -> expert(P, F) for r1, whose head is already a
// body subgoal), so the classical technique enables no transformation —
// achieved speedup 1x — while free residues over expansion sequences
// enable the elimination.
//
// The bench measures (a) residue computation itself for both flavors
// and (b) the evaluation work of the best program each flavor enables.

#include "bench_common.h"
#include "semopt/expanded_form.h"
#include "semopt/residue_generator.h"
#include "workload/university.h"

namespace semopt {
namespace {

UniversityParams DbParams() {
  UniversityParams params;
  params.num_students = 200;
  params.num_professors = 80;
  params.fields_per_thesis = 2;
  params.seed = 7;
  return params;
}

void BM_E7_ClassicalResidueComputation(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  size_t total = 0, trivial = 0;
  for (auto _ : state) {
    total = trivial = 0;
    for (const Constraint& ic : program->constraints()) {
      for (const Rule& rule : program->rules()) {
        std::vector<Constraint> residues = ClassicalRuleResidues(ic, rule);
        total += residues.size();
        for (const Constraint& r : residues) {
          if (IsTrivialClassicalResidue(r, rule)) ++trivial;
        }
      }
    }
    ::benchmark::DoNotOptimize(total);
  }
  state.counters["residues"] = static_cast<double>(total);
  state.counters["trivial"] = static_cast<double>(trivial);
}

void BM_E7_FreeResidueComputation(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  size_t total = 0;
  for (auto _ : state) {
    Result<std::vector<Residue>> residues = GenerateAllResidues(*program);
    if (!residues.ok()) {
      state.SkipWithError(residues.status().ToString().c_str());
      return;
    }
    total = residues->size();
    ::benchmark::DoNotOptimize(residues);
  }
  state.counters["residues"] = static_cast<double>(total);
}

// Classical rule-level residues on this program are all trivial for the
// recursive rule, so the best "classically optimized" program is the
// original program itself.
void BM_E7_EvaluateClassicalBest(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Database edb = GenerateUniversityDb(DbParams());
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, *program, edb);
  }
  bench::PublishStats(state, stats);
}

void BM_E7_EvaluateFreeBest(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Program optimized = bench::OptimizeOrDie(state, *program);
  Database edb = GenerateUniversityDb(DbParams());
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, optimized, edb);
  }
  bench::PublishStats(state, stats);
}

BENCHMARK(BM_E7_ClassicalResidueComputation)
    ->Unit(::benchmark::kMicrosecond);
BENCHMARK(BM_E7_FreeResidueComputation)->Unit(::benchmark::kMicrosecond);
BENCHMARK(BM_E7_EvaluateClassicalBest)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_E7_EvaluateFreeBest)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
