#ifndef SEMOPT_BENCH_BENCH_COMMON_H_
#define SEMOPT_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <thread>

#include "benchmark/benchmark.h"

#include "eval/fixpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "semopt/optimizer.h"
#include "storage/database.h"

namespace semopt {
namespace bench {

/// Overhead-measurement hook: when SEMOPT_BENCH_TRACING is set in the
/// environment, a trace session is started once for the whole process
/// (events are buffered, never written), so timed iterations measure
/// the tracing-enabled hot path. See EXPERIMENTS.md "Tracing overhead".
inline void MaybeEnableTracingFromEnv() {
  static const bool enabled = [] {
    if (std::getenv("SEMOPT_BENCH_TRACING") != nullptr) {
      obs::StartTracing();
      return true;
    }
    return false;
  }();
  (void)enabled;
}

/// Trace-artifact hook: when SEMOPT_BENCH_TRACE_DIR is set, runs one
/// extra traced evaluation and writes <dir>/<tag>.json (once per tag
/// per process), so benches emit Perfetto-loadable traces alongside
/// their timings.
inline void MaybeWriteBenchTrace(const char* tag, const Program& program,
                                 const Database& edb,
                                 EvalOptions options = EvalOptions()) {
  const char* dir = std::getenv("SEMOPT_BENCH_TRACE_DIR");
  if (dir == nullptr || tag == nullptr) return;
  static std::set<std::string>* written = new std::set<std::string>();
  if (!written->insert(tag).second) return;
  options.trace_path = std::string(dir) + "/" + tag + ".json";
  Evaluate(program, edb, options, nullptr);
}

/// Evaluates `program` over `edb`, aborting the benchmark on error;
/// returns the collected stats.
inline EvalStats EvaluateOrDie(::benchmark::State& state,
                               const Program& program, const Database& edb) {
  MaybeEnableTracingFromEnv();
  EvalStats stats;
  Result<Database> idb = Evaluate(program, edb, EvalOptions(), &stats);
  if (!idb.ok()) {
    state.SkipWithError(idb.status().ToString().c_str());
  }
  return stats;
}

/// Optimizes `program`, aborting on error.
inline Program OptimizeOrDie(::benchmark::State& state,
                             const Program& program,
                             OptimizerOptions options = OptimizerOptions()) {
  SemanticOptimizer optimizer(options);
  Result<OptimizeResult> result = optimizer.Optimize(program);
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return program;
  }
  return result->program;
}

/// Publishes the work counters of the last evaluation as benchmark
/// counters (averaged per iteration by the framework).
inline void PublishStats(::benchmark::State& state, const EvalStats& stats) {
  state.counters["bindings"] = static_cast<double>(stats.bindings_explored);
  state.counters["derived"] = static_cast<double>(stats.derived_tuples);
  state.counters["dups"] = static_cast<double>(stats.duplicate_tuples);
  state.counters["iters"] = static_cast<double>(stats.iterations);
  if (stats.runtime_residue_checks > 0) {
    state.counters["residue_checks"] =
        static_cast<double>(stats.runtime_residue_checks);
  }
}

/// Latency sampler for benchmark client loops: an unregistered
/// obs::Histogram plus its snapshot percentiles. Replaces the ad-hoc
/// sort-the-vector estimators individual benches used to carry — one
/// implementation (log-bucket interpolation, see
/// HistogramSnapshot::Percentile) now serves benches, `:stats`, and the
/// Prometheus exposition, so their numbers agree. Observe is lock-free,
/// so one recorder may be shared across client threads.
class LatencyRecorder {
 public:
  void Observe(uint64_t us) { hist_.Observe(us); }
  uint64_t PercentileUs(double q) const {
    return static_cast<uint64_t>(hist_.Snapshot().Percentile(q));
  }
  uint64_t MeanUs() const {
    return static_cast<uint64_t>(hist_.Snapshot().Mean());
  }
  size_t count() const { return hist_.Snapshot().count; }

 private:
  obs::Histogram hist_;
};

/// First line of `path`, or `fallback` when unreadable. Sysfs/procfs
/// files are absent on non-Linux hosts and in some containers; the
/// stamp records that explicitly rather than omitting the key.
inline std::string ReadFirstLine(const char* path, const char* fallback) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line) || line.empty()) return fallback;
  return line;
}

inline std::string CpuModelName() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (in && std::getline(in, line)) {
    const std::string key = "model name";
    if (line.compare(0, key.size(), key) == 0) {
      size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      size_t start = line.find_first_not_of(" \t", colon + 1);
      if (start == std::string::npos) break;
      return line.substr(start);
    }
  }
  return "unknown";
}

/// The CMake build type this bench binary was compiled as, stamped by
/// bench/CMakeLists.txt. A timing from a Debug or sanitizer build is
/// not comparable to Release; the stamp makes the mistake visible in
/// the artifact instead of silently polluting comparisons (CI asserts
/// the field on its quick-bench JSON).
#ifndef SEMOPT_BUILD_TYPE
#define SEMOPT_BUILD_TYPE ""
#endif
inline const char* BuildType() {
  return SEMOPT_BUILD_TYPE[0] == '\0' ? "unspecified" : SEMOPT_BUILD_TYPE;
}

/// Stamps the benchmark context (embedded in --benchmark_out JSON and
/// printed in the console header) with the facts a number is
/// meaningless without: the build type, logical core count, the
/// cpufreq governor (a "powersave" stamp explains an implausible
/// speedup curve), and the CPU model. Parallel-scaling artifacts
/// (BENCH_*.json, the CI quick-bench leg) are interpreted against
/// these keys.
inline void AddHardwareContext() {
  ::benchmark::AddCustomContext("build_type", BuildType());
  ::benchmark::AddCustomContext(
      "hw_cores", std::to_string(std::thread::hardware_concurrency()));
  ::benchmark::AddCustomContext(
      "hw_governor",
      ReadFirstLine("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor",
                    "unknown"));
  ::benchmark::AddCustomContext("hw_cpu", CpuModelName());
}

}  // namespace bench
}  // namespace semopt

/// Drop-in replacement for BENCHMARK_MAIN() that stamps the hardware
/// context before running, so every bench binary's JSON output carries
/// the hw_* keys.
#define SEMOPT_BENCH_MAIN()                                       \
  int main(int argc, char** argv) {                               \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                   \
    }                                                             \
    ::semopt::bench::AddHardwareContext();                        \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }                                                               \
  int main(int, char**)

#endif  // SEMOPT_BENCH_BENCH_COMMON_H_
