// Experiment E8: parallel fixpoint scaling.
//
// Measures the morsel-driven parallel semi-naive evaluator
// (src/exec/) against the serial batched baseline at 1/2/4/8 worker
// threads, on the genealogy and organization workloads, for both the
// original and the semantically optimized program. Thread count 1 runs
// the serial evaluator untouched, so the 1-thread rows ARE the
// baseline. Each round carves the frozen delta into ~batch_size-row
// morsels pulled off a shared cursor, so the `bindings` counter is
// invariant in the thread count (tests/morsel_test.cc) and the rows
// differ in wall clock only.
//
// Results are set-equal across thread counts (tests/morsel_test.cc);
// this benchmark quantifies the wall-clock effect only. Speedup is
// bounded by the machine's core count — on a single-core container
// every thread count collapses to serial-plus-overhead. Read the
// hw_cores / hw_governor context keys stamped into the JSON output
// before interpreting a scaling curve.

#include "bench_common.h"
#include "workload/genealogy.h"
#include "workload/organization.h"

namespace semopt {
namespace {

EvalStats EvaluateThreadedOrDie(::benchmark::State& state,
                                const Program& program, const Database& edb,
                                size_t num_threads) {
  bench::MaybeEnableTracingFromEnv();
  EvalOptions options;
  options.num_threads = num_threads;
  EvalStats stats;
  Result<Database> idb = Evaluate(program, edb, options, &stats);
  if (!idb.ok()) {
    state.SkipWithError(idb.status().ToString().c_str());
  }
  return stats;
}

GenealogyParams GenealogyParamsFor(const ::benchmark::State& state) {
  GenealogyParams params;
  params.num_families = static_cast<size_t>(state.range(1));
  params.generations = 7;
  params.children_per_person = 2;
  params.seed = 99;
  return params;
}

OrganizationParams OrganizationParamsFor(const ::benchmark::State& state) {
  OrganizationParams params;
  params.num_employees = static_cast<size_t>(state.range(1));
  params.num_levels = 7;
  params.seed = 99;
  return params;
}

void BM_E8_Genealogy(::benchmark::State& state) {
  Result<Program> program = GenealogyProgram();
  Database edb = GenerateGenealogyDb(GenealogyParamsFor(state));
  size_t threads = static_cast<size_t>(state.range(0));
  {
    EvalOptions options;
    options.num_threads = threads;
    bench::MaybeWriteBenchTrace(threads == 4 ? "e8_genealogy_t4" : nullptr,
                                *program, edb, options);
  }
  EvalStats stats;
  for (auto _ : state) {
    stats = EvaluateThreadedOrDie(state, *program, edb, threads);
  }
  bench::PublishStats(state, stats);
}

void BM_E8_GenealogyOptimized(::benchmark::State& state) {
  Result<Program> program = GenealogyProgram();
  Program optimized = bench::OptimizeOrDie(state, *program);
  Database edb = GenerateGenealogyDb(GenealogyParamsFor(state));
  size_t threads = static_cast<size_t>(state.range(0));
  EvalStats stats;
  for (auto _ : state) {
    stats = EvaluateThreadedOrDie(state, optimized, edb, threads);
  }
  bench::PublishStats(state, stats);
}

void BM_E8_Organization(::benchmark::State& state) {
  Result<Program> program = OrganizationProgram();
  Database edb = GenerateOrganizationDb(OrganizationParamsFor(state));
  size_t threads = static_cast<size_t>(state.range(0));
  EvalStats stats;
  for (auto _ : state) {
    stats = EvaluateThreadedOrDie(state, *program, edb, threads);
  }
  bench::PublishStats(state, stats);
}

void BM_E8_OrganizationOptimized(::benchmark::State& state) {
  Result<Program> program = OrganizationProgram();
  Program optimized = bench::OptimizeOrDie(state, *program);
  Database edb = GenerateOrganizationDb(OrganizationParamsFor(state));
  size_t threads = static_cast<size_t>(state.range(0));
  EvalStats stats;
  for (auto _ : state) {
    stats = EvaluateThreadedOrDie(state, optimized, edb, threads);
  }
  bench::PublishStats(state, stats);
}

void E8GenealogyArgs(::benchmark::internal::Benchmark* b) {
  for (int threads : {1, 2, 4, 8}) {
    for (int families : {40, 80}) {
      b->Args({threads, families});
    }
  }
  b->ArgNames({"threads", "families"});
  b->Unit(::benchmark::kMillisecond);
}

void E8OrganizationArgs(::benchmark::internal::Benchmark* b) {
  for (int threads : {1, 2, 4, 8}) {
    for (int employees : {400, 800}) {
      b->Args({threads, employees});
    }
  }
  b->ArgNames({"threads", "employees"});
  b->Unit(::benchmark::kMillisecond);
}

BENCHMARK(BM_E8_Genealogy)->Apply(E8GenealogyArgs);
BENCHMARK(BM_E8_GenealogyOptimized)->Apply(E8GenealogyArgs);
BENCHMARK(BM_E8_Organization)->Apply(E8OrganizationArgs);
BENCHMARK(BM_E8_OrganizationOptimized)->Apply(E8OrganizationArgs);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
