// Experiment E13: binary bulk load and the scalar-vs-vectorized kernel
// ablation, at EDB scales the text paths cannot reach interactively.
//
// Claims measured:
//   * the versioned binary snapshot loader (mmap/streamed columns,
//     block transposition, batched hashing with dedup-slot prefetch)
//     loads 1M-10M facts in a small fraction of the text fact-parser's
//     wall time — the "<10% of text load" acceptance line;
//   * the batched hash kernel (4 interleaved HashCombine chains) holds
//     parity or better with the sequential per-row chain while feeding
//     the loader's dedup-slot prefetch a block of hashes at a time;
//   * the selection-vector / SIMD scan path beats the scalar scan on a
//     filter-bound single-round query over a 10M-row relation, with
//     bit-identical results (asserted before timing).
//
// Legs are paired by a simd:0/1 argument where the axis applies;
// tools/bench_report.py diffs the pairs and flags regressions.

#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "io/binary_io.h"
#include "io/fact_io.h"
#include "parser/parser.h"
#include "storage/relation.h"
#include "storage/vector_kernels.h"
#include "util/hash_util.h"
#include "util/interner.h"

namespace semopt {
namespace {

// ------------------------------------------------------------ workloads

/// Deterministic EDB: `rows` facts big(k, v) with k spanning a 2^16
/// domain — a constant filter on k keeps ~rows/65536 survivors, so the
/// filter leg times the scan itself, not result materialization — and
/// near-unique v.
Database MakeBigDb(int64_t rows) {
  Database db;
  Relation& rel = db.GetOrCreate(PredicateId{InternSymbol("big"), 2});
  rel.Reserve(static_cast<size_t>(rows));
  SplitMix64 rng(0xe13u);
  for (int64_t i = 0; i < rows; ++i) {
    rel.Insert(Tuple{Term::Int(static_cast<int64_t>(rng.Below(1 << 16))),
                     Term::Int(i)});
  }
  return db;
}

/// The same facts as a text fact file ("big(3, 17).\n" lines): the
/// input the shell's `.load` text path parses.
std::string MakeTextImage(const Database& db) {
  std::ostringstream os;
  SaveFacts(os, *db.Find(PredicateId{InternSymbol("big"), 2}));
  return os.str();
}

std::string MakeBinaryImage(const Database& db) {
  std::ostringstream os;
  Result<size_t> bytes = SaveBinary(os, db);
  if (!bytes.ok()) return std::string();
  return os.str();
}

// ------------------------------------------------------- bulk load legs

void BM_E13_TextLoad(::benchmark::State& state) {
  const int64_t rows = state.range(0);
  Database db = MakeBigDb(rows);
  const std::string text = MakeTextImage(db);
  for (auto _ : state) {
    Database fresh;
    std::istringstream in(text);
    Result<size_t> added = LoadFacts(in, &fresh);
    if (!added.ok() || *added != static_cast<size_t>(rows)) {
      state.SkipWithError("text load failed");
      break;
    }
    ::benchmark::DoNotOptimize(fresh.TotalTuples());
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_E13_TextLoad)
    ->Arg(1000000)
    ->Arg(10000000)
    ->ArgNames({"rows"})
    ->Unit(::benchmark::kMillisecond);

void BM_E13_BinaryLoad(::benchmark::State& state) {
  const int64_t rows = state.range(0);
  Database db = MakeBigDb(rows);
  const std::string image = MakeBinaryImage(db);
  if (image.empty()) {
    state.SkipWithError("binary save failed");
    return;
  }
  for (auto _ : state) {
    Database fresh;
    Result<BulkLoadStats> stats =
        LoadBinary(image.data(), image.size(), &fresh);
    if (!stats.ok() || stats->rows != static_cast<size_t>(rows)) {
      state.SkipWithError("binary load failed");
      break;
    }
    ::benchmark::DoNotOptimize(fresh.TotalTuples());
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(image.size()));
}
BENCHMARK(BM_E13_BinaryLoad)
    ->Arg(1000000)
    ->Arg(10000000)
    ->ArgNames({"rows"})
    ->Unit(::benchmark::kMillisecond);

// ------------------------------------------------------ hash kernel legs

void BM_E13_HashRows(::benchmark::State& state) {
  const int64_t rows = state.range(0);
  const bool simd = state.range(1) != 0;
  constexpr size_t kArity = 2;
  std::vector<Value> values;
  values.reserve(static_cast<size_t>(rows) * kArity);
  SplitMix64 rng(0x4a54u);
  for (int64_t i = 0; i < rows * static_cast<int64_t>(kArity); ++i) {
    values.push_back(Term::Int(static_cast<int64_t>(rng.Next())));
  }
  std::vector<size_t> hashes(static_cast<size_t>(rows));
  for (auto _ : state) {
    if (simd) {
      HashValuesBatch(values.data(), kArity, hashes.size(), hashes.data());
    } else {
      HashValuesBatchScalar(values.data(), kArity, hashes.size(),
                            hashes.data());
    }
    ::benchmark::DoNotOptimize(hashes.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_E13_HashRows)
    ->Args({10000000, 0})
    ->Args({10000000, 1})
    ->ArgNames({"rows", "simd"})
    ->Unit(::benchmark::kMillisecond);

// ------------------------------------------------------ filter-bound leg

EvalOptions SimdOptions(bool simd) {
  EvalOptions options;
  options.simd = simd ? SimdMode::kAuto : SimdMode::kOff;
  return options;
}

/// Single-round repeated-variable filter over the big relation:
/// big(X, X) has no probe-able column, so the executor runs a full
/// scan whose one kCheckRepeat check is the whole cost — the columnar
/// SelectEqColumns lane kernel (simd:1, streams two u64 lanes) against
/// the row-at-a-time Term-compare loop (simd:0, streams full rows).
/// Selectivity is ~1e-7, so survivors cost nothing; results and
/// counters are verified identical before timing.
void BM_E13_FilterScan(::benchmark::State& state) {
  const int64_t rows = state.range(0);
  const bool simd = state.range(1) != 0;
  Program program = [] {
    Result<Program> p = ParseProgram("hit(X) :- big(X, X).");
    return *p;
  }();
  Database edb = MakeBigDb(rows);
  {
    EvalStats a, b;
    Result<Database> with = Evaluate(program, edb, SimdOptions(true), &a);
    Result<Database> without = Evaluate(program, edb, SimdOptions(false), &b);
    if (!with.ok() || !without.ok() || !with->SameFactsAs(*without) ||
        a.derived_tuples != b.derived_tuples ||
        a.bindings_explored != b.bindings_explored) {
      state.SkipWithError("simd and scalar scans disagree");
      return;
    }
  }
  EvalStats stats;
  for (auto _ : state) {
    bench::MaybeEnableTracingFromEnv();
    Result<Database> idb = Evaluate(program, edb, SimdOptions(simd), &stats);
    if (!idb.ok()) {
      state.SkipWithError(idb.status().ToString().c_str());
      break;
    }
    ::benchmark::DoNotOptimize(idb->TotalTuples());
  }
  bench::PublishStats(state, stats);
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_E13_FilterScan)
    ->Args({1000000, 0})
    ->Args({1000000, 1})
    ->Args({10000000, 0})
    ->Args({10000000, 1})
    ->ArgNames({"rows", "simd"})
    ->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
