// Experiment E1 (paper §4(1), Examples 3.2/4.2): atom elimination.
//
// Claim reproduced: pushing the IC-implied `expert`/`field` subgoals out
// of the recursive rule's committed path reduces join work, and the gap
// grows with the fan-out of the eliminated join (interdisciplinary
// theses) and with database size.
//
// Series: for each (num_students, fields_per_thesis), evaluate the
// original program and the semantically optimized program bottom-up
// (semi-naive) over the same IC-satisfying university database.

#include "bench_common.h"
#include "workload/university.h"

namespace semopt {
namespace {

UniversityParams ParamsFor(const ::benchmark::State& state) {
  UniversityParams params;
  params.num_students = static_cast<size_t>(state.range(0));
  params.num_professors = params.num_students / 2;
  params.fields_per_thesis = static_cast<size_t>(state.range(1));
  params.num_fields = 12;
  params.seed = 1234;
  return params;
}

void BM_E1_Original(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Database edb = GenerateUniversityDb(ParamsFor(state));
  bench::MaybeWriteBenchTrace("e1_original", *program, edb);
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, *program, edb);
  }
  bench::PublishStats(state, stats);
}

void BM_E1_Optimized(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Program optimized = bench::OptimizeOrDie(state, *program);
  Database edb = GenerateUniversityDb(ParamsFor(state));
  bench::MaybeWriteBenchTrace("e1_optimized", optimized, edb);
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, optimized, edb);
  }
  bench::PublishStats(state, stats);
}

void E1Args(::benchmark::internal::Benchmark* b) {
  for (int students : {100, 200, 400}) {
    for (int fanout : {1, 2, 4}) {
      b->Args({students, fanout});
    }
  }
  b->ArgNames({"students", "fanout"});
  b->Unit(::benchmark::kMillisecond);
}

BENCHMARK(BM_E1_Original)->Apply(E1Args);
BENCHMARK(BM_E1_Optimized)->Apply(E1Args);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
