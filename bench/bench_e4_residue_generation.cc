// Experiment E4 (paper §3): detecting maximally subsumed expansion
// sequences directly (Algorithm 3.1 via the AP-/SD-/pattern-graph
// embedding) versus the exhaustive enumerate-and-test approach the
// paper calls "unattractive and inefficient".
//
// Series: the IC chain length grows (a(..), b(..), c(..), ... chained
// through the recursive rule), so the subsumed sequence gets longer and
// the exhaustive enumeration space grows exponentially in the length
// bound, while the direct algorithm follows variable flow.

#include <string>

#include "bench_common.h"
#include "parser/parser.h"
#include "semopt/residue_generator.h"
#include "util/string_util.h"

namespace semopt {
namespace {

/// Builds a program whose recursive rule cycles through `width` EDB
/// predicates so that an IC chaining all of them maximally subsumes a
/// sequence of length `width` (a generalization of Example 2.1's
/// a/b/c/d cycle), plus `extra_rules` additional recursive rules that
/// inflate the exhaustive search space without affecting the flow.
struct GeneratedCase {
  Program program;
  Constraint ic;
  PredicateId pred{0, 0};
};

GeneratedCase BuildCase(size_t width, size_t extra_rules) {
  // r0: p(X1, X2) :- s0(X1, X2).
  // r1: p(X1, X2) :- e0(X1, Y), p(Y, X2).  ... cyclic tags via distinct
  // edge predicates e_i chosen round-robin by extra recursive rules.
  std::string source = "r0: p(X1, X2) :- s0(X1, X2).\n";
  source += "r1: p(X1, X2) :- e0(X1, Y), p(Y, X2).\n";
  for (size_t i = 0; i < extra_rules; ++i) {
    source += StrCat("x", i, ": p(X1, X2) :- f", i, "(X1, Y), p(Y, X2).\n");
  }
  // The IC chains `width` copies of e0 through shared variables:
  // e0(V0, V1), e0(V1, V2), ..., -> g(V0, Vk).
  std::string ic_src;
  for (size_t i = 0; i < width; ++i) {
    if (i > 0) ic_src += ", ";
    ic_src += StrCat("e0(V", i, ", V", i + 1, ")");
  }
  ic_src += StrCat(" -> g(V0, V", width, ").");

  GeneratedCase out;
  Result<Program> program = ParseProgram(source);
  Result<Constraint> ic = ParseConstraint(ic_src);
  out.program = *program;
  out.ic = *ic;
  out.pred = PredicateId{InternSymbol("p"), 2};
  return out;
}

void BM_E4_Algorithm31(::benchmark::State& state) {
  GeneratedCase c = BuildCase(static_cast<size_t>(state.range(0)),
                              static_cast<size_t>(state.range(1)));
  ResidueGenOptions options;
  options.max_flow_depth = static_cast<size_t>(state.range(0)) + 2;
  ResidueGenStats stats;
  size_t found = 0;
  for (auto _ : state) {
    stats = ResidueGenStats();
    Result<std::vector<Residue>> residues =
        GenerateResidues(c.program, c.ic, c.pred, options, &stats);
    if (!residues.ok()) {
      state.SkipWithError(residues.status().ToString().c_str());
      return;
    }
    found = residues->size();
    ::benchmark::DoNotOptimize(residues);
  }
  state.counters["residues"] = static_cast<double>(found);
  state.counters["unfolded"] = static_cast<double>(stats.sequences_unfolded);
  state.counters["candidates"] =
      static_cast<double>(stats.candidate_sequences);
}

void BM_E4_Exhaustive(::benchmark::State& state) {
  GeneratedCase c = BuildCase(static_cast<size_t>(state.range(0)),
                              static_cast<size_t>(state.range(1)));
  ResidueGenOptions options;
  size_t max_length = static_cast<size_t>(state.range(0)) + 1;
  ResidueGenStats stats;
  size_t found = 0;
  for (auto _ : state) {
    stats = ResidueGenStats();
    Result<std::vector<Residue>> residues = GenerateResiduesExhaustive(
        c.program, c.ic, c.pred, max_length, options, &stats);
    if (!residues.ok()) {
      state.SkipWithError(residues.status().ToString().c_str());
      return;
    }
    found = residues->size();
    ::benchmark::DoNotOptimize(residues);
  }
  state.counters["residues"] = static_cast<double>(found);
  state.counters["unfolded"] = static_cast<double>(stats.sequences_unfolded);
  state.counters["candidates"] =
      static_cast<double>(stats.candidate_sequences);
}

void E4Args(::benchmark::internal::Benchmark* b) {
  for (int width : {2, 3, 4}) {
    for (int extra : {0, 2, 4}) {
      b->Args({width, extra});
    }
  }
  b->ArgNames({"ic_width", "extra_rules"});
  b->Unit(::benchmark::kMicrosecond);
}

BENCHMARK(BM_E4_Algorithm31)->Apply(E4Args);
BENCHMARK(BM_E4_Exhaustive)->Apply(E4Args);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
