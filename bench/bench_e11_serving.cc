// E11: concurrent query serving. Drives the QueryServer over real
// loopback sockets with 1/4/16/64 concurrent sessions, each issuing a
// mixed stream of light point lookups and heavy recursive queries, and
// reports end-to-end throughput plus client-observed latency
// percentiles (p50/p99, microseconds). The questions this answers:
//   - does snapshot pinning + the shared plan cache + two-class
//     admission keep per-request latency flat as sessions multiply?
//   - how far does aggregate throughput scale before the admission
//     limits (not the clients) become the ceiling?
// Light and heavy requests are timed separately: admission keeps the
// light tail bounded even while heavy fixpoints saturate their class.
//
// Artifact: bench/BENCH_e11.json (see EXPERIMENTS.md).

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/database.h"

namespace semopt {
namespace {

constexpr int kChain = 96;  // e(0,1)..e(95,96); closure = 4656 tuples

Database ChainDatabase() {
  Database db;
  for (int i = 0; i < kChain; ++i) {
    Status st = db.AddFact(Atom("e", {Term::Int(i), Term::Int(i + 1)}));
    if (!st.ok()) std::abort();
  }
  return db;
}

/// Blocking protocol client on one socket.
class BenchClient {
 public:
  explicit BenchClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      std::abort();
    }
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends one request, drains the dot-terminated response; returns
  /// false on transport failure.
  bool Request(const std::string& line) {
    std::string wire = line + "\n";
    size_t off = 0;
    while (off < wire.size()) {
      ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    char buf[4096];
    while (true) {
      std::optional<std::string> received = lines_.PopLine();
      if (received.has_value()) {
        if (*received == ".") return true;
        continue;
      }
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      lines_.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  LineBuffer lines_;
};

uint64_t Percentile(std::vector<uint64_t>& us, double p) {
  if (us.empty()) return 0;
  std::sort(us.begin(), us.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(us.size() - 1));
  return us[idx];
}

/// One serving run: `sessions` client threads, each issuing
/// `kRequestsPerSession` requests (every 5th heavy). Returns wall time
/// and the per-class latency samples.
struct RunResult {
  double seconds = 0;
  size_t requests = 0;
  std::vector<uint64_t> light_us;
  std::vector<uint64_t> heavy_us;
  bool ok = true;
};

RunResult RunServingWorkload(uint16_t port, int sessions) {
  constexpr int kRequestsPerSession = 40;
  RunResult result;
  std::vector<std::vector<uint64_t>> light(sessions), heavy(sessions);
  std::atomic<bool> failed{false};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      BenchClient client(port);
      // Session setup (untimed): the recursive program.
      if (!client.Request("t(X, Y) :- e(X, Y).") ||
          !client.Request("t(X, Z) :- t(X, Y), e(Y, Z).")) {
        failed.store(true);
        return;
      }
      for (int i = 0; i < kRequestsPerSession; ++i) {
        const bool is_heavy = i % 5 == 4;
        const std::string request =
            is_heavy ? "?- t(0, Y), Y > 90."
                     : "?- e(" + std::to_string((s + i) % kChain) + ", Y).";
        const auto t0 = std::chrono::steady_clock::now();
        if (!client.Request(request)) {
          failed.store(true);
          return;
        }
        const uint64_t us =
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        (is_heavy ? heavy[s] : light[s]).push_back(us);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.ok = !failed.load();
  for (int s = 0; s < sessions; ++s) {
    result.requests += light[s].size() + heavy[s].size();
    result.light_us.insert(result.light_us.end(), light[s].begin(),
                           light[s].end());
    result.heavy_us.insert(result.heavy_us.end(), heavy[s].begin(),
                           heavy[s].end());
  }
  return result;
}

void BM_Serving(::benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  QueryServer::Options options;
  options.threads_per_query = 1;
  QueryServer server(ChainDatabase(), options);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  std::vector<uint64_t> light_us, heavy_us;
  size_t requests = 0;
  for (auto _ : state) {
    RunResult run = RunServingWorkload(server.port(), sessions);
    if (!run.ok) {
      state.SkipWithError("client transport failure");
      break;
    }
    state.SetIterationTime(run.seconds);
    requests += run.requests;
    light_us.insert(light_us.end(), run.light_us.begin(), run.light_us.end());
    heavy_us.insert(heavy_us.end(), run.heavy_us.begin(), run.heavy_us.end());
  }
  server.Stop();

  state.SetItemsProcessed(static_cast<int64_t>(requests));
  state.counters["sessions"] = sessions;
  state.counters["light_p50_us"] =
      static_cast<double>(Percentile(light_us, 0.50));
  state.counters["light_p99_us"] =
      static_cast<double>(Percentile(light_us, 0.99));
  state.counters["heavy_p50_us"] =
      static_cast<double>(Percentile(heavy_us, 0.50));
  state.counters["heavy_p99_us"] =
      static_cast<double>(Percentile(heavy_us, 0.99));
  state.counters["plan_cache_hits"] =
      static_cast<double>(server.plan_cache().hits());
}

BENCHMARK(BM_Serving)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
