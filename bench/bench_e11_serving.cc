// E11: concurrent query serving. Drives the QueryServer over real
// loopback sockets with 1/4/16/64 concurrent sessions, each issuing a
// mixed stream of light point lookups and heavy recursive queries, and
// reports end-to-end throughput plus client-observed latency
// percentiles (p50/p99, microseconds). The questions this answers:
//   - does snapshot pinning + the shared plan cache + two-class
//     admission keep per-request latency flat as sessions multiply?
//   - how far does aggregate throughput scale before the admission
//     limits (not the clients) become the ceiling?
//   - what does always-on query logging cost? (BM_ServingLogged runs
//     the identical workload with the structured query log enabled and
//     a 100ms slow-query mirror; the acceptance bar is within 3% of
//     BM_Serving at 64 sessions — see EXPERIMENTS.md E12.)
// Light and heavy requests are timed separately: admission keeps the
// light tail bounded even while heavy fixpoints saturate their class.
// Percentiles come from bench::LatencyRecorder (the shared log-bucket
// histogram), not an ad-hoc sort.
//
// Artifact: bench/BENCH_e11.json (see EXPERIMENTS.md).

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/database.h"

namespace semopt {
namespace {

constexpr int kChain = 96;  // e(0,1)..e(95,96); closure = 4656 tuples

Database ChainDatabase() {
  Database db;
  for (int i = 0; i < kChain; ++i) {
    Status st = db.AddFact(Atom("e", {Term::Int(i), Term::Int(i + 1)}));
    if (!st.ok()) std::abort();
  }
  return db;
}

/// Blocking protocol client on one socket.
class BenchClient {
 public:
  explicit BenchClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      std::abort();
    }
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends one request, drains the dot-terminated response; returns
  /// false on transport failure.
  bool Request(const std::string& line) {
    std::string wire = line + "\n";
    size_t off = 0;
    while (off < wire.size()) {
      ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    char buf[4096];
    while (true) {
      std::optional<std::string> received = lines_.PopLine();
      if (received.has_value()) {
        if (*received == ".") return true;
        continue;
      }
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      lines_.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  LineBuffer lines_;
};

/// One serving run: `sessions` client threads, each issuing
/// `kRequestsPerSession` requests (every 5th heavy). Latency samples
/// land in the shared recorders (lock-free Observe).
struct RunResult {
  double seconds = 0;
  size_t requests = 0;
  bool ok = true;
};

RunResult RunServingWorkload(uint16_t port, int sessions,
                             bench::LatencyRecorder* light,
                             bench::LatencyRecorder* heavy) {
  constexpr int kRequestsPerSession = 40;
  RunResult result;
  std::atomic<bool> failed{false};
  std::atomic<size_t> requests{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      BenchClient client(port);
      // Session setup (untimed): the recursive program.
      if (!client.Request("t(X, Y) :- e(X, Y).") ||
          !client.Request("t(X, Z) :- t(X, Y), e(Y, Z).")) {
        failed.store(true);
        return;
      }
      for (int i = 0; i < kRequestsPerSession; ++i) {
        const bool is_heavy = i % 5 == 4;
        const std::string request =
            is_heavy ? "?- t(0, Y), Y > 90."
                     : "?- e(" + std::to_string((s + i) % kChain) + ", Y).";
        const auto t0 = std::chrono::steady_clock::now();
        if (!client.Request(request)) {
          failed.store(true);
          return;
        }
        const uint64_t us =
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        (is_heavy ? heavy : light)->Observe(us);
        requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.ok = !failed.load();
  result.requests = requests.load();
  return result;
}

/// Shared body of BM_Serving / BM_ServingLogged: `logged` turns on the
/// structured query log (to a scratch file) with the slow-query mirror
/// armed at 100ms. At low session counts the mirror stays cold (no
/// request takes 100ms of work); at 64 sessions queue wait pushes a
/// slice of total_us past the threshold, so the logged leg exercises
/// both streams — the worst case the 3% overhead bar is meant to
/// cover (EXPERIMENTS.md E12).
void RunServingBench(::benchmark::State& state, bool logged) {
  const int sessions = static_cast<int>(state.range(0));
  QueryServer::Options options;
  options.threads_per_query = 1;
  std::string log_path;
  if (logged) {
    log_path = "/tmp/semopt_bench_e11_qlog_" +
               std::to_string(::getpid()) + ".jsonl";
    options.query_log_path = log_path;
    options.slow_log_path = log_path + ".slow";
    options.slow_query_us = 100000;
  }
  QueryServer server(ChainDatabase(), options);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  bench::LatencyRecorder light, heavy;
  size_t requests = 0;
  for (auto _ : state) {
    RunResult run =
        RunServingWorkload(server.port(), sessions, &light, &heavy);
    if (!run.ok) {
      state.SkipWithError("client transport failure");
      break;
    }
    state.SetIterationTime(run.seconds);
    requests += run.requests;
  }
  const uint64_t logged_records = server.query_log().records();
  server.Stop();
  if (!log_path.empty()) {
    ::unlink(log_path.c_str());
    ::unlink((log_path + ".slow").c_str());
  }

  state.SetItemsProcessed(static_cast<int64_t>(requests));
  state.counters["sessions"] = sessions;
  state.counters["light_p50_us"] =
      static_cast<double>(light.PercentileUs(0.50));
  state.counters["light_p99_us"] =
      static_cast<double>(light.PercentileUs(0.99));
  state.counters["heavy_p50_us"] =
      static_cast<double>(heavy.PercentileUs(0.50));
  state.counters["heavy_p99_us"] =
      static_cast<double>(heavy.PercentileUs(0.99));
  state.counters["plan_cache_hits"] =
      static_cast<double>(server.plan_cache().hits());
  if (logged) {
    state.counters["logged_records"] = static_cast<double>(logged_records);
  }
}

void BM_Serving(::benchmark::State& state) { RunServingBench(state, false); }

void BM_ServingLogged(::benchmark::State& state) {
  RunServingBench(state, true);
}

BENCHMARK(BM_Serving)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK(BM_ServingLogged)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
