// E14: sustained update-stream maintenance. Streams mixed add/delete
// batches into a materialized IDB from 1/4/16 concurrent sessions —
// writes serialized exactly like the server's writer path, each batch
// followed by an epoch-style snapshot publish and a point query against
// the pinned snapshot — and reports fact-level updates/sec plus batch
// and query latency percentiles. Two legs per configuration:
//   - BM_Updates_Incremental: counting/DRed maintenance through
//     IncrementalEvaluator::ApplyUpdates — cost O(|Δ| affected), the
//     tentpole claim of DESIGN §16.
//   - BM_Updates_Recompute: the pre-IVM behaviour — every batch mutates
//     the EDB and re-runs the full fixpoint.
// The acceptance bar (EXPERIMENTS.md E14): incremental ≥10× recompute
// at the 1M-fact configuration, and `steady_plan_misses` = 0 — after
// warm-up every maintenance join replays a memoized plan.
//
// The base EDB takes the columnar generator→loader path: the workload
// generator emits a v1 binary snapshot through ColumnarSnapshotWriter
// (never materializing a row-wise Database) and the bench bulk-loads
// it, so the million-fact base costs one write + one mmap-free read.
//
// Churn model: each session appends fresh random edges and deletes the
// edges it added two batches earlier, so after warm-up every deletion
// hits a present tuple and the edge count stays in steady state —
// deletions genuinely sever derivations instead of no-oping.
//
// Artifact: bench/BENCH_e14.json (see EXPERIMENTS.md).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "eval/incremental.h"
#include "io/binary_io.h"
#include "server/materialized_view.h"
#include "storage/database.h"
#include "util/hash_util.h"
#include "workload/update_stream.h"

namespace semopt {
namespace {

constexpr int kAddsPerBatch = 32;
constexpr int kDelsPerBatch = 32;
// Warm-up primes the plan cache AND fills the churn pipeline: from the
// third batch on, every deletion hits an edge added two batches ago,
// so the last warm-up batches already have the steady-state shape.
constexpr int kWarmupBatches = 16;

/// `facts` is the total base EDB size. The graph is kept subcritical —
/// twice as many nodes as edges (mean out-degree 0.5) — so reachable
/// cones stay small and bounded: deleting an edge severs a handful of
/// tuples instead of cascading through a giant component. That is the
/// regime the O(|Δ|) claim is about; the supercritical regime where
/// every deletion invalidates most of the recursion is measured by the
/// differential tests, not this bench.
UpdateStreamParams ParamsFor(int64_t facts) {
  UpdateStreamParams params;
  params.num_edges = static_cast<size_t>(facts) / 3;
  params.num_nodes = 2 * params.num_edges;
  params.num_sources = 4;
  params.seed = 7;
  return params;
}

/// Generator → binary snapshot → bulk loader (the columnar path).
Database LoadBaseEdb(::benchmark::State& state,
                     const UpdateStreamParams& params) {
  const std::string path = "/tmp/semopt_bench_e14_" +
                           std::to_string(::getpid()) + ".bin";
  Database base;
  Result<size_t> written = WriteUpdateStreamSnapshot(path, params);
  if (!written.ok()) {
    state.SkipWithError(written.status().ToString().c_str());
    return base;
  }
  Result<BulkLoadStats> loaded = LoadBinaryFile(path, &base);
  ::unlink(path.c_str());
  if (!loaded.ok()) {
    state.SkipWithError(loaded.status().ToString().c_str());
  }
  return base;
}

/// One session's update stream: fresh adds now, delete them two
/// batches later. Deterministic per (seed, session).
class SessionChurn {
 public:
  SessionChurn(const UpdateStreamParams& params, int session)
      : params_(params), rng_(params.seed * 0x51ed2701ULL + session) {}

  void NextBatch(std::vector<Atom>* adds, std::vector<Atom>* dels) {
    adds->clear();
    dels->clear();
    std::vector<Atom> fresh;
    for (int i = 0; i < kAddsPerBatch; ++i) {
      fresh.push_back(UpdateStreamEdge(params_, rng_));
    }
    *adds = fresh;
    if (pending_.size() >= 2) {
      *dels = pending_.front();
      pending_.pop_front();
    } else {
      for (int i = 0; i < kDelsPerBatch; ++i) {
        dels->push_back(UpdateStreamEdge(params_, rng_));
      }
    }
    pending_.push_back(std::move(fresh));
  }

 private:
  UpdateStreamParams params_;
  SplitMix64 rng_;
  std::deque<std::vector<Atom>> pending_;
};

/// Shared write/publish state: one writer lock (the server's
/// writer_mu_ discipline) and the latest published snapshot, whose
/// relations are shared copy-on-write with the maintained IDB.
struct Published {
  std::mutex writer_mu;
  std::mutex snap_mu;
  std::shared_ptr<const Database> snapshot;

  void Publish(const Database& idb) {
    auto snap = std::make_shared<Database>();
    snap->MergeSharedFrom(idb);
    std::lock_guard<std::mutex> lock(snap_mu);
    snapshot = std::move(snap);
  }
  std::shared_ptr<const Database> Pin() {
    std::lock_guard<std::mutex> lock(snap_mu);
    return snapshot;
  }
};

/// The interleaved query: pin the current snapshot and probe the
/// recursive predicate, like a reader session between two writes.
uint64_t QueryOnce(Published& pub, const PredicateId& reach,
                   bench::LatencyRecorder* lat) {
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const Database> snap = pub.Pin();
  const Relation* rel = snap->Find(reach);
  uint64_t rows = rel != nullptr ? rel->size() : 0;
  lat->Observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return rows;
}

void RunUpdateBench(::benchmark::State& state, bool incremental) {
  const UpdateStreamParams params = ParamsFor(state.range(0));
  const int sessions = static_cast<int>(state.range(1));
  const int batches_per_session = incremental ? 20 : 5;

  Result<Program> program = UpdateStreamProgram();
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  Database base = LoadBaseEdb(state, params);
  if (base.TotalTuples() == 0) return;
  const size_t base_facts = base.TotalTuples();

  EvalOptions options;
  const PredicateId reach{InternSymbol("reach"), 1};

  // Initial materialization (untimed) — both legs start from the same
  // fixpoint over the bulk-loaded base.
  std::unique_ptr<IncrementalEvaluator> inc;
  Database edb;  // recompute leg's mutable base
  Database idb;
  if (incremental) {
    Result<IncrementalEvaluator> created =
        IncrementalEvaluator::Create(*program, std::move(base), options);
    if (!created.ok()) {
      state.SkipWithError(created.status().ToString().c_str());
      return;
    }
    inc = std::make_unique<IncrementalEvaluator>(std::move(*created));
  } else {
    edb = std::move(base);
    Result<Database> full = Evaluate(*program, edb, options, nullptr);
    if (!full.ok()) {
      state.SkipWithError(full.status().ToString().c_str());
      return;
    }
    idb = std::move(*full);
  }

  bench::LatencyRecorder batch_lat, query_lat;
  EvalStats steady_stats;
  IvmStats steady_ivm;
  size_t fact_updates = 0;
  std::atomic<uint64_t> query_rows{0};

  // Churn generators persist across warm-up and measured phases so the
  // delete-what-you-added pipeline (and the plan cache it shapes) is
  // already in steady state when the clock starts.
  std::vector<SessionChurn> churns;
  for (int s = 0; s < sessions; ++s) churns.emplace_back(params, s);

  for (auto _ : state) {
    Published pub;
    pub.Publish(incremental ? inc->idb() : idb);

    // One session body; `measured` selects warm-up vs timed counters.
    auto run_sessions = [&](int batches, bool measured) {
      std::atomic<bool> failed{false};
      std::vector<std::thread> threads;
      for (int s = 0; s < sessions; ++s) {
        threads.emplace_back([&, s] {
          SessionChurn& churn = churns[s];
          std::vector<Atom> adds, dels;
          for (int b = 0; b < batches && !failed.load(); ++b) {
            churn.NextBatch(&adds, &dels);
            const auto t0 = std::chrono::steady_clock::now();
            {
              std::lock_guard<std::mutex> lock(pub.writer_mu);
              if (incremental) {
                Result<IvmStats> applied = inc->ApplyUpdates(
                    adds, dels, measured ? &steady_stats : nullptr);
                if (!applied.ok()) {
                  failed.store(true);
                  break;
                }
                if (measured) steady_ivm.Add(*applied);
                pub.Publish(inc->idb());
              } else {
                if (!ApplyEdbBatch(&edb, adds, dels).ok()) {
                  failed.store(true);
                  break;
                }
                Result<Database> full =
                    Evaluate(*program, edb, options, nullptr);
                if (!full.ok()) {
                  failed.store(true);
                  break;
                }
                idb = std::move(*full);
                pub.Publish(idb);
              }
            }
            if (measured) {
              batch_lat.Observe(static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count()));
            }
            query_rows.fetch_add(QueryOnce(pub, reach, &query_lat),
                                 std::memory_order_relaxed);
          }
        });
      }
      for (std::thread& t : threads) t.join();
      return !failed.load();
    };

    // Warm-up: prime plan caches and fill the churn pipeline so every
    // measured deletion hits a present tuple.
    if (!run_sessions(kWarmupBatches, /*measured=*/false)) {
      state.SkipWithError("warm-up batch failed");
      break;
    }
    const auto start = std::chrono::steady_clock::now();
    bool ok = run_sessions(batches_per_session, /*measured=*/true);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (!ok) {
      state.SkipWithError("update batch failed");
      break;
    }
    state.SetIterationTime(seconds);
    fact_updates += static_cast<size_t>(sessions) * batches_per_session *
                    (kAddsPerBatch + kDelsPerBatch);
  }

  state.SetItemsProcessed(static_cast<int64_t>(fact_updates));
  state.counters["sessions"] = sessions;
  state.counters["base_facts"] = static_cast<double>(base_facts);
  state.counters["batch_p50_us"] =
      static_cast<double>(batch_lat.PercentileUs(0.50));
  state.counters["batch_p99_us"] =
      static_cast<double>(batch_lat.PercentileUs(0.99));
  state.counters["query_p50_us"] =
      static_cast<double>(query_lat.PercentileUs(0.50));
  state.counters["query_p99_us"] =
      static_cast<double>(query_lat.PercentileUs(0.99));
  if (incremental) {
    // The acceptance gate: after warm-up, maintenance joins replay
    // memoized plans — zero planning in steady state.
    state.counters["steady_plan_misses"] =
        static_cast<double>(steady_stats.plan_cache_misses);
    state.counters["maint_us_per_batch"] =
        steady_ivm.batches == 0
            ? 0.0
            : static_cast<double>(steady_ivm.maintenance_us) /
                  static_cast<double>(steady_ivm.batches);
    state.counters["overdeleted"] =
        static_cast<double>(steady_ivm.overdeleted);
    state.counters["rederived"] = static_cast<double>(steady_ivm.rederived);
    state.counters["recounted"] = static_cast<double>(steady_ivm.recounted);
    state.counters["net_deleted"] =
        static_cast<double>(steady_ivm.net_deleted);
    state.counters["net_inserted"] =
        static_cast<double>(steady_ivm.net_inserted);
  }
  (void)query_rows;
}

void BM_Updates_Incremental(::benchmark::State& state) {
  RunUpdateBench(state, /*incremental=*/true);
}

void BM_Updates_Recompute(::benchmark::State& state) {
  RunUpdateBench(state, /*incremental=*/false);
}

// Args: {total base facts, sessions}. The 1M-fact rows are the
// acceptance configuration; the recompute leg runs fewer batches per
// session (5 vs 20) because each batch pays a full fixpoint, and skips
// the 1M multi-session rows — serialized full recomputes at that scale
// measure nothing new.
BENCHMARK(BM_Updates_Incremental)
    ->Args({100000, 1})
    ->Args({100000, 4})
    ->Args({100000, 16})
    ->Args({1000000, 1})
    ->Args({1000000, 4})
    ->Args({1000000, 16})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_Updates_Recompute)
    ->Args({100000, 1})
    ->Args({100000, 4})
    ->Args({100000, 16})
    ->Args({1000000, 1})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
