// Ablation A2 (DESIGN.md §2(7)): magic-rule body slicing.
//
// Magic rules that drag the whole rule prefix along re-execute fan-out
// joins inside every magic derivation; slicing to the variable
// connection path keeps them lean (a sound over-approximation). This
// matters most when magic-rewriting the semantically optimized program
// (multi-step committed rules).

#include "bench_common.h"
#include "magic/magic_sets.h"
#include "workload/university.h"

namespace semopt {
namespace {

UniversityParams Params(int students) {
  UniversityParams params;
  params.num_students = static_cast<size_t>(students);
  params.num_professors = params.num_students / 2;
  params.fields_per_thesis = 2;
  params.num_departments = 8;
  params.seed = 321;
  return params;
}

void Run(::benchmark::State& state, bool slice) {
  Result<Program> program = UniversityProgram();
  Program optimized = bench::OptimizeOrDie(state, *program);
  Database edb = GenerateUniversityDb(Params(static_cast<int>(state.range(0))));
  Atom query("eval", {Term::Sym("prof0"), Term::Var("S"), Term::Var("T")});
  MagicOptions options;
  options.slice_magic_bodies = slice;
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    Result<std::vector<Tuple>> answers =
        AnswerWithMagic(optimized, edb, query, &stats, options);
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
      return;
    }
    ::benchmark::DoNotOptimize(answers);
  }
  bench::PublishStats(state, stats);
}

void BM_A2_Sliced(::benchmark::State& state) { Run(state, true); }
void BM_A2_Unsliced(::benchmark::State& state) { Run(state, false); }

void A2Args(::benchmark::internal::Benchmark* b) {
  for (int students : {100, 200}) b->Args({students});
  b->ArgNames({"students"});
  b->Unit(::benchmark::kMillisecond);
}

BENCHMARK(BM_A2_Sliced)->Apply(A2Args);
BENCHMARK(BM_A2_Unsliced)->Apply(A2Args);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
