// Experiment E6 (paper §6): semantic pushing versus — and combined with
// — magic sets. "Just as the magic sets method pushes the goal
// selectivity of queries inside recursion, our approach tries to push
// the semantics (in ICs) inside the recursion."
//
// Claims reproduced:
//   * magic sets helps bound queries, independent of ICs;
//   * semantic pushing helps independent of the binding pattern;
//   * the two compose: magic-rewriting the semantically optimized
//     program keeps both benefits on bound queries.
//
// Series: a bound query eval(prof_k, S, T) on chain-shaped university
// databases of growing size.

#include "bench_common.h"
#include "magic/magic_sets.h"
#include "util/string_util.h"
#include "workload/university.h"

namespace semopt {
namespace {

UniversityParams ParamsFor(const ::benchmark::State& state) {
  UniversityParams params;
  params.num_students = static_cast<size_t>(state.range(0));
  params.num_professors = params.num_students / 2;
  params.fields_per_thesis = 2;
  params.num_departments = 8;
  params.seed = 321;
  return params;
}

Atom BoundQuery() {
  // Bound first argument: which students/theses may prof0 evaluate?
  return Atom("eval",
              {Term::Sym("prof0"), Term::Var("S"), Term::Var("T")});
}

void BM_E6_FullEvaluation(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Database edb = GenerateUniversityDb(ParamsFor(state));
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, *program, edb);
  }
  bench::PublishStats(state, stats);
}

void BM_E6_MagicOnly(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Database edb = GenerateUniversityDb(ParamsFor(state));
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    Result<std::vector<Tuple>> answers =
        AnswerWithMagic(*program, edb, BoundQuery(), &stats);
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
      return;
    }
    ::benchmark::DoNotOptimize(answers);
  }
  bench::PublishStats(state, stats);
}

void BM_E6_SemanticOnly(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Program optimized = bench::OptimizeOrDie(state, *program);
  Database edb = GenerateUniversityDb(ParamsFor(state));
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, optimized, edb);
  }
  bench::PublishStats(state, stats);
}

void BM_E6_MagicPlusSemantic(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Program optimized = bench::OptimizeOrDie(state, *program);  // factored
  Database edb = GenerateUniversityDb(ParamsFor(state));
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    Result<std::vector<Tuple>> answers =
        AnswerWithMagic(optimized, edb, BoundQuery(), &stats);
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
      return;
    }
    ::benchmark::DoNotOptimize(answers);
  }
  bench::PublishStats(state, stats);
}

void E6Args(::benchmark::internal::Benchmark* b) {
  for (int students : {100, 200, 400}) b->Args({students});
  b->ArgNames({"students"});
  b->Unit(::benchmark::kMillisecond);
}

BENCHMARK(BM_E6_FullEvaluation)->Apply(E6Args);
BENCHMARK(BM_E6_MagicOnly)->Apply(E6Args);
BENCHMARK(BM_E6_SemanticOnly)->Apply(E6Args);
BENCHMARK(BM_E6_MagicPlusSemantic)->Apply(E6Args);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
