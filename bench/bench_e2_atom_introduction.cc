// Experiment E2 (paper §4(2), Example 4.2): atom introduction.
//
// Claim reproduced: introducing the small `doctoral` relation (implied
// by ic2 for high payments) as an extra subgoal of `eval_support` acts
// as a cheap semijoin reducer; the benefit grows with the fraction of
// high payments and with how selective `doctoral` is.
//
// Series: for each (doctoral_pct, high_payment_pct), evaluate the
// original program and the program with the introduction pushed.

#include "bench_common.h"
#include "workload/university.h"

namespace semopt {
namespace {

UniversityParams ParamsFor(const ::benchmark::State& state) {
  UniversityParams params;
  params.num_students = 400;
  params.num_professors = 120;
  params.num_theses_per_student = 2;
  params.doctoral_fraction = static_cast<double>(state.range(0)) / 100.0;
  params.high_payment_fraction = static_cast<double>(state.range(1)) / 100.0;
  params.seed = 99;
  return params;
}

OptimizerOptions IntroductionOptions() {
  OptimizerOptions options;
  // Only introduction is under test; keep the eval recursion untouched.
  options.enable_elimination = false;
  options.enable_pruning = false;
  options.small_relations.insert(PredicateId{InternSymbol("doctoral"), 1});
  return options;
}

void BM_E2_Original(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Database edb = GenerateUniversityDb(ParamsFor(state));
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, *program, edb);
  }
  bench::PublishStats(state, stats);
}

void BM_E2_Introduced(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Program optimized =
      bench::OptimizeOrDie(state, *program, IntroductionOptions());
  Database edb = GenerateUniversityDb(ParamsFor(state));
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, optimized, edb);
  }
  bench::PublishStats(state, stats);
}

void E2Args(::benchmark::internal::Benchmark* b) {
  for (int doctoral_pct : {10, 30}) {
    for (int high_pct : {10, 40, 80}) {
      b->Args({doctoral_pct, high_pct});
    }
  }
  b->ArgNames({"doctoral_pct", "high_pct"});
  b->Unit(::benchmark::kMillisecond);
}

BENCHMARK(BM_E2_Original)->Apply(E2Args);
BENCHMARK(BM_E2_Introduced)->Apply(E2Args);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
