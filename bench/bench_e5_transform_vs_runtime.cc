// Experiment E5 (paper §1/§6): program transformation (one-shot at
// compile time) versus the evaluation paradigm (residues applied to the
// subqueries of every bottom-up iteration, after Chakravarthy et al. /
// Lee & Han).
//
// Claims reproduced:
//   * the transformation's cost is paid once (BM_E5_CompileOnce), not
//     per evaluation;
//   * the runtime paradigm's residue-application overhead grows with
//     the number of fixpoint iterations (deep collaboration chains),
//     while the transformed program carries no such overhead.
//
// Series: collaboration chains of growing depth (iterations ~ depth).

#include "bench_common.h"
#include "semopt/runtime_residues.h"
#include "util/string_util.h"
#include "workload/university.h"

namespace semopt {
namespace {

/// A chain-shaped university database: prof i works with prof i+1, so
/// semi-naive needs ~depth iterations.
Database ChainDb(size_t depth) {
  Database edb;
  for (size_t i = 0; i < depth; ++i) {
    edb.AddTuple("works_with", {Term::Sym(StrCat("p", i)),
                                Term::Sym(StrCat("p", i + 1))});
    edb.AddTuple("expert",
                 {Term::Sym(StrCat("p", i)), Term::Sym("db")});
  }
  edb.AddTuple("expert",
               {Term::Sym(StrCat("p", depth)), Term::Sym("db")});
  // A few theses at the bottom of the chain.
  for (size_t t = 0; t < 8; ++t) {
    Term thesis = Term::Sym(StrCat("t", t));
    edb.AddTuple("super", {Term::Sym(StrCat("p", depth)),
                           Term::Sym(StrCat("s", t)), thesis});
    edb.AddTuple("field", {thesis, Term::Sym("db")});
    edb.AddTuple("pays", {Term::Int(12000), Term::Sym("g"),
                          Term::Sym(StrCat("s", t)), thesis});
    edb.AddTuple("doctoral", {Term::Sym(StrCat("s", t))});
  }
  return edb;
}

void BM_E5_Plain(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Database edb = ChainDb(static_cast<size_t>(state.range(0)));
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, *program, edb);
  }
  bench::PublishStats(state, stats);
}

void BM_E5_TransformedEvaluate(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Program optimized = bench::OptimizeOrDie(state, *program);
  Database edb = ChainDb(static_cast<size_t>(state.range(0)));
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, optimized, edb);
  }
  bench::PublishStats(state, stats);
}

void BM_E5_RuntimeResidues(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Database edb = ChainDb(static_cast<size_t>(state.range(0)));
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    Result<Database> idb = EvaluateWithRuntimeResidues(*program, edb, &stats);
    if (!idb.ok()) {
      state.SkipWithError(idb.status().ToString().c_str());
      return;
    }
  }
  bench::PublishStats(state, stats);
}

void BM_E5_CompileOnce(::benchmark::State& state) {
  // The one-shot cost of the transformation itself (independent of the
  // database): residue generation + isolation + pushing.
  Result<Program> program = UniversityProgram();
  for (auto _ : state) {
    SemanticOptimizer optimizer;
    Result<OptimizeResult> result = optimizer.Optimize(*program);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    ::benchmark::DoNotOptimize(result);
  }
}

void E5Args(::benchmark::internal::Benchmark* b) {
  for (int depth : {8, 16, 32, 64}) b->Args({depth});
  b->ArgNames({"chain_depth"});
  b->Unit(::benchmark::kMillisecond);
}

BENCHMARK(BM_E5_Plain)->Apply(E5Args);
BENCHMARK(BM_E5_TransformedEvaluate)->Apply(E5Args);
BENCHMARK(BM_E5_RuntimeResidues)->Apply(E5Args);
BENCHMARK(BM_E5_CompileOnce)->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
