// Ablation A1 (DESIGN.md §2(7)): cardinality-aware join planning.
//
// The engine re-plans every rule execution using the current sizes of
// its input relations; without it, the auxiliary relations created by
// the semantic transformation get probed in pathological orders. This
// bench quantifies that on the university workload, for the original
// and for the optimized program.

#include "bench_common.h"
#include "workload/university.h"

namespace semopt {
namespace {

UniversityParams Params() {
  UniversityParams params;
  params.num_students = 200;
  params.num_professors = 100;
  params.fields_per_thesis = 2;
  params.seed = 2024;
  return params;
}

void Run(::benchmark::State& state, bool optimized, bool cardinality) {
  Result<Program> program = UniversityProgram();
  Program to_run = *program;
  if (optimized) to_run = bench::OptimizeOrDie(state, *program);
  Database edb = GenerateUniversityDb(Params());
  EvalOptions options;
  options.cardinality_planning = cardinality;
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    Result<Database> idb = Evaluate(to_run, edb, options, &stats);
    if (!idb.ok()) {
      state.SkipWithError(idb.status().ToString().c_str());
      return;
    }
  }
  bench::PublishStats(state, stats);
}

void BM_A1_Original_SizeAware(::benchmark::State& state) {
  Run(state, /*optimized=*/false, /*cardinality=*/true);
}
void BM_A1_Original_SizeBlind(::benchmark::State& state) {
  Run(state, false, false);
}
void BM_A1_Optimized_SizeAware(::benchmark::State& state) {
  Run(state, true, true);
}
void BM_A1_Optimized_SizeBlind(::benchmark::State& state) {
  Run(state, true, false);
}

BENCHMARK(BM_A1_Original_SizeAware)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_A1_Original_SizeBlind)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_A1_Optimized_SizeAware)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_A1_Optimized_SizeBlind)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
