// Ablation A1 (DESIGN.md §2(7), §15): cardinality-aware join planning,
// and the cost-based enumerator on top of it.
//
// The engine re-plans every rule execution using the current sizes of
// its input relations; without it, the auxiliary relations created by
// the semantic transformation get probed in pathological orders. This
// bench quantifies that on the university workload, for the original
// and for the optimized program.
//
// The `_Greedy`/`_Cost` legs then ablate PlannerMode on top of
// size-aware planning (tools/bench_report.py pairs them into the
// planner-ablation table):
//  - BM_A1_Fanout_*: a join where greedy's smallest-relation tie-break
//    opens with a relation that fans out ~80x, while the enumerator's
//    distinct sketches see through it — the cost planner's win case.
//  - BM_A1_University_*: both planners pick equivalent orders, so the
//    cost leg must stay within noise of greedy — the no-regression
//    case the report's --fail-on-planner-regression gate enforces.
// Before timing, each pair verifies bit-identical fixpoints between
// the two planners, and each leg runs through a session PlanCache so
// the timed steady state plans zero times per iteration.

#include "bench_common.h"
#include "eval/plan_cache.h"
#include "parser/parser.h"
#include "workload/university.h"

namespace semopt {
namespace {

UniversityParams Params() {
  UniversityParams params;
  params.num_students = 200;
  params.num_professors = 100;
  params.fields_per_thesis = 2;
  params.seed = 2024;
  return params;
}

void Run(::benchmark::State& state, bool optimized, bool cardinality) {
  Result<Program> program = UniversityProgram();
  Program to_run = *program;
  if (optimized) to_run = bench::OptimizeOrDie(state, *program);
  Database edb = GenerateUniversityDb(Params());
  EvalOptions options;
  options.cardinality_planning = cardinality;
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    Result<Database> idb = Evaluate(to_run, edb, options, &stats);
    if (!idb.ok()) {
      state.SkipWithError(idb.status().ToString().c_str());
      return;
    }
  }
  bench::PublishStats(state, stats);
}

void BM_A1_Original_SizeAware(::benchmark::State& state) {
  Run(state, /*optimized=*/false, /*cardinality=*/true);
}
void BM_A1_Original_SizeBlind(::benchmark::State& state) {
  Run(state, false, false);
}
void BM_A1_Optimized_SizeAware(::benchmark::State& state) {
  Run(state, true, true);
}
void BM_A1_Optimized_SizeBlind(::benchmark::State& state) {
  Run(state, true, false);
}

BENCHMARK(BM_A1_Original_SizeAware)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_A1_Original_SizeBlind)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_A1_Optimized_SizeAware)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_A1_Optimized_SizeBlind)->Unit(::benchmark::kMillisecond);

// --- greedy vs cost planner legs ---

/// src joins into hub on a 25-value skew column; filt pins A almost
/// uniquely. hub is the smallest relation, so greedy's size tie-break
/// schedules it right after nothing is bound and every hub row fans
/// out into ~80 src probes; the cost planner's sketches order
/// src -> filt -> hub instead and the intermediate never grows.
Database FanoutDb() {
  Database db;
  for (int i = 0; i < 2000; ++i) {
    Status st = db.AddFact(Atom("src", {Term::Int(i), Term::Int(i % 25)}));
    if (st.ok()) {
      st = db.AddFact(Atom("filt", {Term::Int(i), Term::Int(i % 76)}));
    }
    if (!st.ok()) std::abort();
  }
  for (int b = 0; b < 25; ++b) {
    for (int c = 0; c < 76; ++c) {
      if (!db.AddFact(Atom("hub", {Term::Int(b), Term::Int(c)})).ok()) {
        std::abort();
      }
    }
  }
  return db;
}

Program FanoutProgram(::benchmark::State& state) {
  Result<Program> program = ParseProgram(R"(
    q(A, C) :- src(A, B), hub(B, C), filt(A, C).
    r(A, C) :- q(A, C).
    r(A, C) :- r(A, B), q(B, C).
  )");
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return Program();
  }
  return *program;
}

/// One timed planner leg: verifies the two planners derive identical
/// fixpoints before the clock starts, then times `planner` through a
/// session PlanCache (steady state: the warmup iteration plans, timed
/// iterations hit every round).
void RunPlannerLeg(::benchmark::State& state, const Program& program,
                   const Database& edb, PlannerMode planner) {
  EvalOptions greedy_options;
  EvalOptions cost_options;
  cost_options.planner = PlannerMode::kCost;
  Result<Database> greedy_idb = Evaluate(program, edb, greedy_options);
  Result<Database> cost_idb = Evaluate(program, edb, cost_options);
  if (!greedy_idb.ok() || !cost_idb.ok()) {
    state.SkipWithError("pre-timing evaluation failed");
    return;
  }
  if (!greedy_idb->SameFactsAs(*cost_idb)) {
    state.SkipWithError("planner ablation: greedy and cost fixpoints differ");
    return;
  }

  PlanCache cache;
  EvalOptions options;
  options.planner = planner;
  options.plan_cache = &cache;
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    Result<Database> idb = Evaluate(program, edb, options, &stats);
    if (!idb.ok()) {
      state.SkipWithError(idb.status().ToString().c_str());
      return;
    }
  }
  bench::PublishStats(state, stats);
  // 0 in steady state: every timed round replays a memoized plan.
  state.counters["plan_misses"] =
      static_cast<double>(stats.plan_cache_misses);
}

void BM_A1_Fanout_Greedy(::benchmark::State& state) {
  Program program = FanoutProgram(state);
  Database edb = FanoutDb();
  RunPlannerLeg(state, program, edb, PlannerMode::kGreedy);
}
void BM_A1_Fanout_Cost(::benchmark::State& state) {
  Program program = FanoutProgram(state);
  Database edb = FanoutDb();
  RunPlannerLeg(state, program, edb, PlannerMode::kCost);
}

/// The same-order case: on the university workload both planners pick
/// equivalent join orders, so this pair gates the cost planner's
/// overhead (enumeration is amortized away by the plan cache).
void BM_A1_University_Greedy(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Program to_run = bench::OptimizeOrDie(state, *program);
  Database edb = GenerateUniversityDb(Params());
  RunPlannerLeg(state, to_run, edb, PlannerMode::kGreedy);
}
void BM_A1_University_Cost(::benchmark::State& state) {
  Result<Program> program = UniversityProgram();
  Program to_run = bench::OptimizeOrDie(state, *program);
  Database edb = GenerateUniversityDb(Params());
  RunPlannerLeg(state, to_run, edb, PlannerMode::kCost);
}

BENCHMARK(BM_A1_Fanout_Greedy)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_A1_Fanout_Cost)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_A1_University_Greedy)->Unit(::benchmark::kMillisecond);
BENCHMARK(BM_A1_University_Cost)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
