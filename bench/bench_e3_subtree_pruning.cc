// Experiment E3 (paper §4(3), Example 4.3): subtree pruning.
//
// Claim under test: the conditional null residue (people under 50 have
// no 3 generations of descendants) prunes doomed derivations. This
// bench measures all three sides of the story:
//   * BM_E3_Original      — untransformed bottom-up evaluation;
//   * BM_E3_Pruned        — isolation + guard pushed (the paper's
//                           transformation);
//   * BM_E3_IsolationOnly — isolation without the guard (ablation that
//                           separates the transformation's structural
//                           overhead from the guard's savings).
//
// In pure bottom-up evaluation the doomed joins fail cheaply on their
// own, so the guard's savings compete with the committed-chain
// materialization the isolation introduces — EXPERIMENTS.md discusses
// the measured shape. The `bindings` counter isolates the join work.

#include "bench_common.h"
#include "semopt/isolation.h"
#include "workload/genealogy.h"

namespace semopt {
namespace {

GenealogyParams ParamsFor(const ::benchmark::State& state) {
  GenealogyParams params;
  params.generations = static_cast<size_t>(state.range(0));
  params.children_per_person = 2;
  params.num_families = 24;
  params.seed = 5;
  return params;
}

void BM_E3_Original(::benchmark::State& state) {
  Result<Program> program = GenealogyProgram();
  Database edb = GenerateGenealogyDb(ParamsFor(state));
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, *program, edb);
  }
  bench::PublishStats(state, stats);
}

void BM_E3_PrunedFactored(::benchmark::State& state) {
  Result<Program> program = GenealogyProgram();
  Program optimized = bench::OptimizeOrDie(state, *program);
  Database edb = GenerateGenealogyDb(ParamsFor(state));
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, optimized, edb);
  }
  bench::PublishStats(state, stats);
}

void BM_E3_PrunedFlat(::benchmark::State& state) {
  // Pruning without the chain factoring: the committed rule stays a
  // flat 3-step join (better on this fan-in-1 workload).
  Result<Program> program = GenealogyProgram();
  OptimizerOptions options;
  options.factor_committed = false;
  Program optimized = bench::OptimizeOrDie(state, *program, options);
  Database edb = GenerateGenealogyDb(ParamsFor(state));
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, optimized, edb);
  }
  bench::PublishStats(state, stats);
}

void BM_E3_IsolationOnly(::benchmark::State& state) {
  // The same r1 r1 r1 isolation the optimizer would build, without the
  // pruning guard: measures pure transformation overhead.
  Result<Program> program = GenealogyProgram();
  Result<IsolationResult> iso =
      IsolateSequence(*program, ExpansionSequence{{1, 1, 1}}, 0);
  if (!iso.ok()) {
    state.SkipWithError(iso.status().ToString().c_str());
    return;
  }
  Database edb = GenerateGenealogyDb(ParamsFor(state));
  EvalStats stats;
  for (auto _ : state) {
    stats = bench::EvaluateOrDie(state, iso->program, edb);
  }
  bench::PublishStats(state, stats);
}

void E3Args(::benchmark::internal::Benchmark* b) {
  for (int generations : {5, 6, 7, 8}) b->Args({generations});
  b->ArgNames({"generations"});
  b->Unit(::benchmark::kMillisecond);
}

BENCHMARK(BM_E3_Original)->Apply(E3Args);
BENCHMARK(BM_E3_PrunedFactored)->Apply(E3Args);
BENCHMARK(BM_E3_PrunedFlat)->Apply(E3Args);
BENCHMARK(BM_E3_IsolationOnly)->Apply(E3Args);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
