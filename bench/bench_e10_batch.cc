// Experiment E10: block-at-a-time (batched) join execution versus the
// tuple-at-a-time executor, at identical plans and identical results.
//
// Claims measured:
//   * streaming frame blocks through the step pipeline (probe-key
//     gathering + ProbeBatch + tight extend loops, block head flushes)
//     beats per-tuple recursive execution on join-heavy fixpoints;
//   * the cross-round plan cache removes steady-state planning/index
//     tolls for both modes (hits are published as counters).
//
// Series: the E1 university workload (recursive eval with fan-out), the
// E6 chain-shaped university full evaluation, and the E8 genealogy
// workload (serial and 4 threads). Every config runs with
// eval.batch_size=1 (Tuple), =1024 (Batch), and =1024 with simd=off
// (BatchScalar — the vectorized-kernel ablation); before timing, all
// modes are evaluated once and the benchmark aborts unless the derived
// tuple counts are bit-identical and the fixpoints set-equal.

#include <set>
#include <string>

#include "bench_common.h"
#include "eval/rule_executor.h"
#include "workload/genealogy.h"
#include "workload/university.h"

namespace semopt {
namespace {

EvalOptions OptionsFor(size_t batch_size, size_t threads,
                       SimdMode simd = SimdMode::kAuto) {
  EvalOptions options;
  options.batch_size = batch_size;
  options.num_threads = threads;
  options.simd = simd;
  return options;
}

EvalStats EvaluateModeOrDie(::benchmark::State& state, const Program& program,
                            const Database& edb, size_t batch_size,
                            size_t threads, SimdMode simd = SimdMode::kAuto) {
  bench::MaybeEnableTracingFromEnv();
  EvalStats stats;
  Result<Database> idb =
      Evaluate(program, edb, OptionsFor(batch_size, threads, simd), &stats);
  if (!idb.ok()) {
    state.SkipWithError(idb.status().ToString().c_str());
  }
  return stats;
}

/// One-time per (tag, config): evaluates tuple-at-a-time, batched
/// vectorized, and batched scalar (simd=off) modes and aborts the
/// benchmark unless all derive bit-identical counts and set-equal
/// fixpoints. Runs outside the timed loop.
void VerifyModesAgreeOnce(::benchmark::State& state, const std::string& tag,
                          const Program& program, const Database& edb,
                          size_t threads) {
  static std::set<std::string>* verified = new std::set<std::string>();
  if (!verified->insert(tag).second) return;
  EvalStats tuple_stats, batch_stats, scalar_stats;
  Result<Database> tuple_idb =
      Evaluate(program, edb, OptionsFor(1, threads), &tuple_stats);
  Result<Database> batch_idb = Evaluate(
      program, edb, OptionsFor(RuleExecutor::kDefaultBatchSize, threads),
      &batch_stats);
  Result<Database> scalar_idb = Evaluate(
      program, edb,
      OptionsFor(RuleExecutor::kDefaultBatchSize, threads, SimdMode::kOff),
      &scalar_stats);
  if (!tuple_idb.ok() || !batch_idb.ok() || !scalar_idb.ok()) {
    state.SkipWithError("verification evaluation failed");
    return;
  }
  if (tuple_stats.derived_tuples != batch_stats.derived_tuples ||
      tuple_stats.duplicate_tuples != batch_stats.duplicate_tuples ||
      !tuple_idb->SameFactsAs(*batch_idb)) {
    state.SkipWithError("tuple and batched modes disagree");
    return;
  }
  if (batch_stats.derived_tuples != scalar_stats.derived_tuples ||
      batch_stats.duplicate_tuples != scalar_stats.duplicate_tuples ||
      batch_stats.bindings_explored != scalar_stats.bindings_explored ||
      !batch_idb->SameFactsAs(*scalar_idb)) {
    state.SkipWithError("vectorized and scalar batched modes disagree");
  }
}

void PublishBatchStats(::benchmark::State& state, const EvalStats& stats) {
  bench::PublishStats(state, stats);
  state.counters["cache_hit"] = static_cast<double>(stats.plan_cache_hits);
  state.counters["cache_miss"] = static_cast<double>(stats.plan_cache_misses);
  state.counters["batches"] = static_cast<double>(stats.batches);
}

// ------------------------------------------------------------- E1 config

UniversityParams E1ParamsFor(const ::benchmark::State& state) {
  UniversityParams params;
  params.num_students = static_cast<size_t>(state.range(0));
  params.num_professors = params.num_students / 2;
  params.fields_per_thesis = 2;
  params.num_fields = 12;
  params.seed = 1234;
  return params;
}

void RunE1(::benchmark::State& state, size_t batch_size,
           SimdMode simd = SimdMode::kAuto) {
  Result<Program> program = UniversityProgram();
  Database edb = GenerateUniversityDb(E1ParamsFor(state));
  VerifyModesAgreeOnce(state,
                       "e1/" + std::to_string(state.range(0)), *program, edb,
                       /*threads=*/1);
  EvalStats stats;
  for (auto _ : state) {
    stats = EvaluateModeOrDie(state, *program, edb, batch_size, 1, simd);
  }
  PublishBatchStats(state, stats);
}

void BM_E10_E1_University_Tuple(::benchmark::State& state) {
  RunE1(state, 1);
}
void BM_E10_E1_University_Batch(::benchmark::State& state) {
  RunE1(state, RuleExecutor::kDefaultBatchSize);
}
void BM_E10_E1_University_BatchScalar(::benchmark::State& state) {
  RunE1(state, RuleExecutor::kDefaultBatchSize, SimdMode::kOff);
}

// ------------------------------------------------------------- E6 config

UniversityParams E6ParamsFor(const ::benchmark::State& state) {
  UniversityParams params;
  params.num_students = static_cast<size_t>(state.range(0));
  params.num_professors = params.num_students / 2;
  params.fields_per_thesis = 2;
  params.num_departments = 8;
  params.seed = 321;
  return params;
}

void RunE6(::benchmark::State& state, size_t batch_size,
           SimdMode simd = SimdMode::kAuto) {
  Result<Program> program = UniversityProgram();
  Database edb = GenerateUniversityDb(E6ParamsFor(state));
  VerifyModesAgreeOnce(state,
                       "e6/" + std::to_string(state.range(0)), *program, edb,
                       /*threads=*/1);
  EvalStats stats;
  for (auto _ : state) {
    stats = EvaluateModeOrDie(state, *program, edb, batch_size, 1, simd);
  }
  PublishBatchStats(state, stats);
}

void BM_E10_E6_UniversityChain_Tuple(::benchmark::State& state) {
  RunE6(state, 1);
}
void BM_E10_E6_UniversityChain_Batch(::benchmark::State& state) {
  RunE6(state, RuleExecutor::kDefaultBatchSize);
}
void BM_E10_E6_UniversityChain_BatchScalar(::benchmark::State& state) {
  RunE6(state, RuleExecutor::kDefaultBatchSize, SimdMode::kOff);
}

// ------------------------------------------------------------- E8 config

GenealogyParams E8ParamsFor(const ::benchmark::State& state) {
  GenealogyParams params;
  params.num_families = static_cast<size_t>(state.range(0));
  params.generations = 7;
  params.children_per_person = 2;
  params.seed = 99;
  return params;
}

void RunE8(::benchmark::State& state, size_t batch_size,
           SimdMode simd = SimdMode::kAuto) {
  Result<Program> program = GenealogyProgram();
  Database edb = GenerateGenealogyDb(E8ParamsFor(state));
  size_t threads = static_cast<size_t>(state.range(1));
  VerifyModesAgreeOnce(state,
                       "e8/" + std::to_string(state.range(0)) + "/" +
                           std::to_string(threads),
                       *program, edb, threads);
  EvalStats stats;
  for (auto _ : state) {
    stats = EvaluateModeOrDie(state, *program, edb, batch_size, threads, simd);
  }
  PublishBatchStats(state, stats);
}

void BM_E10_E8_Genealogy_Tuple(::benchmark::State& state) {
  RunE8(state, 1);
}
void BM_E10_E8_Genealogy_Batch(::benchmark::State& state) {
  RunE8(state, RuleExecutor::kDefaultBatchSize);
}
void BM_E10_E8_Genealogy_BatchScalar(::benchmark::State& state) {
  RunE8(state, RuleExecutor::kDefaultBatchSize, SimdMode::kOff);
}

void E1E6Args(::benchmark::internal::Benchmark* b) {
  for (int students : {200, 400, 800, 1600, 3200}) b->Args({students});
  b->ArgNames({"students"});
  b->Unit(::benchmark::kMillisecond);
}

void E8Args(::benchmark::internal::Benchmark* b) {
  for (int threads : {1, 4}) b->Args({64, threads});
  b->ArgNames({"families", "threads"});
  b->Unit(::benchmark::kMillisecond);
}

BENCHMARK(BM_E10_E1_University_Tuple)->Apply(E1E6Args);
BENCHMARK(BM_E10_E1_University_Batch)->Apply(E1E6Args);
BENCHMARK(BM_E10_E1_University_BatchScalar)->Apply(E1E6Args);
BENCHMARK(BM_E10_E6_UniversityChain_Tuple)->Apply(E1E6Args);
BENCHMARK(BM_E10_E6_UniversityChain_Batch)->Apply(E1E6Args);
BENCHMARK(BM_E10_E6_UniversityChain_BatchScalar)->Apply(E1E6Args);
BENCHMARK(BM_E10_E8_Genealogy_Tuple)->Apply(E8Args);
BENCHMARK(BM_E10_E8_Genealogy_Batch)->Apply(E8Args);
BENCHMARK(BM_E10_E8_Genealogy_BatchScalar)->Apply(E8Args);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
