// E9: flat tuple storage microbenchmarks.
//
// Compares the arena-backed Relation (TupleStore + RowId-only indexes)
// against `LegacyRelation`, a faithful re-implementation of the storage
// layer this PR replaced: std::vector<Tuple> rows, an
// std::unordered_set<Tuple> dedup copy, and std::map-keyed indexes over
// materialized key tuples. Workloads are deterministic (SplitMix64) so
// before/after numbers are comparable across runs; see EXPERIMENTS.md
// E9 and BENCH_e9.json.

#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "benchmark/benchmark.h"

#include "ast/atom.h"
#include "bench_common.h"
#include "storage/column_view.h"
#include "storage/relation.h"
#include "storage/tuple.h"
#include "storage/vector_kernels.h"
#include "util/hash_util.h"

namespace semopt {
namespace {

PredicateId BenchPred(const char* name, uint32_t arity) {
  return PredicateId{InternSymbol(name), arity};
}

/// The pre-flat-storage relation design, kept here as the benchmark
/// baseline: every insert copies the tuple into both the row vector and
/// the dedup set, and every probe materializes a projected key tuple.
class LegacyRelation {
 public:
  explicit LegacyRelation(uint32_t arity) : arity_(arity) {}

  bool Insert(const Tuple& tuple) {
    if (!dedup_.insert(tuple).second) return false;
    size_t row = rows_.size();
    rows_.push_back(tuple);
    for (auto& [columns, index] : indexes_) {
      index[Project(tuple, columns)].push_back(row);
    }
    return true;
  }

  bool Contains(const Tuple& tuple) const { return dedup_.count(tuple) > 0; }

  size_t size() const { return rows_.size(); }
  const Tuple& row(size_t i) const { return rows_[i]; }

  void EnsureIndex(const std::vector<uint32_t>& columns) {
    if (indexes_.count(columns) > 0) return;
    auto& index = indexes_[columns];
    for (size_t i = 0; i < rows_.size(); ++i) {
      index[Project(rows_[i], columns)].push_back(i);
    }
  }

  const std::vector<size_t>& Probe(const std::vector<uint32_t>& columns,
                                   const Tuple& key) const {
    static const std::vector<size_t> kEmpty;
    auto it = indexes_.find(columns);
    if (it == indexes_.end()) return kEmpty;
    auto hit = it->second.find(key);
    return hit == it->second.end() ? kEmpty : hit->second;
  }

 private:
  struct TupleHasher {
    size_t operator()(const Tuple& t) const {
      return HashValues(t.data(), t.size());
    }
  };

  static Tuple Project(const Tuple& tuple,
                       const std::vector<uint32_t>& columns) {
    Tuple key;
    key.reserve(columns.size());
    for (uint32_t c : columns) key.push_back(tuple[c]);
    return key;
  }

  uint32_t arity_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHasher> dedup_;
  std::map<std::vector<uint32_t>,
           std::unordered_map<Tuple, std::vector<size_t>, TupleHasher>>
      indexes_;
};

/// Deterministic binary workload of `n` tuples. `dense == 0`: each
/// coordinate spans [0, 2n) — inserts are near-unique and probe keys
/// near-distinct (EDB load shape). `dense == 1`: the pair domain is
/// ~1.7n, so ~25% of inserts are duplicates and probe keys repeat —
/// the re-derivation churn semi-naive deltas see (E1 reports dups ≈
/// derived). Values are near-sequential small ints, like interned
/// SymbolIds.
std::vector<Tuple> MakeWorkload(int64_t n, int64_t dense) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  SplitMix64 rng(0xe9u);
  const uint64_t side =
      dense != 0 ? static_cast<uint64_t>(
                       std::sqrt(1.7 * static_cast<double>(n)) + 1.0)
                 : static_cast<uint64_t>(n) * 2;
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Tuple{Term::Int(static_cast<int64_t>(rng.Below(side))),
                         Term::Int(static_cast<int64_t>(rng.Below(side)))});
  }
  return rows;
}

void BM_FlatInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Tuple> rows = MakeWorkload(n, state.range(1));
  for (auto _ : state) {
    Relation rel(BenchPred("e9_flat_insert", 2));
    for (const Tuple& t : rows) benchmark::DoNotOptimize(rel.Insert(t));
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatInsert)->Args({100000, 0})
    ->Args({400000, 0})
    ->Args({100000, 1})
    ->Args({400000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_LegacyInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Tuple> rows = MakeWorkload(n, state.range(1));
  for (auto _ : state) {
    LegacyRelation rel(2);
    for (const Tuple& t : rows) benchmark::DoNotOptimize(rel.Insert(t));
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LegacyInsert)->Args({100000, 0})
    ->Args({400000, 0})
    ->Args({100000, 1})
    ->Args({400000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_FlatInsertIndexed(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Tuple> rows = MakeWorkload(n, state.range(1));
  for (auto _ : state) {
    Relation rel(BenchPred("e9_flat_insert_idx", 2));
    rel.EnsureIndex({0});
    for (const Tuple& t : rows) benchmark::DoNotOptimize(rel.Insert(t));
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatInsertIndexed)
    ->Args({100000, 0})
    ->Args({400000, 0})
    ->Args({100000, 1})
    ->Args({400000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_LegacyInsertIndexed(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Tuple> rows = MakeWorkload(n, state.range(1));
  for (auto _ : state) {
    LegacyRelation rel(2);
    rel.EnsureIndex({0});
    for (const Tuple& t : rows) benchmark::DoNotOptimize(rel.Insert(t));
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LegacyInsertIndexed)
    ->Args({100000, 0})
    ->Args({400000, 0})
    ->Args({100000, 1})
    ->Args({400000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_FlatProbe(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Tuple> rows = MakeWorkload(n, state.range(1));
  Relation rel(BenchPred("e9_flat_probe", 2));
  rel.EnsureIndex({0});
  for (const Tuple& t : rows) rel.Insert(t);
  for (auto _ : state) {
    size_t hits = 0;
    for (const Tuple& t : rows) {
      // The allocation-free path: key values read straight from `t`.
      hits += rel.Probe({0}, t.data()).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatProbe)->Args({100000, 0})
    ->Args({400000, 0})
    ->Args({100000, 1})
    ->Args({400000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_LegacyProbe(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Tuple> rows = MakeWorkload(n, state.range(1));
  LegacyRelation rel(2);
  rel.EnsureIndex({0});
  for (const Tuple& t : rows) rel.Insert(t);
  for (auto _ : state) {
    size_t hits = 0;
    for (const Tuple& t : rows) {
      Tuple key{t[0]};  // the per-probe allocation the flat path removed
      hits += rel.Probe({0}, key).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LegacyProbe)->Args({100000, 0})
    ->Args({400000, 0})
    ->Args({100000, 1})
    ->Args({400000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_FlatClearRefill(benchmark::State& state) {
  // Delta double-buffer pattern: Clear() keeps capacity, so refills are
  // allocation-free in steady state.
  const int64_t n = state.range(0);
  std::vector<Tuple> rows = MakeWorkload(n, state.range(1));
  Relation rel(BenchPred("e9_flat_refill", 2));
  for (const Tuple& t : rows) rel.Insert(t);
  for (auto _ : state) {
    rel.Clear();
    for (const Tuple& t : rows) benchmark::DoNotOptimize(rel.Insert(t));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatClearRefill)->Args({100000, 0})->Args({100000, 1})->Unit(benchmark::kMillisecond);

void BM_LegacyClearRefill(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Tuple> rows = MakeWorkload(n, state.range(1));
  for (auto _ : state) {
    // Legacy deltas were rebuilt from scratch each round.
    LegacyRelation rel(2);
    for (const Tuple& t : rows) benchmark::DoNotOptimize(rel.Insert(t));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LegacyClearRefill)->Args({100000, 0})->Args({100000, 1})->Unit(benchmark::kMillisecond);

void BM_FlatScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Tuple> rows = MakeWorkload(n, state.range(1));
  Relation rel(BenchPred("e9_flat_scan", 2));
  for (const Tuple& t : rows) rel.Insert(t);
  for (auto _ : state) {
    int64_t sum = 0;
    for (RowRef row : rel.rows()) sum += row[0].int_value();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * rel.size());
}
BENCHMARK(BM_FlatScan)->Args({400000, 0})->Args({400000, 1})->Unit(benchmark::kMillisecond);

void BM_LegacyScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Tuple> rows = MakeWorkload(n, state.range(1));
  LegacyRelation rel(2);
  for (const Tuple& t : rows) rel.Insert(t);
  for (auto _ : state) {
    int64_t sum = 0;
    for (size_t i = 0; i < rel.size(); ++i) sum += rel.row(i)[0].int_value();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * rel.size());
}
BENCHMARK(BM_LegacyScan)->Args({400000, 0})->Args({400000, 1})->Unit(benchmark::kMillisecond);

/// Constant-filter ablation over the columnar snapshot: simd:1 runs the
/// selection-vector SelectEq kernel over the cached ColumnView's u64
/// payload lane; simd:0 is the row-at-a-time Term-compare loop the
/// executor used before columnar scans. Hit sets are asserted equal
/// before timing.
void BM_ColumnarSelect(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool simd = state.range(1) != 0;
  std::vector<Tuple> rows = MakeWorkload(n, /*dense=*/1);
  Relation rel(BenchPred("e9_columnar_select", 2));
  for (const Tuple& t : rows) rel.Insert(t);
  std::shared_ptr<const ColumnView> view = rel.EnsureColumns();
  const uint32_t end = static_cast<uint32_t>(view->rows());
  const Value needle = rows[static_cast<size_t>(n) / 2][0];
  {
    std::vector<uint32_t> vec_sel, row_sel;
    view->SelectEq(0, needle, 0, end, &vec_sel);
    for (uint32_t i = 0; i < end; ++i) {
      if (view->value(i, 0) == needle) row_sel.push_back(i);
    }
    if (vec_sel != row_sel) {
      state.SkipWithError("columnar and row-loop hit sets disagree");
      return;
    }
  }
  std::vector<uint32_t> sel;
  for (auto _ : state) {
    sel.clear();
    if (simd) {
      view->SelectEq(0, needle, 0, end, &sel);
    } else {
      for (uint32_t i = 0; i < end; ++i) {
        if (view->value(i, 0) == needle) sel.push_back(i);
      }
    }
    benchmark::DoNotOptimize(sel.data());
  }
  state.SetItemsProcessed(state.iterations() * end);
}
BENCHMARK(BM_ColumnarSelect)
    ->Args({400000, 0})
    ->Args({400000, 1})
    ->ArgNames({"n", "simd"})
    ->Unit(benchmark::kMillisecond);

/// Row-hash ablation: the 4-chain interleaved HashValuesBatch kernel
/// against the sequential per-row reference, over the same flat
/// value buffer. Outputs are bit-identical by contract (and checked).
void BM_BatchHash(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool simd = state.range(1) != 0;
  std::vector<Tuple> rows = MakeWorkload(n, /*dense=*/0);
  std::vector<Value> flat;
  flat.reserve(static_cast<size_t>(n) * 2);
  for (const Tuple& t : rows) {
    flat.push_back(t[0]);
    flat.push_back(t[1]);
  }
  std::vector<size_t> out(static_cast<size_t>(n)), ref(static_cast<size_t>(n));
  HashValuesBatch(flat.data(), 2, out.size(), out.data());
  HashValuesBatchScalar(flat.data(), 2, ref.size(), ref.data());
  if (out != ref) {
    state.SkipWithError("batched and scalar hashes disagree");
    return;
  }
  for (auto _ : state) {
    if (simd) {
      HashValuesBatch(flat.data(), 2, out.size(), out.data());
    } else {
      HashValuesBatchScalar(flat.data(), 2, out.size(), out.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BatchHash)
    ->Args({400000, 0})
    ->Args({400000, 1})
    ->ArgNames({"n", "simd"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semopt

SEMOPT_BENCH_MAIN();
