#ifndef SEMOPT_IO_FACT_IO_H_
#define SEMOPT_IO_FACT_IO_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// Loads facts written in program syntax ("edge(a, b)." one or more per
/// line, '%' comments allowed) into `db`. Rules with non-empty bodies
/// are rejected. Returns the number of facts added.
Result<size_t> LoadFacts(std::istream& in, Database* db);
Result<size_t> LoadFactsFile(const std::string& path, Database* db);

/// Loads tab-separated values into relation `predicate`: one tuple per
/// line, columns split on tabs; a column parsing as a decimal integer
/// becomes an int value, anything else a symbol. Empty lines and lines
/// starting with '#' are skipped. All rows must have the same arity.
/// Returns the number of tuples added.
Result<size_t> LoadTsv(std::istream& in, std::string_view predicate,
                       Database* db);
Result<size_t> LoadTsvFile(const std::string& path,
                           std::string_view predicate, Database* db);

/// Writes `relation` as program-syntax facts, one per line.
void SaveFacts(std::ostream& out, const Relation& relation);

}  // namespace semopt

#endif  // SEMOPT_IO_FACT_IO_H_
