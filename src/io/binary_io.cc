#include "io/binary_io.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iterator>
#include <ostream>
#include <unordered_map>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define SEMOPT_BINARY_IO_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "storage/vector_kernels.h"
#include "util/interner.h"
#include "util/string_util.h"

namespace semopt {

namespace {

constexpr char kMagic[8] = {'S', 'E', 'M', 'O', 'P', 'T', 'D', 'B'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kEndianMarker = 0x01020304u;
constexpr size_t kHeaderBytes = 40;

// Column kind modes. Uniform columns carry their kind here and omit the
// per-row lane entirely (the common case: a column is all ints or all
// symbols); mixed columns are followed by a row-count kind-byte lane.
constexpr uint8_t kModeAllInts = 0;
constexpr uint8_t kModeAllSyms = 1;
constexpr uint8_t kModeMixed = 2;

// Rows are re-rowed and hashed in blocks this size: big enough to
// amortize the per-block setup, small enough that the transposed block
// plus its hash lane stay cache-resident.
constexpr size_t kLoadBlockRows = 4096;

void PutU32(std::ostream& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.write(buf, 4);
}

void PutU64(std::ostream& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

/// Bounds-checked forward reader over the raw image. Every accessor
/// fails closed: once `ok` drops, further reads return zero and the
/// caller surfaces one truncation error.
struct Reader {
  const char* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  bool Need(size_t n) {
    if (!ok || size - pos < n || pos > size) {
      ok = false;
      return false;
    }
    return true;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v;
    std::memcpy(&v, data + pos, 4);
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v;
    std::memcpy(&v, data + pos, 8);
    pos += 8;
    return v;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data[pos++]);
  }
  /// A raw span of `n` bytes, or nullptr past the end.
  const char* Bytes(size_t n) {
    if (!Need(n)) return nullptr;
    const char* p = data + pos;
    pos += n;
    return p;
  }
};

/// Maps process-global symbol ids to dense file-local ids, interning
/// order = first-use order during the relation walk.
struct SymbolTableBuilder {
  std::unordered_map<SymbolId, uint32_t> remap;
  std::vector<SymbolId> order;

  uint32_t Local(SymbolId global) {
    auto [it, inserted] =
        remap.emplace(global, static_cast<uint32_t>(order.size()));
    if (inserted) order.push_back(global);
    return it->second;
  }
};

void RecordLoadMetrics(const BulkLoadStats& stats) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("io.bulk_load.rows")
      .Add(static_cast<uint64_t>(stats.rows));
  registry.GetCounter("io.bulk_load.bytes")
      .Add(static_cast<uint64_t>(stats.bytes));
  registry.GetCounter("io.bulk_load.us")
      .Add(static_cast<uint64_t>(stats.micros));
}

}  // namespace

Result<size_t> SaveBinary(std::ostream& out, const Database& db) {
  const std::vector<PredicateId> preds = db.Predicates();

  // Pass 1: collect every symbol the file needs (predicate names and
  // symbolic constants) so the table can precede the relation bodies.
  SymbolTableBuilder symbols;
  for (const PredicateId& pred : preds) {
    symbols.Local(pred.name);
    const Relation* rel = db.Find(pred);
    for (RowRef row : rel->rows()) {
      for (const Value& v : row) {
        if (v.kind() == TermKind::kSymConst) {
          symbols.Local(v.symbol());
        } else if (v.kind() == TermKind::kVariable) {
          return Status::InvalidArgument(
              StrCat("relation ", pred.ToString(),
                     " holds a variable; snapshots require ground facts"));
        }
      }
    }
  }

  const std::ostream::pos_type start = out.tellp();
  out.write(kMagic, sizeof(kMagic));
  PutU32(out, kVersion);
  PutU32(out, kEndianMarker);
  PutU32(out, 0);  // flags
  PutU32(out, 0);  // reserved
  PutU64(out, preds.size());
  PutU64(out, symbols.order.size());

  for (SymbolId global : symbols.order) {
    const std::string& s = SymbolName(global);
    PutU32(out, static_cast<uint32_t>(s.size()));
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  std::vector<uint64_t> payloads;
  std::vector<uint8_t> kind_lane;
  for (const PredicateId& pred : preds) {
    const Relation* rel = db.Find(pred);
    const size_t rows = rel->size();
    const uint32_t arity = pred.arity;
    PutU32(out, symbols.Local(pred.name));
    PutU32(out, arity);
    PutU64(out, rows);
    for (uint32_t c = 0; c < arity; ++c) {
      // Project column c (column-major on disk). Symbol payloads are
      // rewritten to file-local ids; int payloads are the raw bits.
      payloads.clear();
      payloads.reserve(rows);
      kind_lane.clear();
      bool any_int = false;
      bool any_sym = false;
      for (size_t r = 0; r < rows; ++r) {
        const Value& v = rel->row(r)[c];
        if (v.kind() == TermKind::kIntConst) {
          any_int = true;
          payloads.push_back(static_cast<uint64_t>(v.int_value()));
          kind_lane.push_back(kModeAllInts);
        } else {
          any_sym = true;
          payloads.push_back(symbols.Local(v.symbol()));
          kind_lane.push_back(kModeAllSyms);
        }
      }
      uint8_t mode;
      if (any_int && any_sym) {
        mode = kModeMixed;
      } else if (any_sym) {
        mode = kModeAllSyms;
      } else {
        mode = kModeAllInts;  // empty columns default to ints
      }
      out.put(static_cast<char>(mode));
      if (mode == kModeMixed) {
        out.write(reinterpret_cast<const char*>(kind_lane.data()),
                  static_cast<std::streamsize>(kind_lane.size()));
      }
      out.write(reinterpret_cast<const char*>(payloads.data()),
                static_cast<std::streamsize>(payloads.size() * 8));
    }
  }

  if (!out) return Status::Internal("binary snapshot write failed");
  return static_cast<size_t>(out.tellp() - start);
}

Result<size_t> SaveBinaryFile(const std::string& path, const Database& db) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound(StrCat("cannot open ", path));
  SEMOPT_ASSIGN_OR_RETURN(size_t bytes, SaveBinary(out, db));
  out.flush();
  if (!out) return Status::Internal(StrCat("write to ", path, " failed"));
  return bytes;
}

void ColumnarSnapshotWriter::BeginRelation(std::string_view pred,
                                           uint32_t arity) {
  RelationBlock block;
  block.name = InternSymbol(pred);
  block.arity = arity;
  block.columns.resize(arity);
  blocks_.push_back(std::move(block));
}

void ColumnarSnapshotWriter::Append(const Term* vals) {
  assert(!blocks_.empty() && "BeginRelation before Append");
  RelationBlock& block = blocks_.back();
  for (uint32_t c = 0; c < block.arity; ++c) {
    const Term& v = vals[c];
    assert(v.IsConstant() && "snapshot rows must be ground");
    Column& col = block.columns[c];
    col.kinds.push_back(static_cast<uint8_t>(v.kind()));
    col.payload.push_back(v.kind() == TermKind::kIntConst
                              ? static_cast<uint64_t>(v.int_value())
                              : static_cast<uint64_t>(v.symbol()));
  }
  ++block.rows;
}

void ColumnarSnapshotWriter::Append(std::initializer_list<Term> vals) {
  assert(!blocks_.empty() &&
         vals.size() == blocks_.back().arity && "row arity mismatch");
  Append(vals.begin());
}

size_t ColumnarSnapshotWriter::rows() const {
  size_t total = 0;
  for (const RelationBlock& block : blocks_) total += block.rows;
  return total;
}

Result<size_t> ColumnarSnapshotWriter::Write(std::ostream& out) const {
  // Pass 1: the file-local symbol table (predicate names first, then
  // symbolic payloads in column order — the same first-use ordering
  // SaveBinary derives from its relation walk).
  SymbolTableBuilder symbols;
  for (const RelationBlock& block : blocks_) {
    symbols.Local(block.name);
    for (const Column& col : block.columns) {
      for (size_t r = 0; r < col.kinds.size(); ++r) {
        if (col.kinds[r] == static_cast<uint8_t>(TermKind::kSymConst)) {
          symbols.Local(static_cast<SymbolId>(col.payload[r]));
        }
      }
    }
  }

  const std::ostream::pos_type start = out.tellp();
  out.write(kMagic, sizeof(kMagic));
  PutU32(out, kVersion);
  PutU32(out, kEndianMarker);
  PutU32(out, 0);  // flags
  PutU32(out, 0);  // reserved
  PutU64(out, blocks_.size());
  PutU64(out, symbols.order.size());
  for (SymbolId global : symbols.order) {
    const std::string& s = SymbolName(global);
    PutU32(out, static_cast<uint32_t>(s.size()));
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  std::vector<uint64_t> payloads;
  for (const RelationBlock& block : blocks_) {
    PutU32(out, symbols.Local(block.name));
    PutU32(out, block.arity);
    PutU64(out, block.rows);
    for (const Column& col : block.columns) {
      bool any_int = false;
      bool any_sym = false;
      for (uint8_t k : col.kinds) {
        if (k == static_cast<uint8_t>(TermKind::kIntConst)) {
          any_int = true;
        } else {
          any_sym = true;
        }
      }
      uint8_t mode;
      if (any_int && any_sym) {
        mode = kModeMixed;
      } else if (any_sym) {
        mode = kModeAllSyms;
      } else {
        mode = kModeAllInts;  // empty columns default to ints
      }
      out.put(static_cast<char>(mode));
      if (mode == kModeMixed) {
        // The on-disk kind lane uses the mode encoding, not TermKind.
        std::vector<uint8_t> lane(col.kinds.size());
        for (size_t r = 0; r < col.kinds.size(); ++r) {
          lane[r] = col.kinds[r] == static_cast<uint8_t>(TermKind::kIntConst)
                        ? kModeAllInts
                        : kModeAllSyms;
        }
        out.write(reinterpret_cast<const char*>(lane.data()),
                  static_cast<std::streamsize>(lane.size()));
      }
      payloads.clear();
      payloads.reserve(col.payload.size());
      for (size_t r = 0; r < col.payload.size(); ++r) {
        payloads.push_back(
            col.kinds[r] == static_cast<uint8_t>(TermKind::kSymConst)
                ? symbols.Local(static_cast<SymbolId>(col.payload[r]))
                : col.payload[r]);
      }
      out.write(reinterpret_cast<const char*>(payloads.data()),
                static_cast<std::streamsize>(payloads.size() * 8));
    }
  }

  if (!out) return Status::Internal("binary snapshot write failed");
  return static_cast<size_t>(out.tellp() - start);
}

Result<size_t> ColumnarSnapshotWriter::WriteFile(
    const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound(StrCat("cannot open ", path));
  SEMOPT_ASSIGN_OR_RETURN(size_t bytes, Write(out));
  out.flush();
  if (!out) return Status::Internal(StrCat("write to ", path, " failed"));
  return bytes;
}

Result<BulkLoadStats> LoadBinary(const char* data, size_t size,
                                 Database* db) {
  const auto t0 = std::chrono::steady_clock::now();
  Reader in{data, size};

  const char* magic = in.Bytes(sizeof(kMagic));
  if (magic == nullptr || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "not a semopt binary snapshot (bad magic)");
  }
  const uint32_t version = in.U32();
  if (in.ok && version != kVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported snapshot version ", version, " (expected ",
               kVersion, ")"));
  }
  const uint32_t endian = in.U32();
  if (in.ok && endian != kEndianMarker) {
    return Status::InvalidArgument(
        "snapshot byte order does not match this machine");
  }
  in.U32();  // flags
  in.U32();  // reserved
  const uint64_t relation_count = in.U64();
  const uint64_t symbol_count = in.U64();
  if (!in.ok) {
    return Status::InvalidArgument("truncated snapshot header");
  }

  // Re-intern the file-local symbol table; remap[file_id] is the
  // process-global id. Each entry costs at least its 4-byte length
  // prefix, so a count the remaining bytes cannot hold is corruption —
  // reject it before reserving (no OOM on a hostile header).
  if (symbol_count > (size - in.pos) / 4) {
    return Status::InvalidArgument("truncated snapshot symbol table");
  }
  std::vector<SymbolId> remap;
  remap.reserve(symbol_count);
  for (uint64_t s = 0; s < symbol_count; ++s) {
    const uint32_t len = in.U32();
    const char* bytes = in.Bytes(len);
    if (bytes == nullptr) {
      return Status::InvalidArgument("truncated snapshot symbol table");
    }
    remap.push_back(InternSymbol(std::string_view(bytes, len)));
  }

  BulkLoadStats stats;
  std::vector<Value> block;
  std::vector<size_t> hashes;
  for (uint64_t rel_i = 0; rel_i < relation_count; ++rel_i) {
    const uint32_t name_local = in.U32();
    const uint32_t arity = in.U32();
    const uint64_t rows = in.U64();
    if (!in.ok) return Status::InvalidArgument("truncated relation header");
    if (name_local >= remap.size()) {
      return Status::InvalidArgument(
          StrCat("relation name symbol id ", name_local, " out of range"));
    }
    // Reject sizes the remaining bytes cannot possibly hold before
    // reserving anything (a corrupt header must not OOM the loader).
    if (arity > (1u << 16)) {
      return Status::InvalidArgument(StrCat("implausible arity ", arity));
    }
    if (arity > 0 &&
        rows > (size - in.pos) / (static_cast<uint64_t>(arity) * 8)) {
      return Status::InvalidArgument("truncated relation payload");
    }

    Relation& rel =
        db->GetOrCreate(PredicateId{remap[name_local], arity});
    rel.Reserve(rel.size() + rows);

    if (arity == 0) {
      // Nullary facts: dedup collapses them to at most one row.
      for (uint64_t r = 0; r < rows; ++r) {
        Value none{Term::Int(0)};
        rel.Insert(RowRef(&none, 0));
      }
      stats.rows += rows;
      ++stats.relations;
      continue;
    }

    // Column descriptors point straight into the image — columns are
    // only walked block-wise below, never copied whole.
    struct ColumnDesc {
      uint8_t mode = kModeAllInts;
      const uint8_t* kinds = nullptr;  // mixed only
      const char* payloads = nullptr;  // unaligned u64s
    };
    std::vector<ColumnDesc> cols(arity);
    for (uint32_t c = 0; c < arity; ++c) {
      ColumnDesc& col = cols[c];
      col.mode = in.U8();
      if (in.ok && col.mode > kModeMixed) {
        return Status::InvalidArgument(
            StrCat("bad column kind mode ", col.mode));
      }
      if (col.mode == kModeMixed) {
        col.kinds = reinterpret_cast<const uint8_t*>(in.Bytes(rows));
      }
      col.payloads = in.Bytes(rows * 8);
      if (!in.ok) {
        return Status::InvalidArgument("truncated relation payload");
      }
    }

    // Re-row in blocks: transpose the column slices into a row-major
    // block, batch-hash it, then insert with dedup-slot prefetch.
    block.resize(kLoadBlockRows * arity, Term::Int(0));
    hashes.resize(kLoadBlockRows);
    for (uint64_t base = 0; base < rows; base += kLoadBlockRows) {
      const size_t m =
          static_cast<size_t>(std::min<uint64_t>(kLoadBlockRows, rows - base));
      for (uint32_t c = 0; c < arity; ++c) {
        const ColumnDesc& col = cols[c];
        const char* src = col.payloads + base * 8;
        for (size_t r = 0; r < m; ++r) {
          uint64_t payload;
          std::memcpy(&payload, src + r * 8, 8);
          const bool is_sym =
              col.mode == kModeAllSyms ||
              (col.mode == kModeMixed && col.kinds[base + r] != kModeAllInts);
          if (is_sym) {
            if (payload >= remap.size()) {
              return Status::InvalidArgument(
                  StrCat("symbol id ", payload, " out of range"));
            }
            block[r * arity + c] = Term::Sym(remap[payload]);
          } else {
            block[r * arity + c] =
                Term::Int(static_cast<int64_t>(payload));
          }
        }
      }
      HashValuesBatch(block.data(), arity, m, hashes.data());
      for (size_t r = 0; r < m; ++r) rel.PrefetchInsert(hashes[r]);
      for (size_t r = 0; r < m; ++r) {
        rel.Insert(RowRef(block.data() + r * arity, arity), hashes[r]);
      }
    }
    stats.rows += rows;
    ++stats.relations;
  }

  stats.bytes = in.pos;
  stats.micros = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  RecordLoadMetrics(stats);
  return stats;
}

Result<BulkLoadStats> LoadBinaryFile(const std::string& path, Database* db) {
#ifdef SEMOPT_BINARY_IO_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        // The loader streams the image front to back.
        ::madvise(map, static_cast<size_t>(st.st_size), MADV_SEQUENTIAL);
        Result<BulkLoadStats> result = LoadBinary(
            static_cast<const char*>(map),
            static_cast<size_t>(st.st_size), db);
        ::munmap(map, static_cast<size_t>(st.st_size));
        ::close(fd);
        return result;
      }
    }
    ::close(fd);
    // Fall through to the buffered read (empty file, fstat or mmap
    // failure — e.g. a special file).
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::vector<char> buffer((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  return LoadBinary(buffer.data(), buffer.size(), db);
}

}  // namespace semopt
