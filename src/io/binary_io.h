#ifndef SEMOPT_IO_BINARY_IO_H_
#define SEMOPT_IO_BINARY_IO_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// Versioned binary relation-snapshot format ("semopt binary v1"):
/// a fixed little-endian header, a file-local interned symbol table,
/// then each relation as packed column-major payload lanes with a
/// per-column kind byte (dictionary-implied kind when the column is
/// uniform, an explicit per-row kind lane when mixed — mirroring
/// ColumnView). Symbols are written as *file-local* dense ids, so a
/// snapshot is self-contained: the loader re-interns the table into
/// the process-global interner and remaps ids, making snapshots
/// portable across processes whose interners differ.
///
/// Layout (all integers little-endian):
///   [0..8)   magic "SEMOPTDB"
///   [8..12)  u32 format version (currently 1)
///   [12..16) u32 endianness marker 0x01020304 (as-written byte order)
///   [16..20) u32 flags (0; reserved)
///   [20..24) u32 reserved (0)
///   [24..32) u64 relation count
///   [32..40) u64 symbol count
///   symbol table: per symbol, u32 byte length + raw bytes
///   per relation:
///     u32 file-local symbol id of the predicate name, u32 arity,
///     u64 row count, then per column: u8 kind mode (0 = all ints,
///     1 = all symbols, 2 = mixed — followed by row-count kind bytes),
///     then row-count u64 payloads (int64 bits for ints, file-local
///     symbol ids for symbols).
///
/// The bulk loader streams columns straight out of the (mmapped) file
/// and re-rows them in cache-sized blocks, batch-hashing each block
/// (HashValuesBatch) with dedup-slot prefetch ahead of the inserts —
/// this is what makes a 10M-fact load IO-bound instead of parse-bound.

/// Totals of one bulk load, also folded into the global metrics
/// registry as io.bulk_load.{rows,bytes,us} counters.
struct BulkLoadStats {
  size_t relations = 0;
  size_t rows = 0;       // rows read from the file (pre-dedup)
  size_t bytes = 0;      // file bytes consumed
  int64_t micros = 0;    // wall time of the load
};

/// Writes every relation of `db` as a v1 snapshot. Returns bytes
/// written. Fails if a stored value is a variable (facts are ground by
/// construction, so this indicates corruption) or on stream errors.
Result<size_t> SaveBinary(std::ostream& out, const Database& db);
Result<size_t> SaveBinaryFile(const std::string& path, const Database& db);

/// Builds a v1 snapshot column block by column block, without ever
/// materializing a Database: no tuple hashing, no dedup probing, no
/// index construction — appended rows land directly in per-column
/// payload/kind lanes, and Write emits the same byte format SaveBinary
/// produces (LoadBinary cannot tell them apart). This is the
/// generator→loader fast path: a workload generator streams its facts
/// through this writer and the bulk loader's batched-hash ingest does
/// the set-building once, at load time, instead of paying it twice.
///
/// Rows are taken as given — a generator emitting duplicates gets them
/// deduped by the loader, not the writer.
class ColumnarSnapshotWriter {
 public:
  /// Starts a new relation; subsequent Append calls add its rows.
  /// Relations are written in Begin order. Beginning the same
  /// predicate twice writes two blocks (the loader merges them).
  void BeginRelation(std::string_view pred, uint32_t arity);

  /// Appends one row — `arity` ground terms — to the current relation.
  /// Requires a BeginRelation first and constant terms (asserted).
  void Append(const Term* vals);
  void Append(std::initializer_list<Term> vals);

  /// Total rows appended across all relations.
  size_t rows() const;

  /// Emits the snapshot. The writer stays intact (Write is const) so a
  /// snapshot can be written to several destinations.
  Result<size_t> Write(std::ostream& out) const;
  Result<size_t> WriteFile(const std::string& path) const;

 private:
  struct Column {
    std::vector<uint64_t> payload;  // int64 bits or global SymbolId
    std::vector<uint8_t> kinds;     // TermKind per row
  };
  struct RelationBlock {
    SymbolId name;
    uint32_t arity;
    size_t rows = 0;
    std::vector<Column> columns;
  };
  std::vector<RelationBlock> blocks_;
};

/// Loads a v1 snapshot from an in-memory image (the mmap fast path and
/// the unit tests' entry point). Every read is bounds-checked: a
/// truncated or corrupt image yields an error without touching `db`
/// beyond the relations already loaded.
Result<BulkLoadStats> LoadBinary(const char* data, size_t size,
                                 Database* db);

/// Loads a snapshot file, preferring mmap (falling back to a buffered
/// read where mmap is unavailable).
Result<BulkLoadStats> LoadBinaryFile(const std::string& path, Database* db);

}  // namespace semopt

#endif  // SEMOPT_IO_BINARY_IO_H_
