#include "io/fact_io.h"

#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>

#include "parser/parser.h"
#include "util/string_util.h"

namespace semopt {

Result<size_t> LoadFacts(std::istream& in, Database* db) {
  std::stringstream buffer;
  buffer << in.rdbuf();
  SEMOPT_ASSIGN_OR_RETURN(Program parsed, ParseProgram(buffer.str()));
  if (!parsed.constraints().empty()) {
    return Status::InvalidArgument(
        "fact files may not contain integrity constraints");
  }
  size_t added = 0;
  for (const Rule& rule : parsed.rules()) {
    if (!rule.IsFact()) {
      return Status::InvalidArgument(
          StrCat("fact files may not contain rules: ", rule.ToString()));
    }
    SEMOPT_RETURN_IF_ERROR(db->AddFact(rule.head()));
    ++added;
  }
  return added;
}

Result<size_t> LoadFactsFile(const std::string& path, Database* db) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot open ", path));
  }
  return LoadFacts(in, db);
}

namespace {

/// Parses `field` as an int when it is all digits (with optional sign),
/// otherwise interns it as a symbol.
Value ParseTsvValue(const std::string& field) {
  if (field.empty()) return Term::Sym("");
  size_t start = (field[0] == '-' && field.size() > 1) ? 1 : 0;
  for (size_t i = start; i < field.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(field[i]))) {
      return Term::Sym(field);
    }
  }
  return Term::Int(std::stoll(field));
}

}  // namespace

Result<size_t> LoadTsv(std::istream& in, std::string_view predicate,
                       Database* db) {
  size_t added = 0;
  size_t arity = 0;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    Tuple tuple;
    std::stringstream fields(line);
    std::string field;
    while (std::getline(fields, field, '\t')) {
      tuple.push_back(ParseTsvValue(field));
    }
    if (tuple.empty()) continue;
    if (arity == 0) {
      arity = tuple.size();
    } else if (tuple.size() != arity) {
      return Status::InvalidArgument(
          StrCat("line ", line_number, ": expected ", arity,
                 " columns, found ", tuple.size()));
    }
    db->AddTuple(predicate, std::move(tuple));
    ++added;
  }
  return added;
}

Result<size_t> LoadTsvFile(const std::string& path,
                           std::string_view predicate, Database* db) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot open ", path));
  }
  return LoadTsv(in, predicate, db);
}

void SaveFacts(std::ostream& out, const Relation& relation) {
  for (RowRef row : relation.rows()) {
    out << SymbolName(relation.pred().name);
    if (!row.empty()) {
      out << "(" << JoinToString(row, ", ") << ")";
    }
    out << ".\n";
  }
}

}  // namespace semopt
