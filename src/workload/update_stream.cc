#include "workload/update_stream.h"

#include "io/binary_io.h"
#include "parser/parser.h"

namespace semopt {

Result<Program> UpdateStreamProgram() {
  return ParseProgram(R"(
    r_seed:  reach(Y) :- src(X), e(X, Y).
    r_step:  reach(Y) :- reach(X), e(X, Y).
    r_link:  linked(X, Y) :- e(X, Y), src(X).
    r_dark:  dark(X) :- node(X), not reach(X).
  )");
}

Result<size_t> WriteUpdateStreamSnapshot(const std::string& path,
                                         const UpdateStreamParams& params) {
  SplitMix64 rng(params.seed * 0x9e3779b9ULL + 17);
  ColumnarSnapshotWriter writer;

  writer.BeginRelation("e", 2);
  for (size_t i = 0; i < params.num_edges; ++i) {
    const int64_t u = static_cast<int64_t>(rng.Below(params.num_nodes));
    const int64_t v = static_cast<int64_t>(rng.Below(params.num_nodes));
    writer.Append({Term::Int(u), Term::Int(v)});
  }

  writer.BeginRelation("src", 1);
  for (size_t s = 0; s < params.num_sources; ++s) {
    writer.Append({Term::Int(static_cast<int64_t>(s))});
  }

  writer.BeginRelation("node", 1);
  for (size_t n = 0; n < params.num_nodes; ++n) {
    writer.Append({Term::Int(static_cast<int64_t>(n))});
  }

  return writer.WriteFile(path);
}

Atom UpdateStreamEdge(const UpdateStreamParams& params, SplitMix64& rng) {
  // One update in four starts at a source, so a steady slice of the
  // churn lands inside the maintained reach cone; the rest exercises
  // the counting strata and the no-op fast path.
  const uint64_t u = rng.Below(4) == 0 ? rng.Below(params.num_sources)
                                       : rng.Below(params.num_nodes);
  return Atom("e",
              {Term::Int(static_cast<int64_t>(u)),
               Term::Int(static_cast<int64_t>(rng.Below(params.num_nodes)))});
}

}  // namespace semopt
