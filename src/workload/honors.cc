#include "workload/honors.h"

#include "parser/parser.h"
#include "util/hash_util.h"
#include "util/string_util.h"

namespace semopt {

Result<Program> HonorsProgram() {
  return ParseProgram(R"(
    r0: honors(Stud) :- transcript(Stud, Major, Cred, Gpa),
                        Cred >= 30, Gpa >= 38.
    r1: honors(Stud) :- transcript(Stud, Major, Cred, Gpa),
                        Gpa >= 38, exceptional(Stud).
    r2: exceptional(Stud) :- publication(Stud, P), appears(P, Jl),
                             reputed(Jl).
    r3: honors(Stud) :- graduated(Stud, College), topten(College).
  )");
}

Database GenerateHonorsDb(const HonorsParams& params) {
  SplitMix64 rng(params.seed);
  Database db;

  auto student = [](size_t i) { return Term::Sym(StrCat("stud", i)); };
  auto college = [](size_t i) { return Term::Sym(StrCat("college", i)); };
  auto journal = [](size_t i) { return Term::Sym(StrCat("journal", i)); };
  auto paper = [](size_t i) { return Term::Sym(StrCat("paper", i)); };

  static const char* kMajors[] = {"cs", "math", "physics", "history"};

  for (size_t j = 0; j < params.num_journals; ++j) {
    if (rng.NextDouble() < params.reputed_fraction) {
      db.AddTuple("reputed", {journal(j)});
    }
  }
  for (size_t c = 0; c < params.num_colleges; ++c) {
    if (rng.NextDouble() < params.topten_fraction) {
      db.AddTuple("topten", {college(c)});
    }
  }

  size_t next_paper = 0;
  for (size_t i = 0; i < params.num_students; ++i) {
    int64_t credits = 10 + static_cast<int64_t>(rng.Below(40));
    int64_t gpa = 20 + static_cast<int64_t>(rng.Below(21));  // 2.0 - 4.0
    db.AddTuple("transcript",
                {student(i), Term::Sym(kMajors[rng.Below(4)]),
                 Term::Int(credits), Term::Int(gpa)});
    db.AddTuple("graduated",
                {student(i), college(rng.Below(params.num_colleges))});
    db.AddTuple("hobby", {student(i), Term::Sym(rng.NextDouble() < 0.2
                                                    ? "chess"
                                                    : "soccer")});
    if (rng.NextDouble() < params.publication_fraction) {
      Term p = paper(next_paper++);
      db.AddTuple("publication", {student(i), p});
      db.AddTuple("appears", {p, journal(rng.Below(params.num_journals))});
    }
  }
  return db;
}

}  // namespace semopt
