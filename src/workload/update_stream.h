#ifndef SEMOPT_WORKLOAD_UPDATE_STREAM_H_
#define SEMOPT_WORKLOAD_UPDATE_STREAM_H_

#include <cstdint>
#include <string>

#include "ast/program.h"
#include "util/hash_util.h"
#include "util/result.h"

namespace semopt {

/// Parameters of the update-stream workload (bench E14): a random
/// directed graph over integer nodes, a handful of source nodes, and a
/// program whose IDB is maintained while edges churn.
struct UpdateStreamParams {
  size_t num_nodes = 1000;
  size_t num_edges = 5000;
  /// Number of reachability sources (nodes 0 .. num_sources-1).
  size_t num_sources = 4;
  uint64_t seed = 1;
};

/// The maintained program — one stratum of each maintenance regime:
///   reach(Y)  :- src(X), e(X, Y).          (recursive seed)
///   reach(Y)  :- reach(X), e(X, Y).        (DRed stratum)
///   linked(X, Y) :- e(X, Y), src(X).       (counting stratum)
///   dark(X)   :- node(X), not reach(X).    (negation above recursion)
/// `reach` is bounded by num_nodes, so the IDB stays small relative to
/// a large edge set — deletions actually sever paths instead of
/// drowning in alternative derivations.
Result<Program> UpdateStreamProgram();

/// Writes the base EDB — e/2 (random edges), src/1, node/1 — straight
/// to a v1 binary snapshot at `path` through the columnar writer: the
/// generator never materializes a Database, so building a multi-million
/// fact base costs column appends plus one write. Returns bytes
/// written. Edges may repeat; the bulk loader dedups on ingest.
Result<size_t> WriteUpdateStreamSnapshot(const std::string& path,
                                         const UpdateStreamParams& params);

/// One random update edge: one in four starts at a source (so updates
/// keep touching the maintained reach cone), the rest are uniform.
/// The E14 bench keeps the graph subcritical (num_edges well below
/// num_nodes), so a source-adjacent deletion severs a small bounded
/// cone — the O(|Δ|) regime incremental maintenance is built for —
/// rather than cascading through a giant component.
Atom UpdateStreamEdge(const UpdateStreamParams& params, SplitMix64& rng);

}  // namespace semopt

#endif  // SEMOPT_WORKLOAD_UPDATE_STREAM_H_
