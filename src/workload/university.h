#ifndef SEMOPT_WORKLOAD_UNIVERSITY_H_
#define SEMOPT_WORKLOAD_UNIVERSITY_H_

#include <cstdint>

#include "ast/program.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// Parameters of the university workload (paper Examples 3.2 / 4.2).
struct UniversityParams {
  size_t num_professors = 100;
  size_t num_students = 200;
  size_t num_fields = 10;
  size_t num_theses_per_student = 1;
  /// Fields per thesis (interdisciplinary theses raise the fan-out of
  /// the expert/field join the optimizer can eliminate).
  size_t fields_per_thesis = 1;
  /// Expected number of works_with collaborators per professor.
  double collaborations_per_professor = 3.0;
  /// Professors are partitioned into this many departments;
  /// collaboration edges stay within a department, so bound queries
  /// touch only one partition (exercises magic sets, bench E6).
  size_t num_departments = 1;
  /// Fraction of students that are doctoral.
  double doctoral_fraction = 0.3;
  /// Fraction of payments above the 10,000 threshold of ic2 (all such
  /// payments go to doctoral students so the IC holds).
  double high_payment_fraction = 0.4;
  uint64_t seed = 1;
};

/// The program of Examples 3.2 / 4.2: the recursive `eval` predicate,
/// the `eval_support` query rule, and the two ICs
///   ic1: works_with(P2,P1), expert(P1,F1) -> expert(P2,F1).
///   ic2: pays(M,G,S,T), M > 10000 -> doctoral(S).
Result<Program> UniversityProgram();

/// Generates an EDB satisfying the ICs by construction: `expert` is
/// closed under works_with propagation (ic1), and every payment above
/// 10,000 goes to a doctoral student (ic2).
Database GenerateUniversityDb(const UniversityParams& params);

}  // namespace semopt

#endif  // SEMOPT_WORKLOAD_UNIVERSITY_H_
