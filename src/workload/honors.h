#ifndef SEMOPT_WORKLOAD_HONORS_H_
#define SEMOPT_WORKLOAD_HONORS_H_

#include <cstdint>

#include "ast/program.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// Parameters of the honors-students workload (paper Example 5.1,
/// adapted from Motro & Yuan).
struct HonorsParams {
  size_t num_students = 200;
  size_t num_colleges = 20;
  size_t num_journals = 15;
  double topten_fraction = 0.5;
  double reputed_fraction = 0.4;
  double publication_fraction = 0.3;
  uint64_t seed = 1;
};

/// The deductive database of Example 5.1:
///   r0: honors(S) :- transcript(S, M, C, G), C >= 30, G >= 38.
///   r1: honors(S) :- transcript(S, M, C, G), G >= 38, exceptional(S).
///   r2: exceptional(S) :- publication(S, P), appears(P, J), reputed(J).
///   r3: honors(S) :- graduated(S, College), topten(College).
/// (GPAs are stored as integers scaled by 10: 3.8 -> 38.)
Result<Program> HonorsProgram();

/// Generates the corresponding EDB.
Database GenerateHonorsDb(const HonorsParams& params);

}  // namespace semopt

#endif  // SEMOPT_WORKLOAD_HONORS_H_
