#ifndef SEMOPT_WORKLOAD_ORGANIZATION_H_
#define SEMOPT_WORKLOAD_ORGANIZATION_H_

#include <cstdint>

#include "ast/program.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// Parameters of the organizational workload (paper Example 4.1).
struct OrganizationParams {
  size_t num_employees = 300;
  /// Number of levels in the hierarchy.
  size_t num_levels = 6;
  /// Fraction of bosses holding rank 'executive'.
  double executive_fraction = 0.3;
  /// Fraction of non-executive employees that are experienced anyway.
  double experienced_fraction = 0.5;
  /// Number of same_level triples to emit per level.
  size_t triples_per_level = 40;
  uint64_t seed = 1;
};

/// The program of Example 4.1: the recursive `triple` predicate and
///   ic1: boss(E, B, R), R = 'executive' -> experienced(B).
Result<Program> OrganizationProgram();

/// Generates an EDB satisfying ic1 by construction (every executive
/// boss is experienced).
Database GenerateOrganizationDb(const OrganizationParams& params);

}  // namespace semopt

#endif  // SEMOPT_WORKLOAD_ORGANIZATION_H_
