#include "workload/university.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "parser/parser.h"
#include "util/hash_util.h"
#include "util/string_util.h"

namespace semopt {

Result<Program> UniversityProgram() {
  return ParseProgram(R"(
    r0: eval(P, S, T) :- super(P, S, T).
    r1: eval(P, S, T) :- works_with(P, P2), eval(P2, S, T),
                         expert(P, F), field(T, F).
    r2: eval_support(P, S, T, M) :- eval(P, S, T), pays(M, G, S, T).
    ic1: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).
    ic2: pays(M, G, S, T), M > 10000 -> doctoral(S).
  )");
}

Database GenerateUniversityDb(const UniversityParams& params) {
  SplitMix64 rng(params.seed);
  Database db;

  auto prof = [](size_t i) { return Term::Sym(StrCat("prof", i)); };
  auto student = [](size_t i) { return Term::Sym(StrCat("stud", i)); };
  auto field_sym = [](size_t i) { return Term::Sym(StrCat("field", i)); };
  auto thesis = [](size_t s, size_t t) {
    return Term::Sym(StrCat("thesis", s, "_", t));
  };
  auto grant = [](size_t i) { return Term::Sym(StrCat("grant", i)); };

  const size_t p = params.num_professors;
  const size_t s = params.num_students;
  const size_t f = params.num_fields == 0 ? 1 : params.num_fields;

  // Directed collaboration edges.
  std::vector<std::vector<size_t>> works_with(p);
  for (size_t i = 0; i < p; ++i) {
    size_t degree = static_cast<size_t>(params.collaborations_per_professor);
    if (rng.NextDouble() <
        params.collaborations_per_professor - static_cast<double>(degree)) {
      ++degree;
    }
    std::set<size_t> partners;
    size_t departments =
        params.num_departments == 0 ? 1 : params.num_departments;
    size_t dept_size = (p + departments - 1) / departments;
    size_t dept_begin = (i / dept_size) * dept_size;
    size_t dept_end = std::min(dept_begin + dept_size, p);
    for (size_t d = 0; d < degree && dept_end - dept_begin > 1; ++d) {
      size_t j = dept_begin + rng.Below(dept_end - dept_begin);
      if (j != i) partners.insert(j);
    }
    for (size_t j : partners) {
      works_with[i].push_back(j);
      db.AddTuple("works_with", {prof(i), prof(j)});
    }
  }

  // Base expertise: one or two fields per professor.
  std::vector<std::set<size_t>> expertise(p);
  for (size_t i = 0; i < p; ++i) {
    expertise[i].insert(rng.Below(f));
    if (rng.NextDouble() < 0.5) expertise[i].insert(rng.Below(f));
  }
  // Close expertise under ic1: works_with(P2, P1), expert(P1, F) ->
  // expert(P2, F). (The generated EDB must satisfy the IC.)
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < p; ++i) {
      for (size_t j : works_with[i]) {
        for (size_t fld : expertise[j]) {
          if (expertise[i].insert(fld).second) changed = true;
        }
      }
    }
  }
  for (size_t i = 0; i < p; ++i) {
    for (size_t fld : expertise[i]) {
      db.AddTuple("expert", {prof(i), field_sym(fld)});
    }
  }

  // Doctoral students.
  std::vector<bool> doctoral(s, false);
  for (size_t i = 0; i < s; ++i) {
    if (rng.NextDouble() < params.doctoral_fraction) {
      doctoral[i] = true;
      db.AddTuple("doctoral", {student(i)});
    }
  }

  // Theses, supervision, fields, payments.
  for (size_t i = 0; i < s; ++i) {
    for (size_t t = 0; t < params.num_theses_per_student; ++t) {
      Term th = thesis(i, t);
      size_t supervisor = p == 0 ? 0 : rng.Below(p);
      std::set<size_t> thesis_fields;
      thesis_fields.insert(rng.Below(f));
      while (thesis_fields.size() <
             std::min(params.fields_per_thesis, static_cast<size_t>(f))) {
        thesis_fields.insert(rng.Below(f));
      }
      size_t thesis_field = *thesis_fields.begin();
      if (p > 0) {
        db.AddTuple("super", {prof(supervisor), student(i), th});
        // Make the supervisor an expert in the thesis field too, and
        // re-close (one supervisor at a time keeps this cheap).
        if (expertise[supervisor].insert(thesis_field).second) {
          db.AddTuple("expert", {prof(supervisor), field_sym(thesis_field)});
          // Propagate to professors that work with the supervisor
          // (transitively).
          std::vector<size_t> queue{supervisor};
          while (!queue.empty()) {
            size_t current = queue.back();
            queue.pop_back();
            for (size_t other = 0; other < p; ++other) {
              bool collaborates = false;
              for (size_t partner : works_with[other]) {
                if (partner == current) collaborates = true;
              }
              if (collaborates &&
                  expertise[other].insert(thesis_field).second) {
                db.AddTuple("expert", {prof(other), field_sym(thesis_field)});
                queue.push_back(other);
              }
            }
          }
        }
      }
      for (size_t extra_field : thesis_fields) {
        db.AddTuple("field", {th, field_sym(extra_field)});
      }

      // Payments: high payments only to doctoral students (ic2).
      bool high = doctoral[i] && rng.NextDouble() <
                                     params.high_payment_fraction /
                                         (params.doctoral_fraction > 0
                                              ? params.doctoral_fraction
                                              : 1.0);
      int64_t amount = high
                           ? 10001 + static_cast<int64_t>(rng.Below(20000))
                           : 1000 + static_cast<int64_t>(rng.Below(9000));
      db.AddTuple("pays",
                  {Term::Int(amount), grant(rng.Below(p + 1)), student(i), th});
    }
  }
  return db;
}

}  // namespace semopt
