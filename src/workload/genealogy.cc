#include "workload/genealogy.h"

#include <vector>

#include "parser/parser.h"
#include "util/hash_util.h"
#include "util/string_util.h"

namespace semopt {

Result<Program> GenealogyProgram() {
  return ParseProgram(R"(
    r0: anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
    r1: anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
    ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z2, Z2a, Z, Za),
         par(Z3, Z3a, Z2, Z2a) -> .
  )");
}

Database GenerateGenealogyDb(const GenealogyParams& params) {
  SplitMix64 rng(params.seed);
  Database db;

  size_t next_person = 0;
  auto person = [&](size_t id) { return Term::Sym(StrCat("pers", id)); };

  // par(Person, PersonAge, Parent, ParentAge): grow each family from a
  // root (oldest) downward. Ages are a function of the generation plus
  // a small per-person jitter that is NOT inherited, so the age gap can
  // never accumulate below the generation gap: anyone with 3
  // generations of descendants is at least youngest_age_min +
  // 3*generation_age_gap (= 61 by default) > 50, making ic1 hold for
  // every choice of depth.
  for (size_t fam = 0; fam < params.num_families; ++fam) {
    struct Node {
      size_t id;
      int64_t age;
      size_t generation;
    };
    auto age_of_generation = [&](size_t g) {
      int64_t span = params.youngest_age_max - params.youngest_age_min;
      if (span <= 0) span = 1;
      return params.youngest_age_min +
             static_cast<int64_t>(rng.Below(static_cast<uint64_t>(span))) +
             params.generation_age_gap *
                 static_cast<int64_t>(params.generations - 1 - g);
    };
    std::vector<Node> frontier{{next_person++, age_of_generation(0), 0}};
    while (!frontier.empty()) {
      Node parent = frontier.back();
      frontier.pop_back();
      if (parent.generation + 1 >= params.generations) continue;
      for (size_t c = 0; c < params.children_per_person; ++c) {
        Node child{next_person++, age_of_generation(parent.generation + 1),
                   parent.generation + 1};
        db.AddTuple("par", {person(child.id), Term::Int(child.age),
                            person(parent.id), Term::Int(parent.age)});
        frontier.push_back(child);
      }
    }
  }
  return db;
}

}  // namespace semopt
