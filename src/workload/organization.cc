#include "workload/organization.h"

#include <vector>

#include "parser/parser.h"
#include "util/hash_util.h"
#include "util/string_util.h"

namespace semopt {

Result<Program> OrganizationProgram() {
  return ParseProgram(R"(
    r1: triple(E1, E2, E3) :- same_level(E1, E2, E3).
    r2: triple(E1, E2, E3) :- boss(U, E3, R), experienced(U),
                              triple(U, E1, E2).
    ic1: boss(E, B, R), R = 'executive' -> experienced(B).
  )");
}

Database GenerateOrganizationDb(const OrganizationParams& params) {
  SplitMix64 rng(params.seed);
  Database db;

  auto emp = [](size_t i) { return Term::Sym(StrCat("emp", i)); };

  const size_t n = params.num_employees;
  const size_t levels = params.num_levels == 0 ? 1 : params.num_levels;

  // Assign employees to levels (level 0 = top).
  std::vector<std::vector<size_t>> by_level(levels);
  for (size_t i = 0; i < n; ++i) {
    // Widen lower levels: weight level l by (l+1).
    size_t total_weight = levels * (levels + 1) / 2;
    size_t pick = rng.Below(total_weight);
    size_t level = 0;
    size_t acc = 0;
    for (size_t l = 0; l < levels; ++l) {
      acc += l + 1;
      if (pick < acc) {
        level = l;
        break;
      }
    }
    by_level[level].push_back(i);
  }
  for (size_t l = 0; l < levels; ++l) {
    if (by_level[l].empty()) by_level[l].push_back(rng.Below(n));
  }

  std::vector<bool> experienced(n, false);
  // Non-executive experience.
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < params.experienced_fraction) experienced[i] = true;
  }

  // boss(E, B, R): B (one level up) is a boss of E with rank R. Every
  // executive boss must be experienced (ic1) — enforced by construction.
  for (size_t l = 1; l < levels; ++l) {
    for (size_t e : by_level[l]) {
      const std::vector<size_t>& above = by_level[l - 1];
      size_t b = above[rng.Below(above.size())];
      bool executive = rng.NextDouble() < params.executive_fraction;
      if (executive) experienced[b] = true;
      db.AddTuple("boss", {emp(e), emp(b),
                           Term::Sym(executive ? "executive" : "manager")});
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (experienced[i]) db.AddTuple("experienced", {emp(i)});
  }

  // same_level triples seed the recursion.
  for (size_t l = 0; l < levels; ++l) {
    const std::vector<size_t>& pool = by_level[l];
    if (pool.size() < 3) continue;
    for (size_t t = 0; t < params.triples_per_level; ++t) {
      size_t a = pool[rng.Below(pool.size())];
      size_t b = pool[rng.Below(pool.size())];
      size_t c = pool[rng.Below(pool.size())];
      db.AddTuple("same_level", {emp(a), emp(b), emp(c)});
    }
  }
  return db;
}

}  // namespace semopt
