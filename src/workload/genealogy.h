#ifndef SEMOPT_WORKLOAD_GENEALOGY_H_
#define SEMOPT_WORKLOAD_GENEALOGY_H_

#include <cstdint>

#include "ast/program.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// Parameters of the genealogy workload (paper Example 4.3).
struct GenealogyParams {
  /// Number of family trees.
  size_t num_families = 30;
  /// Generations per family (chain depth).
  size_t generations = 6;
  /// Children per person (1 = chains; >1 = trees).
  size_t children_per_person = 2;
  /// Age gap between parent and child; with the default bottom ages,
  /// a gap >= 17 makes anyone with 3 generations of descendants older
  /// than 50, so ic1 holds by construction.
  int64_t generation_age_gap = 20;
  /// Age of the youngest generation (randomized in [min, max)).
  int64_t youngest_age_min = 1;
  int64_t youngest_age_max = 15;
  uint64_t seed = 1;
};

/// The program of Example 4.3: the `anc` ancestor predicate with ages
/// carried through, and the denial
///   ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z2, Z2a, Z, Za),
///        par(Z3, Z3a, Z2, Z2a) -> .
/// ("people under 50 do not have 3 generations of descendants").
Result<Program> GenealogyProgram();

/// Generates family forests whose ages satisfy ic1 by construction.
Database GenerateGenealogyDb(const GenealogyParams& params);

}  // namespace semopt

#endif  // SEMOPT_WORKLOAD_GENEALOGY_H_
