#include "parser/parser.h"

#include <optional>

#include "parser/lexer.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// Recursive-descent parser over a lexed token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgramAll() {
    Program program;
    while (!Check(TokenKind::kEof)) {
      SEMOPT_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      if (stmt.is_constraint) {
        program.AddConstraint(std::move(stmt.constraint));
      } else {
        program.AddRule(std::move(stmt.rule));
      }
    }
    return program;
  }

  Result<Rule> ParseSingleRule() {
    SEMOPT_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(
                                                /*dot_optional=*/true));
    if (stmt.is_constraint) {
      return Status::InvalidArgument("expected a rule, found a constraint");
    }
    SEMOPT_RETURN_IF_ERROR(ExpectEof());
    return stmt.rule;
  }

  Result<Constraint> ParseSingleConstraint() {
    SEMOPT_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(
                                                /*dot_optional=*/true));
    if (!stmt.is_constraint) {
      return Status::InvalidArgument("expected a constraint, found a rule");
    }
    SEMOPT_RETURN_IF_ERROR(ExpectEof());
    return stmt.constraint;
  }

  Result<Atom> ParseSingleAtom() {
    SEMOPT_ASSIGN_OR_RETURN(Atom atom, ParseAtomTokens());
    Match(TokenKind::kDot);
    SEMOPT_RETURN_IF_ERROR(ExpectEof());
    return atom;
  }

  Result<Literal> ParseSingleLiteral() {
    SEMOPT_ASSIGN_OR_RETURN(Literal lit, ParseLiteralTokens());
    Match(TokenKind::kDot);
    SEMOPT_RETURN_IF_ERROR(ExpectEof());
    return lit;
  }

  Result<std::vector<Literal>> ParseSingleLiteralList() {
    SEMOPT_ASSIGN_OR_RETURN(std::vector<Literal> lits, ParseLiteralListTokens());
    Match(TokenKind::kDot);
    SEMOPT_RETURN_IF_ERROR(ExpectEof());
    return lits;
  }

 private:
  struct Statement {
    bool is_constraint = false;
    Rule rule;
    Constraint constraint;
  };

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& Advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  Status Expect(TokenKind kind, const char* context) {
    if (Match(kind)) return Status::Ok();
    return Error(StrCat("expected ", TokenKindName(kind), " ", context,
                        ", found ", TokenKindName(Peek().kind)));
  }

  Status ExpectEof() {
    if (Check(TokenKind::kEof)) return Status::Ok();
    return Error(StrCat("trailing input starting with ",
                        TokenKindName(Peek().kind)));
  }

  Status Error(std::string message) const {
    return Status::InvalidArgument(
        StrCat("line ", Peek().line, ": ", std::move(message)));
  }

  static std::optional<ComparisonOp> AsComparison(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq:
        return ComparisonOp::kEq;
      case TokenKind::kNe:
        return ComparisonOp::kNe;
      case TokenKind::kLt:
        return ComparisonOp::kLt;
      case TokenKind::kLe:
        return ComparisonOp::kLe;
      case TokenKind::kGt:
        return ComparisonOp::kGt;
      case TokenKind::kGe:
        return ComparisonOp::kGe;
      default:
        return std::nullopt;
    }
  }

  Result<Term> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable:
        Advance();
        return Term::Var(t.text);
      case TokenKind::kInteger:
        Advance();
        return Term::Int(t.int_value);
      case TokenKind::kIdent:
        Advance();
        return Term::Sym(t.text);
      default:
        return Error(StrCat("expected a term, found ",
                            TokenKindName(t.kind)));
    }
  }

  Result<Atom> ParseAtomTokens() {
    if (!Check(TokenKind::kIdent)) {
      return Error(StrCat("expected a predicate name, found ",
                          TokenKindName(Peek().kind)));
    }
    std::string name = Advance().text;
    std::vector<Term> args;
    if (Match(TokenKind::kLParen)) {
      if (!Check(TokenKind::kRParen)) {
        do {
          SEMOPT_ASSIGN_OR_RETURN(Term arg, ParseTerm());
          args.push_back(arg);
        } while (Match(TokenKind::kComma));
      }
      SEMOPT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after arguments"));
    }
    return Atom(name, std::move(args));
  }

  // literal := ['not'] ( atom | term cmp term | ident cmp term )
  // An identifier followed by '(' or by nothing-comparison parses as an
  // atom; an identifier/variable/integer followed by a comparison
  // operator parses as a comparison.
  Result<Literal> ParseLiteralTokens() {
    bool negated = Match(TokenKind::kNot);
    // Lookahead: a variable or integer must begin a comparison.
    if (Check(TokenKind::kVariable) || Check(TokenKind::kInteger)) {
      SEMOPT_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
      auto op = AsComparison(Peek().kind);
      if (!op.has_value()) {
        return Error(StrCat("expected a comparison operator, found ",
                            TokenKindName(Peek().kind)));
      }
      Advance();
      SEMOPT_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      return negated ? Literal::NegatedComparison(lhs, *op, rhs)
                     : Literal::Comparison(lhs, *op, rhs);
    }
    if (Check(TokenKind::kIdent)) {
      // Could be an atom or a symbol-headed comparison
      // ('executive' = R). Disambiguate on the following token.
      if (Peek(1).kind != TokenKind::kLParen &&
          AsComparison(Peek(1).kind).has_value()) {
        SEMOPT_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
        ComparisonOp op = *AsComparison(Peek().kind);
        Advance();
        SEMOPT_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
        return negated ? Literal::NegatedComparison(lhs, op, rhs)
                       : Literal::Comparison(lhs, op, rhs);
      }
      SEMOPT_ASSIGN_OR_RETURN(Atom atom, ParseAtomTokens());
      return negated ? Literal::NegatedRelational(std::move(atom))
                     : Literal::Relational(std::move(atom));
    }
    return Error(StrCat("expected a literal, found ",
                        TokenKindName(Peek().kind)));
  }

  Result<std::vector<Literal>> ParseLiteralListTokens() {
    std::vector<Literal> literals;
    do {
      SEMOPT_ASSIGN_OR_RETURN(Literal lit, ParseLiteralTokens());
      literals.push_back(std::move(lit));
    } while (Match(TokenKind::kComma));
    return literals;
  }

  // statement := [label ':'] body
  // where body resolves to a rule (head [:- literals]) or a constraint
  // (literals -> [literal]).
  Result<Statement> ParseStatement(bool dot_optional = false) {
    std::string label;
    if (Check(TokenKind::kIdent) && Peek(1).kind == TokenKind::kColon) {
      label = Advance().text;
      Advance();  // ':'
    }

    // Parse a literal list; then decide rule vs. constraint by the next
    // token (':-' / '.' => rule; '->' => constraint).
    SEMOPT_ASSIGN_OR_RETURN(std::vector<Literal> first, ParseLiteralListTokens());

    Statement stmt;
    if (Match(TokenKind::kArrow)) {
      stmt.is_constraint = true;
      std::optional<Literal> head;
      if (!Check(TokenKind::kDot) && !Check(TokenKind::kEof)) {
        SEMOPT_ASSIGN_OR_RETURN(Literal h, ParseLiteralTokens());
        head = std::move(h);
      }
      stmt.constraint =
          Constraint(std::move(label), std::move(first), std::move(head));
    } else {
      if (first.size() != 1 || !first[0].IsRelational() ||
          first[0].negated()) {
        return Error("a rule head must be a single positive atom");
      }
      Atom head = first[0].atom();
      std::vector<Literal> body;
      if (Match(TokenKind::kIf)) {
        SEMOPT_ASSIGN_OR_RETURN(body, ParseLiteralListTokens());
      }
      stmt.rule = Rule(std::move(label), std::move(head), std::move(body));
    }

    if (!Match(TokenKind::kDot) && !dot_optional) {
      return Error(StrCat("expected '.' at end of statement, found ",
                          TokenKindName(Peek().kind)));
    }
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source) {
  SEMOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseProgramAll();
}

Result<Rule> ParseRule(std::string_view source) {
  SEMOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseSingleRule();
}

Result<Constraint> ParseConstraint(std::string_view source) {
  SEMOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseSingleConstraint();
}

Result<Atom> ParseAtom(std::string_view source) {
  SEMOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseSingleAtom();
}

Result<Literal> ParseLiteral(std::string_view source) {
  SEMOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseSingleLiteral();
}

Result<std::vector<Literal>> ParseLiteralList(std::string_view source) {
  SEMOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseSingleLiteralList();
}

}  // namespace semopt
