#include "parser/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace semopt {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kIf:
      return "':-'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kNot:
      return "'not'";
    case TokenKind::kQuery:
      return "'?-'";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) { return std::islower(static_cast<unsigned char>(c)); }
bool IsVarStart(char c) {
  return std::isupper(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto push = [&](TokenKind kind, std::string text = "",
                  int64_t value = 0) {
    tokens.push_back(Token{kind, std::move(text), value, line});
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '(') {
      push(TokenKind::kLParen);
      ++i;
      continue;
    }
    if (c == ')') {
      push(TokenKind::kRParen);
      ++i;
      continue;
    }
    if (c == ',') {
      push(TokenKind::kComma);
      ++i;
      continue;
    }
    if (c == '.') {
      push(TokenKind::kDot);
      ++i;
      continue;
    }
    if (c == ':') {
      if (i + 1 < n && source[i + 1] == '-') {
        push(TokenKind::kIf);
        i += 2;
      } else {
        push(TokenKind::kColon);
        ++i;
      }
      continue;
    }
    if (c == '?') {
      if (i + 1 < n && source[i + 1] == '-') {
        push(TokenKind::kQuery);
        i += 2;
        continue;
      }
      return Status::InvalidArgument(
          StrCat("line ", line, ": unexpected '?'"));
    }
    if (c == '-') {
      if (i + 1 < n && source[i + 1] == '>') {
        push(TokenKind::kArrow);
        i += 2;
        continue;
      }
      // Negative integer literal.
      if (i + 1 < n && std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        size_t start = i++;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          ++i;
        }
        std::string digits(source.substr(start, i - start));
        push(TokenKind::kInteger, digits, std::stoll(digits));
        continue;
      }
      return Status::InvalidArgument(
          StrCat("line ", line, ": unexpected '-'"));
    }
    if (c == '=') {
      push(TokenKind::kEq);
      ++i;
      continue;
    }
    if (c == '!') {
      if (i + 1 < n && source[i + 1] == '=') {
        push(TokenKind::kNe);
        i += 2;
        continue;
      }
      return Status::InvalidArgument(
          StrCat("line ", line, ": unexpected '!'"));
    }
    if (c == '<') {
      if (i + 1 < n && source[i + 1] == '=') {
        push(TokenKind::kLe);
        i += 2;
      } else {
        push(TokenKind::kLt);
        ++i;
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && source[i + 1] == '=') {
        push(TokenKind::kGe);
        i += 2;
      } else {
        push(TokenKind::kGt);
        ++i;
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      std::string digits(source.substr(start, i - start));
      push(TokenKind::kInteger, digits, std::stoll(digits));
      continue;
    }
    if (c == '\'') {  // quoted symbol
      size_t start = ++i;
      while (i < n && source[i] != '\'' && source[i] != '\n') ++i;
      if (i >= n || source[i] != '\'') {
        return Status::InvalidArgument(
            StrCat("line ", line, ": unterminated quoted symbol"));
      }
      push(TokenKind::kIdent, std::string(source.substr(start, i - start)));
      ++i;  // closing quote
      continue;
    }
    if (IsIdentStart(c) || IsVarStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      std::string text(source.substr(start, i - start));
      if (text == "not") {
        push(TokenKind::kNot);
      } else if (IsVarStart(c)) {
        push(TokenKind::kVariable, std::move(text));
      } else {
        push(TokenKind::kIdent, std::move(text));
      }
      continue;
    }
    if (c == '$') {
      return Status::InvalidArgument(
          StrCat("line ", line,
                 ": '$' is reserved for generated variable names"));
    }
    return Status::InvalidArgument(
        StrCat("line ", line, ": unexpected character '", std::string(1, c),
               "'"));
  }
  push(TokenKind::kEof);
  return tokens;
}

}  // namespace semopt
