#ifndef SEMOPT_PARSER_PARSER_H_
#define SEMOPT_PARSER_PARSER_H_

#include <string_view>

#include "ast/program.h"
#include "util/result.h"

namespace semopt {

/// Parses a whole source text: a sequence of statements, each terminated
/// by '.'. Statements are:
///
///   [label:] head :- lit, ..., lit.        % rule
///   [label:] head.                         % fact rule
///   [label:] lit, ..., lit -> lit.         % integrity constraint
///   [label:] lit, ..., lit -> .            % denial constraint
///
/// Literals are relational atoms `p(t, ...)` (optionally prefixed `not`)
/// or comparisons `t op t` with op in {=, !=, <, <=, >, >=}. Variables
/// start uppercase or with '_'; symbols start lowercase or are quoted.
/// Comments run from '%' to end of line.
Result<Program> ParseProgram(std::string_view source);

/// Parses a single rule (label optional, trailing '.' optional).
Result<Rule> ParseRule(std::string_view source);

/// Parses a single integrity constraint.
Result<Constraint> ParseConstraint(std::string_view source);

/// Parses a single atom, e.g. "par(adam, 930, seth, 800)".
Result<Atom> ParseAtom(std::string_view source);

/// Parses a single literal (atom, negated atom, or comparison).
Result<Literal> ParseLiteral(std::string_view source);

/// Parses a comma-separated literal list (e.g. a query body).
Result<std::vector<Literal>> ParseLiteralList(std::string_view source);

}  // namespace semopt

#endif  // SEMOPT_PARSER_PARSER_H_
