#ifndef SEMOPT_PARSER_LEXER_H_
#define SEMOPT_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace semopt {

/// Token kinds of the rule/IC surface syntax.
enum class TokenKind : uint8_t {
  kIdent,      // lowercase-initial identifier or 'quoted symbol'
  kVariable,   // uppercase- or underscore-initial identifier
  kInteger,    // decimal integer, optionally negative
  kLParen,     // (
  kRParen,     // )
  kComma,      // ,
  kDot,        // .
  kColon,      // :   (rule/IC label separator)
  kIf,         // :-  (rule neck)
  kArrow,      // ->  (IC implication)
  kEq,         // =
  kNe,         // !=
  kLt,         // <
  kLe,         // <=
  kGt,         // >
  kGe,         // >=
  kNot,        // the keyword `not`
  kQuery,      // ?-  (query prefix)
  kEof,
};

/// Human-readable token-kind name for diagnostics.
const char* TokenKindName(TokenKind kind);

/// A lexed token with its source text and 1-based line number.
struct Token {
  TokenKind kind;
  std::string text;   // identifier/variable text or integer digits
  int64_t int_value;  // valid for kInteger
  int line;
};

/// Splits `source` into tokens. Comments run from '%' to end of line.
/// Quoted symbols ('like this') lex as kIdent with the quotes stripped.
/// Underscores are allowed inside identifiers; '$' is reserved for
/// generated variables and rejected in source.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace semopt

#endif  // SEMOPT_PARSER_LEXER_H_
