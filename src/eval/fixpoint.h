#ifndef SEMOPT_EVAL_FIXPOINT_H_
#define SEMOPT_EVAL_FIXPOINT_H_

#include <cstddef>
#include <string>

#include "ast/program.h"
#include "eval/cost_planner.h"
#include "eval/eval_stats.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

class PlanCacheInterface;

/// Evaluation strategy for the bottom-up fixpoint.
enum class EvalStrategy {
  kSemiNaive,  // delta-driven (default)
  kNaive,      // re-derive everything each round (baseline)
};

/// Whether the batched executor may use the vectorized (selection-
/// vector + SIMD kernel) paths. The derived relations, counters and
/// fixpoints are bit-identical either way — the vector paths only
/// reschedule the same per-row work — so kAuto is safe everywhere.
enum class SimdMode {
  kAuto,  // vectorize when compiled in and not env-disabled (default)
  kOn,    // require vectorization; ValidateEvalOptions rejects this
          // when the build or SEMOPT_DISABLE_SIMD disabled it
  kOff,   // force the scalar paths (ablation baseline)
};

struct EvalOptions {
  EvalStrategy strategy = EvalStrategy::kSemiNaive;
  /// Safety valve for buggy workloads; 0 = unlimited.
  size_t max_iterations = 0;
  /// Plan joins with current relation cardinalities (default); false
  /// falls back to the size-blind static order (ablation bench A1).
  bool cardinality_planning = true;
  /// Frame/head block size for the batched (block-at-a-time) rule
  /// executor used by the fixpoint engines. 1 selects the legacy
  /// tuple-at-a-time path (identical results, per-tuple dispatch);
  /// larger values amortize sink dispatch and keep probe keys, filter
  /// checks and negation membership tests in tight loops over
  /// contiguous frames. The derived relations are identical either way.
  size_t batch_size = 1024;
  /// Worker threads for evaluation. 1 (default) = the serial path;
  /// 0 = one per hardware thread; N > 1 = morsel-driven parallel
  /// fixpoint (src/exec/), whose results are set-equal to serial.
  size_t num_threads = 1;
  /// Rows per morsel for the parallel engine: each round the frozen
  /// delta (or the driving literal's relation) is carved into
  /// contiguous row ranges of this size, pulled by workers off a shared
  /// cursor. 0 (default) = auto: max(batch_size, 64), so a morsel fills
  /// at least one executor block and stays coarse enough that the
  /// per-morsel claim (one atomic increment) never dominates. Explicit
  /// values below 8 are rejected by ValidateEvalOptions. Ignored when
  /// num_threads == 1.
  size_t morsel_size = 0;
  /// Vectorized executor paths (see SimdMode). kAuto resolves against
  /// the build flag and the SEMOPT_DISABLE_SIMD environment variable.
  SimdMode simd = SimdMode::kAuto;
  /// Join-order planner (see PlannerMode in eval/cost_planner.h and the
  /// shell's `:planner`). kGreedy keeps the one-pass heuristic; kCost
  /// enumerates per-rule join orders from relation sizes, per-column
  /// distinct sketches and accumulated runtime feedback. The derived
  /// relations and fixpoints are identical under either — only the
  /// evaluation cost differs. Ignored (greedy) when
  /// cardinality_planning is false: the cost model is meaningless
  /// size-blind.
  PlannerMode planner = PlannerMode::kGreedy;
  /// When non-empty, this evaluation runs inside a trace session and
  /// writes a Chrome trace_event JSON file here on completion (open in
  /// chrome://tracing or Perfetto). If a session is already active
  /// (shell `:trace`), the outer session keeps ownership and no file
  /// is written here. No-op when built with -DSEMOPT_DISABLE_TRACING.
  std::string trace_path;
  /// Collect the structured extras in EvalStats (per-rule counters and
  /// timings, per-round worker balance). Off by default: the fast path
  /// only bumps the scalar totals. Per-round timings (EvalStats::rounds)
  /// are NOT gated on this — they cost two clock reads per round and
  /// feed the always-on query log.
  bool collect_metrics = false;
  /// Wall-clock budget for the whole evaluation, microseconds; checked
  /// at round granularity (a round in flight finishes), so enforcement
  /// lags by up to one round. Exceeding it aborts the evaluation with
  /// FailedPrecondition. 0 = unlimited.
  uint64_t budget_us = 0;
  /// Slow-query threshold, microseconds: a query whose end-to-end time
  /// reaches it is mirrored into the server's slow-query log. The
  /// engines ignore this field — it rides on EvalOptions so the
  /// session/shell `:set`-style plumbing configures it per session; 0 =
  /// use the query log's default threshold.
  uint64_t slow_query_us = 0;
  /// Query id for observability attribution. The engines open an
  /// obs::QueryIdScope with it, so every trace span recorded during the
  /// evaluation — including on parallel worker lanes — carries a "qid"
  /// arg. 0 = unattributed.
  uint64_t query_id = 0;
  /// Caller-owned session plan cache (see eval/plan_cache.h), borrowed
  /// for the evaluation; null = a private per-evaluation cache. A cache
  /// held across Evaluate calls memoizes one plan per (rule, delta,
  /// cardinality-band signature), so a repeated evaluation — the shell
  /// re-running a query — re-traverses an already-seen band trajectory
  /// and skips the planner every round. Entries are content-addressed
  /// by rule text: sharing one cache across different or extended
  /// programs is safe. A plain PlanCache is coordinator-thread only
  /// (each evaluation uses it from one thread); point this at a
  /// SharedPlanCache (eval/shared_plan_cache.h) to share one memo
  /// across concurrently-running evaluations/sessions.
  PlanCacheInterface* plan_cache = nullptr;
};

/// Validates an EvalOptions combination, returning the first problem as
/// a FailedPrecondition Status instead of silently clamping: callers
/// (the shell's `:batch`/`:threads`, embedders) surface the message and
/// keep their previous settings. Checks: batch_size >= 1, num_threads
/// <= 256 (0 = hardware auto-resolution is valid), morsel_size either 0
/// (auto) or >= 8 (a smaller morsel makes the shared-cursor claim the
/// dominant cost), simd != kOn when the build or environment disabled
/// the SIMD kernels, planner one of the known PlannerMode values (the
/// message lists the valid modes, matching the `:simd` UX). Both
/// Evaluate entry points call this first.
Status ValidateEvalOptions(const EvalOptions& options);

/// Resolves `mode` to "use the vectorized paths?": kAuto defers to
/// simd::KernelsEnabled(), kOn/kOff force it (kOn is only reachable
/// after ValidateEvalOptions approved the configuration).
bool ResolveSimdMode(SimdMode mode);

/// Computes the least fixpoint of `program` over `edb` bottom-up and
/// returns the IDB relations. Components of the predicate dependency
/// graph are evaluated in topological order; recursion within a
/// component uses the selected strategy. Negated relational literals
/// must be stratified (predicates from strictly lower components);
/// otherwise an error is returned.
Result<Database> Evaluate(const Program& program, const Database& edb,
                          const EvalOptions& options = EvalOptions(),
                          EvalStats* stats = nullptr);

}  // namespace semopt

#endif  // SEMOPT_EVAL_FIXPOINT_H_
