#ifndef SEMOPT_EVAL_COMPONENT_PLAN_H_
#define SEMOPT_EVAL_COMPONENT_PLAN_H_

#include <set>
#include <vector>

#include "ast/program.h"
#include "eval/rule_executor.h"
#include "util/result.h"

namespace semopt {

/// One rule of an evaluation component, compiled for execution.
struct PlannedRule {
  RuleExecutor executor;
  PredicateId head{0, 0};
  /// Original-body indices of positive relational literals whose
  /// predicate belongs to the rule's own recursion component.
  std::vector<int> recursive_literals;
};

/// A strongly connected component of the predicate dependency graph
/// together with its compiled rules, in evaluation (reverse
/// topological) order. Shared by the serial and parallel fixpoint
/// drivers.
struct EvalComponent {
  std::set<PredicateId> preds;
  std::vector<PlannedRule> rules;
  bool recursive = false;
};

/// Compiles `program` into evaluation components: Tarjan SCCs in
/// callees-first order, one RuleExecutor per rule, recursive literals
/// identified. Fails on unsafe rules and on negation of a predicate
/// inside its own recursion component (unstratifiable).
Result<std::vector<EvalComponent>> PlanComponents(const Program& program);

}  // namespace semopt

#endif  // SEMOPT_EVAL_COMPONENT_PLAN_H_
