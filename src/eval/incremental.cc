#include "eval/incremental.h"

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/dependency_graph.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// RelationSource for maintenance joins: EDB + IDB resolution with two
/// per-phase layers on top — `overrides` rebind the synthetic view
/// predicates (`__ivm_dm_*`, `__ivm_dp_*`, `__ivm_cand_*`) to the
/// relation backing them this batch, and `deltas` carry the trigger
/// relation each delta-rule execution reads.
class IvmSource : public RelationSource {
 public:
  IvmSource(const Database* edb, const Database* idb,
            const std::set<PredicateId>* idb_preds)
      : edb_(edb), idb_(idb), idb_preds_(idb_preds) {}

  const Relation* Full(const PredicateId& pred) const override {
    auto it = overrides_.find(pred);
    if (it != overrides_.end()) return it->second;
    if (idb_preds_->count(pred) > 0) return idb_->Find(pred);
    return edb_->Find(pred);
  }
  const Relation* Delta(const PredicateId& pred) const override {
    auto it = deltas_.find(pred);
    return it == deltas_.end() ? nullptr : it->second;
  }

  void SetOverride(const PredicateId& pred, const Relation* rel) {
    overrides_[pred] = rel;
  }
  void SetDelta(const PredicateId& pred, const Relation* rel) {
    deltas_[pred] = rel;
  }
  void ClearDeltas() { deltas_.clear(); }

 private:
  const Database* edb_;
  const Database* idb_;
  const std::set<PredicateId>* idb_preds_;
  std::map<PredicateId, const Relation*> overrides_;
  std::map<PredicateId, const Relation*> deltas_;
};

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Interns the synthetic view predicate `<prefix><name>` of the same
/// arity as `p`. Stable across batches (the interner is a process-wide
/// table), so rewritten rule texts — and therefore plan-cache keys —
/// never change between batches.
PredicateId ViewPred(const char* prefix, const PredicateId& p) {
  return PredicateId{InternSymbol(StrCat(prefix, SymbolName(p.name))),
                     p.arity};
}
/// The Δ- / Δ+ branch view of a lower predicate in a differentiated
/// overdeletion rule variant (see DeltaRule::view_deltas).
PredicateId DmPred(const PredicateId& p) { return ViewPred("__ivm_dm_", p); }
PredicateId DpPred(const PredicateId& p) { return ViewPred("__ivm_dp_", p); }
PredicateId CandPred(const PredicateId& p) {
  return ViewPred("__ivm_cand_", p);
}

/// The metrics/plan-cache base name of `rule`: its label, else its head.
std::string RuleBaseName(const Rule& rule) {
  return rule.label().empty() ? rule.head().pred_id().ToString()
                              : rule.label();
}

/// Runs one maintenance rule execution through the plan cache and the
/// batched executor, appending every derived head row (multiset — dedup
/// happens at the commit) to `out`. Mirrors the fixpoint engine's
/// ExecuteBuffered: batch_size 1 selects the tuple-at-a-time path.
void RunDelta(const RuleExecutor& exec, PlanCacheInterface& cache,
              const RelationSource& source, int delta_literal,
              const EvalOptions& options, EvalStats* stats,
              TupleBuffer* out) {
  out->Reset(static_cast<uint32_t>(exec.rule().head().args().size()));
  // Coarse bands: maintenance inputs are deltas whose sizes jitter
  // batch to batch; fine sub-1024 bands would re-plan forever.
  Result<RuleExecutor::PreparedPlan> plan =
      cache.Get(exec, source, delta_literal, stats,
                options.cardinality_planning,
                /*skip_delta_index=*/false, /*partitioned=*/false,
                options.planner, /*coarse_bands=*/true);
  if (!plan.ok()) return;  // Create() validated the rule; cannot fail
  if (options.batch_size <= 1) {
    exec.ExecutePlan(*plan, source, delta_literal,
                     [out](RowRef t) { out->Append(t); }, stats);
  } else {
    exec.ExecutePlanBatched(
        *plan, source, delta_literal,
        [out](const TupleBuffer& block) { out->AppendAll(block); }, stats,
        options.batch_size, 0, RuleExecutor::kNoMorsel,
        /*scratch=*/nullptr, ResolveSimdMode(options.simd));
  }
}

/// The per-predicate delta relation in `map`, created on first use.
Relation* DeltaFor(std::map<PredicateId, std::unique_ptr<Relation>>* map,
                   const PredicateId& pred) {
  auto it = map->find(pred);
  if (it == map->end()) {
    it = map->emplace(pred, std::make_unique<Relation>(pred)).first;
  }
  return it->second.get();
}

/// The delta relation for `pred` in `map`, or nullptr when absent/empty.
const Relation* NonEmptyDelta(
    const std::map<PredicateId, std::unique_ptr<Relation>>& map,
    const PredicateId& pred) {
  auto it = map.find(pred);
  if (it == map.end() || it->second->empty()) return nullptr;
  return it->second.get();
}

/// The trigger relation a DeltaRule reads this batch, or nullptr when
/// the trigger predicate did not change on the relevant side.
const Relation* TriggerRelation(
    const std::map<PredicateId, std::unique_ptr<Relation>>& dminus,
    const std::map<PredicateId, std::unique_ptr<Relation>>& dplus,
    const PredicateId& trigger, bool on_insert) {
  return NonEmptyDelta(on_insert ? dplus : dminus, trigger);
}

/// Copies every row of `rel` into a flat buffer (Erase victims).
void BufferRows(const Relation& rel, TupleBuffer* out) {
  out->Reset(rel.arity());
  for (RowRef row : rel.rows()) out->Append(row);
}

/// Converts a ground fact atom to a stored tuple.
Result<Tuple> FactTuple(const Atom& fact) {
  Tuple tuple;
  tuple.reserve(fact.args().size());
  for (const Term& t : fact.args()) {
    if (!t.IsConstant()) {
      return Status::InvalidArgument(
          StrCat("fact is not ground: ", fact.ToString()));
    }
    tuple.push_back(t);
  }
  return tuple;
}

}  // namespace

void IvmStats::Add(const IvmStats& other) {
  batches += other.batches;
  edb_deleted += other.edb_deleted;
  edb_inserted += other.edb_inserted;
  overdeleted += other.overdeleted;
  rederived += other.rederived;
  recounted += other.recounted;
  net_deleted += other.net_deleted;
  net_inserted += other.net_inserted;
  maintenance_us += other.maintenance_us;
}

void IvmStats::PublishTo(obs::MetricsRegistry& registry,
                         std::string_view prefix) const {
  auto add = [&](const char* name, uint64_t v) {
    if (v != 0) registry.GetCounter(StrCat(prefix, ".", name)).Add(v);
  };
  add("batches", batches);
  add("edb_deleted", edb_deleted);
  add("edb_inserted", edb_inserted);
  add("overdeleted", overdeleted);
  add("rederived", rederived);
  add("recounted", recounted);
  add("net_deleted", net_deleted);
  add("net_inserted", net_inserted);
  add("maintenance_us", maintenance_us);
}

std::string IvmStats::ToString() const {
  return StrCat("batches=", batches, " edb_deleted=", edb_deleted,
                " edb_inserted=", edb_inserted, " overdeleted=", overdeleted,
                " rederived=", rederived, " recounted=", recounted,
                " net_deleted=", net_deleted, " net_inserted=", net_inserted,
                " maintenance_us=", maintenance_us);
}

Result<IncrementalEvaluator> IncrementalEvaluator::Create(
    const Program& program, Database edb, const EvalOptions& options) {
  SEMOPT_RETURN_IF_ERROR(ValidateEvalOptions(options));

  // Structured stratification check up front: PlanComponents would also
  // reject an unstratifiable program, but here we can name the exact
  // negated literal that closes the negative cycle.
  DependencyGraph graph = DependencyGraph::Build(program);
  std::map<PredicateId, size_t> scc_of;
  {
    std::vector<std::vector<PredicateId>> sccs = graph.Sccs();
    for (size_t i = 0; i < sccs.size(); ++i) {
      for (const PredicateId& p : sccs[i]) scc_of[p] = i;
    }
  }
  for (const Rule& rule : program.rules()) {
    const PredicateId head = rule.head().pred_id();
    for (const Literal& lit : rule.body()) {
      if (!lit.IsRelational() || !lit.negated()) continue;
      const PredicateId q = lit.atom().pred_id();
      auto hit = scc_of.find(head);
      auto qit = scc_of.find(q);
      if (hit != scc_of.end() && qit != scc_of.end() &&
          hit->second == qit->second) {
        return Status::InvalidArgument(StrCat(
            "program is not stratifiable: rule ", rule.ToString(),
            " negates ", lit.atom().ToString(), " but ", q.ToString(),
            " is mutually recursive with the rule head ", head.ToString(),
            " — the negated predicate must come from a strictly lower "
            "stratum"));
      }
    }
  }

  IncrementalEvaluator out;
  out.program_ = program;
  out.options_ = options;
  out.idb_preds_ = program.IdbPredicates();
  out.edb_ = std::move(edb);
  // Base fixpoint through the standard engine (the one place the
  // parallel evaluator applies; maintenance runs on the caller thread).
  SEMOPT_ASSIGN_OR_RETURN(out.idb_, Evaluate(out.program_, out.edb_, options));
  SEMOPT_ASSIGN_OR_RETURN(std::vector<EvalComponent> components,
                          PlanComponents(out.program_));
  SEMOPT_RETURN_IF_ERROR(out.CompileStrata(std::move(components)));
  for (Stratum& s : out.strata_) {
    if (!s.recursive && !s.rules.empty()) {
      SEMOPT_RETURN_IF_ERROR(out.InitCounts(s, nullptr));
    }
  }
  return out;
}

Status IncrementalEvaluator::CompileStrata(
    std::vector<EvalComponent> components) {
  for (EvalComponent& comp : components) {
    Stratum s;
    s.preds = std::move(comp.preds);
    s.recursive = comp.recursive;
    s.rules = std::move(comp.rules);
    for (const PlannedRule& pr : s.rules) {
      const Rule& rule = pr.executor.rule();
      const std::string base = RuleBaseName(rule);

      // Overdeletion / affected-set rules: one per relational body
      // occurrence whose change can remove a derivation. The trigger
      // occurrence keeps its original predicate (it reads the delta).
      // Every other *lower* occurrence must be read in its pre-update
      // state even though lower strata already hold post-update values;
      // rather than materializing pre-state views (a full relation copy
      // per changed predicate per batch — O(|DB|)), the rule is
      // differentiated: pre ⊆ stored ∪ Δ- for a positive occurrence,
      // ¬pre ⊆ ¬stored ∨ Δ+ for a negated one, and the product of those
      // unions expands into 2^k compiled variants, each reading one
      // branch per occurrence. Per batch a variant runs only when every
      // delta it reads is non-empty, so steady-state cost follows the
      // batch, not the database. Same-stratum occurrences stay as-is —
      // the stratum's stored relations are not erased until the
      // overdeletion fixpoint has completed, so they still hold the
      // pre-state.
      for (size_t i = 0; i < rule.body().size(); ++i) {
        const Literal& trigger_lit = rule.body()[i];
        if (!trigger_lit.IsRelational()) continue;
        const PredicateId q = trigger_lit.atom().pred_id();
        const bool same_stratum = s.preds.count(q) > 0;
        std::vector<size_t> lower_pos;
        for (size_t j = 0; j < rule.body().size(); ++j) {
          const Literal& lit = rule.body()[j];
          if (j == i || !lit.IsRelational()) continue;
          if (s.preds.count(lit.atom().pred_id()) > 0) continue;
          lower_pos.push_back(j);
        }
        for (uint32_t mask = 0; mask < (1u << lower_pos.size()); ++mask) {
          std::vector<Literal> body;
          std::vector<std::pair<PredicateId, bool>> view_deltas;
          body.reserve(rule.body().size());
          for (size_t j = 0; j < rule.body().size(); ++j) {
            const Literal& lit = rule.body()[j];
            if (j == i) {
              // Negated triggers run positive: the delta holds the
              // tuples whose arrival in q just falsified ¬q.
              body.push_back(lit.negated() ? Literal::Relational(lit.atom())
                                           : lit);
              continue;
            }
            size_t bit = lower_pos.size();
            for (size_t b = 0; b < lower_pos.size(); ++b) {
              if (lower_pos[b] == j) bit = b;
            }
            if (bit == lower_pos.size() || ((mask >> bit) & 1) == 0) {
              // Stored branch: the literal reads the post-update
              // relation verbatim (¬stored for a negated occurrence).
              body.push_back(lit);
              continue;
            }
            // Delta branch: Δ- of a positive occurrence, Δ+ of a
            // negated one (the tuples whose arrival just falsified
            // it), both read positively through the view predicate.
            const PredicateId lq = lit.atom().pred_id();
            const bool on_insert = lit.negated();
            view_deltas.emplace_back(lq, on_insert);
            body.push_back(Literal::Relational(
                Atom((on_insert ? DpPred(lq) : DmPred(lq)).name,
                     lit.atom().args())));
          }
          Rule od(StrCat(base, "~ivm_od", i, "v", mask), rule.head(),
                  std::move(body));
          SEMOPT_ASSIGN_OR_RETURN(RuleExecutor exec, RuleExecutor::Create(od));
          // Deletion side: a positive occurrence loses derivations when
          // q shrinks (read Δ-); a negated one when q grows (read Δ+).
          (same_stratum ? s.delete_propagate : s.delete_seeds)
              .push_back(DeltaRule{std::move(exec), pr.head,
                                   static_cast<int>(i), q,
                                   trigger_lit.negated(),
                                   std::move(view_deltas)});
        }

        // Insertion triggers only fire on lower-stratum changes — the
        // stratum's own insertion fixpoint reuses the original rules'
        // recursive_literals like the semi-naive engine.
        if (!same_stratum) {
          if (trigger_lit.negated()) {
            // ¬q gains bindings when q loses tuples: rewrite the
            // occurrence positive, everything else untouched (insertion
            // propagation is exact on the post-update state).
            std::vector<Literal> ins_body = rule.body();
            ins_body[i] = Literal::Relational(trigger_lit.atom());
            Rule ir(StrCat(base, "~ivm_ins", i), rule.head(),
                    std::move(ins_body));
            SEMOPT_ASSIGN_OR_RETURN(RuleExecutor iexec,
                                    RuleExecutor::Create(ir));
            s.insert_seeds.push_back(DeltaRule{std::move(iexec), pr.head,
                                               static_cast<int>(i), q,
                                               false});
          } else {
            SEMOPT_ASSIGN_OR_RETURN(RuleExecutor iexec,
                                    RuleExecutor::Create(rule));
            s.insert_seeds.push_back(DeltaRule{std::move(iexec), pr.head,
                                               static_cast<int>(i), q,
                                               true});
          }
        }
      }

      // Candidate-restricted form: prepend the cand guard, keep the
      // body verbatim (it reads the exact post-update state).
      const PredicateId cand = CandPred(pr.head);
      std::vector<Literal> rbody;
      rbody.reserve(rule.body().size() + 1);
      rbody.push_back(
          Literal::Relational(Atom(cand.name, rule.head().args())));
      for (const Literal& lit : rule.body()) rbody.push_back(lit);
      Rule rr(StrCat(base, "~ivm_re"), rule.head(), std::move(rbody));
      SEMOPT_ASSIGN_OR_RETURN(RuleExecutor rexec, RuleExecutor::Create(rr));
      s.restricted.push_back(RestrictedRule{std::move(rexec), pr.head, cand});
    }
    strata_.push_back(std::move(s));
  }
  return Status::Ok();
}

Status IncrementalEvaluator::InitCounts(Stratum& stratum, EvalStats* stats) {
  IvmSource source(&edb_, &idb_, &idb_preds_);
  TupleBuffer buffer(0);
  for (const PredicateId& p : stratum.preds) {
    Relation& stored = idb_.GetOrCreate(p);
    std::vector<int64_t>& counts = counts_[p];
    counts.assign(stored.size(), 0);
    if (stored.empty()) continue;
    // Candidates := every stored tuple; the stored relation itself
    // backs the cand guard, so seeding costs no copy.
    Relation scratch(CandPred(p));
    std::vector<int64_t> tally;
    std::vector<RowId> ids;
    for (const RestrictedRule& rr : stratum.restricted) {
      if (!(rr.head == p)) continue;
      source.SetOverride(rr.cand, &stored);
      source.SetDelta(rr.cand, &stored);
      RunDelta(rr.executor, cache(), source, /*delta_literal=*/0, options_,
               stats, &buffer);
      source.ClearDeltas();
      scratch.CommitCounted(buffer, /*delta_target=*/nullptr, &ids);
      tally.resize(scratch.size(), 0);
      for (RowId id : ids) ++tally[id];
    }
    for (size_t i = 0; i < scratch.size(); ++i) {
      const RowId sid = stored.store().Find(scratch.row(i).data());
      if (sid != kInvalidRowId) counts[sid] = tally[i];
    }
  }
  return Status::Ok();
}

Result<IvmStats> IncrementalEvaluator::ApplyUpdates(
    const std::vector<Atom>& adds, const std::vector<Atom>& dels,
    EvalStats* stats) {
  const uint64_t start_us = NowUs();
  IvmStats batch;
  batch.batches = 1;

  // Stage the batch against the EDB: deletions first, then insertions,
  // with set semantics on both sides. `dminus`/`dplus` accumulate the
  // per-predicate net deltas — EDB changes now, each stratum's IDB
  // changes as the batch climbs.
  DeltaMap dminus;
  DeltaMap dplus;
  for (const Atom& fact : dels) {
    const PredicateId pred = fact.pred_id();
    if (idb_preds_.count(pred) > 0) {
      return Status::InvalidArgument(
          StrCat("cannot delete from IDB predicate ", pred.ToString(),
                 ": derived tuples change only through their rules"));
    }
    SEMOPT_ASSIGN_OR_RETURN(Tuple tuple, FactTuple(fact));
    const Relation* rel = edb_.Find(pred);
    if (rel == nullptr || !rel->Contains(tuple)) continue;
    DeltaFor(&dminus, pred)->Insert(tuple);
  }
  for (auto& [pred, rel] : dminus) {
    TupleBuffer victims(rel->arity());
    BufferRows(*rel, &victims);
    batch.edb_deleted += edb_.GetOrCreate(pred).Erase(victims);
  }
  for (const Atom& fact : adds) {
    const PredicateId pred = fact.pred_id();
    if (idb_preds_.count(pred) > 0) {
      return Status::InvalidArgument(
          StrCat("cannot insert into IDB predicate ", pred.ToString(),
                 ": derived tuples change only through their rules"));
    }
    SEMOPT_ASSIGN_OR_RETURN(Tuple tuple, FactTuple(fact));
    if (edb_.GetOrCreate(pred).Insert(tuple)) {
      DeltaFor(&dplus, pred)->Insert(tuple);
      ++batch.edb_inserted;
    }
  }
  // A tuple deleted and re-inserted in one batch ends where it started:
  // drop it from both sides so downstream strata never see it.
  for (auto& [pred, dm] : dminus) {
    auto it = dplus.find(pred);
    if (it == dplus.end()) continue;
    Relation* dp = it->second.get();
    TupleBuffer common(dm->arity());
    for (RowRef row : dm->rows()) {
      if (dp->Contains(row)) common.Append(row);
    }
    if (!common.empty()) {
      batch.edb_deleted -= dm->Erase(common);
      batch.edb_inserted -= dp->Erase(common);
    }
  }

  bool any_change = false;
  for (const auto& [pred, rel] : dminus) any_change |= !rel->empty();
  for (const auto& [pred, rel] : dplus) any_change |= !rel->empty();
  if (any_change) {
    for (Stratum& s : strata_) {
      SEMOPT_RETURN_IF_ERROR(
          MaintainStratum(s, &dminus, &dplus, &batch, stats));
    }
  }

  batch.maintenance_us = NowUs() - start_us;
  totals_.Add(batch);
  batch.PublishTo(obs::MetricsRegistry::Global());
  return batch;
}

Status IncrementalEvaluator::MaintainStratum(Stratum& s, DeltaMap* dminus,
                                             DeltaMap* dplus, IvmStats* batch,
                                             EvalStats* stats) {
  if (s.rules.empty()) return Status::Ok();  // EDB-only component
  bool any_trigger = false;
  for (const DeltaRule& d : s.delete_seeds) {
    if (TriggerRelation(*dminus, *dplus, d.trigger, d.trigger_on_insert)) {
      any_trigger = true;
      break;
    }
  }
  if (!any_trigger) {
    for (const DeltaRule& d : s.insert_seeds) {
      if (TriggerRelation(*dminus, *dplus, d.trigger, d.trigger_on_insert)) {
        any_trigger = true;
        break;
      }
    }
  }
  if (!any_trigger) return Status::Ok();

  IvmSource source(&edb_, &idb_, &idb_preds_);
  // Binds the Δ-branch views a differentiated variant reads to this
  // batch's delta relations. False when any of them is empty: that
  // variant's product term contributes nothing, so it never executes —
  // the mechanism that keeps per-batch work proportional to the batch.
  // A stale override left by an earlier variant is harmless; each
  // variant's rule only references the views it binds itself.
  auto bind_views = [&](const DeltaRule& d) {
    for (const auto& [q, on_insert] : d.view_deltas) {
      const Relation* rel = NonEmptyDelta(on_insert ? *dplus : *dminus, q);
      if (rel == nullptr) return false;
      source.SetOverride(on_insert ? DpPred(q) : DmPred(q), rel);
    }
    return true;
  };

  TupleBuffer buffer(0);

  // ---- Affected-set / overdeletion pass -------------------------------
  // Candidates per stratum predicate. DRed (recursive) restricts them to
  // stored tuples (only a stored tuple can die); the counting pass keeps
  // new tuples too, because the recount also discovers insertions.
  DeltaMap cand;
  DeltaMap dcand;
  DeltaMap next_dcand;
  for (const PredicateId& p : s.preds) {
    cand.emplace(p, std::make_unique<Relation>(CandPred(p)));
    dcand.emplace(p, std::make_unique<Relation>(CandPred(p)));
    next_dcand.emplace(p, std::make_unique<Relation>(CandPred(p)));
  }
  auto commit_candidates = [&](const PredicateId& head, bool stored_only,
                               Relation* delta_out) {
    const Relation* stored = idb_.Find(head);
    Relation* c = cand[head].get();
    for (size_t i = 0; i < buffer.size(); ++i) {
      RowRef row = buffer.row(i);
      if (stored_only && (stored == nullptr || !stored->Contains(row))) {
        continue;
      }
      if (c->Insert(row) && delta_out != nullptr) delta_out->Insert(row);
    }
  };

  for (const DeltaRule& d : s.delete_seeds) {
    const Relation* trig =
        TriggerRelation(*dminus, *dplus, d.trigger, d.trigger_on_insert);
    if (trig == nullptr || !bind_views(d)) continue;
    source.SetDelta(d.trigger, trig);
    RunDelta(d.executor, cache(), source, d.delta_literal, options_, stats,
             &buffer);
    source.ClearDeltas();
    commit_candidates(d.head, s.recursive, dcand[d.head].get());
  }

  if (s.recursive) {
    // Overdeletion closure within the stratum: newly doomed tuples can
    // take same-stratum derivations down with them.
    auto dcand_total = [&]() {
      size_t total = 0;
      for (const auto& [p, rel] : dcand) total += rel->size();
      return total;
    };
    while (dcand_total() > 0) {
      for (const DeltaRule& d : s.delete_propagate) {
        const Relation* trig = dcand[d.trigger].get();
        if (trig->empty() || !bind_views(d)) continue;
        source.SetDelta(d.trigger, trig);
        RunDelta(d.executor, cache(), source, d.delta_literal, options_,
                 stats, &buffer);
        source.ClearDeltas();
        commit_candidates(d.head, /*stored_only=*/true,
                          next_dcand[d.head].get());
      }
      for (const PredicateId& p : s.preds) {
        dcand[p]->Clear();
        std::swap(dcand[p], next_dcand[p]);
      }
    }
  } else {
    // Counting stratum: fold insertion-affected tuples into the same
    // candidate set — the exact recount below settles both directions
    // in one pass.
    for (const DeltaRule& d : s.insert_seeds) {
      const Relation* trig =
          TriggerRelation(*dminus, *dplus, d.trigger, d.trigger_on_insert);
      if (trig == nullptr) continue;
      source.SetDelta(d.trigger, trig);
      RunDelta(d.executor, cache(), source, d.delta_literal, options_, stats,
               &buffer);
      source.ClearDeltas();
      commit_candidates(d.head, /*stored_only=*/false, nullptr);
    }

    // Exact per-tuple recount of every candidate on the post state.
    for (const PredicateId& p : s.preds) {
      Relation* c = cand[p].get();
      if (c->empty()) continue;
      Relation& stored = idb_.GetOrCreate(p);
      Relation scratch(CandPred(p));
      std::vector<int64_t> tally;
      std::vector<RowId> ids;
      for (const RestrictedRule& rr : s.restricted) {
        if (!(rr.head == p)) continue;
        source.SetOverride(rr.cand, c);
        source.SetDelta(rr.cand, c);
        RunDelta(rr.executor, cache(), source, /*delta_literal=*/0, options_,
                 stats, &buffer);
        source.ClearDeltas();
        scratch.CommitCounted(buffer, /*delta_target=*/nullptr, &ids);
        tally.resize(scratch.size(), 0);
        for (RowId id : ids) ++tally[id];
      }
      batch->recounted += c->size();

      std::vector<int64_t>& counts = counts_[p];
      TupleBuffer victims(stored.arity());
      TupleBuffer fresh(stored.arity());
      std::vector<int64_t> fresh_counts;
      std::vector<std::pair<RowRef, int64_t>> keep;
      for (RowRef row : c->rows()) {
        const RowId sid = scratch.store().Find(row.data());
        const int64_t n = sid == kInvalidRowId ? 0 : tally[sid];
        if (stored.Contains(row)) {
          if (n == 0) {
            victims.Append(row);
          } else {
            keep.emplace_back(row, n);
          }
        } else if (n > 0) {
          fresh.Append(row);
          fresh_counts.push_back(n);
        }
      }
      if (!victims.empty()) {
        // Replay the store's swap-removal renames on the count column —
        // O(|victims|), in lockstep with Erase itself.
        std::vector<std::pair<RowId, RowId>> moves;
        const size_t erased = stored.Erase(victims, &moves);
        for (const auto& [from, to] : moves) counts[to] = counts[from];
        counts.resize(stored.size());
        Relation* out = DeltaFor(dminus, p);
        for (size_t i = 0; i < victims.size(); ++i) {
          out->Insert(victims.row(i));
        }
        batch->net_deleted += erased;
      }
      if (!fresh.empty()) {
        stored.CommitCounted(fresh, /*delta_target=*/nullptr, &ids);
        counts.resize(stored.size(), 0);
        for (size_t i = 0; i < ids.size(); ++i) {
          counts[ids[i]] = fresh_counts[i];
        }
        Relation* out = DeltaFor(dplus, p);
        for (size_t i = 0; i < fresh.size(); ++i) out->Insert(fresh.row(i));
        batch->net_inserted += fresh.size();
      }
      for (const auto& [row, n] : keep) {
        const RowId sid = stored.store().Find(row.data());
        if (sid != kInvalidRowId) counts[sid] = n;
      }
    }
    return Status::Ok();
  }

  // ---- DRed: erase candidates, rederive survivors ---------------------
  DeltaMap erased;
  DeltaMap inserted;
  for (const PredicateId& p : s.preds) {
    Relation* c = cand[p].get();
    if (c->empty()) continue;
    TupleBuffer victims(c->arity());
    BufferRows(*c, &victims);
    batch->overdeleted += idb_.GetOrCreate(p).Erase(victims);
    erased.emplace(p, std::move(cand[p]));
  }

  if (!erased.empty()) {
    // Remaining = overdeleted tuples not yet rederived; shrink as
    // survivors come back (a rederived tuple can support another
    // candidate, so iterate to fixpoint).
    DeltaMap remaining;
    DeltaMap newly;
    for (auto& [p, rel] : erased) {
      remaining.emplace(p, std::make_unique<Relation>(*rel));
      newly.emplace(p, std::make_unique<Relation>(CandPred(p)));
    }
    while (true) {
      size_t round_rederived = 0;
      for (const RestrictedRule& rr : s.restricted) {
        const Relation* rem = NonEmptyDelta(remaining, rr.head);
        if (rem == nullptr) continue;
        source.SetOverride(rr.cand, rem);
        source.SetDelta(rr.cand, rem);
        RunDelta(rr.executor, cache(), source, /*delta_literal=*/0, options_,
                 stats, &buffer);
        source.ClearDeltas();
        round_rederived += idb_.GetOrCreate(rr.head)
                               .Commit(buffer, newly[rr.head].get())
                               .inserted;
      }
      if (round_rederived == 0) break;
      batch->rederived += round_rederived;
      for (auto& [p, fresh] : newly) {
        if (fresh->empty()) continue;
        TupleBuffer back(fresh->arity());
        BufferRows(*fresh, &back);
        remaining[p]->Erase(back);
        Relation* ins = DeltaFor(&inserted, p);
        for (RowRef row : fresh->rows()) ins->Insert(row);
        fresh->Clear();
      }
    }
  }

  // ---- DRed: insertion propagation (semi-naive on the post state) -----
  DeltaMap delta;
  DeltaMap next_delta;
  for (const PredicateId& p : s.preds) {
    delta.emplace(p, std::make_unique<Relation>(p));
    next_delta.emplace(p, std::make_unique<Relation>(p));
  }
  for (const DeltaRule& d : s.insert_seeds) {
    const Relation* trig =
        TriggerRelation(*dminus, *dplus, d.trigger, d.trigger_on_insert);
    if (trig == nullptr) continue;
    source.SetDelta(d.trigger, trig);
    RunDelta(d.executor, cache(), source, d.delta_literal, options_, stats,
             &buffer);
    source.ClearDeltas();
    idb_.GetOrCreate(d.head).Commit(buffer, delta[d.head].get());
  }
  auto delta_total = [&]() {
    size_t total = 0;
    for (const auto& [p, rel] : delta) total += rel->size();
    return total;
  };
  size_t pending = delta_total();
  while (pending > 0) {
    for (const PredicateId& p : s.preds) {
      Relation* d = delta[p].get();
      if (d->empty()) continue;
      Relation* ins = DeltaFor(&inserted, p);
      for (RowRef row : d->rows()) ins->Insert(row);
    }
    for (const PlannedRule& pr : s.rules) {
      if (pr.recursive_literals.empty()) continue;  // exit rule: done
      Relation& target = idb_.GetOrCreate(pr.head);
      for (int lit_index : pr.recursive_literals) {
        for (const PredicateId& p : s.preds) {
          source.SetDelta(p, delta[p].get());
        }
        RunDelta(pr.executor, cache(), source, lit_index, options_, stats,
                 &buffer);
        source.ClearDeltas();
        target.Commit(buffer, next_delta[pr.head].get());
      }
    }
    for (const PredicateId& p : s.preds) {
      delta[p]->Clear();
      std::swap(delta[p], next_delta[p]);
    }
    pending = delta_total();
  }

  // Net deltas: erased-and-still-absent tuples were deleted; inserted
  // tuples that were never erased are new. An erased-then-reinserted
  // tuple (rederived, or re-derived by the insertion pass) nets out.
  for (const PredicateId& p : s.preds) {
    const Relation* stored = idb_.Find(p);
    if (const Relation* er = NonEmptyDelta(erased, p)) {
      Relation* out = nullptr;
      for (RowRef row : er->rows()) {
        if (stored != nullptr && stored->Contains(row)) continue;
        if (out == nullptr) out = DeltaFor(dminus, p);
        out->Insert(row);
        ++batch->net_deleted;
      }
    }
    if (const Relation* ins = NonEmptyDelta(inserted, p)) {
      const Relation* er = NonEmptyDelta(erased, p);
      Relation* out = nullptr;
      for (RowRef row : ins->rows()) {
        if (er != nullptr && er->Contains(row)) continue;
        if (out == nullptr) out = DeltaFor(dplus, p);
        out->Insert(row);
        ++batch->net_inserted;
      }
    }
  }
  return Status::Ok();
}

Result<size_t> IncrementalEvaluator::AddFacts(const std::vector<Atom>& facts,
                                              EvalStats* stats) {
  SEMOPT_ASSIGN_OR_RETURN(IvmStats batch, ApplyUpdates(facts, {}, stats));
  return batch.net_inserted;
}

int64_t IncrementalEvaluator::DerivationCount(const PredicateId& pred,
                                              const Tuple& tuple) const {
  auto it = counts_.find(pred);
  if (it == counts_.end()) return -1;
  const Relation* rel = idb_.Find(pred);
  if (rel == nullptr) return 0;
  const RowId id = rel->store().Find(tuple.data());
  return id == kInvalidRowId ? 0 : it->second[id];
}

}  // namespace semopt
