#include "eval/incremental.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "analysis/dependency_graph.h"
#include "eval/fixpoint.h"
#include "eval/rule_executor.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// RelationSource over the evaluator's EDB + IDB with per-predicate
/// deltas (both EDB and IDB predicates may carry deltas here).
class IncrementalSource : public RelationSource {
 public:
  IncrementalSource(const Database* edb, const Database* idb,
                    const std::set<PredicateId>* idb_preds)
      : edb_(edb), idb_(idb), idb_preds_(idb_preds) {}

  const Relation* Full(const PredicateId& pred) const override {
    if (idb_preds_->count(pred) > 0) return idb_->Find(pred);
    return edb_->Find(pred);
  }
  const Relation* Delta(const PredicateId& pred) const override {
    auto it = deltas_->find(pred);
    return it == deltas_->end() ? nullptr : it->second.get();
  }
  void SetDeltaMap(
      const std::map<PredicateId, std::unique_ptr<Relation>>* deltas) {
    deltas_ = deltas;
  }

 private:
  const Database* edb_;
  const Database* idb_;
  const std::set<PredicateId>* idb_preds_;
  const std::map<PredicateId, std::unique_ptr<Relation>>* deltas_ = nullptr;
};

}  // namespace

Result<IncrementalEvaluator> IncrementalEvaluator::Create(
    const Program& program, Database edb) {
  for (const Rule& rule : program.rules()) {
    for (const Literal& lit : rule.body()) {
      if (lit.IsRelational() && lit.negated()) {
        return Status::Unimplemented(
            StrCat("incremental maintenance supports monotone programs "
                   "only; rule ",
                   rule.ToString(), " negates a relation"));
      }
    }
  }
  IncrementalEvaluator out;
  out.program_ = program;
  out.edb_ = std::move(edb);
  SEMOPT_ASSIGN_OR_RETURN(out.idb_, Evaluate(out.program_, out.edb_));
  return out;
}

Result<size_t> IncrementalEvaluator::AddFacts(const std::vector<Atom>& facts,
                                              EvalStats* stats) {
  // Stage the genuinely new EDB tuples as per-predicate deltas.
  std::map<PredicateId, std::unique_ptr<Relation>> delta;
  auto delta_for = [&](const PredicateId& pred) -> Relation* {
    auto it = delta.find(pred);
    if (it == delta.end()) {
      it = delta.emplace(pred, std::make_unique<Relation>(pred)).first;
    }
    return it->second.get();
  };

  std::set<PredicateId> idb_preds = program_.IdbPredicates();
  for (const Atom& fact : facts) {
    if (idb_preds.count(fact.pred_id()) > 0) {
      return Status::InvalidArgument(
          StrCat("cannot insert into IDB predicate ",
                 fact.pred_id().ToString()));
    }
    Tuple tuple;
    for (const Term& t : fact.args()) {
      if (!t.IsConstant()) {
        return Status::InvalidArgument(
            StrCat("fact is not ground: ", fact.ToString()));
      }
      tuple.push_back(t);
    }
    Relation& rel = edb_.GetOrCreate(fact.pred_id());
    if (rel.Insert(tuple)) delta_for(fact.pred_id())->Insert(tuple);
  }
  if (delta.empty()) return 0;

  // Plan every rule once and record its positive relational literals.
  struct PlannedRule {
    RuleExecutor executor;
    PredicateId head{0, 0};
    std::vector<int> relational_literals;
  };
  std::vector<PlannedRule> planned;
  for (const Rule& rule : program_.rules()) {
    SEMOPT_ASSIGN_OR_RETURN(RuleExecutor exec, RuleExecutor::Create(rule));
    PlannedRule pr{std::move(exec), rule.head().pred_id(), {}};
    for (size_t i = 0; i < rule.body().size(); ++i) {
      const Literal& lit = rule.body()[i];
      if (lit.IsRelational() && !lit.negated()) {
        pr.relational_literals.push_back(static_cast<int>(i));
      }
    }
    planned.push_back(std::move(pr));
  }

  IncrementalSource source(&edb_, &idb_, &idb_preds);

  // Delta propagation to fixpoint: fire every rule once per body
  // occurrence whose predicate currently has a delta (that occurrence
  // reads the delta; the rest read the full, already-updated,
  // relations — sound and complete for monotone programs).
  size_t newly_derived = 0;
  while (!delta.empty()) {
    if (stats != nullptr) ++stats->iterations;
    std::map<PredicateId, std::unique_ptr<Relation>> next_delta;
    source.SetDeltaMap(&delta);
    for (const PlannedRule& pr : planned) {
      for (int lit_index : pr.relational_literals) {
        const Literal& lit =
            pr.executor.rule().body()[static_cast<size_t>(lit_index)];
        auto it = delta.find(lit.atom().pred_id());
        if (it == delta.end() || it->second->empty()) continue;

        TupleBuffer buffer(pr.head.arity);
        pr.executor.Execute(source, lit_index,
                            [&](RowRef t) { buffer.Append(t); }, stats);
        Relation& target = idb_.GetOrCreate(pr.head);
        for (size_t bi = 0; bi < buffer.size(); ++bi) {
          RowRef t = buffer.row(bi);
          if (target.Insert(t)) {
            ++newly_derived;
            auto jt = next_delta.find(pr.head);
            if (jt == next_delta.end()) {
              jt = next_delta
                       .emplace(pr.head, std::make_unique<Relation>(pr.head))
                       .first;
            }
            jt->second->Insert(t);
            if (stats != nullptr) ++stats->derived_tuples;
          } else if (stats != nullptr) {
            ++stats->duplicate_tuples;
          }
        }
      }
    }
    delta = std::move(next_delta);
  }
  return newly_derived;
}

}  // namespace semopt
