#ifndef SEMOPT_EVAL_EXPLAIN_H_
#define SEMOPT_EVAL_EXPLAIN_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "eval/fixpoint.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// A proof tree for one derived fact — the runtime counterpart of the
/// proof trees the paper's framework reasons about (§2). Leaves are EDB
/// facts or satisfied evaluable conditions; internal nodes carry the
/// rule that produced them.
struct ProofNode {
  /// The ground literal established at this node (a fact, a satisfied
  /// comparison, or a satisfied negated literal).
  Literal fact = Literal::Relational(Atom(SymbolId(0), {}));
  /// Label of the rule applied ("" for leaves).
  std::string rule_label;
  /// Subproofs for the rule's body literals, in body order.
  std::vector<ProofNode> children;

  /// Pretty-prints the tree, e.g.:
  ///   t(a, c)                       [r1]
  ///   ├─ t(a, b)                    [r0]
  ///   │  └─ e(a, b)
  ///   └─ e(b, c)
  std::string ToString() const;
};

/// Finds a proof of the ground atom `goal` over `program` + `edb`,
/// using the materialized IDB `idb` as the derivability oracle (compute
/// it with Evaluate first). Searches rules depth-first with an on-path
/// loop check — complete because every derivable fact has a proof
/// without repeated goals on a path. Returns NotFound when the goal is
/// not derivable.
Result<ProofNode> Explain(const Program& program, const Database& edb,
                          const Database& idb, const Atom& goal);

/// Convenience: evaluates the program and explains in one step.
Result<ProofNode> ExplainFromScratch(const Program& program,
                                     const Database& edb, const Atom& goal);

/// EXPLAIN ANALYZE for a bottom-up evaluation: renders each rule's join
/// plan (planned against the EDB cardinalities, the order a fresh
/// evaluation's first rounds use) annotated with what actually happened
/// — per-rule applications/derived/duplicates/time from
/// `stats.per_rule` (present when the evaluation ran with
/// EvalOptions::collect_metrics), the per-round timeline from
/// `stats.rounds`, and a totals footer. `stats` must come from
/// evaluating `program` over `edb` (the server's `:profile` re-runs the
/// query with collect_metrics to produce it).
std::string ExplainAnalyze(const Program& program, const Database& edb,
                           const EvalStats& stats,
                           const EvalOptions& options);

}  // namespace semopt

#endif  // SEMOPT_EVAL_EXPLAIN_H_
