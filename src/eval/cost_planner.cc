#include "eval/cost_planner.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace semopt {

const char* PlannerModeName(PlannerMode mode) {
  switch (mode) {
    case PlannerMode::kGreedy:
      return "greedy";
    case PlannerMode::kCost:
      return "cost";
  }
  return "?";
}

CostFeedback& CostFeedback::Global() {
  static CostFeedback* instance = new CostFeedback();
  return *instance;
}

CostFeedback::Cell* CostFeedback::CellFor(const std::string& rule,
                                          size_t literal_index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = cells_[{rule, literal_index}];
  if (slot == nullptr) slot = std::make_unique<Cell>();
  return slot.get();
}

double CostFeedback::CorrectionFor(const std::string& rule,
                                   size_t literal_index) {
  Cell* cell = CellFor(rule, literal_index);
  const uint64_t executions =
      cell->executions.load(std::memory_order_relaxed);
  const uint64_t estimated =
      cell->estimated_bindings.load(std::memory_order_relaxed);
  if (executions == 0) return 1.0;
  const uint64_t actual =
      cell->actual_bindings.load(std::memory_order_relaxed);
  // +1 on both sides keeps zero-row feedback meaningful (an estimate of
  // thousands against an observed zero still corrects hard) without a
  // division by zero.
  const double ratio = (static_cast<double>(actual) + 1.0) /
                       (static_cast<double>(estimated) + 1.0);
  return std::clamp(ratio, 1.0 / 64.0, 64.0);
}

void CostFeedback::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.clear();
}

namespace {

/// Per-step probe overhead in "row visit" units: an index probe costs a
/// hash plus a short bucket walk, charged against every input row. Kept
/// small so the dominant term stays the fan-out estimate.
constexpr double kProbeCost = 1.5;
/// Estimates below this are floored: a step never costs less than a
/// vanishing fraction of a row, and the floor keeps products of many
/// selective steps from degenerating to zero cost.
constexpr double kMinRows = 1e-3;

struct MemoEntry {
  double cost = 0.0;        // cheapest cost of finishing from this state
  int best_next = -1;       // index into `literals` of the cheapest pick
  double best_est = 0.0;    // that pick's estimated output bindings
};

}  // namespace

std::optional<CostPlanner::Result> CostPlanner::Enumerate(
    const std::string& rule_key, const std::vector<LiteralInput>& literals,
    int force_first) {
  const size_t n = literals.size();
  if (n <= 1 || n > 16) return std::nullopt;
  for (const LiteralInput& lit : literals) {
    for (uint32_t slot : lit.slots) {
      if (slot != kConstantSlot && slot >= 64) return std::nullopt;
    }
  }
  obs::TraceSpan span("cost_plan");

  // Pull the feedback corrections once per literal up front (they take
  // the registry lock) instead of once per memo transition.
  std::vector<double> correction(n, 1.0);
  CostFeedback& feedback = CostFeedback::Global();
  for (size_t i = 0; i < n; ++i) {
    correction[i] =
        feedback.CorrectionFor(rule_key, literals[i].original_index);
  }

  // Bound-variable set of a scheduled subset: the union of every
  // scheduled literal's slots. Order-independent, so it is a pure
  // function of the mask — which is what makes the (bound set,
  // remaining set) memo sound.
  std::vector<uint64_t> lit_vars(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t slot : literals[i].slots) {
      if (slot != kConstantSlot) lit_vars[i] |= uint64_t{1} << slot;
    }
  }

  // Estimated bindings the step for literal `i` produces per input row,
  // given the bound-variable set: size / prod(distinct of each bound
  // column), under the usual independence assumption, times the
  // literal's runtime correction. Constants count as bound columns.
  auto est_matches = [&](size_t i, uint64_t bound) -> double {
    const LiteralInput& lit = literals[i];
    double est = static_cast<double>(lit.size);
    for (size_t c = 0; c < lit.slots.size(); ++c) {
      const uint32_t slot = lit.slots[c];
      const bool is_bound =
          slot == kConstantSlot || (bound & (uint64_t{1} << slot)) != 0;
      if (!is_bound) continue;
      size_t distinct = 1;
      if (lit.stats != nullptr && c < lit.stats->distinct.size()) {
        distinct = std::max<size_t>(1, lit.stats->distinct[c]);
      }
      est /= static_cast<double>(distinct);
    }
    return std::max(kMinRows, est * correction[i]);
  };
  auto has_bound_column = [&](size_t i, uint64_t bound) -> bool {
    for (uint32_t slot : literals[i].slots) {
      if (slot == kConstantSlot || (bound & (uint64_t{1} << slot)) != 0) {
        return true;
      }
    }
    return false;
  };

  const uint32_t full = (1u << n) - 1;  // n <= 16 above
  // Memo keyed on (bound-variable set, remaining-literal set). For one
  // rule the bound set is derivable from the mask, but keying on both
  // keeps the memo's contract explicit (and lets tests observe it).
  std::unordered_map<uint64_t, MemoEntry> memo;
  size_t memo_hits = 0;

  // best(mask) = cheapest cost of executing the not-yet-scheduled
  // literals, given `in_rows` rows flowing out of the scheduled prefix.
  // in_rows is a pure function of the mask (independence again), so the
  // recursion is a proper DP over subsets.
  auto bound_of = [&](uint32_t mask) -> uint64_t {
    uint64_t bound = 0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) bound |= lit_vars[i];
    }
    return bound;
  };
  auto rows_of = [&](uint32_t mask) -> double {
    // Replays the fan-out products in literal-index order; the product
    // is order-independent for a fixed mask.
    double rows = 1.0;
    uint64_t bound = 0;
    uint32_t remaining = mask;
    while (remaining != 0) {
      // Schedule the cheapest-to-define order: any order yields the
      // same product, so take ascending index.
      const int i = __builtin_ctz(remaining);
      remaining &= remaining - 1;
      rows *= est_matches(static_cast<size_t>(i), bound);
      bound |= lit_vars[static_cast<size_t>(i)];
    }
    return std::max(kMinRows, rows);
  };

  std::function<double(uint32_t)> best = [&](uint32_t mask) -> double {
    if (mask == full) return 0.0;
    const uint64_t bound = bound_of(mask);
    const uint64_t key =
        (bound << 16) ^ static_cast<uint64_t>(mask) ^ (bound >> 48);
    auto it = memo.find(key);
    if (it != memo.end()) {
      ++memo_hits;
      return it->second.cost;
    }
    const double in_rows = rows_of(mask);
    MemoEntry entry;
    entry.cost = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) continue;
      if (mask == 0 && force_first >= 0 &&
          literals[i].original_index != static_cast<size_t>(force_first)) {
        continue;  // the delta occurrence must drive the plan
      }
      const double matches = est_matches(i, bound);
      const double access =
          has_bound_column(i, bound)
              ? kProbeCost
              : static_cast<double>(std::max<size_t>(1, literals[i].size));
      const double step_cost = in_rows * (access + matches);
      const double total = step_cost + best(mask | (1u << i));
      if (entry.cost < 0.0 || total < entry.cost) {
        entry.cost = total;
        entry.best_next = static_cast<int>(i);
        entry.best_est = in_rows * matches;
      }
    }
    memo.emplace(key, entry);
    return entry.cost;
  };
  best(0);

  // Re-walk the memo from the root to materialize the chosen order.
  Result result;
  uint32_t mask = 0;
  while (mask != full) {
    const uint64_t bound = bound_of(mask);
    const uint64_t key =
        (bound << 16) ^ static_cast<uint64_t>(mask) ^ (bound >> 48);
    auto it = memo.find(key);
    if (it == memo.end() || it->second.best_next < 0) return std::nullopt;
    const size_t i = static_cast<size_t>(it->second.best_next);
    result.order.push_back(literals[i].original_index);
    result.est_rows.push_back(it->second.best_est);
    mask |= 1u << i;
  }
  result.memo_states = memo.size();
  result.memo_hits = memo_hits;

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("eval.planner.cost.plans").Add(1);
  registry.GetCounter("eval.planner.cost.memo_states")
      .Add(result.memo_states);
  registry.GetCounter("eval.planner.cost.memo_hits").Add(result.memo_hits);
  return result;
}

}  // namespace semopt
