#include "eval/plan_cache.h"

#include <bit>
#include <utility>

#include "obs/metrics.h"

namespace semopt {

namespace {
// Non-relational literals (comparisons) have no cardinality; keep a
// band value no relation size can produce.
constexpr uint8_t kNoBand = 0xFF;

// With coarse banding, every size below this shares one band. Join
// order only matters once a relation is big enough to dominate a
// join's cost; distinguishing a 30-row input from a 700-row one
// re-plans for regimes whose worst mis-ordering is microseconds.
// Collapsing them keeps workloads whose small inputs jitter —
// incremental-maintenance deltas above all — on one steady-state plan
// key instead of minting a key per power-of-two the delta lands in.
constexpr size_t kSmallBandCap = 1024;

uint8_t Log2Band(size_t size, bool coarse) {
  // 0 → band 0, [2^k, 2^(k+1)) → band k+1; 64 bands cover any size_t.
  // Coarse: [0, kSmallBandCap) collapses to band 0.
  if (coarse && size < kSmallBandCap) return 0;
  return static_cast<uint8_t>(std::bit_width(size));
}
}  // namespace

std::vector<uint8_t> PlanCache::Signature(const RuleExecutor& exec,
                                          const RelationSource& source,
                                          int delta_literal,
                                          bool coarse_bands) {
  const std::vector<Literal>& body = exec.rule().body();
  std::vector<uint8_t> bands;
  bands.reserve(body.size());
  for (size_t i = 0; i < body.size(); ++i) {
    const Literal& lit = body[i];
    if (!lit.IsRelational()) {
      bands.push_back(kNoBand);
      continue;
    }
    const Relation* rel = nullptr;
    if (delta_literal >= 0 && i == static_cast<size_t>(delta_literal)) {
      rel = source.Delta(lit.atom().pred_id());
    }
    if (rel == nullptr) rel = source.Full(lit.atom().pred_id());
    bands.push_back(Log2Band(rel == nullptr ? 0 : rel->size(), coarse_bands));
  }
  return bands;
}

void PlanCache::EvictToCap() {
  while (entries_.size() > max_entries_) {
    const Key* oldest = lru_.back();
    lru_.pop_back();
    entries_.erase(*oldest);
    ++evictions_;
    obs::MetricsRegistry::Global()
        .GetCounter("eval.plan_cache.evicted")
        .Add(1);
  }
}

Result<RuleExecutor::PreparedPlan> PlanCache::Get(
    const RuleExecutor& exec, const RelationSource& source, int delta_literal,
    EvalStats* stats, bool size_aware, bool skip_delta_index,
    bool partitioned, PlannerMode planner, bool coarse_bands) {
  Key key{exec.rule().ToString(), delta_literal,
          static_cast<uint8_t>(
              (size_aware ? 1 : 0) | (skip_delta_index ? 2 : 0) |
              (partitioned ? 4 : 0) |
              (planner == PlannerMode::kCost ? 8 : 0) |
              (coarse_bands ? 16 : 0)),
          Signature(exec, source, delta_literal, coarse_bands)};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    if (stats != nullptr) ++stats->plan_cache_hits;
    // Refresh recency: splice this entry's node to the front.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    // The plan itself stays valid, but the semi-naive delta
    // double-buffers swap relation objects between rounds (and a
    // repeated evaluation starts from fresh relations entirely):
    // repair any index the current source's relations are missing.
    exec.EnsurePlanIndexes(it->second.plan, source, delta_literal,
                           skip_delta_index);
    return it->second.plan;
  }
  ++misses_;
  if (stats != nullptr) ++stats->plan_cache_misses;
  SEMOPT_ASSIGN_OR_RETURN(
      RuleExecutor::PreparedPlan plan,
      exec.Prepare(source, delta_literal, size_aware, skip_delta_index,
                   partitioned, planner));
  auto [inserted_it, _] = entries_.emplace(std::move(key), Entry{plan, {}});
  lru_.push_front(&inserted_it->first);
  inserted_it->second.lru_it = lru_.begin();
  EvictToCap();
  return plan;
}

}  // namespace semopt
