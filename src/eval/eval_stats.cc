#include "eval/eval_stats.h"

#include "util/string_util.h"

namespace semopt {

std::string EvalStats::ToString() const {
  return StrCat("iterations=", iterations,
                " rule_applications=", rule_applications,
                " derived=", derived_tuples,
                " duplicates=", duplicate_tuples,
                " bindings=", bindings_explored,
                " comparisons=", comparison_checks,
                " runtime_residue_checks=", runtime_residue_checks);
}

}  // namespace semopt
