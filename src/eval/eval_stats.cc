#include "eval/eval_stats.h"

#include <cstdio>
#include <sstream>

#include "util/string_util.h"

namespace semopt {

std::string EvalStats::ToString() const {
  return StrCat("iterations=", iterations,
                " rule_applications=", rule_applications,
                " derived=", derived_tuples,
                " duplicates=", duplicate_tuples,
                " bindings=", bindings_explored,
                " comparisons=", comparison_checks,
                " runtime_residue_checks=", runtime_residue_checks);
}

std::string EvalStats::Report() const {
  std::ostringstream os;
  os << "totals: " << ToString() << "\n";
  if (plan_cache_hits + plan_cache_misses + batches > 0) {
    // Keyed by the registry counter names PublishTo uses, so the shell
    // report and any metrics sink agree on vocabulary.
    os << "batched executor: eval.plan_cache.hit=" << plan_cache_hits
       << " eval.plan_cache.miss=" << plan_cache_misses
       << " eval.batches=" << batches << "\n";
  }
  if (morsels > 0) {
    os << "morsel engine: eval.morsels=" << morsels
       << " eval.morsel_steals=" << morsel_steals << "\n";
  }
  if (eval_ns > 0 || peak_delta_tuples > 0) {
    os << "timing: eval.eval_us=" << eval_ns / 1000
       << " eval.peak_delta_tuples=" << peak_delta_tuples << "\n";
  }
  if (!rounds.empty()) {
    os << "rounds (stratum/round: time, delta in -> out, derived):\n";
    for (const RoundTiming& rt : rounds) {
      os << "  s" << rt.stratum << "/r" << rt.round << ": " << rt.ns / 1000
         << " us, " << rt.delta_in << " -> " << rt.delta_out << ", derived "
         << rt.derived << "\n";
    }
  }
  if (!per_rule.empty()) {
    os << "per-rule:\n";
    for (const auto& [label, rs] : per_rule) {
      os << "  " << label << ": applications=" << rs.applications
         << " derived=" << rs.derived << " duplicates=" << rs.duplicates
         << " exec_us=" << rs.exec_ns / 1000 << "\n";
    }
  }
  if (!round_balance.empty()) {
    os << "worker balance (tuples/worker):\n";
    char mean[32];
    for (const RoundBalance& rb : round_balance) {
      std::snprintf(mean, sizeof(mean), "%.1f", rb.MeanTuples());
      os << "  round " << rb.round << ": workers=" << rb.workers
         << " min=" << rb.min_tuples << " max=" << rb.max_tuples
         << " mean=" << mean;
      if (rb.total_morsels > 0) {
        os << " morsels=" << rb.total_morsels
           << " (min=" << rb.min_morsels << " max=" << rb.max_morsels
           << ")";
      }
      os << "\n";
    }
  }
  std::string out = os.str();
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

void EvalStats::PublishTo(obs::MetricsRegistry& registry,
                          std::string_view prefix) const {
  std::string p(prefix);
  registry.GetCounter(p + ".iterations").Add(iterations);
  registry.GetCounter(p + ".rule_applications").Add(rule_applications);
  registry.GetCounter(p + ".derived_tuples").Add(derived_tuples);
  registry.GetCounter(p + ".duplicate_tuples").Add(duplicate_tuples);
  registry.GetCounter(p + ".bindings_explored").Add(bindings_explored);
  registry.GetCounter(p + ".comparison_checks").Add(comparison_checks);
  registry.GetCounter(p + ".runtime_residue_checks")
      .Add(runtime_residue_checks);
  registry.GetCounter(p + ".plan_cache.hit").Add(plan_cache_hits);
  registry.GetCounter(p + ".plan_cache.miss").Add(plan_cache_misses);
  registry.GetCounter(p + ".batches").Add(batches);
  registry.GetCounter(p + ".morsels").Add(morsels);
  registry.GetCounter(p + ".morsel_steals").Add(morsel_steals);
  registry.GetCounter(p + ".eval_us").Add(eval_ns / 1000);
  if (!rounds.empty()) {
    obs::Histogram& round_us = registry.GetHistogram(p + ".round_us");
    obs::Histogram& round_delta = registry.GetHistogram(p + ".round_delta");
    for (const RoundTiming& rt : rounds) {
      round_us.Observe(rt.ns / 1000);
      round_delta.Observe(rt.delta_out);
    }
  }
  for (const auto& [label, rs] : per_rule) {
    std::string rule_prefix = StrCat(p, ".rule.", label);
    registry.GetCounter(rule_prefix + ".applications").Add(rs.applications);
    registry.GetCounter(rule_prefix + ".derived").Add(rs.derived);
    registry.GetCounter(rule_prefix + ".duplicates").Add(rs.duplicates);
    registry.GetCounter(rule_prefix + ".exec_us").Add(rs.exec_ns / 1000);
  }
  if (!round_balance.empty()) {
    obs::Histogram& min_hist =
        registry.GetHistogram(p + ".round_tuples_per_worker_min");
    obs::Histogram& max_hist =
        registry.GetHistogram(p + ".round_tuples_per_worker_max");
    for (const RoundBalance& rb : round_balance) {
      min_hist.Observe(rb.min_tuples);
      max_hist.Observe(rb.max_tuples);
    }
  }
}

}  // namespace semopt
