#include "eval/fixpoint.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "eval/component_plan.h"
#include "eval/rule_executor.h"
#include "exec/parallel_fixpoint.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// RelationSource over an EDB + the IDB being materialized, with
/// optional per-predicate delta relations for the running component.
class FixpointSource : public RelationSource {
 public:
  FixpointSource(const Database* edb, Database* idb,
                 const std::set<PredicateId>* idb_preds)
      : edb_(edb), idb_(idb), idb_preds_(idb_preds) {}

  const Relation* Full(const PredicateId& pred) const override {
    if (idb_preds_->count(pred) > 0) return idb_->Find(pred);
    return edb_->Find(pred);
  }

  const Relation* Delta(const PredicateId& pred) const override {
    auto it = deltas_.find(pred);
    return it == deltas_.end() ? nullptr : it->second;
  }

  void SetDelta(const PredicateId& pred, const Relation* delta) {
    deltas_[pred] = delta;
  }
  void ClearDeltas() { deltas_.clear(); }

 private:
  const Database* edb_;
  Database* idb_;
  const std::set<PredicateId>* idb_preds_;
  std::map<PredicateId, const Relation*> deltas_;
};

/// Runs one rule execution with the derived tuples buffered, then
/// commits them. Rules may scan the very relation they derive into
/// (self-joins on the recursive predicate); inserting during the scan
/// would invalidate row iterators and index buckets.
void ExecuteBuffered(const RuleExecutor& exec, const RelationSource& source,
                     int delta_literal, EvalStats* stats, bool size_aware,
                     const std::function<void(Tuple&)>& commit) {
  std::vector<Tuple> buffer;
  exec.Execute(source, delta_literal,
               [&](const Tuple& t) { buffer.push_back(t); }, stats,
               size_aware);
  for (Tuple& t : buffer) commit(t);
}

Status CheckIterationBudget(size_t iterations, const EvalOptions& options) {
  if (options.max_iterations > 0 && iterations > options.max_iterations) {
    return Status::FailedPrecondition(
        StrCat("evaluation exceeded max_iterations=",
               options.max_iterations));
  }
  return Status::Ok();
}

}  // namespace

Result<Database> Evaluate(const Program& program, const Database& edb,
                          const EvalOptions& options, EvalStats* stats) {
  // num_threads == 1 is the serial path below; anything else (including
  // 0 = auto-detect) goes through the partitioned parallel evaluator.
  if (options.num_threads != 1) {
    return EvaluateParallel(program, edb, options, stats);
  }

  SEMOPT_ASSIGN_OR_RETURN(std::vector<EvalComponent> components,
                          PlanComponents(program));
  std::set<PredicateId> idb_preds = program.IdbPredicates();

  Database idb;
  // Pre-create IDB relations so Find() works even for empty results.
  for (const PredicateId& p : idb_preds) idb.GetOrCreate(p);

  FixpointSource source(&edb, &idb, &idb_preds);

  for (const EvalComponent& component : components) {
    const std::vector<PlannedRule>& planned = component.rules;
    if (planned.empty()) continue;  // EDB-only component

    if (!component.recursive) {
      // One pass suffices.
      if (stats != nullptr) ++stats->iterations;
      for (const PlannedRule& pr : planned) {
        Relation& target = idb.GetOrCreate(pr.head);
        ExecuteBuffered(pr.executor, source, -1, stats,
                        options.cardinality_planning, [&](Tuple& t) {
          if (target.Insert(t)) {
            if (stats != nullptr) ++stats->derived_tuples;
          } else if (stats != nullptr) {
            ++stats->duplicate_tuples;
          }
        });
      }
      continue;
    }

    if (options.strategy == EvalStrategy::kNaive) {
      // Re-run all component rules on full relations until no change.
      size_t local_iterations = 0;
      bool changed = true;
      while (changed) {
        changed = false;
        ++local_iterations;
        if (stats != nullptr) ++stats->iterations;
        SEMOPT_RETURN_IF_ERROR(
            CheckIterationBudget(local_iterations, options));
        for (const PlannedRule& pr : planned) {
          Relation& target = idb.GetOrCreate(pr.head);
          ExecuteBuffered(pr.executor, source, -1, stats,
                        options.cardinality_planning, [&](Tuple& t) {
            if (target.Insert(t)) {
              changed = true;
              if (stats != nullptr) ++stats->derived_tuples;
            } else if (stats != nullptr) {
              ++stats->duplicate_tuples;
            }
          });
        }
      }
      continue;
    }

    // Semi-naive. Round 0: run every rule with deltas empty (recursive
    // literals see the still-empty component relations, so only exit
    // rules produce tuples unless lower components feed them).
    std::map<PredicateId, std::unique_ptr<Relation>> delta;
    std::map<PredicateId, std::unique_ptr<Relation>> next_delta;
    for (const PredicateId& p : component.preds) {
      delta[p] = std::make_unique<Relation>(p);
      next_delta[p] = std::make_unique<Relation>(p);
    }

    if (stats != nullptr) ++stats->iterations;
    for (const PlannedRule& pr : planned) {
      Relation& target = idb.GetOrCreate(pr.head);
      ExecuteBuffered(pr.executor, source, -1, stats,
                        options.cardinality_planning, [&](Tuple& t) {
        if (target.Insert(t)) {
          delta[pr.head]->Insert(t);
          if (stats != nullptr) ++stats->derived_tuples;
        } else if (stats != nullptr) {
          ++stats->duplicate_tuples;
        }
      });
    }

    size_t local_iterations = 1;
    auto delta_nonempty = [&]() {
      for (const auto& [p, rel] : delta) {
        if (!rel->empty()) return true;
      }
      return false;
    };

    while (delta_nonempty()) {
      ++local_iterations;
      if (stats != nullptr) ++stats->iterations;
      SEMOPT_RETURN_IF_ERROR(CheckIterationBudget(local_iterations, options));

      for (const PlannedRule& pr : planned) {
        if (pr.recursive_literals.empty()) continue;  // exit rule: done
        Relation& target = idb.GetOrCreate(pr.head);
        // One execution per recursive occurrence, reading delta there.
        for (int lit_index : pr.recursive_literals) {
          source.ClearDeltas();
          // Only the chosen occurrence reads the delta; others read the
          // full (current) relation, which is sound and complete.
          for (const PredicateId& p : component.preds) {
            source.SetDelta(p, delta[p].get());
          }
          ExecuteBuffered(pr.executor, source, lit_index, stats,
                          options.cardinality_planning, [&](Tuple& t) {
                            if (target.Insert(t)) {
                              next_delta[pr.head]->Insert(t);
                              if (stats != nullptr) ++stats->derived_tuples;
                            } else if (stats != nullptr) {
                              ++stats->duplicate_tuples;
                            }
                          });
        }
      }
      source.ClearDeltas();
      for (const PredicateId& p : component.preds) {
        delta[p]->Clear();
        std::swap(delta[p], next_delta[p]);
      }
    }
    source.ClearDeltas();
  }

  return idb;
}

}  // namespace semopt
