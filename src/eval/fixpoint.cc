#include "eval/fixpoint.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "eval/component_plan.h"
#include "eval/plan_cache.h"
#include "eval/rule_executor.h"
#include "exec/parallel_fixpoint.h"
#include "obs/trace.h"
#include "util/simd.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// RelationSource over an EDB + the IDB being materialized, with
/// optional per-predicate delta relations for the running component.
class FixpointSource : public RelationSource {
 public:
  FixpointSource(const Database* edb, Database* idb,
                 const std::set<PredicateId>* idb_preds)
      : edb_(edb), idb_(idb), idb_preds_(idb_preds) {}

  const Relation* Full(const PredicateId& pred) const override {
    if (idb_preds_->count(pred) > 0) return idb_->Find(pred);
    return edb_->Find(pred);
  }

  const Relation* Delta(const PredicateId& pred) const override {
    auto it = deltas_.find(pred);
    return it == deltas_.end() ? nullptr : it->second;
  }

  void SetDelta(const PredicateId& pred, const Relation* delta) {
    deltas_[pred] = delta;
  }
  void ClearDeltas() { deltas_.clear(); }

 private:
  const Database* edb_;
  Database* idb_;
  const std::set<PredicateId>* idb_preds_;
  std::map<PredicateId, const Relation*> deltas_;
};

struct RuleRunResult {
  size_t derived = 0;
  size_t duplicates = 0;
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Runs one rule execution with the derived tuples buffered into
/// `buffer` (cleared first). Rules may scan the very relation they
/// derive into (self-joins on the recursive predicate); inserting
/// during the scan would invalidate row iterators and index buckets.
/// The buffer is a flat TupleBuffer: one value arena, no per-tuple heap
/// allocation. Plans come from `cache` (memoized per band signature),
/// so rounds in an already-seen cardinality regime skip the planner;
/// batch_size > 1 streams the join through the block-at-a-time
/// executor, 1 is the legacy tuple-at-a-time path.
void ExecuteBuffered(const PlannedRule& pr, PlanCacheInterface& cache,
                     const RelationSource& source, int delta_literal,
                     const EvalOptions& options, EvalStats* stats,
                     TupleBuffer* buffer) {
  const RuleExecutor& exec = pr.executor;
  buffer->clear();
  Result<RuleExecutor::PreparedPlan> plan =
      cache.Get(exec, source, delta_literal, stats,
                options.cardinality_planning,
                /*skip_delta_index=*/false, /*partitioned=*/false,
                options.planner);
  if (!plan.ok()) return;  // Create() validated the rule; cannot fail
  if (options.batch_size <= 1) {
    exec.ExecutePlan(*plan, source, delta_literal,
                     [buffer](RowRef t) { buffer->Append(t); }, stats);
  } else {
    exec.ExecutePlanBatched(
        *plan, source, delta_literal,
        [buffer](const TupleBuffer& block) { buffer->AppendAll(block); },
        stats, options.batch_size, 0, RuleExecutor::kNoMorsel,
        /*scratch=*/nullptr, ResolveSimdMode(options.simd));
  }
}

/// Span name for one rule execution: the rule label when set (spans of
/// the same rule then aggregate by name in the trace viewer).
std::string_view RuleSpanName(const PlannedRule& pr) {
  const std::string& label = pr.executor.rule().label();
  return label.empty() ? std::string_view("rule") : std::string_view(label);
}

/// Key for EvalStats::per_rule.
std::string RuleKey(const PlannedRule& pr) {
  const std::string& label = pr.executor.rule().label();
  return label.empty() ? pr.head.ToString() : label;
}

/// One traced rule execution: inserts into `target` (and `delta_target`
/// for new tuples, when given), updates stats, and records a per-rule
/// span carrying derived/duplicate counts. `buffer` is reusable
/// caller-owned scratch (reset to the rule's head arity here).
RuleRunResult RunRule(const PlannedRule& pr, PlanCacheInterface& cache,
                      const RelationSource& source, int delta_literal,
                      const EvalOptions& options, EvalStats* stats,
                      Relation& target, Relation* delta_target,
                      TupleBuffer* buffer) {
  obs::TraceSpan span(RuleSpanName(pr));
  const bool time_rule = stats != nullptr && options.collect_metrics;
  const uint64_t start_ns = time_rule ? NowNs() : 0;
  buffer->Reset(
      static_cast<uint32_t>(pr.executor.rule().head().args().size()));
  ExecuteBuffered(pr, cache, source, delta_literal, options, stats, buffer);
  Relation::CommitCounts counts = target.Commit(*buffer, delta_target);
  RuleRunResult result{counts.inserted, counts.duplicates};
  span.AddArg("derived", static_cast<int64_t>(result.derived));
  span.AddArg("duplicates", static_cast<int64_t>(result.duplicates));
  if (stats != nullptr) {
    stats->derived_tuples += result.derived;
    stats->duplicate_tuples += result.duplicates;
    if (time_rule) {
      RuleStats& rs = stats->per_rule[RuleKey(pr)];
      ++rs.applications;
      rs.derived += result.derived;
      rs.duplicates += result.duplicates;
      rs.exec_ns += NowNs() - start_ns;
    }
  }
  return result;
}

/// Round-granularity safety valves: iteration cap and wall-clock
/// budget. `eval_start_ns` is the Evaluate entry time, so the budget
/// covers the whole evaluation, not the current stratum.
Status CheckRoundBudgets(size_t iterations, uint64_t eval_start_ns,
                         const EvalOptions& options) {
  if (options.max_iterations > 0 && iterations > options.max_iterations) {
    return Status::FailedPrecondition(
        StrCat("evaluation exceeded max_iterations=",
               options.max_iterations));
  }
  if (options.budget_us > 0) {
    const uint64_t elapsed_us = (NowNs() - eval_start_ns) / 1000;
    if (elapsed_us > options.budget_us) {
      return Status::FailedPrecondition(
          StrCat("evaluation exceeded budget_us=", options.budget_us,
                 " (elapsed ", elapsed_us, " us)"));
    }
  }
  return Status::Ok();
}

Result<Database> EvaluateSerial(const Program& program, const Database& edb,
                                const EvalOptions& options, EvalStats* stats) {
  obs::TraceSpan eval_span("eval.serial");
  const uint64_t eval_start_ns = NowNs();

  SEMOPT_ASSIGN_OR_RETURN(std::vector<EvalComponent> components,
                          PlanComponents(program));
  std::set<PredicateId> idb_preds = program.IdbPredicates();

  Database idb;
  // Pre-create IDB relations so Find() works even for empty results.
  for (const PredicateId& p : idb_preds) idb.GetOrCreate(p);

  FixpointSource source(&edb, &idb, &idb_preds);
  // Plans persist across rounds (and across the per-delta-occurrence
  // executions within a round), memoized per log2 cardinality-band
  // signature. A caller-owned session cache additionally persists them
  // across evaluations; otherwise the cache lives for this one.
  PlanCache local_plan_cache;
  PlanCacheInterface& plan_cache =
      options.plan_cache != nullptr ? *options.plan_cache : local_plan_cache;
  // One derivation buffer for the whole evaluation: each rule run
  // resets it, so steady-state rounds recycle its arena.
  TupleBuffer rule_buffer(0);

  // 1-based global round index across strata (RoundTiming labeling).
  size_t global_round = 0;
  // Appends the round just finished to the stats timeline.
  auto record_round = [&](int64_t stratum, uint64_t round_start_ns,
                          size_t delta_in, size_t delta_out, size_t derived) {
    if (stats == nullptr) return;
    RoundTiming rt;
    rt.stratum = static_cast<size_t>(stratum);
    rt.round = global_round;
    rt.ns = NowNs() - round_start_ns;
    rt.delta_in = delta_in;
    rt.delta_out = delta_out;
    rt.derived = derived;
    stats->rounds.push_back(rt);
    if (delta_out > stats->peak_delta_tuples) {
      stats->peak_delta_tuples = delta_out;
    }
  };

  int64_t component_index = -1;
  for (const EvalComponent& component : components) {
    ++component_index;
    const std::vector<PlannedRule>& planned = component.rules;
    if (planned.empty()) continue;  // EDB-only component

    obs::TraceSpan stratum_span("stratum");
    stratum_span.AddArg("index", component_index);
    stratum_span.AddArg("rules", static_cast<int64_t>(planned.size()));
    stratum_span.AddArg("recursive", component.recursive ? 1 : 0);

    if (!component.recursive) {
      // One pass suffices.
      if (stats != nullptr) ++stats->iterations;
      ++global_round;
      const uint64_t round_start_ns = NowNs();
      obs::TraceSpan round_span("round");
      round_span.AddArg("round", 1);
      size_t pass_derived = 0;
      for (const PlannedRule& pr : planned) {
        pass_derived += RunRule(pr, plan_cache, source, -1, options, stats,
                                idb.GetOrCreate(pr.head),
                                /*delta_target=*/nullptr, &rule_buffer)
                            .derived;
      }
      record_round(component_index, round_start_ns, 0, 0, pass_derived);
      continue;
    }

    if (options.strategy == EvalStrategy::kNaive) {
      // Re-run all component rules on full relations until no change.
      size_t local_iterations = 0;
      bool changed = true;
      while (changed) {
        changed = false;
        ++local_iterations;
        if (stats != nullptr) ++stats->iterations;
        ++global_round;
        SEMOPT_RETURN_IF_ERROR(
            CheckRoundBudgets(local_iterations, eval_start_ns, options));
        const uint64_t round_start_ns = NowNs();
        obs::TraceSpan round_span("round");
        round_span.AddArg("round", static_cast<int64_t>(local_iterations));
        size_t round_derived = 0;
        for (const PlannedRule& pr : planned) {
          RuleRunResult run =
              RunRule(pr, plan_cache, source, -1, options, stats,
                      idb.GetOrCreate(pr.head), /*delta_target=*/nullptr,
                      &rule_buffer);
          round_derived += run.derived;
        }
        changed = round_derived > 0;
        round_span.AddArg("derived", static_cast<int64_t>(round_derived));
        record_round(component_index, round_start_ns, 0, 0, round_derived);
      }
      continue;
    }

    // Semi-naive. Round 0: run every rule with deltas empty (recursive
    // literals see the still-empty component relations, so only exit
    // rules produce tuples unless lower components feed them).
    std::map<PredicateId, std::unique_ptr<Relation>> delta;
    std::map<PredicateId, std::unique_ptr<Relation>> next_delta;
    for (const PredicateId& p : component.preds) {
      delta[p] = std::make_unique<Relation>(p);
      next_delta[p] = std::make_unique<Relation>(p);
    }

    if (stats != nullptr) ++stats->iterations;
    ++global_round;
    auto delta_total = [&]() {
      size_t total = 0;
      for (const auto& [p, rel] : delta) total += rel->size();
      return total;
    };
    {
      const uint64_t round_start_ns = NowNs();
      obs::TraceSpan round_span("round");
      round_span.AddArg("round", 1);
      size_t seed_derived = 0;
      for (const PlannedRule& pr : planned) {
        seed_derived += RunRule(pr, plan_cache, source, -1, options, stats,
                                idb.GetOrCreate(pr.head),
                                delta[pr.head].get(), &rule_buffer)
                            .derived;
      }
      record_round(component_index, round_start_ns, 0, delta_total(),
                   seed_derived);
    }

    size_t local_iterations = 1;
    size_t pending = delta_total();
    while (pending > 0) {
      ++local_iterations;
      if (stats != nullptr) ++stats->iterations;
      ++global_round;
      SEMOPT_RETURN_IF_ERROR(
          CheckRoundBudgets(local_iterations, eval_start_ns, options));

      const uint64_t round_start_ns = NowNs();
      obs::TraceSpan round_span("round");
      round_span.AddArg("round", static_cast<int64_t>(local_iterations));
      round_span.AddArg("delta_in", static_cast<int64_t>(pending));

      size_t round_derived = 0;
      for (const PlannedRule& pr : planned) {
        if (pr.recursive_literals.empty()) continue;  // exit rule: done
        Relation& target = idb.GetOrCreate(pr.head);
        // One execution per recursive occurrence, reading delta there.
        for (int lit_index : pr.recursive_literals) {
          source.ClearDeltas();
          // Only the chosen occurrence reads the delta; others read the
          // full (current) relation, which is sound and complete.
          for (const PredicateId& p : component.preds) {
            source.SetDelta(p, delta[p].get());
          }
          round_derived +=
              RunRule(pr, plan_cache, source, lit_index, options, stats,
                      target, next_delta[pr.head].get(), &rule_buffer)
                  .derived;
        }
      }
      source.ClearDeltas();
      // Arena double-buffer: Clear retains the old delta's arena and
      // table capacity, and the swap moves pointers, so steady-state
      // rounds recycle storage instead of reallocating it.
      const size_t delta_in = pending;
      for (const PredicateId& p : component.preds) {
        delta[p]->Clear();
        std::swap(delta[p], next_delta[p]);
      }
      pending = delta_total();
      round_span.AddArg("delta_out", static_cast<int64_t>(pending));
      record_round(component_index, round_start_ns, delta_in, pending,
                   round_derived);
    }
    source.ClearDeltas();
  }

  return idb;
}

}  // namespace

Status ValidateEvalOptions(const EvalOptions& options) {
  if (options.batch_size == 0) {
    return Status::FailedPrecondition(
        "batch_size must be >= 1 (1 = tuple-at-a-time)");
  }
  if (options.num_threads > 256) {
    return Status::FailedPrecondition(
        StrCat("num_threads must be <= 256 (0 = one per hardware "
               "thread), got ",
               options.num_threads));
  }
  if (options.morsel_size != 0 && options.morsel_size < 8) {
    return Status::FailedPrecondition(
        StrCat("morsel_size must be 0 (auto) or >= 8, got ",
               options.morsel_size,
               ": smaller morsels make the shared-cursor claim the "
               "dominant per-morsel cost"));
  }
  if (options.simd == SimdMode::kOn) {
    if (!simd::kCompiledIn) {
      return Status::FailedPrecondition(
          "simd=on but this build compiled the SIMD kernels out "
          "(SEMOPT_DISABLE_SIMD)");
    }
    if (simd::EnvDisabled()) {
      return Status::FailedPrecondition(
          "simd=on but the SEMOPT_DISABLE_SIMD environment variable "
          "disables the SIMD kernels in this process");
    }
  }
  if (options.planner != PlannerMode::kGreedy &&
      options.planner != PlannerMode::kCost) {
    return Status::FailedPrecondition(
        StrCat("planner must be one of: greedy, cost; got value ",
               static_cast<int>(options.planner)));
  }
  return Status::Ok();
}

bool ResolveSimdMode(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOn:
      return true;
    case SimdMode::kOff:
      return false;
    case SimdMode::kAuto:
      break;
  }
  return simd::KernelsEnabled();
}

Result<Database> Evaluate(const Program& program, const Database& edb,
                          const EvalOptions& options, EvalStats* stats) {
  SEMOPT_RETURN_IF_ERROR(ValidateEvalOptions(options));
  // Honors EvalOptions::trace_path for both engines; when a session is
  // already running (shell `:trace`) this is a no-op passthrough.
  obs::ScopedTraceFile trace_file(options.trace_path);
  // Coordinator-thread query attribution; the parallel engine re-opens
  // the scope on each worker lane.
  obs::QueryIdScope qid_scope(options.query_id);
  const uint64_t start_ns = NowNs();

  // num_threads == 1 is the serial path; anything else (including
  // 0 = auto-detect) goes through the morsel-driven parallel evaluator.
  Result<Database> result =
      options.num_threads != 1 ? EvaluateParallel(program, edb, options, stats)
                               : EvaluateSerial(program, edb, options, stats);
  if (stats != nullptr) stats->eval_ns += NowNs() - start_ns;
  return result;
}

}  // namespace semopt
