#include "eval/explain.h"

#include <set>
#include <sstream>

#include "ast/rename.h"
#include "ast/unify.h"
#include "eval/builtins.h"
#include "eval/fixpoint.h"
#include "util/string_util.h"

namespace semopt {

namespace {

void Render(const ProofNode& node, const std::string& prefix, bool last,
            bool root, std::ostringstream* os) {
  if (root) {
    *os << node.fact.ToString();
  } else {
    *os << prefix << (last ? "└─ " : "├─ ") << node.fact.ToString();
  }
  if (!node.rule_label.empty()) *os << "   [" << node.rule_label << "]";
  *os << "\n";
  std::string child_prefix =
      root ? "" : prefix + (last ? "   " : "│  ");
  for (size_t i = 0; i < node.children.size(); ++i) {
    Render(node.children[i], child_prefix, i + 1 == node.children.size(),
           false, os);
  }
}

/// Depth-first proof search. `path` holds the IDB goals on the current
/// derivation path (loop check).
class ProofSearch {
 public:
  ProofSearch(const Program& program, const Database& edb,
              const Database& idb)
      : program_(program), edb_(edb), idb_(idb) {
    idb_preds_ = program.IdbPredicates();
  }

  /// Proves the ground atom `goal`, or returns false.
  bool Prove(const Atom& goal, ProofNode* out) {
    Tuple tuple;
    for (const Term& t : goal.args()) {
      if (!t.IsConstant()) return false;
      tuple.push_back(t);
    }
    if (idb_preds_.count(goal.pred_id()) == 0) {
      // EDB fact.
      const Relation* rel = edb_.Find(goal.pred_id());
      if (rel == nullptr || !rel->Contains(tuple)) return false;
      out->fact = Literal::Relational(goal);
      return true;
    }
    // Derivability oracle: the materialized IDB.
    const Relation* rel = idb_.Find(goal.pred_id());
    if (rel == nullptr || !rel->Contains(tuple)) return false;

    std::pair<PredicateId, Tuple> key{goal.pred_id(), tuple};
    if (path_.count(key) > 0) return false;  // loop on this path
    path_.insert(key);
    bool proved = false;
    for (size_t rule_index : program_.RulesFor(goal.pred_id())) {
      Rule instance = RenameApart(program_.rules()[rule_index], &gen_);
      Substitution mgu;
      if (!UnifyAtoms(instance.head(), goal, &mgu)) continue;
      instance = mgu.Apply(instance);
      std::vector<ProofNode> children;
      if (ProveBody(instance.body(), 0, &children)) {
        out->fact = Literal::Relational(goal);
        out->rule_label = program_.rules()[rule_index].label();
        out->children = std::move(children);
        proved = true;
        break;
      }
    }
    path_.erase(key);
    return proved;
  }

 private:
  /// Proves body literals from `index` on, binding variables by
  /// enumerating matching tuples; appends child proofs on success.
  bool ProveBody(const std::vector<Literal>& body, size_t index,
                 std::vector<ProofNode>* children) {
    if (index == body.size()) return true;
    const Literal lit = body[index];

    if (lit.IsComparison()) {
      Result<bool> value = EvalComparison(lit);
      if (!value.ok() || !*value) return false;
      ProofNode node;
      node.fact = lit;
      children->push_back(std::move(node));
      if (ProveBody(body, index + 1, children)) return true;
      children->pop_back();
      return false;
    }

    if (lit.negated()) {
      // Stratified negation: check absence in the materialized state.
      Tuple tuple;
      for (const Term& t : lit.atom().args()) {
        if (!t.IsConstant()) return false;
        tuple.push_back(t);
      }
      const Database& source =
          idb_preds_.count(lit.atom().pred_id()) > 0 ? idb_ : edb_;
      const Relation* rel = source.Find(lit.atom().pred_id());
      if (rel != nullptr && rel->Contains(tuple)) return false;
      ProofNode node;
      node.fact = lit;
      children->push_back(std::move(node));
      if (ProveBody(body, index + 1, children)) return true;
      children->pop_back();
      return false;
    }

    // Positive relational literal: enumerate matching tuples from the
    // materialized relation (EDB or IDB), binding variables.
    const Database& source =
        idb_preds_.count(lit.atom().pred_id()) > 0 ? idb_ : edb_;
    const Relation* rel = source.Find(lit.atom().pred_id());
    if (rel == nullptr) return false;
    for (RowRef row : rel->rows()) {
      Substitution binding;
      Atom ground(lit.atom().predicate(),
                  std::vector<Term>(row.begin(), row.end()));
      if (!MatchAtom(lit.atom(), ground, &binding)) continue;

      ProofNode child;
      if (!Prove(ground, &child)) continue;
      children->push_back(std::move(child));
      // Bind the remaining body under this match.
      std::vector<Literal> rest;
      for (size_t i = index + 1; i < body.size(); ++i) {
        rest.push_back(binding.Apply(body[i]));
      }
      std::vector<Literal> rebound(body.begin(), body.begin() + index + 1);
      for (Literal& l : rest) rebound.push_back(std::move(l));
      if (ProveBody(rebound, index + 1, children)) return true;
      children->pop_back();
    }
    return false;
  }

  const Program& program_;
  const Database& edb_;
  const Database& idb_;
  std::set<PredicateId> idb_preds_;
  std::set<std::pair<PredicateId, Tuple>> path_;
  FreshVariableGenerator gen_{"E"};
};

}  // namespace

std::string ProofNode::ToString() const {
  std::ostringstream os;
  Render(*this, "", true, true, &os);
  return os.str();
}

Result<ProofNode> Explain(const Program& program, const Database& edb,
                          const Database& idb, const Atom& goal) {
  for (const Term& t : goal.args()) {
    if (!t.IsConstant()) {
      return Status::InvalidArgument(
          StrCat("goal must be ground: ", goal.ToString()));
    }
  }
  ProofSearch search(program, edb, idb);
  ProofNode root;
  if (!search.Prove(goal, &root)) {
    return Status::NotFound(
        StrCat(goal.ToString(), " is not derivable"));
  }
  return root;
}

Result<ProofNode> ExplainFromScratch(const Program& program,
                                     const Database& edb, const Atom& goal) {
  SEMOPT_ASSIGN_OR_RETURN(Database idb, Evaluate(program, edb));
  return Explain(program, edb, idb, goal);
}

}  // namespace semopt
