#include "eval/explain.h"

#include <cstdio>
#include <set>
#include <sstream>

#include "ast/rename.h"
#include "ast/unify.h"
#include "eval/builtins.h"
#include "eval/component_plan.h"
#include "eval/fixpoint.h"
#include "util/string_util.h"

namespace semopt {

namespace {

void Render(const ProofNode& node, const std::string& prefix, bool last,
            bool root, std::ostringstream* os) {
  if (root) {
    *os << node.fact.ToString();
  } else {
    *os << prefix << (last ? "└─ " : "├─ ") << node.fact.ToString();
  }
  if (!node.rule_label.empty()) *os << "   [" << node.rule_label << "]";
  *os << "\n";
  std::string child_prefix =
      root ? "" : prefix + (last ? "   " : "│  ");
  for (size_t i = 0; i < node.children.size(); ++i) {
    Render(node.children[i], child_prefix, i + 1 == node.children.size(),
           false, os);
  }
}

/// Depth-first proof search. `path` holds the IDB goals on the current
/// derivation path (loop check).
class ProofSearch {
 public:
  ProofSearch(const Program& program, const Database& edb,
              const Database& idb)
      : program_(program), edb_(edb), idb_(idb) {
    idb_preds_ = program.IdbPredicates();
  }

  /// Proves the ground atom `goal`, or returns false.
  bool Prove(const Atom& goal, ProofNode* out) {
    Tuple tuple;
    for (const Term& t : goal.args()) {
      if (!t.IsConstant()) return false;
      tuple.push_back(t);
    }
    if (idb_preds_.count(goal.pred_id()) == 0) {
      // EDB fact.
      const Relation* rel = edb_.Find(goal.pred_id());
      if (rel == nullptr || !rel->Contains(tuple)) return false;
      out->fact = Literal::Relational(goal);
      return true;
    }
    // Derivability oracle: the materialized IDB.
    const Relation* rel = idb_.Find(goal.pred_id());
    if (rel == nullptr || !rel->Contains(tuple)) return false;

    std::pair<PredicateId, Tuple> key{goal.pred_id(), tuple};
    if (path_.count(key) > 0) return false;  // loop on this path
    path_.insert(key);
    bool proved = false;
    for (size_t rule_index : program_.RulesFor(goal.pred_id())) {
      Rule instance = RenameApart(program_.rules()[rule_index], &gen_);
      Substitution mgu;
      if (!UnifyAtoms(instance.head(), goal, &mgu)) continue;
      instance = mgu.Apply(instance);
      std::vector<ProofNode> children;
      if (ProveBody(instance.body(), 0, &children)) {
        out->fact = Literal::Relational(goal);
        out->rule_label = program_.rules()[rule_index].label();
        out->children = std::move(children);
        proved = true;
        break;
      }
    }
    path_.erase(key);
    return proved;
  }

 private:
  /// Proves body literals from `index` on, binding variables by
  /// enumerating matching tuples; appends child proofs on success.
  bool ProveBody(const std::vector<Literal>& body, size_t index,
                 std::vector<ProofNode>* children) {
    if (index == body.size()) return true;
    const Literal lit = body[index];

    if (lit.IsComparison()) {
      Result<bool> value = EvalComparison(lit);
      if (!value.ok() || !*value) return false;
      ProofNode node;
      node.fact = lit;
      children->push_back(std::move(node));
      if (ProveBody(body, index + 1, children)) return true;
      children->pop_back();
      return false;
    }

    if (lit.negated()) {
      // Stratified negation: check absence in the materialized state.
      Tuple tuple;
      for (const Term& t : lit.atom().args()) {
        if (!t.IsConstant()) return false;
        tuple.push_back(t);
      }
      const Database& source =
          idb_preds_.count(lit.atom().pred_id()) > 0 ? idb_ : edb_;
      const Relation* rel = source.Find(lit.atom().pred_id());
      if (rel != nullptr && rel->Contains(tuple)) return false;
      ProofNode node;
      node.fact = lit;
      children->push_back(std::move(node));
      if (ProveBody(body, index + 1, children)) return true;
      children->pop_back();
      return false;
    }

    // Positive relational literal: enumerate matching tuples from the
    // materialized relation (EDB or IDB), binding variables.
    const Database& source =
        idb_preds_.count(lit.atom().pred_id()) > 0 ? idb_ : edb_;
    const Relation* rel = source.Find(lit.atom().pred_id());
    if (rel == nullptr) return false;
    for (RowRef row : rel->rows()) {
      Substitution binding;
      Atom ground(lit.atom().predicate(),
                  std::vector<Term>(row.begin(), row.end()));
      if (!MatchAtom(lit.atom(), ground, &binding)) continue;

      ProofNode child;
      if (!Prove(ground, &child)) continue;
      children->push_back(std::move(child));
      // Bind the remaining body under this match.
      std::vector<Literal> rest;
      for (size_t i = index + 1; i < body.size(); ++i) {
        rest.push_back(binding.Apply(body[i]));
      }
      std::vector<Literal> rebound(body.begin(), body.begin() + index + 1);
      for (Literal& l : rest) rebound.push_back(std::move(l));
      if (ProveBody(rebound, index + 1, children)) return true;
      children->pop_back();
    }
    return false;
  }

  const Program& program_;
  const Database& edb_;
  const Database& idb_;
  std::set<PredicateId> idb_preds_;
  std::set<std::pair<PredicateId, Tuple>> path_;
  FreshVariableGenerator gen_{"E"};
};

}  // namespace

std::string ProofNode::ToString() const {
  std::ostringstream os;
  Render(*this, "", true, true, &os);
  return os.str();
}

Result<ProofNode> Explain(const Program& program, const Database& edb,
                          const Database& idb, const Atom& goal) {
  for (const Term& t : goal.args()) {
    if (!t.IsConstant()) {
      return Status::InvalidArgument(
          StrCat("goal must be ground: ", goal.ToString()));
    }
  }
  ProofSearch search(program, edb, idb);
  ProofNode root;
  if (!search.Prove(goal, &root)) {
    return Status::NotFound(
        StrCat(goal.ToString(), " is not derivable"));
  }
  return root;
}

Result<ProofNode> ExplainFromScratch(const Program& program,
                                     const Database& edb, const Atom& goal) {
  SEMOPT_ASSIGN_OR_RETURN(Database idb, Evaluate(program, edb));
  return Explain(program, edb, idb, goal);
}

namespace {

/// RelationSource over the EDB only: IDB relations count as empty, the
/// regime a fresh evaluation's first rounds plan in. Mirrors the
/// server's `:plan` view so `:profile` and `:plan` show the same plans.
class EdbOnlySource : public RelationSource {
 public:
  explicit EdbOnlySource(const Database* edb) : edb_(edb) {}
  const Relation* Full(const PredicateId& pred) const override {
    return edb_->Find(pred);
  }
  const Relation* Delta(const PredicateId&) const override {
    return nullptr;
  }

 private:
  const Database* edb_;
};

/// EvalStats::per_rule key for a planned rule (same convention as both
/// engines: the label when set, else the head predicate).
std::string AnalyzeRuleKey(const PlannedRule& pr) {
  const std::string& label = pr.executor.rule().label();
  return label.empty() ? pr.head.ToString() : label;
}

}  // namespace

std::string ExplainAnalyze(const Program& program, const Database& edb,
                           const EvalStats& stats,
                           const EvalOptions& options) {
  std::ostringstream os;
  Result<std::vector<EvalComponent>> components = PlanComponents(program);
  if (!components.ok()) return components.status().ToString();
  EdbOnlySource source(&edb);

  // Which planner produced the plans below (the per-plan trailer also
  // says so, including a per-rule greedy fallback under kCost).
  os << "planner: " << PlannerModeName(options.planner) << "\n";

  int64_t stratum = -1;
  for (const EvalComponent& component : *components) {
    ++stratum;
    if (component.rules.empty()) continue;  // EDB-only component
    os << "stratum " << stratum << " ("
       << (component.recursive ? "recursive" : "non-recursive") << ", "
       << component.rules.size()
       << (component.rules.size() == 1 ? " rule" : " rules") << "):\n";
    for (const PlannedRule& pr : component.rules) {
      Result<RuleExecutor::PreparedPlan> plan = pr.executor.Prepare(
          source, -1, options.cardinality_planning,
          /*skip_delta_index=*/false, /*partition=*/false, options.planner);
      if (plan.ok()) {
        os << pr.executor.DescribePlan(*plan) << "\n";
      } else {
        os << pr.executor.rule().ToString() << "\n  "
           << plan.status().ToString() << "\n";
      }
      auto it = stats.per_rule.find(AnalyzeRuleKey(pr));
      if (it != stats.per_rule.end()) {
        const RuleStats& rs = it->second;
        const uint64_t us = rs.exec_ns / 1000;
        const double share =
            stats.eval_ns > 0 ? 100.0 * static_cast<double>(rs.exec_ns) /
                                    static_cast<double>(stats.eval_ns)
                              : 0.0;
        char pct[16];
        std::snprintf(pct, sizeof(pct), "%.1f", share);
        os << "  actual: " << rs.applications << " application(s), "
           << rs.derived << " derived, " << rs.duplicates << " duplicate(s), "
           << us << " us (" << pct << "% of eval)\n";
      } else {
        os << "  actual: (not executed)\n";
      }
    }
  }

  if (!stats.rounds.empty()) {
    os << "rounds (stratum/round: time, delta in -> out, derived):\n";
    for (const RoundTiming& rt : stats.rounds) {
      os << "  s" << rt.stratum << "/r" << rt.round << ": " << rt.ns / 1000
         << " us, " << rt.delta_in << " -> " << rt.delta_out << ", derived "
         << rt.derived << "\n";
    }
  }
  os << "totals: " << stats.iterations << " round(s), " << stats.derived_tuples
     << " derived, " << stats.duplicate_tuples << " duplicate(s), plan cache "
     << stats.plan_cache_hits << " hit(s) / " << stats.plan_cache_misses
     << " miss(es), peak delta " << stats.peak_delta_tuples << ", eval "
     << stats.eval_ns / 1000 << " us";
  return os.str();
}

}  // namespace semopt
