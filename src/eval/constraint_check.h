#ifndef SEMOPT_EVAL_CONSTRAINT_CHECK_H_
#define SEMOPT_EVAL_CONSTRAINT_CHECK_H_

#include <string>
#include <vector>

#include "ast/rule.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// One witness of an integrity-constraint violation: a ground
/// instantiation of the IC body for which the head fails.
struct ConstraintViolation {
  std::string constraint_label;
  std::string description;
};

/// Checks whether `edb` satisfies `ic`: for every substitution making
/// the body true, the head must be true (for a denial, the body must be
/// unsatisfiable). The IC may mention only EDB predicates and evaluable
/// predicates (the paper's assumption 4).
Result<bool> Satisfies(const Database& edb, const Constraint& ic);

/// Checks all of `ics`; collects up to `max_violations` witnesses
/// (0 = just report the first).
Result<std::vector<ConstraintViolation>> CheckConstraints(
    const Database& edb, const std::vector<Constraint>& ics,
    size_t max_violations = 1);

/// Repairs `edb` in place so it satisfies `ics`, by *deleting* body-
/// supporting facts of violated ground instances (the first database
/// literal of each violated instance is removed) and iterating to a
/// fixpoint. Used by workload generators to manufacture IC-satisfying
/// EDBs; deletion repair always terminates because the database only
/// shrinks. Returns the number of deleted facts.
Result<size_t> RepairByDeletion(Database* edb,
                                const std::vector<Constraint>& ics);

}  // namespace semopt

#endif  // SEMOPT_EVAL_CONSTRAINT_CHECK_H_
