#include "eval/query.h"

#include <sstream>

#include "ast/rename.h"
#include "parser/parser.h"
#include "util/string_util.h"

namespace semopt {

std::string QueryResult::ToString() const {
  std::ostringstream os;
  for (const Tuple& row : tuples) {
    for (size_t i = 0; i < variables.size(); ++i) {
      if (i > 0) os << ", ";
      os << SymbolName(variables[i]) << "=" << row[i];
    }
    os << "\n";
  }
  return os.str();
}

Result<QueryResult> AnswerQuery(const Program& program, const Database& edb,
                                const std::vector<Literal>& body,
                                const std::vector<Term>& projection,
                                const EvalOptions& options,
                                EvalStats* stats) {
  QueryResult result;
  for (const Term& t : projection) {
    if (!t.IsVariable()) {
      return Status::InvalidArgument(
          StrCat("projection term ", t.ToString(), " is not a variable"));
    }
    result.variables.push_back(t.symbol());
  }

  // `$` keeps the answer predicate out of any parseable namespace.
  Atom head("query$answer", projection);
  Program extended = program;
  extended.AddRule(Rule("query$", std::move(head), body));

  SEMOPT_ASSIGN_OR_RETURN(Database idb,
                          Evaluate(extended, edb, options, stats));
  const Relation* answers = idb.Find(
      PredicateId{InternSymbol("query$answer"),
                  static_cast<uint32_t>(projection.size())});
  if (answers != nullptr) result.tuples = answers->CopyRows();
  return result;
}

Result<QueryResult> AnswerQuery(const Program& program, const Database& edb,
                                std::string_view query_text,
                                const EvalOptions& options,
                                EvalStats* stats) {
  SEMOPT_ASSIGN_OR_RETURN(std::vector<Literal> body,
                          ParseLiteralList(query_text));
  std::vector<Term> projection;
  for (SymbolId v : CollectVariables(body)) projection.push_back(Term::Var(v));
  return AnswerQuery(program, edb, body, projection, options, stats);
}

}  // namespace semopt
