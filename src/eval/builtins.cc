#include "eval/builtins.h"

#include "util/string_util.h"

namespace semopt {

int CompareValues(const Term& a, const Term& b) {
  // Integers sort before symbols; within a kind, natural order.
  bool a_int = a.kind() == TermKind::kIntConst;
  bool b_int = b.kind() == TermKind::kIntConst;
  if (a_int != b_int) return a_int ? -1 : 1;
  if (a_int) {
    if (a.int_value() < b.int_value()) return -1;
    if (a.int_value() > b.int_value()) return 1;
    return 0;
  }
  return a.name().compare(b.name());
}

bool EvalComparisonOp(const Term& lhs, ComparisonOp op, const Term& rhs) {
  int cmp = CompareValues(lhs, rhs);
  switch (op) {
    case ComparisonOp::kEq:
      return cmp == 0;
    case ComparisonOp::kNe:
      return cmp != 0;
    case ComparisonOp::kLt:
      return cmp < 0;
    case ComparisonOp::kLe:
      return cmp <= 0;
    case ComparisonOp::kGt:
      return cmp > 0;
    case ComparisonOp::kGe:
      return cmp >= 0;
  }
  return false;
}

Result<bool> EvalComparison(const Literal& literal) {
  if (!literal.IsComparison()) {
    return Status::InvalidArgument(
        StrCat("not a comparison literal: ", literal.ToString()));
  }
  if (literal.lhs().IsVariable() || literal.rhs().IsVariable()) {
    return Status::InvalidArgument(
        StrCat("comparison is not ground: ", literal.ToString()));
  }
  bool value = EvalComparisonOp(literal.lhs(), literal.op(), literal.rhs());
  return literal.negated() ? !value : value;
}

}  // namespace semopt
