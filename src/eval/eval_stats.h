#ifndef SEMOPT_EVAL_EVAL_STATS_H_
#define SEMOPT_EVAL_EVAL_STATS_H_

#include <cstddef>
#include <string>

namespace semopt {

/// Work counters collected during evaluation. All counters are
/// best-effort and intended for benchmarks/tests, not billing.
struct EvalStats {
  /// Fixpoint rounds executed (semi-naive: delta rounds; naive: full
  /// rounds), summed over all strata/components.
  size_t iterations = 0;
  /// Rule executions launched.
  size_t rule_applications = 0;
  /// Head tuples inserted for the first time.
  size_t derived_tuples = 0;
  /// Head tuples derived again (set semantics drops them).
  size_t duplicate_tuples = 0;
  /// Successful partial bindings while joining body literals (a proxy
  /// for join work).
  size_t bindings_explored = 0;
  /// Evaluable-literal (comparison) evaluations.
  size_t comparison_checks = 0;
  /// Extra compile-style work performed *during* evaluation (used by the
  /// runtime-residue baseline to account per-iteration residue
  /// processing).
  size_t runtime_residue_checks = 0;

  void Add(const EvalStats& other) {
    iterations += other.iterations;
    rule_applications += other.rule_applications;
    derived_tuples += other.derived_tuples;
    duplicate_tuples += other.duplicate_tuples;
    bindings_explored += other.bindings_explored;
    comparison_checks += other.comparison_checks;
    runtime_residue_checks += other.runtime_residue_checks;
  }

  std::string ToString() const;
};

}  // namespace semopt

#endif  // SEMOPT_EVAL_EVAL_STATS_H_
