#ifndef SEMOPT_EVAL_EVAL_STATS_H_
#define SEMOPT_EVAL_EVAL_STATS_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace semopt {

/// Per-rule work counters, keyed by rule label (head predicate when a
/// rule is unlabeled). Collected only when
/// `EvalOptions::collect_metrics` is set, so the default evaluation
/// path never touches the map.
struct RuleStats {
  size_t applications = 0;
  size_t derived = 0;
  size_t duplicates = 0;
  /// Wall time spent executing this rule (join + commit), summed over
  /// applications. Nanoseconds; serial engine measures per RunRule, the
  /// parallel engine sums per-morsel worker time (so concurrent morsels
  /// count their full individual durations — it is CPU time shape, not
  /// elapsed round time).
  uint64_t exec_ns = 0;

  void Add(const RuleStats& o) {
    applications += o.applications;
    derived += o.derived;
    duplicates += o.duplicates;
    exec_ns += o.exec_ns;
  }
};

/// One fixpoint round as the engines executed it: which stratum, the
/// 1-based global round index within the evaluation, its wall time and
/// the delta it consumed/produced. Collected whenever the caller passed
/// an EvalStats (two clock reads per round — cheap enough for the
/// always-on query log), independent of `collect_metrics`.
struct RoundTiming {
  size_t stratum = 0;
  size_t round = 0;
  uint64_t ns = 0;
  /// Tuples in the consumed delta (0 for round 1 / non-recursive).
  size_t delta_in = 0;
  /// Tuples in the produced delta (0 on naive/non-recursive rounds).
  size_t delta_out = 0;
  /// New tuples inserted this round.
  size_t derived = 0;
};

/// Tuples produced per worker slot in one parallel round — the
/// imbalance the merged totals hide: a round where one worker derives
/// everything scales like the serial engine no matter the thread
/// count.
struct RoundBalance {
  size_t round = 0;   ///< 1-based global round index within the evaluation
  size_t workers = 0; ///< worker lanes in the round (pool width)
  size_t min_tuples = 0;
  size_t max_tuples = 0;
  size_t total_tuples = 0;
  /// Morsels claimed per lane (morsel engine; zero on other paths).
  /// A round is balanced when max_morsels ≈ total_morsels / workers.
  size_t min_morsels = 0;
  size_t max_morsels = 0;
  size_t total_morsels = 0;

  double MeanTuples() const {
    return workers == 0
               ? 0.0
               : static_cast<double>(total_tuples) /
                     static_cast<double>(workers);
  }
};

/// Work counters collected during evaluation. All counters are
/// best-effort and intended for benchmarks/tests, not billing.
///
/// This struct is the stable façade over the obs metrics layer: hot
/// loops bump these plain fields (or thread-private copies later
/// summed with Add), and `PublishTo` folds the totals into a
/// `obs::MetricsRegistry` for any pluggable sink.
struct EvalStats {
  /// Fixpoint rounds executed (semi-naive: delta rounds; naive: full
  /// rounds), summed over all strata/components.
  size_t iterations = 0;
  /// Rule executions launched.
  size_t rule_applications = 0;
  /// Head tuples inserted for the first time.
  size_t derived_tuples = 0;
  /// Head tuples derived again (set semantics drops them).
  size_t duplicate_tuples = 0;
  /// Successful partial bindings while joining body literals (a proxy
  /// for join work).
  size_t bindings_explored = 0;
  /// Evaluable-literal (comparison) evaluations.
  size_t comparison_checks = 0;
  /// Extra compile-style work performed *during* evaluation (used by the
  /// runtime-residue baseline to account per-iteration residue
  /// processing).
  size_t runtime_residue_checks = 0;
  /// Plan-cache lookups that reused a cached (rule, delta) plan.
  size_t plan_cache_hits = 0;
  /// Plan-cache lookups that had to run the planner (cold or the input
  /// cardinalities crossed a log2 band since the cached plan was built).
  size_t plan_cache_misses = 0;
  /// Head blocks flushed by the batched executor (ExecutePlanBatched).
  size_t batches = 0;
  /// Morsels executed by the parallel engine (driving-relation row
  /// ranges pulled off the shared round cursor).
  size_t morsels = 0;
  /// Morsels claimed by a lane other than the one a static contiguous
  /// split would have assigned them to — the dynamic load balancing a
  /// fixed partition scheme forgoes.
  size_t morsel_steals = 0;
  /// Wall time of the whole Evaluate call (both engines), nanoseconds.
  uint64_t eval_ns = 0;
  /// Largest per-round delta (tuples across the component's predicates)
  /// the semi-naive fixpoint carried — the working-set high-water mark.
  size_t peak_delta_tuples = 0;

  /// Per-round timeline (stratum, wall time, delta sizes); filled by
  /// both engines whenever stats are collected at all.
  std::vector<RoundTiming> rounds;
  /// Per-rule breakdown; empty unless EvalOptions::collect_metrics.
  std::map<std::string, RuleStats> per_rule;
  /// Per-round worker balance; filled by the parallel evaluator when
  /// collect_metrics is set.
  std::vector<RoundBalance> round_balance;

  void Add(const EvalStats& other) {
    iterations += other.iterations;
    rule_applications += other.rule_applications;
    derived_tuples += other.derived_tuples;
    duplicate_tuples += other.duplicate_tuples;
    bindings_explored += other.bindings_explored;
    comparison_checks += other.comparison_checks;
    runtime_residue_checks += other.runtime_residue_checks;
    plan_cache_hits += other.plan_cache_hits;
    plan_cache_misses += other.plan_cache_misses;
    batches += other.batches;
    morsels += other.morsels;
    morsel_steals += other.morsel_steals;
    eval_ns += other.eval_ns;
    peak_delta_tuples = peak_delta_tuples > other.peak_delta_tuples
                            ? peak_delta_tuples
                            : other.peak_delta_tuples;
    rounds.insert(rounds.end(), other.rounds.begin(), other.rounds.end());
    for (const auto& [label, rs] : other.per_rule) per_rule[label].Add(rs);
    round_balance.insert(round_balance.end(), other.round_balance.begin(),
                         other.round_balance.end());
  }

  /// One-line summary of the scalar totals (unchanged legacy format).
  std::string ToString() const;

  /// Multi-line structured report: totals, per-rule derived/duplicate
  /// counts, and per-round worker balance when present.
  std::string Report() const;

  /// Folds the counters into `registry` under `prefix` ("eval" ->
  /// "eval.derived_tuples", "eval.rule.r0.derived", ...). Histograms
  /// "eval.round_tuples_per_worker_{min,max}" capture balance.
  void PublishTo(obs::MetricsRegistry& registry,
                 std::string_view prefix = "eval") const;
};

}  // namespace semopt

#endif  // SEMOPT_EVAL_EVAL_STATS_H_
