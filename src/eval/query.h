#ifndef SEMOPT_EVAL_QUERY_H_
#define SEMOPT_EVAL_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "ast/program.h"
#include "eval/fixpoint.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// The answer to a query: one row per distinct binding of the
/// projection variables, in derivation order.
struct QueryResult {
  /// The projected variables, in the order given to AnswerQuery.
  std::vector<SymbolId> variables;
  std::vector<Tuple> tuples;

  bool empty() const { return tuples.empty(); }
  size_t size() const { return tuples.size(); }

  /// Renders one row per line: "X=a, Y=b".
  std::string ToString() const;
};

/// Answers a conjunctive query `body` over `program`+`edb`, projecting
/// onto `projection` (each must be a variable occurring in the body).
/// Internally builds the rule `query$(projection) :- body`, evaluates,
/// and reads off the answer relation.
Result<QueryResult> AnswerQuery(const Program& program, const Database& edb,
                                const std::vector<Literal>& body,
                                const std::vector<Term>& projection,
                                const EvalOptions& options = EvalOptions(),
                                EvalStats* stats = nullptr);

/// Parses `query_text` (a literal list, e.g. "anc(X, Xa, Y, Ya), Ya > 50")
/// and answers it, projecting onto all its variables in first-occurrence
/// order.
Result<QueryResult> AnswerQuery(const Program& program, const Database& edb,
                                std::string_view query_text,
                                const EvalOptions& options = EvalOptions(),
                                EvalStats* stats = nullptr);

}  // namespace semopt

#endif  // SEMOPT_EVAL_QUERY_H_
