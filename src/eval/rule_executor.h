#ifndef SEMOPT_EVAL_RULE_EXECUTOR_H_
#define SEMOPT_EVAL_RULE_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <functional>
#include <vector>

#include "ast/rule.h"
#include "eval/eval_stats.h"
#include "storage/relation.h"
#include "util/result.h"

namespace semopt {

/// Resolves predicate names to stored relations during evaluation.
/// `Full` must return the current complete relation (or nullptr for an
/// absent/empty one). `Delta` returns the per-round delta relation for
/// predicates participating in the current semi-naive loop (nullptr when
/// the predicate has no delta, in which case Full is used).
class RelationSource {
 public:
  virtual ~RelationSource() = default;
  virtual const Relation* Full(const PredicateId& pred) const = 0;
  virtual const Relation* Delta(const PredicateId& pred) const = 0;
};

/// Receives each head tuple derived by a rule execution.
using TupleSink = std::function<void(const Tuple&)>;

/// A slot-compiled executor for one rule.
///
/// Construction validates safety (every literal can be ordered so its
/// variables are bound when needed) and assigns dense frame slots.
/// Execution plans the join order greedily — most-bound literals first,
/// evaluable literals as soon as their variables are bound, `=`
/// literals allowed to bind one side — with ties broken by the *actual
/// current cardinality* of each literal's relation, so cheap auxiliary
/// relations are probed before expensive fan-out joins. Joins run as
/// index nested loops probing hash indexes on the bound columns.
class RuleExecutor {
 public:
  /// Plans `rule`. Fails for unsafe rules.
  static Result<RuleExecutor> Create(const Rule& rule);

  /// Runs the rule to completion. `delta_literal` is an index into the
  /// ORIGINAL body (not the planned order) whose relation is read from
  /// `source.Delta(...)`; pass -1 to read everything from Full. Each
  /// derived head tuple is passed to `sink`. `stats` may be null.
  /// `size_aware` selects cardinality-aware planning (default); pass
  /// false to use the size-blind static order (ablation bench A1).
  void Execute(const RelationSource& source, int delta_literal,
               const TupleSink& sink, EvalStats* stats,
               bool size_aware = true) const;

  const Rule& rule() const { return rule_; }

  /// The size-blind (static) evaluation order as original-body indices,
  /// for tests and plan inspection.
  const std::vector<size_t>& plan_order() const { return static_order_; }

  /// Number of variable slots in the execution frame.
  size_t slot_count() const { return slot_count_; }

 private:
  // How one term of a literal is fetched at run time.
  struct TermSpec {
    bool is_constant = false;
    Value constant = Term::Int(0);  // when is_constant
    uint32_t slot = 0;              // when !is_constant
    bool bound = false;  // statically known: bound before this literal
  };
  struct LiteralStep {
    size_t original_index = 0;  // position in rule_.body()
    bool is_comparison = false;
    bool negated = false;
    // Relational:
    PredicateId pred{0, 0};
    std::vector<TermSpec> args;
    std::vector<uint32_t> probe_columns;  // columns with bound TermSpecs
    // Comparison:
    ComparisonOp op = ComparisonOp::kEq;
    TermSpec lhs, rhs;
    bool eq_binds = false;  // `=` with exactly one unbound variable side
  };
  struct Plan {
    std::vector<LiteralStep> steps;
    std::vector<TermSpec> head_specs;
  };

  RuleExecutor() : rule_("", Atom(SymbolId(0), {}), {}) {}

  /// Greedy planner. `size_of` estimates a literal's input cardinality
  /// (SIZE_MAX when unknown); pass nullptr for the size-blind plan.
  Result<Plan> BuildPlan(
      const std::function<size_t(size_t)>* size_of) const;

  void ExecuteStep(const Plan& plan, const RelationSource& source,
                   int delta_literal, size_t step_index,
                   std::vector<Value>* frame, std::vector<bool>* bound,
                   const TupleSink& sink, EvalStats* stats) const;

  Rule rule_;
  std::vector<size_t> static_order_;
  std::map<SymbolId, uint32_t> slots_;
  size_t slot_count_ = 0;
};

}  // namespace semopt

#endif  // SEMOPT_EVAL_RULE_EXECUTOR_H_
