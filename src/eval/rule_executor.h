#ifndef SEMOPT_EVAL_RULE_EXECUTOR_H_
#define SEMOPT_EVAL_RULE_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <functional>
#include <memory>
#include <vector>

#include "ast/rule.h"
#include "eval/eval_stats.h"
#include "storage/relation.h"
#include "util/result.h"

namespace semopt {

/// Resolves predicate names to stored relations during evaluation.
/// `Full` must return the current complete relation (or nullptr for an
/// absent/empty one). `Delta` returns the per-round delta relation for
/// predicates participating in the current semi-naive loop (nullptr when
/// the predicate has no delta, in which case Full is used).
class RelationSource {
 public:
  virtual ~RelationSource() = default;
  virtual const Relation* Full(const PredicateId& pred) const = 0;
  virtual const Relation* Delta(const PredicateId& pred) const = 0;
};

/// Receives each head tuple derived by a rule execution as a zero-copy
/// view. The view is only valid for the duration of the call: sinks
/// that keep tuples must copy them out (TupleBuffer::Append or
/// Relation::Insert both do).
using TupleSink = std::function<void(RowRef)>;

/// A slot-compiled executor for one rule.
///
/// Construction validates safety (every literal can be ordered so its
/// variables are bound when needed) and assigns dense frame slots.
/// Execution plans the join order greedily — most-bound literals first,
/// evaluable literals as soon as their variables are bound, `=`
/// literals allowed to bind one side — with ties broken by the *actual
/// current cardinality* of each literal's relation, so cheap auxiliary
/// relations are probed before expensive fan-out joins. Joins run as
/// index nested loops probing hash indexes on the bound columns.
class RuleExecutor {
 private:
  struct Plan;  // defined privately below; PreparedPlan keeps it opaque

 public:
  /// A plan bound to the relation-cardinality snapshot it was built
  /// against, produced by `Prepare` and consumed by `ExecutePlan`.
  /// Cheap to copy (shared immutable state), safe to share across
  /// threads.
  class PreparedPlan {
   public:
    PreparedPlan() = default;

   private:
    friend class RuleExecutor;
    std::shared_ptr<const Plan> plan_;
  };

  /// Plans `rule`. Fails for unsafe rules.
  static Result<RuleExecutor> Create(const Rule& rule);

  /// Runs the rule to completion. `delta_literal` is an index into the
  /// ORIGINAL body (not the planned order) whose relation is read from
  /// `source.Delta(...)`; pass -1 to read everything from Full. Each
  /// derived head tuple is passed to `sink`. `stats` may be null.
  /// `size_aware` selects cardinality-aware planning (default); pass
  /// false to use the size-blind static order (ablation bench A1).
  /// Equivalent to Prepare + ExecutePlan.
  void Execute(const RelationSource& source, int delta_literal,
               const TupleSink& sink, EvalStats* stats,
               bool size_aware = true) const;

  /// Plans against the current relation cardinalities of `source` and
  /// pre-builds (EnsureIndex) every hash index the plan will probe.
  /// This is the single point where evaluation mutates shared index
  /// state, so it must not run concurrently with ExecutePlan on the
  /// same relations; call it from the coordinator between rounds.
  /// When `skip_delta_index` is true the `delta_literal` step's index
  /// is left to the caller (the parallel evaluator indexes each
  /// worker's private delta partition instead).
  Result<PreparedPlan> Prepare(const RelationSource& source,
                               int delta_literal, bool size_aware = true,
                               bool skip_delta_index = false) const;

  /// Executes a prepared plan. Strictly read-only on the relations of
  /// `source` (all probed indexes exist by the Prepare contract), so
  /// concurrent calls with distinct sinks/stats are thread-safe.
  void ExecutePlan(const PreparedPlan& plan, const RelationSource& source,
                   int delta_literal, const TupleSink& sink,
                   EvalStats* stats) const;

  /// The original-body index of the first positive relational step in
  /// `plan`'s order, or -1 if the body has none. The parallel evaluator
  /// partitions this (outermost-scanned) literal's relation when there
  /// is no delta to partition.
  int FirstPositiveStep(const PreparedPlan& plan) const;

  /// The columns `plan` probes at the step for original-body literal
  /// `literal_index` (empty = full scan there). Workers use this to
  /// index private delta partitions before ExecutePlan.
  std::vector<uint32_t> ProbeColumnsFor(const PreparedPlan& plan,
                                        int literal_index) const;

  const Rule& rule() const { return rule_; }

  /// The size-blind (static) evaluation order as original-body indices,
  /// for tests and plan inspection.
  const std::vector<size_t>& plan_order() const { return static_order_; }

  /// Number of variable slots in the execution frame.
  size_t slot_count() const { return slot_count_; }

 private:
  // How one term of a literal is fetched at run time.
  struct TermSpec {
    bool is_constant = false;
    Value constant = Term::Int(0);  // when is_constant
    uint32_t slot = 0;              // when !is_constant
    bool bound = false;  // statically known: bound before this literal
  };
  struct LiteralStep {
    size_t original_index = 0;  // position in rule_.body()
    bool is_comparison = false;
    bool negated = false;
    // Relational:
    PredicateId pred{0, 0};
    std::vector<TermSpec> args;
    std::vector<uint32_t> probe_columns;  // columns with bound TermSpecs
    // Comparison:
    ComparisonOp op = ComparisonOp::kEq;
    TermSpec lhs, rhs;
    bool eq_binds = false;  // `=` with exactly one unbound variable side
  };
  struct Plan {
    std::vector<LiteralStep> steps;
    std::vector<TermSpec> head_specs;
    /// Per-step offsets into ExecContext::newly_bound (each step may
    /// bind at most its own arity of fresh slots).
    std::vector<size_t> scratch_offsets;
    size_t scratch_size = 0;
    /// Widest probe key / negated membership row / head tuple the plan
    /// ever materializes into the shared scratch row.
    size_t max_row_width = 0;
  };

  /// Per-execution working state, allocated once in ExecutePlan and
  /// reused across the whole scan: no per-binding or per-derivation
  /// vectors on the join path.
  struct ExecContext {
    std::vector<Value> frame;          // slot values
    std::vector<char> bound;           // slot bound flags
    std::vector<uint32_t> newly_bound; // per-step slices (scratch_offsets)
    std::vector<Value> scratch_row;    // probe keys, negation rows, heads
  };

  RuleExecutor() : rule_("", Atom(SymbolId(0), {}), {}) {}

  /// Greedy planner. `size_of` estimates a literal's input cardinality
  /// (SIZE_MAX when unknown); pass nullptr for the size-blind plan.
  Result<Plan> BuildPlan(
      const std::function<size_t(size_t)>* size_of) const;

  /// Materializes every index `plan` will probe on the relations it
  /// will read (delta-aware). The one mutation point of shared storage
  /// during evaluation; see Prepare.
  void EnsureProbeIndexes(const Plan& plan, const RelationSource& source,
                          int delta_literal, bool skip_delta_index) const;

  void ExecuteStep(const Plan& plan, const RelationSource& source,
                   int delta_literal, size_t step_index, ExecContext* ctx,
                   const TupleSink& sink, EvalStats* stats) const;

  Rule rule_;
  std::vector<size_t> static_order_;
  std::map<SymbolId, uint32_t> slots_;
  size_t slot_count_ = 0;
};

}  // namespace semopt

#endif  // SEMOPT_EVAL_RULE_EXECUTOR_H_
