#ifndef SEMOPT_EVAL_RULE_EXECUTOR_H_
#define SEMOPT_EVAL_RULE_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "ast/rule.h"
#include "eval/cost_planner.h"
#include "eval/eval_stats.h"
#include "storage/relation.h"
#include "util/result.h"
#include "util/simd.h"

namespace semopt {

/// Resolves predicate names to stored relations during evaluation.
/// `Full` must return the current complete relation (or nullptr for an
/// absent/empty one). `Delta` returns the per-round delta relation for
/// predicates participating in the current semi-naive loop (nullptr when
/// the predicate has no delta, in which case Full is used).
class RelationSource {
 public:
  virtual ~RelationSource() = default;
  virtual const Relation* Full(const PredicateId& pred) const = 0;
  virtual const Relation* Delta(const PredicateId& pred) const = 0;
};

/// Receives each head tuple derived by a rule execution as a zero-copy
/// view. The view is only valid for the duration of the call: sinks
/// that keep tuples must copy them out (TupleBuffer::Append or
/// Relation::Insert both do).
using TupleSink = std::function<void(RowRef)>;

/// Receives derived head tuples a block at a time: a flat TupleBuffer
/// of up to the configured batch size, valid only for the duration of
/// the call (the executor recycles it for the next block). The batched
/// executor pays one sink dispatch per ~batch_size tuples instead of
/// one type-erased call per tuple.
using BatchSink = std::function<void(const TupleBuffer&)>;

/// A slot-compiled executor for one rule.
///
/// Construction validates safety (every literal can be ordered so its
/// variables are bound when needed) and assigns dense frame slots.
/// Execution plans the join order greedily — most-bound literals first,
/// evaluable literals as soon as their variables are bound, `=`
/// literals allowed to bind one side — with ties broken by the *actual
/// current cardinality* of each literal's relation, so cheap auxiliary
/// relations are probed before expensive fan-out joins. Joins run as
/// index nested loops probing hash indexes on the bound columns —
/// tuple-at-a-time through `ExecutePlan`, or block-at-a-time through
/// `ExecutePlanBatched`, which streams flat frame blocks through the
/// step pipeline so hashing, filtering and negation membership tests
/// run in tight loops over contiguous data.
class RuleExecutor {
 private:
  struct Plan;          // defined privately below; PreparedPlan keeps it opaque
  struct BatchContext;  // ditto; BatchScratch keeps it opaque

 public:
  /// Default frame/head block size for the batched executor: large
  /// enough to amortize per-block dispatch, small enough that a block
  /// of widest frames stays cache-resident (see DESIGN.md §10).
  static constexpr size_t kDefaultBatchSize = 1024;

  /// Sentinel `morsel_end`: no row-range restriction (the driving
  /// step — when one is marked at all — reads its whole relation).
  static constexpr size_t kNoMorsel = static_cast<size_t>(-1);

  /// A plan bound to the relation-cardinality snapshot it was built
  /// against, produced by `Prepare` and consumed by `ExecutePlan`.
  /// Cheap to copy (shared immutable state), safe to share across
  /// threads.
  class PreparedPlan {
   public:
    PreparedPlan() = default;

   private:
    friend class RuleExecutor;
    std::shared_ptr<const Plan> plan_;
  };

  /// Caller-owned reusable working state for `ExecutePlanBatched`:
  /// holding one per worker lane lets a morsel loop run thousands of
  /// executions (possibly of different plans) while touching the
  /// allocator only until every buffer has reached its steady-state
  /// capacity. Not thread-safe; one scratch serves one lane.
  class BatchScratch {
   public:
    BatchScratch();
    ~BatchScratch();
    BatchScratch(BatchScratch&&) noexcept;
    BatchScratch& operator=(BatchScratch&&) noexcept;

   private:
    friend class RuleExecutor;
    std::unique_ptr<BatchContext> ctx_;
  };

  /// Plans `rule`. Fails for unsafe rules.
  static Result<RuleExecutor> Create(const Rule& rule);

  /// Runs the rule to completion. `delta_literal` is an index into the
  /// ORIGINAL body (not the planned order) whose relation is read from
  /// `source.Delta(...)`; pass -1 to read everything from Full. Each
  /// derived head tuple is passed to `sink`. `stats` may be null.
  /// `size_aware` selects cardinality-aware planning (default); pass
  /// false to use the size-blind static order (ablation bench A1).
  /// Equivalent to Prepare + ExecutePlan. This per-tuple entry point is
  /// the compatibility surface for explain/incremental/constraint-check
  /// callers; the fixpoint engines go through Prepare +
  /// ExecutePlanBatched.
  void Execute(const RelationSource& source, int delta_literal,
               const TupleSink& sink, EvalStats* stats,
               bool size_aware = true,
               PlannerMode planner = PlannerMode::kGreedy) const;

  /// Plans against the current relation cardinalities of `source` and
  /// pre-builds (EnsureIndex) every hash index the plan will probe.
  /// This is the single point where evaluation mutates shared index
  /// state, so it must not run concurrently with ExecutePlan on the
  /// same relations; call it from the coordinator between rounds.
  /// When `skip_delta_index` is true the `delta_literal` step's index
  /// is left to the caller (legacy partitioned mode indexed each
  /// worker's private delta slice).
  ///
  /// `partition` selects the morsel-partitionable plan shape for the
  /// parallel engine: the delta occurrence (when there is one) is
  /// forced to the front of the join order and marked as the plan's
  /// *driving* step; with no delta the plan's first positive step is
  /// marked instead. Morsels then carve the driving relation's row
  /// range across workers, so no other literal is ever re-scanned per
  /// task (the E8 binding-blowup). The driving step is executed as a
  /// range scan, so its probe index is intentionally NOT built — a
  /// partitioned plan must be executed with a morsel range, and must
  /// never be replayed by the serial engine (the plan cache keys on
  /// `partition` for exactly this reason).
  /// `planner` selects the join-order planner: kGreedy keeps the
  /// one-pass heuristic; kCost runs CostPlanner::Enumerate over the
  /// positive relational literals (falling back to greedy outside its
  /// envelope) and resolves CostFeedback cells so executions of the
  /// plan feed actual binding counts back into the cost model. Both
  /// regimes respect the same structural invariants: the delta rotates
  /// to the front of partitioned plans, the driving step is marked
  /// after ordering, and batch fusion/tail emission run on the chosen
  /// order.
  Result<PreparedPlan> Prepare(const RelationSource& source,
                               int delta_literal, bool size_aware = true,
                               bool skip_delta_index = false,
                               bool partition = false,
                               PlannerMode planner = PlannerMode::kGreedy)
      const;

  /// Re-ensures every index `plan` probes still exists — a cheap no-op
  /// when they all do. The plan cache calls this on a hit: a cached
  /// plan's relations keep their indexes across rounds, but the
  /// semi-naive delta double-buffers swap relation objects, so a hit
  /// must still patch up an index missing on the freshly-swapped
  /// buffer. Same single-threaded coordinator contract as Prepare.
  void EnsurePlanIndexes(const PreparedPlan& plan,
                         const RelationSource& source, int delta_literal,
                         bool skip_delta_index = false) const;

  /// Executes a prepared plan tuple-at-a-time. Strictly read-only on
  /// the relations of `source` (all probed indexes exist by the Prepare
  /// contract), so concurrent calls with distinct sinks/stats are
  /// thread-safe.
  ///
  /// `[morsel_begin, morsel_end)` restricts the plan's driving step
  /// (Prepare with `partition`) to that row range of its relation —
  /// one morsel of the morsel-driven parallel engine. The union of the
  /// executions over a partition of the driving relation's rows equals
  /// the unrestricted execution (every derivation extends exactly one
  /// driving row), with the logical counters splitting exactly. The
  /// defaults leave unpartitioned plans untouched.
  void ExecutePlan(const PreparedPlan& plan, const RelationSource& source,
                   int delta_literal, const TupleSink& sink, EvalStats* stats,
                   size_t morsel_begin = 0,
                   size_t morsel_end = kNoMorsel) const;

  /// Executes a prepared plan block-at-a-time: every LiteralStep
  /// consumes a flat block of up to `batch_size` frames and emits the
  /// next block, and head tuples reach `sink` in TupleBuffer blocks.
  /// Derives exactly the same tuple multiset as ExecutePlan with
  /// identical logical counters (bindings/comparisons), in a different
  /// (breadth-first) order. Same thread-safety contract as ExecutePlan.
  /// `delta_literal` must be the value the plan was prepared with, or —
  /// when it was prepared with -1 — the plan's FirstPositiveStep (the
  /// parallel partitioner's split), which the batch lowering never
  /// fuses away.
  ///
  /// `[morsel_begin, morsel_end)` is the driving-step row range (see
  /// ExecutePlan). `scratch`, when given, is reused working state —
  /// pass one per worker lane so a stream of morsel executions stops
  /// allocating once buffers reach steady-state capacity.
  ///
  /// `vectorize` enables the data-parallel step implementations:
  /// selection-vector comparison filters, batch-hashed negation
  /// membership, column-wise probe-key gathers, and columnar
  /// (ColumnView + SIMD kernel) scan checks. The derived blocks and
  /// logical counters are bit-identical either way — only the
  /// evaluation schedule changes. The default follows the build/env
  /// gate; the fixpoint engines pass ResolveSimdMode(options.simd).
  void ExecutePlanBatched(const PreparedPlan& plan,
                          const RelationSource& source, int delta_literal,
                          const BatchSink& sink, EvalStats* stats,
                          size_t batch_size = kDefaultBatchSize,
                          size_t morsel_begin = 0,
                          size_t morsel_end = kNoMorsel,
                          BatchScratch* scratch = nullptr,
                          bool vectorize = simd::KernelsEnabled()) const;

  /// The original-body index of the driving step a partitioned Prepare
  /// marked (the literal whose relation morsels carve up), or -1 for
  /// plans prepared without `partition` and for bodies with no
  /// positive relational step.
  int DrivingLiteral(const PreparedPlan& plan) const;

  /// The original-body index of the first positive relational step in
  /// `plan`'s order, or -1 if the body has none. The parallel evaluator
  /// partitions this (outermost-scanned) literal's relation when there
  /// is no delta to partition.
  int FirstPositiveStep(const PreparedPlan& plan) const;

  /// The columns `plan` probes at the step for original-body literal
  /// `literal_index` (empty = full scan there). Workers use this to
  /// index private delta partitions before ExecutePlan.
  std::vector<uint32_t> ProbeColumnsFor(const PreparedPlan& plan,
                                        int literal_index) const;

  /// Human-readable description of `plan`: one line per step in
  /// execution order showing the literal, its access path (scan or
  /// probe[columns]) and the delta marker. Backs the shell's `:plan`.
  std::string DescribePlan(const PreparedPlan& plan,
                           int delta_literal = -1) const;

  const Rule& rule() const { return rule_; }

  /// The size-blind (static) evaluation order as original-body indices,
  /// for tests and plan inspection.
  const std::vector<size_t>& plan_order() const { return static_order_; }

  /// Number of variable slots in the execution frame.
  size_t slot_count() const { return slot_count_; }

 private:
  // How one term of a literal is fetched at run time.
  struct TermSpec {
    bool is_constant = false;
    Value constant = Term::Int(0);  // when is_constant
    uint32_t slot = 0;              // when !is_constant
    bool bound = false;  // statically known: bound before this literal
  };
  /// How one column of a positive relational step extends or filters a
  /// frame when a matching row comes back, precomputed at plan time so
  /// the batched join kernel is branch-light:
  ///  - kCheckConst: column must equal `constant` (scan path only;
  ///    probed columns are guaranteed equal by the index lookup)
  ///  - kCheckSlot:  column must equal the already-bound frame slot
  ///    (scan path only, same reason)
  ///  - kBind:       first occurrence of an unbound variable; writes
  ///    the row value into `slot`
  ///  - kCheckRepeat: later occurrence of a variable bound by a kBind
  ///    earlier in this same literal; compares the column against
  ///    `other_col`, the first occurrence's column in the same row
  struct ColumnAction {
    enum Kind : uint8_t { kCheckConst, kCheckSlot, kBind, kCheckRepeat };
    Kind kind = kBind;
    uint32_t col = 0;
    uint32_t slot = 0;
    uint32_t other_col = 0;  // kCheckRepeat: first occurrence's column
    Value constant = Term::Int(0);
  };
  /// A later non-binding relational step folded into a producing step's
  /// emit filter by the batch lowering (see Prepare). By the time the
  /// host step extends a frame, every argument of the fused literal is
  /// a constant, an already-bound frame slot, or a column the host
  /// binds from its matched row — so the whole step collapses to one
  /// membership test, and frames it rejects are never materialized into
  /// the next block. The per-tuple executor needs no such lowering: its
  /// depth-first recursion never materializes doomed frames to begin
  /// with.
  struct FusedCheck {
    struct Source {
      enum Kind : uint8_t { kConst, kFrame, kRow };
      Kind kind = kConst;
      uint32_t idx = 0;               // frame slot (kFrame) / row column (kRow)
      Value constant = Term::Int(0);  // kConst
    };
    PredicateId pred{0, 0};
    bool negated = false;
    size_t original_index = 0;  // body position of the fused literal
    std::vector<Source> sources;  // one per column of the fused literal
  };
  struct LiteralStep {
    size_t original_index = 0;  // position in rule_.body()
    bool is_comparison = false;
    bool negated = false;
    // Relational:
    PredicateId pred{0, 0};
    std::vector<TermSpec> args;
    std::vector<uint32_t> probe_columns;  // columns with bound TermSpecs
    /// Frame-extension recipe for the batched kernel, split so each
    /// inner loop runs without dead branches: a candidate row is first
    /// validated (reading only the row and the input frame — nothing is
    /// written until it matches), then the surviving frame is copied
    /// once and `bind_actions` writes the fresh bindings.
    /// `probe_checks` holds only within-literal repeat checks (the
    /// probe guarantees every bound column); `scan_checks` holds every
    /// check (full-scan path has no index guarantees).
    std::vector<ColumnAction> bind_actions;
    std::vector<ColumnAction> probe_checks;
    std::vector<ColumnAction> scan_checks;
    /// Batch-only: membership checks fused into this step's emit filter
    /// from immediately-following non-binding relational steps.
    std::vector<FusedCheck> fused;
    // Comparison:
    ComparisonOp op = ComparisonOp::kEq;
    TermSpec lhs, rhs;
    bool eq_binds = false;  // `=` with exactly one unbound variable side
  };
  struct Plan {
    std::vector<LiteralStep> steps;
    /// Index into `steps` of the morsel-driving step (Prepare with
    /// `partition`), or -1. The driving step is always executed as a
    /// range scan over `[morsel_begin, morsel_end)` of its relation —
    /// its probe index is never built — so each morsel touches a
    /// disjoint row range and no other literal is re-scanned per task.
    int driving_step = -1;
    /// Steps the batched executor runs, as indices into `steps`: the
    /// per-tuple order minus the pure-check steps fused into earlier
    /// hosts by FuseBatchChecks. The per-tuple executor always walks
    /// `steps` unchanged. The first positive relational step is never
    /// fused away (a fused check needs an earlier positive host), so a
    /// plan prepared with delta_literal = -1 may still be executed with
    /// the partitioner's FirstPositiveStep as the delta.
    std::vector<size_t> batch_steps;
    std::vector<TermSpec> head_specs;
    /// Batch-only tail emission: when the last batch step is a positive
    /// relational step, its extend loop projects head rows directly
    /// from (input frame, matched row) — the final (and largest) frame
    /// stream is never materialized into a block. One Source per head
    /// column, mirroring head_specs; `tail_emit` is false when the
    /// plan's shape disqualifies it (no batch steps, or a comparison /
    /// negated tail, which copy frames rather than extend them).
    std::vector<FusedCheck::Source> tail_head_sources;
    bool tail_emit = false;
    /// Per-step offsets into ExecContext::newly_bound (each step may
    /// bind at most its own arity of fresh slots).
    std::vector<size_t> scratch_offsets;
    size_t scratch_size = 0;
    /// Widest probe key / negated membership row / head tuple the plan
    /// ever materializes into the shared scratch row.
    size_t max_row_width = 0;
    /// Planner regime the plan was built under, and whether the cost
    /// enumerator's order was actually used (false under kCost means
    /// the body fell outside the enumerable envelope and the greedy
    /// order was kept; see CostPlanner::Enumerate).
    PlannerMode planner = PlannerMode::kGreedy;
    bool cost_ordered = false;
    /// Cost-ordered plans: estimated bindings per ORIGINAL body literal
    /// over a whole (unrestricted) execution; -1 for literals without
    /// an estimate. Drives DescribePlan's est/actual columns and the
    /// post-execution feedback fold.
    std::vector<double> est_rows;
    /// Cost-ordered plans: the CostFeedback cell per original body
    /// literal (nullptr where no estimate exists). Empty for greedy
    /// plans, so the greedy execution path never touches the store.
    std::vector<CostFeedback::Cell*> feedback;
  };

  /// Per-execution working state, allocated once in ExecutePlan and
  /// reused across the whole scan: no per-binding or per-derivation
  /// vectors on the join path.
  struct ExecContext {
    std::vector<Value> frame;          // slot values
    std::vector<char> bound;           // slot bound flags
    std::vector<uint32_t> newly_bound; // per-step slices (scratch_offsets)
    std::vector<Value> scratch_row;    // probe keys, negation rows, heads
    // Per original-body-literal positive-match counts for this
    // execution (the per-literal split of bindings_explored; feeds the
    // cost planner's feedback fold).
    std::vector<uint64_t> literal_bindings;
    // Driving-step row range (morsel); kNoMorsel = unrestricted.
    size_t morsel_begin = 0;
    size_t morsel_end = kNoMorsel;
  };

  /// A flat row-major block of execution frames (`rows * slot_count_`
  /// values). At every step boundary the set of bound slots is
  /// statically known (the planner's running bound set), so blocks
  /// carry no per-frame bound flags — unbound slots simply hold
  /// whatever the previous occupant left.
  struct FrameBlock {
    std::vector<Value> data;
    size_t rows = 0;

    void Clear() {
      data.clear();
      rows = 0;
    }
  };
  /// Per-step working state for one batched execution: the step's input
  /// block plus its probe scratch. Each step owns its scratch because a
  /// block flush recurses into deeper steps mid-iteration.
  struct StepScratch {
    FrameBlock input;
    std::vector<Value> keys;            // gathered probe keys, flat
    std::vector<size_t> key_hashes;     // ProbeBatch hash scratch
    std::vector<std::span<const RowId>> hit_spans;  // per-key matches
    std::vector<const Relation*> fused_rels;  // resolved per execution
    // Vectorized paths only: the scanned relation's columnar snapshot
    // plus the selection vectors of the column-at-a-time scan checks
    // (`base_sel` holds the frame-independent residue, `sel` the
    // per-frame refinement; comparisons/negation reuse `sel`).
    std::shared_ptr<const ColumnView> columns;
    std::vector<uint32_t> base_sel;
    std::vector<uint32_t> sel;
  };
  struct BatchContext {
    size_t batch_size = kDefaultBatchSize;
    std::vector<StepScratch> steps;
    std::vector<Value> row_scratch;  // negation rows, head rows
    TupleBuffer heads{0};
    size_t batches = 0;  // head blocks flushed to the sink
    // Driving-step row range (morsel); kNoMorsel = unrestricted.
    size_t morsel_begin = 0;
    size_t morsel_end = kNoMorsel;
    // Use the data-parallel step implementations (see
    // ExecutePlanBatched's `vectorize`).
    bool vectorize = true;
    // Logical counters, folded into EvalStats once at the end.
    size_t bindings = 0;
    size_t comparisons = 0;
    // Per original-body-literal split of `bindings` (cost-planner
    // feedback fold); zeroed per execution call.
    std::vector<uint64_t> literal_bindings;
  };

  RuleExecutor() : rule_("", Atom(SymbolId(0), {}), {}) {}

  /// Frame slot of variable `v`; binary search over the flat sorted
  /// slot table (rule bodies are small, so this beats a node-based map
  /// on the plan-construction path).
  uint32_t SlotFor(SymbolId v) const;

  /// Greedy planner. `size_of` estimates a literal's input cardinality
  /// (SIZE_MAX when unknown); pass nullptr for the size-blind plan.
  /// `force_first`, when >= 0, is an original-body index whose literal
  /// is scheduled as early as the safety/binding constraints allow —
  /// in practice first among the relational steps, since a positive
  /// literal needs no prior bindings. Partitioned Prepare uses it to
  /// rotate the delta occurrence to the front of the join order.
  /// `relational_order`, when given, replaces the greedy pick among the
  /// positive relational literals with that exact sequence of
  /// original-body indices (the cost enumerator's output); filters,
  /// negations and binding `=` still interleave at their earliest safe
  /// position exactly as under the greedy planner.
  Result<Plan> BuildPlan(const std::function<size_t(size_t)>* size_of,
                         int force_first = -1,
                         const std::vector<size_t>* relational_order =
                             nullptr) const;

  /// Materializes every index `plan` will probe on the relations it
  /// will read (delta-aware). The one mutation point of shared storage
  /// during evaluation; see Prepare.
  void EnsureProbeIndexes(const Plan& plan, const RelationSource& source,
                          int delta_literal, bool skip_delta_index) const;

  /// Batch lowering pass (Prepare): folds each contiguous run of
  /// non-binding, non-delta relational steps into the closest preceding
  /// positive relational step's `fused` list and drops them from
  /// `batch_steps`. Runs break at comparisons, negated survivors and
  /// binding steps so the logical counters (bindings/comparisons) stay
  /// bit-identical to the per-tuple order.
  static void FuseBatchChecks(Plan* plan, int delta_literal);

  /// Folds one execution call's per-original-literal match counts into
  /// the plan's CostFeedback cells (no-op for plans without feedback
  /// cells, i.e. every greedy plan). `[morsel_begin, morsel_end)`
  /// scales the whole-execution estimates down to this call's share of
  /// the driving relation, so a morsel execution records its slice of
  /// the estimate against its slice of the actuals.
  void RecordFeedback(const Plan& plan, const RelationSource& source,
                      int delta_literal,
                      const std::vector<uint64_t>& literal_bindings,
                      size_t morsel_begin, size_t morsel_end) const;

  void ExecuteStep(const Plan& plan, const RelationSource& source,
                   int delta_literal, size_t step_index, ExecContext* ctx,
                   const TupleSink& sink, EvalStats* stats) const;

  /// Batched engine: drains `ctx->steps[step_index].input` through the
  /// remaining steps, flushing intermediate blocks whenever they fill.
  void RunBatchFrom(const Plan& plan, const RelationSource& source,
                    int delta_literal, size_t step_index, BatchContext* ctx,
                    const BatchSink& sink) const;

  Rule rule_;
  std::vector<size_t> static_order_;
  /// Variable→slot table, sorted by symbol id. Slots are dense
  /// 0..slot_count_-1 (asserted in Create): frame blocks index by slot.
  std::vector<std::pair<SymbolId, uint32_t>> slots_;
  size_t slot_count_ = 0;
};

}  // namespace semopt

#endif  // SEMOPT_EVAL_RULE_EXECUTOR_H_
