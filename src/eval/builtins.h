#ifndef SEMOPT_EVAL_BUILTINS_H_
#define SEMOPT_EVAL_BUILTINS_H_

#include "ast/atom.h"
#include "util/result.h"

namespace semopt {

/// Total order over ground terms used by the comparison builtins:
/// integers order numerically; symbols order lexicographically by name;
/// across kinds, all integers precede all symbols. Returns <0, 0, >0.
int CompareValues(const Term& a, const Term& b);

/// Evaluates `lhs op rhs` over ground terms.
bool EvalComparisonOp(const Term& lhs, ComparisonOp op, const Term& rhs);

/// Evaluates a ground comparison literal (honouring its negation flag).
/// Fails if either side is a variable.
Result<bool> EvalComparison(const Literal& literal);

}  // namespace semopt

#endif  // SEMOPT_EVAL_BUILTINS_H_
