#include "eval/constraint_check.h"

#include <map>
#include <set>

#include "ast/rename.h"
#include "eval/builtins.h"
#include "eval/rule_executor.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// RelationSource over a single database (no deltas).
class EdbSource : public RelationSource {
 public:
  explicit EdbSource(const Database* db) : db_(db) {}
  const Relation* Full(const PredicateId& pred) const override {
    return db_->Find(pred);
  }
  const Relation* Delta(const PredicateId&) const override { return nullptr; }

 private:
  const Database* db_;
};

/// Enumerates the ground instantiations of `ic`'s body over `edb`,
/// passing each complete variable binding (over CollectVariables of the
/// body) to `on_binding`.
Status ForEachBodyBinding(
    const Database& edb, const Constraint& ic,
    const std::function<void(const std::map<SymbolId, Value>&)>& on_binding) {
  std::vector<SymbolId> vars = CollectVariables(ic.body());
  std::vector<Term> head_args;
  head_args.reserve(vars.size());
  for (SymbolId v : vars) head_args.push_back(Term::Var(v));
  Rule probe_rule("ic$probe", Atom("ic$body", head_args), ic.body());
  SEMOPT_ASSIGN_OR_RETURN(RuleExecutor exec, RuleExecutor::Create(probe_rule));
  EdbSource source(&edb);
  exec.Execute(source, -1,
               [&](RowRef t) {
                 std::map<SymbolId, Value> binding;
                 for (size_t i = 0; i < vars.size(); ++i) {
                   binding.emplace(vars[i], t[i]);
                 }
                 on_binding(binding);
               },
               nullptr);
  return Status::Ok();
}

/// Checks the (possibly existential) IC head under `binding`. Head
/// variables not bound by the body are existentially quantified.
Result<bool> HeadHolds(const Database& edb, const Literal& head,
                       const std::map<SymbolId, Value>& binding) {
  auto resolve = [&](const Term& t) -> Term {
    if (t.IsVariable()) {
      auto it = binding.find(t.symbol());
      if (it != binding.end()) return it->second;
    }
    return t;
  };

  if (head.IsComparison()) {
    Term lhs = resolve(head.lhs());
    Term rhs = resolve(head.rhs());
    if (lhs.IsVariable() || rhs.IsVariable()) {
      return Status::InvalidArgument(
          StrCat("IC head comparison has an unbound variable: ",
                 head.ToString()));
    }
    bool holds = EvalComparisonOp(lhs, head.op(), rhs);
    return head.negated() ? !holds : holds;
  }

  const Relation* rel = edb.Find(head.atom().pred_id());
  std::vector<uint32_t> bound_cols;
  Tuple key;
  for (uint32_t col = 0; col < head.atom().args().size(); ++col) {
    Term t = resolve(head.atom().arg(col));
    if (t.IsConstant()) {
      bound_cols.push_back(col);
      key.push_back(t);
    }
  }
  bool exists;
  if (rel == nullptr || rel->empty()) {
    exists = false;
  } else if (bound_cols.size() == head.atom().args().size()) {
    exists = rel->Contains(key);
  } else {
    // Probe requires a pre-declared index; constraint checking is a
    // single-threaded entry point, so building it here is safe.
    const_cast<Relation*>(rel)->EnsureIndex(bound_cols);
    exists = !rel->Probe(bound_cols, key).empty();
  }
  return head.negated() ? !exists : exists;
}

}  // namespace

Result<bool> Satisfies(const Database& edb, const Constraint& ic) {
  bool satisfied = true;
  Status head_status = Status::Ok();
  SEMOPT_RETURN_IF_ERROR(ForEachBodyBinding(
      edb, ic, [&](const std::map<SymbolId, Value>& binding) {
        if (!satisfied || !head_status.ok()) return;
        if (!ic.head().has_value()) {
          satisfied = false;  // denial: any body instance violates
          return;
        }
        Result<bool> holds = HeadHolds(edb, *ic.head(), binding);
        if (!holds.ok()) {
          head_status = holds.status();
          return;
        }
        if (!*holds) satisfied = false;
      }));
  SEMOPT_RETURN_IF_ERROR(head_status);
  return satisfied;
}

Result<std::vector<ConstraintViolation>> CheckConstraints(
    const Database& edb, const std::vector<Constraint>& ics,
    size_t max_violations) {
  std::vector<ConstraintViolation> violations;
  if (max_violations == 0) max_violations = 1;
  for (const Constraint& ic : ics) {
    if (violations.size() >= max_violations) break;
    Status head_status = Status::Ok();
    SEMOPT_RETURN_IF_ERROR(ForEachBodyBinding(
        edb, ic, [&](const std::map<SymbolId, Value>& binding) {
          if (violations.size() >= max_violations || !head_status.ok()) {
            return;
          }
          bool violated = true;
          if (ic.head().has_value()) {
            Result<bool> holds = HeadHolds(edb, *ic.head(), binding);
            if (!holds.ok()) {
              head_status = holds.status();
              return;
            }
            violated = !*holds;
          }
          if (violated) {
            std::ostringstream os;
            for (const auto& [var, value] : binding) {
              os << SymbolName(var) << "=" << value << " ";
            }
            violations.push_back(ConstraintViolation{
                ic.label(), StrCat("violated under ", os.str())});
          }
        }));
    SEMOPT_RETURN_IF_ERROR(head_status);
  }
  return violations;
}

Result<size_t> RepairByDeletion(Database* edb,
                                const std::vector<Constraint>& ics) {
  size_t total_deleted = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Constraint& ic : ics) {
      // Find the first database literal of the body; its supporting
      // fact is what we delete for each violated instance.
      const Atom* first_db_atom = nullptr;
      for (const Literal& l : ic.body()) {
        if (l.IsRelational()) {
          first_db_atom = &l.atom();
          break;
        }
      }
      if (first_db_atom == nullptr) continue;  // purely evaluable IC

      std::set<Tuple> to_delete;
      Status head_status = Status::Ok();
      SEMOPT_RETURN_IF_ERROR(ForEachBodyBinding(
          *edb, ic, [&](const std::map<SymbolId, Value>& binding) {
            if (!head_status.ok()) return;
            bool violated = true;
            if (ic.head().has_value()) {
              Result<bool> holds = HeadHolds(*edb, *ic.head(), binding);
              if (!holds.ok()) {
                head_status = holds.status();
                return;
              }
              violated = !*holds;
            }
            if (!violated) return;
            Tuple ground;
            for (const Term& t : first_db_atom->args()) {
              ground.push_back(t.IsVariable() ? binding.at(t.symbol()) : t);
            }
            to_delete.insert(std::move(ground));
          }));
      SEMOPT_RETURN_IF_ERROR(head_status);
      if (to_delete.empty()) continue;

      // Rebuild the relation without the offending tuples (Relation has
      // no point deletes: row ids are stable by design).
      Relation* rel = edb->FindMutable(first_db_atom->pred_id());
      if (rel == nullptr) continue;
      std::vector<Tuple> keep;
      keep.reserve(rel->size());
      for (RowRef t : rel->rows()) {
        Tuple owned(t.begin(), t.end());
        if (to_delete.count(owned) == 0) keep.push_back(std::move(owned));
      }
      total_deleted += rel->size() - keep.size();
      rel->Clear();
      for (Tuple& t : keep) rel->Insert(t);
      changed = true;
    }
  }
  return total_deleted;
}

}  // namespace semopt
