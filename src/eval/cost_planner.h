#ifndef SEMOPT_EVAL_COST_PLANNER_H_
#define SEMOPT_EVAL_COST_PLANNER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "storage/relation.h"

namespace semopt {

/// Which join-order planner RuleExecutor::Prepare runs (see
/// EvalOptions::planner and the shell's `:planner`).
///
/// Both planners are pure orderings of the same safe step set, so the
/// derived relations are identical under either — only evaluation cost
/// differs. The plan caches key on the mode (a dedicated flag bit), so
/// greedy and cost sessions sharing one cache never serve each other's
/// orders.
enum class PlannerMode : uint8_t {
  /// The one-pass heuristic: most statically-bound columns first, ties
  /// by smallest current relation size. Zero planning overhead beyond
  /// one pass over the body; structurally left-deep in the greedy pick
  /// order.
  kGreedy,
  /// Transformation-based enumeration over the positive relational
  /// literals with memoization keyed on (bound-variable set,
  /// remaining-literal set), costed from relation sizes, per-column
  /// distinct sketches (Relation::EnsureStats) and the runtime feedback
  /// accumulated by CostFeedback. Falls back to greedy when the body is
  /// outside the enumerable envelope (see CostPlanner::Enumerate).
  kCost,
};

/// Short mode name for messages and explain output.
const char* PlannerModeName(PlannerMode mode);

/// Process-global feedback store for the cost model: per (rule text,
/// original body-literal index), the cumulative actual bindings each
/// execution observed at that literal's step versus the bindings the
/// plan estimated. The planner divides the two into a correction factor
/// it multiplies into the next estimate for that literal, so
/// misestimates self-correct across fixpoint rounds, repeated queries,
/// and server sessions (the store is shared process-wide, like the
/// metrics registry).
///
/// Cells are allocated once and never freed, so executors hold raw
/// pointers resolved at plan time and record with relaxed atomic adds —
/// the execution hot path never takes the registry lock.
class CostFeedback {
 public:
  struct Cell {
    std::atomic<uint64_t> executions{0};
    std::atomic<uint64_t> actual_bindings{0};
    std::atomic<uint64_t> estimated_bindings{0};
  };

  static CostFeedback& Global();

  /// The stable cell for (rule text, original literal index), created
  /// on first use. Thread-safe; the returned pointer stays valid for
  /// the process lifetime.
  Cell* CellFor(const std::string& rule, size_t literal_index);

  /// Multiplicative correction for the literal's estimate:
  /// actual/estimated over everything recorded so far, clamped to
  /// [1/64, 64]; 1.0 until at least one execution recorded. Thread-safe.
  double CorrectionFor(const std::string& rule, size_t literal_index);

  /// Drops every cell (tests; executors holding old cell pointers keep
  /// writing into the orphaned cells, which is why this is test-only).
  void Reset();

 private:
  std::mutex mu_;
  std::map<std::pair<std::string, size_t>, std::unique_ptr<Cell>> cells_;
};

/// The memoized join-order enumerator behind PlannerMode::kCost.
class CostPlanner {
 public:
  /// One positive relational body literal, as the cost model sees it.
  struct LiteralInput {
    size_t original_index = 0;  // position in the rule body
    /// Current cardinality of the relation this literal reads
    /// (delta-aware: the delta occurrence reports its delta's size).
    size_t size = 0;
    /// Distinct-count estimates for that relation (null => absent
    /// relation; treated as empty).
    std::shared_ptr<const RelationStats> stats;
    /// Per column: the variable's frame slot, or kConstantSlot for a
    /// constant argument.
    std::vector<uint32_t> slots;
  };
  static constexpr uint32_t kConstantSlot = UINT32_MAX;

  struct Result {
    /// Original-body indices of the positive relational literals in
    /// chosen execution order.
    std::vector<size_t> order;
    /// Per entry of `order`: the estimated bindings (matched rows) the
    /// step produces over the whole execution — directly comparable to
    /// the per-literal bindings counter the executors record.
    std::vector<double> est_rows;
    /// Memo diagnostics (unit tests, eval.planner.cost.* counters).
    size_t memo_states = 0;
    size_t memo_hits = 0;
  };

  /// Enumerates join orders of `literals` (all positive relational) and
  /// returns the cheapest, with `force_first` (an original index, or
  /// -1) pinned to the front — the partitioned engine's delta-to-front
  /// rotation is a constraint on the search space, not a post-pass.
  ///
  /// Cost model, per scheduled step: every input row pays a probe (or a
  /// full scan when no column is bound) and fans out into
  ///   est = size / prod(distinct[c] for each bound column c)
  /// rows, independence-assumed, then multiplied by the literal's
  /// CostFeedback correction. States are memoized on (bound-variable
  /// set, remaining-literal set); with <= 16 literals the walk is at
  /// most 2^16 states. Returns nullopt — caller falls back to greedy —
  /// when there is at most one literal to order, more than 16, or a
  /// frame slot beyond 64 (the bound set is a bitmask).
  ///
  /// `rule_key` identifies the rule in the feedback store (the plan
  /// caches' rule-text identity).
  static std::optional<Result> Enumerate(
      const std::string& rule_key,
      const std::vector<LiteralInput>& literals, int force_first);
};

}  // namespace semopt

#endif  // SEMOPT_EVAL_COST_PLANNER_H_
