#include "eval/shared_plan_cache.h"

#include <functional>
#include <string>

#include "obs/metrics.h"

namespace semopt {

SharedPlanCache::SharedPlanCache(size_t shards,
                                 size_t max_entries_per_shard) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(max_entries_per_shard));
  }
}

SharedPlanCache::Shard& SharedPlanCache::ShardFor(const RuleExecutor& exec) {
  // The rule's text is the cache key's identity component; hashing it
  // routes all regimes/deltas of one rule to one shard (so a rule's
  // band trajectory shares one LRU) and different rules across shards.
  const size_t h = std::hash<std::string>{}(exec.rule().ToString());
  return *shards_[h % shards_.size()];
}

Result<RuleExecutor::PreparedPlan> SharedPlanCache::Get(
    const RuleExecutor& exec, const RelationSource& source, int delta_literal,
    EvalStats* stats, bool size_aware, bool skip_delta_index,
    bool partitioned, PlannerMode planner, bool coarse_bands) {
  Shard& shard = ShardFor(exec);
  size_t hits_before, result_hits;
  Result<RuleExecutor::PreparedPlan> plan = [&] {
    std::lock_guard<std::mutex> lock(shard.mu);
    hits_before = shard.cache.hits();
    auto r = shard.cache.Get(exec, source, delta_literal, stats, size_aware,
                             skip_delta_index, partitioned, planner,
                             coarse_bands);
    result_hits = shard.cache.hits();
    return r;
  }();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (result_hits > hits_before) {
    registry.GetCounter("eval.shared_plan_cache.hit").Add(1);
  } else {
    registry.GetCounter("eval.shared_plan_cache.miss").Add(1);
  }
  return plan;
}

void SharedPlanCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cache.Clear();
  }
}

size_t SharedPlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->cache.size();
  }
  return total;
}

size_t SharedPlanCache::hits() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->cache.hits();
  }
  return total;
}

size_t SharedPlanCache::misses() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->cache.misses();
  }
  return total;
}

size_t SharedPlanCache::evictions() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->cache.evictions();
  }
  return total;
}

}  // namespace semopt
