#include "eval/component_plan.h"

#include <utility>

#include "analysis/dependency_graph.h"
#include "util/string_util.h"

namespace semopt {

Result<std::vector<EvalComponent>> PlanComponents(const Program& program) {
  DependencyGraph graph = DependencyGraph::Build(program);
  // Components come out of Tarjan's algorithm in reverse topological
  // order (callees first), which is the evaluation order we need.
  std::vector<std::vector<PredicateId>> sccs = graph.Sccs();

  std::vector<EvalComponent> components;
  components.reserve(sccs.size());
  for (const std::vector<PredicateId>& scc : sccs) {
    EvalComponent component;
    component.preds.insert(scc.begin(), scc.end());
    for (const Rule& rule : program.rules()) {
      if (component.preds.count(rule.head().pred_id()) == 0) continue;
      SEMOPT_ASSIGN_OR_RETURN(RuleExecutor exec, RuleExecutor::Create(rule));
      PlannedRule pr{std::move(exec), rule.head().pred_id(), {}};
      for (size_t i = 0; i < rule.body().size(); ++i) {
        const Literal& lit = rule.body()[i];
        if (!lit.IsRelational()) continue;
        PredicateId q = lit.atom().pred_id();
        if (component.preds.count(q) > 0) {
          if (lit.negated()) {
            return Status::FailedPrecondition(
                StrCat("rule ", rule.ToString(), " negates predicate ",
                       q.ToString(),
                       " in its own recursion component (unstratifiable)"));
          }
          pr.recursive_literals.push_back(static_cast<int>(i));
          component.recursive = true;
        }
      }
      component.rules.push_back(std::move(pr));
    }
    components.push_back(std::move(component));
  }
  return components;
}

}  // namespace semopt
