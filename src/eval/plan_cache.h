#ifndef SEMOPT_EVAL_PLAN_CACHE_H_
#define SEMOPT_EVAL_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "eval/eval_stats.h"
#include "eval/rule_executor.h"
#include "util/result.h"

namespace semopt {

/// The plan-memo surface the fixpoint engines plan through: either the
/// single-threaded session PlanCache below, or the sharded-mutex
/// SharedPlanCache (eval/shared_plan_cache.h) that many concurrent
/// sessions share. EvalOptions::plan_cache points at one of these.
class PlanCacheInterface {
 public:
  virtual ~PlanCacheInterface() = default;

  /// Returns the memoized plan for `exec` at the current cardinality-
  /// band signature, else plans through `exec.Prepare(...)` and caches
  /// the result. On a hit the plan's probe indexes are revalidated (a
  /// cheap HasIndex sweep that repairs indexes lost to the delta
  /// double-buffer swap). Bumps `stats->plan_cache_{hits,misses}` when
  /// `stats` is non-null. `planner` is part of the memo key (a
  /// dedicated flag bit), so greedy and cost sessions sharing one cache
  /// never serve each other's orders. `coarse_bands` collapses every
  /// size below 1024 into one band (its own flag bit): incremental
  /// maintenance opts in so its jittering small deltas reuse one
  /// steady-state plan, while fixpoint evaluation keeps fine bands and
  /// re-plans as its deltas grow.
  virtual Result<RuleExecutor::PreparedPlan> Get(
      const RuleExecutor& exec, const RelationSource& source,
      int delta_literal, EvalStats* stats, bool size_aware = true,
      bool skip_delta_index = false, bool partitioned = false,
      PlannerMode planner = PlannerMode::kGreedy,
      bool coarse_bands = false) = 0;

  /// Drops every cached plan.
  virtual void Clear() = 0;
};

/// Cross-round (and cross-evaluation) memo of prepared rule plans,
/// keyed by (rule text, delta literal, planner flags, log2 cardinality
/// band of every body relation).
///
/// Cardinality-aware planning re-orders joins from the *current* sizes
/// of the input relations, which change every semi-naive round — but a
/// join order only improves when a size crosses an order of magnitude,
/// while re-planning (and re-walking EnsureIndex) every round costs a
/// fixed toll per (rule, delta) per round. Keying on the ⌊log2(size)⌋
/// band signature memoizes one plan per order-of-magnitude regime:
/// rounds with stable sizes hit, a growth round that crosses a band
/// plans once for the new regime, and a band signature seen before —
/// later in the same fixpoint or in a *repeated evaluation* — hits
/// without planning. With `coarse_bands` (incremental maintenance's
/// regime) sizes below a small cap (1024) all share one band:
/// mis-ordering joins of only-small inputs costs microseconds, and the
/// coarse band keeps workloads whose small inputs jitter batch to
/// batch at a 100% steady-state hit rate instead of minting a key per
/// power of two the delta lands in. A cache held across Evaluate calls (see
/// EvalOptions::plan_cache) therefore reaches steady state after one
/// evaluation: re-running the same query re-traverses the same band
/// trajectory and every round hits.
///
/// Identity is the rule's text, not an object address, so one cache is
/// safe to share across evaluations, across extended copies of a
/// program (ad-hoc query rules just add their own entries), and across
/// rule-object lifetimes. Correctness is unconditional: every BuildPlan
/// output derives the same tuples regardless of data, so a stale band
/// costs performance only. Single-threaded coordinator use, like
/// Prepare; for cross-session sharing wrap shards of these in a
/// SharedPlanCache.
///
/// Size is bounded: at most `max_entries` plans are kept, with
/// least-recently-used eviction beyond the cap (every hit refreshes
/// recency). A long-lived session cycling through ad-hoc queries
/// therefore reaches a steady working set instead of growing without
/// limit; each eviction bumps the process-wide
/// `eval.plan_cache.evicted` counter and `evictions()`. The default
/// cap is far above any single workload's live plan count, so
/// steady-state hit rates stay at 100% unless a session genuinely
/// cycles through more distinct (rule, regime) pairs than the cap.
class PlanCache : public PlanCacheInterface {
 public:
  /// Default `max_entries`. A plan is a few hundred bytes of step
  /// specs; 1024 of them is ~1 MB — roomy enough that eviction only
  /// triggers on genuinely unbounded ad-hoc query churn.
  static constexpr size_t kDefaultMaxEntries = 1024;

  explicit PlanCache(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  Result<RuleExecutor::PreparedPlan> Get(
      const RuleExecutor& exec, const RelationSource& source,
      int delta_literal, EvalStats* stats, bool size_aware = true,
      bool skip_delta_index = false, bool partitioned = false,
      PlannerMode planner = PlannerMode::kGreedy,
      bool coarse_bands = false) override;

  /// Drops every cached plan (the eviction counter keeps its total).
  void Clear() override {
    entries_.clear();
    lru_.clear();
  }

  size_t size() const { return entries_.size(); }
  size_t max_entries() const { return max_entries_; }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t evictions() const { return evictions_; }

 private:
  struct Key {
    /// Exact rule text: content-addressed identity (rule objects are
    /// rebuilt per evaluation; addresses are not stable).
    std::string rule;
    int delta_literal;
    /// Planner inputs beyond cardinalities: bit 0 = size_aware,
    /// bit 1 = skip_delta_index, bit 2 = partitioned (morsel regime),
    /// bit 3 = cost planner (PlannerMode::kCost ordered the joins),
    /// bit 4 = coarse bands (sub-1024 sizes collapsed into one band).
    uint8_t flags;
    /// ⌊log2⌋ band per body literal (relational literals delta-aware;
    /// non-relational hold a fixed sentinel).
    std::vector<uint8_t> bands;

    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    RuleExecutor::PreparedPlan plan;
    /// This entry's position in `lru_` (front = most recent).
    std::list<const Key*>::iterator lru_it;
  };

  /// Band signature of `exec`'s body against the current `source`.
  static std::vector<uint8_t> Signature(const RuleExecutor& exec,
                                        const RelationSource& source,
                                        int delta_literal,
                                        bool coarse_bands);

  /// Evicts least-recently-used entries until under the cap.
  void EvictToCap();

  std::map<Key, Entry> entries_;
  /// Recency list of map-key pointers (map nodes are address-stable).
  std::list<const Key*> lru_;
  size_t max_entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
};

}  // namespace semopt

#endif  // SEMOPT_EVAL_PLAN_CACHE_H_
