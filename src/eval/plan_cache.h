#ifndef SEMOPT_EVAL_PLAN_CACHE_H_
#define SEMOPT_EVAL_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "eval/eval_stats.h"
#include "eval/rule_executor.h"
#include "util/result.h"

namespace semopt {

/// Cross-round (and cross-evaluation) memo of prepared rule plans,
/// keyed by (rule text, delta literal, planner flags, log2 cardinality
/// band of every body relation).
///
/// Cardinality-aware planning re-orders joins from the *current* sizes
/// of the input relations, which change every semi-naive round — but a
/// join order only improves when a size crosses an order of magnitude,
/// while re-planning (and re-walking EnsureIndex) every round costs a
/// fixed toll per (rule, delta) per round. Keying on the ⌊log2(size)⌋
/// band signature memoizes one plan per order-of-magnitude regime:
/// rounds with stable sizes hit, a growth round that crosses a band
/// plans once for the new regime, and a band signature seen before —
/// later in the same fixpoint or in a *repeated evaluation* — hits
/// without planning. A cache held across Evaluate calls (see
/// EvalOptions::plan_cache) therefore reaches steady state after one
/// evaluation: re-running the same query re-traverses the same band
/// trajectory and every round hits.
///
/// Identity is the rule's text, not an object address, so one cache is
/// safe to share across evaluations, across extended copies of a
/// program (ad-hoc query rules just add their own entries), and across
/// rule-object lifetimes. Correctness is unconditional: every BuildPlan
/// output derives the same tuples regardless of data, so a stale band
/// costs performance only. Single-threaded coordinator use, like
/// Prepare.
class PlanCache {
 public:
  /// Returns the memoized plan for `exec` at the current band
  /// signature, else plans through `exec.Prepare(...)` and caches the
  /// result. On a hit the plan's probe indexes are revalidated (a cheap
  /// HasIndex sweep that repairs indexes lost to the delta double-buffer
  /// swap). Bumps `stats->plan_cache_{hits,misses}` when `stats` is
  /// non-null.
  ///
  /// `partitioned` selects the morsel-partitionable plan shape (see
  /// RuleExecutor::Prepare) and is part of the cache key: partitioned
  /// plans rotate the delta to the front AND deliberately lack the
  /// driving step's probe index, so replaying one through the serial
  /// engine — or vice versa — in a session that switches `:threads`
  /// would execute the wrong shape. Keying on the regime keeps both
  /// entries live so a serial→parallel→serial session still hits.
  Result<RuleExecutor::PreparedPlan> Get(const RuleExecutor& exec,
                                         const RelationSource& source,
                                         int delta_literal, EvalStats* stats,
                                         bool size_aware = true,
                                         bool skip_delta_index = false,
                                         bool partitioned = false);

  /// Drops every cached plan.
  void Clear() { entries_.clear(); }

  size_t size() const { return entries_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  struct Key {
    /// Exact rule text: content-addressed identity (rule objects are
    /// rebuilt per evaluation; addresses are not stable).
    std::string rule;
    int delta_literal;
    /// Planner inputs beyond cardinalities: bit 0 = size_aware,
    /// bit 1 = skip_delta_index, bit 2 = partitioned (morsel regime).
    uint8_t flags;
    /// ⌊log2⌋ band per body literal (relational literals delta-aware;
    /// non-relational hold a fixed sentinel).
    std::vector<uint8_t> bands;

    auto operator<=>(const Key&) const = default;
  };

  /// Band signature of `exec`'s body against the current `source`.
  static std::vector<uint8_t> Signature(const RuleExecutor& exec,
                                        const RelationSource& source,
                                        int delta_literal);

  std::map<Key, RuleExecutor::PreparedPlan> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace semopt

#endif  // SEMOPT_EVAL_PLAN_CACHE_H_
