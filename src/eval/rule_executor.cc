#include "eval/rule_executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "ast/rename.h"
#include "eval/builtins.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// True if every variable of `lit` is in `bound` (constants trivially).
bool AllVarsBound(const Literal& lit,
                  const std::map<SymbolId, uint32_t>& slots,
                  const std::set<uint32_t>& bound) {
  for (const Term& t : lit.Terms()) {
    if (t.IsVariable() && bound.count(slots.at(t.symbol())) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<RuleExecutor> RuleExecutor::Create(const Rule& rule) {
  RuleExecutor exec;
  exec.rule_ = rule;

  // Assign frame slots to variables in first-occurrence order.
  for (SymbolId v : CollectVariables(rule)) {
    uint32_t slot = static_cast<uint32_t>(exec.slots_.size());
    exec.slots_.emplace(v, slot);
  }
  exec.slot_count_ = exec.slots_.size();

  // Validate by building the size-blind plan once; remember its order.
  SEMOPT_ASSIGN_OR_RETURN(Plan plan, exec.BuildPlan(nullptr));
  for (const LiteralStep& step : plan.steps) {
    exec.static_order_.push_back(step.original_index);
  }
  return exec;
}

Result<RuleExecutor::Plan> RuleExecutor::BuildPlan(
    const std::function<size_t(size_t)>* size_of) const {
  Plan plan;
  const std::vector<Literal>& body = rule_.body();

  auto make_spec = [&](const Term& t,
                       const std::set<uint32_t>& bound) -> TermSpec {
    TermSpec spec;
    spec.is_constant = t.IsConstant();
    if (spec.is_constant) {
      spec.constant = t;
      spec.bound = true;
    } else {
      spec.slot = slots_.at(t.symbol());
      spec.bound = bound.count(spec.slot) > 0;
    }
    return spec;
  };

  std::set<uint32_t> bound;
  std::vector<bool> scheduled(body.size(), false);
  size_t remaining = body.size();

  auto schedule = [&](size_t i) {
    const Literal& lit = body[i];
    LiteralStep step;
    step.original_index = i;
    step.negated = lit.negated();
    step.is_comparison = lit.IsComparison();
    if (lit.IsComparison()) {
      step.op = lit.op();
      step.lhs = make_spec(lit.lhs(), bound);
      step.rhs = make_spec(lit.rhs(), bound);
      step.eq_binds = !lit.negated() && lit.op() == ComparisonOp::kEq &&
                      (!step.lhs.bound || !step.rhs.bound);
      if (step.eq_binds) {
        const TermSpec& unbound_side = step.lhs.bound ? step.rhs : step.lhs;
        bound.insert(unbound_side.slot);
      }
    } else {
      step.pred = lit.atom().pred_id();
      // Within-atom repeats: only *pre-bound* columns participate in
      // index probing; a repeated unbound variable binds at its first
      // column and is runtime-checked at later ones.
      std::set<uint32_t> bound_before = bound;
      for (uint32_t col = 0; col < lit.atom().args().size(); ++col) {
        TermSpec spec = make_spec(lit.atom().arg(col), bound_before);
        if (spec.bound) step.probe_columns.push_back(col);
        step.args.push_back(spec);
        if (!spec.is_constant) bound.insert(spec.slot);
      }
    }
    plan.steps.push_back(std::move(step));
    scheduled[i] = true;
    --remaining;
  };

  while (remaining > 0) {
    int pick = -1;
    // Priority 1: any fully-bound comparison or fully-bound negated
    // relational literal (cheap filters).
    for (size_t i = 0; i < body.size() && pick < 0; ++i) {
      if (scheduled[i]) continue;
      const Literal& lit = body[i];
      bool filter_ready = (lit.IsComparison() || lit.negated()) &&
                          AllVarsBound(lit, slots_, bound);
      if (filter_ready) pick = static_cast<int>(i);
    }
    // Priority 2: a binding `=` literal with exactly one unbound side.
    for (size_t i = 0; i < body.size() && pick < 0; ++i) {
      if (scheduled[i]) continue;
      const Literal& lit = body[i];
      if (!lit.IsComparison() || lit.negated() ||
          lit.op() != ComparisonOp::kEq) {
        continue;
      }
      const Term& a = lit.lhs();
      const Term& b = lit.rhs();
      bool a_bound =
          a.IsConstant() || bound.count(slots_.at(a.symbol())) > 0;
      bool b_bound =
          b.IsConstant() || bound.count(slots_.at(b.symbol())) > 0;
      if (a_bound != b_bound) pick = static_cast<int>(i);
    }
    // Priority 3: the positive relational literal with the most
    // statically-bound argument positions; ties go to the literal whose
    // relation is currently smallest (cardinality-aware planning), then
    // to body order.
    if (pick < 0) {
      int best_score = -1;
      size_t best_size = 0;
      for (size_t i = 0; i < body.size(); ++i) {
        if (scheduled[i]) continue;
        const Literal& lit = body[i];
        if (lit.IsComparison() || lit.negated()) continue;
        int score = 0;
        for (const Term& t : lit.atom().args()) {
          if (t.IsConstant() || bound.count(slots_.at(t.symbol())) > 0) {
            ++score;
          }
        }
        size_t size = size_of != nullptr ? (*size_of)(i) : SIZE_MAX;
        if (score > best_score ||
            (score == best_score && size < best_size)) {
          best_score = score;
          best_size = size;
          pick = static_cast<int>(i);
        }
      }
    }
    if (pick < 0) {
      return Status::FailedPrecondition(
          StrCat("rule ", rule_.ToString(),
                 " is unsafe: cannot order remaining body literals"));
    }
    schedule(static_cast<size_t>(pick));
  }

  // Head slots must all be bound after the full body.
  plan.head_specs.reserve(rule_.head().args().size());
  for (const Term& t : rule_.head().args()) {
    TermSpec spec = make_spec(t, bound);
    if (!spec.is_constant && !spec.bound) {
      return Status::FailedPrecondition(
          StrCat("rule ", rule_.ToString(), " is unsafe: head variable ",
                 t.name(), " is never bound"));
    }
    plan.head_specs.push_back(spec);
  }

  // Lay out the per-step scratch slices and size the shared scratch
  // row so ExecutePlan can allocate every buffer up front.
  plan.scratch_offsets.reserve(plan.steps.size());
  plan.max_row_width = plan.head_specs.size();
  for (const LiteralStep& step : plan.steps) {
    plan.scratch_offsets.push_back(plan.scratch_size);
    plan.scratch_size += step.args.size();
    plan.max_row_width = std::max(plan.max_row_width, step.args.size());
  }
  return plan;
}

Result<RuleExecutor::PreparedPlan> RuleExecutor::Prepare(
    const RelationSource& source, int delta_literal, bool size_aware,
    bool skip_delta_index) const {
  // Separates plan/index time from join time in traces: "plan" spans
  // are coordinator work, rule-label spans are execution work.
  obs::TraceSpan span("plan");
  span.AddArg("body_literals", static_cast<int64_t>(rule_.body().size()));
  span.AddArg("delta_literal", delta_literal);
  // Cardinality oracle: the current size of each body literal's input
  // relation (delta-aware).
  std::function<size_t(size_t)> size_of = [&](size_t i) -> size_t {
    const Literal& lit = rule_.body()[i];
    if (!lit.IsRelational()) return SIZE_MAX;
    const Relation* rel = nullptr;
    if (delta_literal >= 0 && i == static_cast<size_t>(delta_literal)) {
      rel = source.Delta(lit.atom().pred_id());
    }
    if (rel == nullptr) rel = source.Full(lit.atom().pred_id());
    return rel == nullptr ? 0 : rel->size();
  };
  SEMOPT_ASSIGN_OR_RETURN(Plan plan,
                          BuildPlan(size_aware ? &size_of : nullptr));
  EnsureProbeIndexes(plan, source, delta_literal, skip_delta_index);
  PreparedPlan prepared;
  prepared.plan_ = std::make_shared<const Plan>(std::move(plan));
  return prepared;
}

void RuleExecutor::EnsureProbeIndexes(const Plan& plan,
                                      const RelationSource& source,
                                      int delta_literal,
                                      bool skip_delta_index) const {
  for (const LiteralStep& step : plan.steps) {
    if (step.is_comparison || step.negated) continue;
    if (step.probe_columns.empty()) continue;
    bool is_delta_step =
        delta_literal >= 0 &&
        step.original_index == static_cast<size_t>(delta_literal);
    if (is_delta_step && skip_delta_index) continue;
    const Relation* rel = nullptr;
    if (is_delta_step) rel = source.Delta(step.pred);
    if (rel == nullptr) rel = source.Full(step.pred);
    if (rel == nullptr) continue;
    // RelationSource exposes relations as const because execution only
    // reads them; index pre-building is the one sanctioned mutation,
    // confined to this single-threaded planning moment.
    const_cast<Relation*>(rel)->EnsureIndex(step.probe_columns);
  }
}

int RuleExecutor::FirstPositiveStep(const PreparedPlan& plan) const {
  for (const LiteralStep& step : plan.plan_->steps) {
    if (!step.is_comparison && !step.negated) {
      return static_cast<int>(step.original_index);
    }
  }
  return -1;
}

std::vector<uint32_t> RuleExecutor::ProbeColumnsFor(
    const PreparedPlan& plan, int literal_index) const {
  for (const LiteralStep& step : plan.plan_->steps) {
    if (step.is_comparison || step.negated) continue;
    if (literal_index >= 0 &&
        step.original_index == static_cast<size_t>(literal_index)) {
      return step.probe_columns;
    }
  }
  return {};
}

void RuleExecutor::ExecutePlan(const PreparedPlan& plan,
                               const RelationSource& source,
                               int delta_literal, const TupleSink& sink,
                               EvalStats* stats) const {
  if (stats != nullptr) ++stats->rule_applications;
  const Plan& p = *plan.plan_;
  // All working state for the whole scan, allocated once: the inner
  // join loops never touch the allocator.
  ExecContext ctx;
  ctx.frame.assign(slot_count_, Term::Int(0));
  ctx.bound.assign(slot_count_, 0);
  ctx.newly_bound.resize(p.scratch_size);
  ctx.scratch_row.reserve(p.max_row_width);
  ExecuteStep(p, source, delta_literal, 0, &ctx, sink, stats);
}

void RuleExecutor::Execute(const RelationSource& source, int delta_literal,
                           const TupleSink& sink, EvalStats* stats,
                           bool size_aware) const {
  Result<PreparedPlan> plan = Prepare(source, delta_literal, size_aware);
  if (!plan.ok()) return;  // Create() validated; cannot fail here
  ExecutePlan(*plan, source, delta_literal, sink, stats);
}

void RuleExecutor::ExecuteStep(const Plan& plan,
                               const RelationSource& source,
                               int delta_literal, size_t step_index,
                               ExecContext* ctx, const TupleSink& sink,
                               EvalStats* stats) const {
  if (step_index == plan.steps.size()) {
    // Emit the head through the shared scratch row (capacity reserved
    // in ExecutePlan, so this never allocates).
    ctx->scratch_row.clear();
    for (const TermSpec& spec : plan.head_specs) {
      ctx->scratch_row.push_back(spec.is_constant ? spec.constant
                                                  : ctx->frame[spec.slot]);
    }
    sink(RowRef(ctx->scratch_row));
    return;
  }

  const LiteralStep& step = plan.steps[step_index];
  auto value_of = [&](const TermSpec& spec) -> const Value& {
    return spec.is_constant ? spec.constant : ctx->frame[spec.slot];
  };

  if (step.is_comparison) {
    if (step.eq_binds) {
      const TermSpec& bound_side = step.lhs.bound ? step.lhs : step.rhs;
      const TermSpec& free_side = step.lhs.bound ? step.rhs : step.lhs;
      if (ctx->bound[free_side.slot]) {
        if (CompareValues(ctx->frame[free_side.slot],
                          value_of(bound_side)) != 0) {
          return;
        }
        ExecuteStep(plan, source, delta_literal, step_index + 1, ctx, sink,
                    stats);
        return;
      }
      ctx->frame[free_side.slot] = value_of(bound_side);
      ctx->bound[free_side.slot] = 1;
      ExecuteStep(plan, source, delta_literal, step_index + 1, ctx, sink,
                  stats);
      ctx->bound[free_side.slot] = 0;
      return;
    }
    if (stats != nullptr) ++stats->comparison_checks;
    bool holds =
        EvalComparisonOp(value_of(step.lhs), step.op, value_of(step.rhs));
    if (step.negated) holds = !holds;
    if (holds) {
      ExecuteStep(plan, source, delta_literal, step_index + 1, ctx, sink,
                  stats);
    }
    return;
  }

  // Relational literal.
  const Relation* relation = nullptr;
  if (delta_literal >= 0 &&
      step.original_index == static_cast<size_t>(delta_literal)) {
    relation = source.Delta(step.pred);
  }
  if (relation == nullptr) relation = source.Full(step.pred);

  if (step.negated) {
    // All arguments are statically bound; membership test through the
    // scratch row (done with it before any recursion).
    ctx->scratch_row.clear();
    for (const TermSpec& spec : step.args) {
      ctx->scratch_row.push_back(value_of(spec));
    }
    bool present =
        relation != nullptr && relation->Contains(RowRef(ctx->scratch_row));
    if (!present) {
      ExecuteStep(plan, source, delta_literal, step_index + 1, ctx, sink,
                  stats);
    }
    return;
  }

  if (relation == nullptr || relation->empty()) return;

  // Slots freshly bound at this step, restored after each recursion.
  // Slices of the shared scratch land each step its own window, so the
  // recursion never allocates.
  uint32_t* newly = ctx->newly_bound.data() + plan.scratch_offsets[step_index];

  auto try_row = [&](RowRef row) {
    size_t n_newly = 0;
    bool match = true;
    for (uint32_t col = 0; col < step.args.size() && match; ++col) {
      const TermSpec& spec = step.args[col];
      if (spec.is_constant) {
        match = row[col] == spec.constant;
      } else if (ctx->bound[spec.slot]) {
        match = row[col] == ctx->frame[spec.slot];
      } else {
        ctx->frame[spec.slot] = row[col];
        ctx->bound[spec.slot] = 1;
        newly[n_newly++] = spec.slot;
      }
    }
    if (match) {
      if (stats != nullptr) ++stats->bindings_explored;
      ExecuteStep(plan, source, delta_literal, step_index + 1, ctx, sink,
                  stats);
    }
    for (size_t k = 0; k < n_newly; ++k) ctx->bound[newly[k]] = 0;
  };

  if (!step.probe_columns.empty()) {
    // Gather the probe key into the scratch row; Probe hashes it in
    // place (hash-first, no key tuple is ever materialized).
    ctx->scratch_row.clear();
    for (uint32_t col : step.probe_columns) {
      ctx->scratch_row.push_back(value_of(step.args[col]));
    }
    const std::vector<RowId>& hits =
        relation->Probe(step.probe_columns, ctx->scratch_row.data());
    for (RowId row_index : hits) {
      try_row(relation->row(row_index));
    }
  } else {
    const size_t n = relation->size();
    for (size_t i = 0; i < n; ++i) try_row(relation->row(i));
  }
}

}  // namespace semopt
