#include "eval/rule_executor.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "ast/rename.h"
#include "eval/builtins.h"
#include "obs/trace.h"
#include "storage/column_view.h"
#include "storage/vector_kernels.h"
#include "util/string_util.h"

namespace semopt {

Result<RuleExecutor> RuleExecutor::Create(const Rule& rule) {
  RuleExecutor exec;
  exec.rule_ = rule;

  // Assign frame slots to variables in first-occurrence order
  // (CollectVariables deduplicates), then sort the table by symbol for
  // binary-search lookup.
  for (SymbolId v : CollectVariables(rule)) {
    exec.slots_.emplace_back(v, static_cast<uint32_t>(exec.slots_.size()));
  }
  exec.slot_count_ = exec.slots_.size();
  std::sort(exec.slots_.begin(), exec.slots_.end());
#ifndef NDEBUG
  // Micro-assert slot density: slots must be a permutation of
  // 0..slot_count-1 under strictly increasing symbols — frame blocks
  // index by slot, so a gap or collision would silently read another
  // variable's binding.
  {
    std::vector<bool> seen(exec.slot_count_, false);
    for (size_t i = 0; i < exec.slots_.size(); ++i) {
      if (i > 0) assert(exec.slots_[i - 1].first < exec.slots_[i].first);
      const uint32_t slot = exec.slots_[i].second;
      assert(slot < exec.slot_count_ && !seen[slot]);
      seen[slot] = true;
    }
  }
#endif

  // Validate by building the size-blind plan once; remember its order.
  SEMOPT_ASSIGN_OR_RETURN(Plan plan, exec.BuildPlan(nullptr));
  for (const LiteralStep& step : plan.steps) {
    exec.static_order_.push_back(step.original_index);
  }
  return exec;
}

uint32_t RuleExecutor::SlotFor(SymbolId v) const {
  auto it = std::lower_bound(
      slots_.begin(), slots_.end(), v,
      [](const std::pair<SymbolId, uint32_t>& entry, SymbolId sym) {
        return entry.first < sym;
      });
  assert(it != slots_.end() && it->first == v);
  return it->second;
}

Result<RuleExecutor::Plan> RuleExecutor::BuildPlan(
    const std::function<size_t(size_t)>* size_of, int force_first,
    const std::vector<size_t>* relational_order) const {
  Plan plan;
  const std::vector<Literal>& body = rule_.body();
  // Cursor into `relational_order` (the cost enumerator's sequence of
  // positive relational literals); advances past already-scheduled
  // entries so the forced-rotation pick below composes with it.
  size_t order_cursor = 0;

  auto make_spec = [&](const Term& t,
                       const std::set<uint32_t>& bound) -> TermSpec {
    TermSpec spec;
    spec.is_constant = t.IsConstant();
    if (spec.is_constant) {
      spec.constant = t;
      spec.bound = true;
    } else {
      spec.slot = SlotFor(t.symbol());
      spec.bound = bound.count(spec.slot) > 0;
    }
    return spec;
  };

  std::set<uint32_t> bound;
  std::vector<bool> scheduled(body.size(), false);
  size_t remaining = body.size();

  // True if every variable of `lit` is in `bound` (constants trivially).
  auto all_vars_bound = [&](const Literal& lit) {
    for (const Term& t : lit.Terms()) {
      if (t.IsVariable() && bound.count(SlotFor(t.symbol())) == 0) {
        return false;
      }
    }
    return true;
  };

  auto schedule = [&](size_t i) {
    const Literal& lit = body[i];
    LiteralStep step;
    step.original_index = i;
    step.negated = lit.negated();
    step.is_comparison = lit.IsComparison();
    if (lit.IsComparison()) {
      step.op = lit.op();
      step.lhs = make_spec(lit.lhs(), bound);
      step.rhs = make_spec(lit.rhs(), bound);
      step.eq_binds = !lit.negated() && lit.op() == ComparisonOp::kEq &&
                      (!step.lhs.bound || !step.rhs.bound);
      if (step.eq_binds) {
        const TermSpec& unbound_side = step.lhs.bound ? step.rhs : step.lhs;
        bound.insert(unbound_side.slot);
      }
    } else {
      step.pred = lit.atom().pred_id();
      // Within-atom repeats: only *pre-bound* columns participate in
      // index probing; a repeated unbound variable binds at its first
      // column and is runtime-checked at later ones. The same
      // classification, frozen as ColumnActions, drives the batched
      // join kernel.
      std::set<uint32_t> bound_before = bound;
      // slot -> column of its first (binding) occurrence in this literal
      std::map<uint32_t, uint32_t> bound_in_literal;
      for (uint32_t col = 0; col < lit.atom().args().size(); ++col) {
        TermSpec spec = make_spec(lit.atom().arg(col), bound_before);
        if (spec.bound) step.probe_columns.push_back(col);
        ColumnAction action;
        action.col = col;
        if (spec.is_constant) {
          action.kind = ColumnAction::kCheckConst;
          action.constant = spec.constant;
          step.scan_checks.push_back(action);
        } else if (spec.bound) {
          action.kind = ColumnAction::kCheckSlot;
          action.slot = spec.slot;
          step.scan_checks.push_back(action);
        } else if (auto it = bound_in_literal.find(spec.slot);
                   it != bound_in_literal.end()) {
          action.kind = ColumnAction::kCheckRepeat;
          action.slot = spec.slot;
          action.other_col = it->second;
          step.scan_checks.push_back(action);
          step.probe_checks.push_back(action);
        } else {
          action.kind = ColumnAction::kBind;
          action.slot = spec.slot;
          bound_in_literal.emplace(spec.slot, col);
          step.bind_actions.push_back(action);
        }
        step.args.push_back(spec);
        if (!spec.is_constant) bound.insert(spec.slot);
      }
    }
    plan.steps.push_back(std::move(step));
    scheduled[i] = true;
    --remaining;
  };

  while (remaining > 0) {
    int pick = -1;
    // Priority 1: any fully-bound comparison or fully-bound negated
    // relational literal (cheap filters).
    for (size_t i = 0; i < body.size() && pick < 0; ++i) {
      if (scheduled[i]) continue;
      const Literal& lit = body[i];
      bool filter_ready =
          (lit.IsComparison() || lit.negated()) && all_vars_bound(lit);
      if (filter_ready) pick = static_cast<int>(i);
    }
    // Priority 2: a binding `=` literal with exactly one unbound side.
    for (size_t i = 0; i < body.size() && pick < 0; ++i) {
      if (scheduled[i]) continue;
      const Literal& lit = body[i];
      if (!lit.IsComparison() || lit.negated() ||
          lit.op() != ComparisonOp::kEq) {
        continue;
      }
      const Term& a = lit.lhs();
      const Term& b = lit.rhs();
      bool a_bound =
          a.IsConstant() || bound.count(SlotFor(a.symbol())) > 0;
      bool b_bound =
          b.IsConstant() || bound.count(SlotFor(b.symbol())) > 0;
      if (a_bound != b_bound) pick = static_cast<int>(i);
    }
    // Forced rotation (partitioned Prepare): schedule `force_first`
    // before any other relational literal. A positive literal needs no
    // prior bindings, so scheduling it first can never violate safety;
    // priorities 1–2 above still run first because they only schedule
    // filters and binding `=` steps, never a positive relational step.
    if (pick < 0 && force_first >= 0 &&
        !scheduled[static_cast<size_t>(force_first)]) {
      assert(body[static_cast<size_t>(force_first)].IsRelational() &&
             !body[static_cast<size_t>(force_first)].negated());
      pick = force_first;
    }
    // Explicit order (cost planner): the next unscheduled entry of
    // `relational_order` replaces the greedy pick. Positive relational
    // literals need no prior bindings, so any order of them is safe;
    // the priorities above still interleave filters and binding `=` at
    // their earliest position, same as under the greedy pick.
    if (pick < 0 && relational_order != nullptr) {
      while (order_cursor < relational_order->size() &&
             scheduled[(*relational_order)[order_cursor]]) {
        ++order_cursor;
      }
      if (order_cursor < relational_order->size()) {
        const size_t i = (*relational_order)[order_cursor++];
        assert(!body[i].IsComparison() && !body[i].negated());
        pick = static_cast<int>(i);
      }
    }
    // Priority 3: the positive relational literal with the most
    // statically-bound argument positions; ties go to the literal whose
    // relation is currently smallest (cardinality-aware planning), then
    // to body order.
    if (pick < 0) {
      int best_score = -1;
      size_t best_size = 0;
      for (size_t i = 0; i < body.size(); ++i) {
        if (scheduled[i]) continue;
        const Literal& lit = body[i];
        if (lit.IsComparison() || lit.negated()) continue;
        int score = 0;
        for (const Term& t : lit.atom().args()) {
          if (t.IsConstant() || bound.count(SlotFor(t.symbol())) > 0) {
            ++score;
          }
        }
        size_t size = size_of != nullptr ? (*size_of)(i) : SIZE_MAX;
        if (score > best_score ||
            (score == best_score && size < best_size)) {
          best_score = score;
          best_size = size;
          pick = static_cast<int>(i);
        }
      }
    }
    if (pick < 0) {
      return Status::FailedPrecondition(
          StrCat("rule ", rule_.ToString(),
                 " is unsafe: cannot order remaining body literals"));
    }
    schedule(static_cast<size_t>(pick));
  }

  // Head slots must all be bound after the full body.
  plan.head_specs.reserve(rule_.head().args().size());
  for (const Term& t : rule_.head().args()) {
    TermSpec spec = make_spec(t, bound);
    if (!spec.is_constant && !spec.bound) {
      return Status::FailedPrecondition(
          StrCat("rule ", rule_.ToString(), " is unsafe: head variable ",
                 t.name(), " is never bound"));
    }
    plan.head_specs.push_back(spec);
  }

  // Lay out the per-step scratch slices and size the shared scratch
  // row so ExecutePlan can allocate every buffer up front.
  plan.scratch_offsets.reserve(plan.steps.size());
  plan.max_row_width = plan.head_specs.size();
  for (const LiteralStep& step : plan.steps) {
    plan.scratch_offsets.push_back(plan.scratch_size);
    plan.scratch_size += step.args.size();
    plan.max_row_width = std::max(plan.max_row_width, step.args.size());
  }
  // Identity batch order by default; Prepare's FuseBatchChecks pass
  // rewrites it once the delta occurrence is known.
  plan.batch_steps.resize(plan.steps.size());
  for (size_t i = 0; i < plan.steps.size(); ++i) plan.batch_steps[i] = i;
  return plan;
}

void RuleExecutor::FuseBatchChecks(Plan* plan, int delta_literal) {
  plan->batch_steps.clear();
  // Index into plan->steps of the positive relational step that can
  // currently absorb checks; -1 while blocked (before any positive
  // step, or after a comparison/negated survivor broke the run).
  int host = -1;
  for (size_t i = 0; i < plan->steps.size(); ++i) {
    LiteralStep& step = plan->steps[i];
    const bool relational = !step.is_comparison;
    const bool is_delta =
        relational && delta_literal >= 0 &&
        step.original_index == static_cast<size_t>(delta_literal);
    const bool pure_check =
        relational && !is_delta &&
        std::all_of(step.args.begin(), step.args.end(),
                    [](const TermSpec& s) { return s.is_constant || s.bound; });
    if (pure_check && host >= 0) {
      LiteralStep& h = plan->steps[static_cast<size_t>(host)];
      FusedCheck fc;
      fc.pred = step.pred;
      fc.negated = step.negated;
      fc.original_index = step.original_index;
      fc.sources.reserve(step.args.size());
      for (const TermSpec& spec : step.args) {
        FusedCheck::Source src;
        if (spec.is_constant) {
          src.kind = FusedCheck::Source::kConst;
          src.constant = spec.constant;
        } else {
          src.kind = FusedCheck::Source::kFrame;
          src.idx = spec.slot;
          for (const ColumnAction& a : h.bind_actions) {
            if (a.slot == spec.slot) {
              src.kind = FusedCheck::Source::kRow;
              src.idx = a.col;
              break;
            }
          }
        }
        fc.sources.push_back(std::move(src));
      }
      h.fused.push_back(std::move(fc));
      continue;  // fused away: not part of the batch order
    }
    plan->batch_steps.push_back(i);
    host = (relational && !step.negated) ? static_cast<int>(i) : -1;
  }

  // Tail emission: when the last batch step extends frames (positive
  // relational), project head rows straight out of its match loop —
  // every head column is a constant, a slot already in the input
  // frame, or a column that step binds from its matched row. The
  // final frame stream (the widest in the pipeline) is then never
  // materialized into a block at all.
  plan->tail_emit = false;
  plan->tail_head_sources.clear();
  if (!plan->batch_steps.empty()) {
    const LiteralStep& last = plan->steps[plan->batch_steps.back()];
    if (!last.is_comparison && !last.negated) {
      plan->tail_emit = true;
      plan->tail_head_sources.reserve(plan->head_specs.size());
      for (const TermSpec& spec : plan->head_specs) {
        FusedCheck::Source src;
        if (spec.is_constant) {
          src.kind = FusedCheck::Source::kConst;
          src.constant = spec.constant;
        } else {
          src.kind = FusedCheck::Source::kFrame;
          src.idx = spec.slot;
          for (const ColumnAction& a : last.bind_actions) {
            if (a.slot == spec.slot) {
              src.kind = FusedCheck::Source::kRow;
              src.idx = a.col;
              break;
            }
          }
        }
        plan->tail_head_sources.push_back(std::move(src));
      }
    }
  }
}

Result<RuleExecutor::PreparedPlan> RuleExecutor::Prepare(
    const RelationSource& source, int delta_literal, bool size_aware,
    bool skip_delta_index, bool partition, PlannerMode planner) const {
  // Separates plan/index time from join time in traces: "plan" spans
  // are coordinator work, rule-label spans are execution work.
  obs::TraceSpan span("plan");
  span.AddArg("body_literals", static_cast<int64_t>(rule_.body().size()));
  span.AddArg("delta_literal", delta_literal);
  if (partition) span.AddArg("partition", static_cast<int64_t>(1));
  // The relation a body literal reads, delta-aware: the delta
  // occurrence reads source.Delta, everything else source.Full.
  auto relation_of = [&](size_t i) -> const Relation* {
    const Literal& lit = rule_.body()[i];
    if (!lit.IsRelational()) return nullptr;
    const Relation* rel = nullptr;
    if (delta_literal >= 0 && i == static_cast<size_t>(delta_literal)) {
      rel = source.Delta(lit.atom().pred_id());
    }
    if (rel == nullptr) rel = source.Full(lit.atom().pred_id());
    return rel;
  };
  // Cardinality oracle: the current size of each body literal's input
  // relation (delta-aware).
  std::function<size_t(size_t)> size_of = [&](size_t i) -> size_t {
    if (!rule_.body()[i].IsRelational()) return SIZE_MAX;
    const Relation* rel = relation_of(i);
    return rel == nullptr ? 0 : rel->size();
  };
  // Partitioned plans rotate the delta occurrence to the front of the
  // join order so morsels carve the *outermost* scan: every other
  // literal is then probed per driving row, never re-scanned per task
  // (the E8 binding blowup).
  const int force_first =
      partition && delta_literal >= 0 ? delta_literal : -1;

  // Cost planner: enumerate join orders of the positive relational
  // literals from current sizes, per-column distinct sketches and the
  // accumulated runtime feedback. The chosen order replaces only the
  // greedy relational pick inside BuildPlan — filters, binding `=`,
  // the delta rotation, batch fusion and driving-step marking all
  // happen exactly as under the greedy planner, so every structural
  // invariant of the plan shape is preserved.
  std::optional<CostPlanner::Result> cost;
  std::string rule_key;
  if (planner == PlannerMode::kCost && size_aware) {
    rule_key = rule_.ToString();
    std::vector<CostPlanner::LiteralInput> inputs;
    const std::vector<Literal>& body = rule_.body();
    for (size_t i = 0; i < body.size(); ++i) {
      const Literal& lit = body[i];
      if (lit.IsComparison() || lit.negated()) continue;
      CostPlanner::LiteralInput in;
      in.original_index = i;
      const Relation* rel = relation_of(i);
      if (rel != nullptr) {
        in.size = rel->size();
        // Refreshed lazily under the relation's index lock, same
        // single-threaded planning moment as EnsureProbeIndexes below.
        in.stats = rel->EnsureStats();
      }
      in.slots.reserve(lit.atom().args().size());
      for (const Term& t : lit.atom().args()) {
        in.slots.push_back(t.IsConstant() ? CostPlanner::kConstantSlot
                                          : SlotFor(t.symbol()));
      }
      inputs.push_back(std::move(in));
    }
    cost = CostPlanner::Enumerate(rule_key, inputs, force_first);
  }
  SEMOPT_ASSIGN_OR_RETURN(
      Plan plan,
      BuildPlan(size_aware ? &size_of : nullptr, force_first,
                cost.has_value() ? &cost->order : nullptr));
  plan.planner = planner;
  if (cost.has_value()) {
    plan.cost_ordered = true;
    plan.est_rows.assign(rule_.body().size(), -1.0);
    plan.feedback.assign(rule_.body().size(), nullptr);
    CostFeedback& feedback = CostFeedback::Global();
    for (size_t k = 0; k < cost->order.size(); ++k) {
      const size_t lit = cost->order[k];
      plan.est_rows[lit] = cost->est_rows[k];
      plan.feedback[lit] = feedback.CellFor(rule_key, lit);
    }
  }
  FuseBatchChecks(&plan, delta_literal);
  if (partition) {
    // Mark the driving step: the first positive relational step — the
    // rotated delta occurrence when there is one (the rotation makes
    // the delta the first positive step by construction), else the
    // plan's natural outermost scan. Bodies with no positive
    // relational step leave driving_step at -1 (nothing to carve).
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const LiteralStep& s = plan.steps[i];
      if (!s.is_comparison && !s.negated) {
        plan.driving_step = static_cast<int>(i);
        break;
      }
    }
    assert(delta_literal < 0 || plan.driving_step < 0 ||
           plan.steps[static_cast<size_t>(plan.driving_step)]
                   .original_index == static_cast<size_t>(delta_literal));
  }
  EnsureProbeIndexes(plan, source, delta_literal, skip_delta_index);
  PreparedPlan prepared;
  prepared.plan_ = std::make_shared<const Plan>(std::move(plan));
  return prepared;
}

void RuleExecutor::EnsurePlanIndexes(const PreparedPlan& plan,
                                     const RelationSource& source,
                                     int delta_literal,
                                     bool skip_delta_index) const {
  EnsureProbeIndexes(*plan.plan_, source, delta_literal, skip_delta_index);
}

void RuleExecutor::EnsureProbeIndexes(const Plan& plan,
                                      const RelationSource& source,
                                      int delta_literal,
                                      bool skip_delta_index) const {
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const LiteralStep& step = plan.steps[i];
    if (step.is_comparison || step.negated) continue;
    if (step.probe_columns.empty()) continue;
    // The driving step of a partitioned plan is executed as a range
    // scan over its morsel, never probed — building its index would be
    // pure waste (and on the frozen delta, a scan of a ~batch_size
    // morsel beats a hash build it would amortize over one round).
    if (plan.driving_step == static_cast<int>(i)) continue;
    bool is_delta_step =
        delta_literal >= 0 &&
        step.original_index == static_cast<size_t>(delta_literal);
    if (is_delta_step && skip_delta_index) continue;
    const Relation* rel = nullptr;
    if (is_delta_step) rel = source.Delta(step.pred);
    if (rel == nullptr) rel = source.Full(step.pred);
    if (rel == nullptr) continue;
    if (rel->HasIndex(step.probe_columns)) continue;
    // RelationSource exposes relations as const because execution only
    // reads them; index pre-building is the one sanctioned mutation,
    // confined to this single-threaded planning moment.
    const_cast<Relation*>(rel)->EnsureIndex(step.probe_columns);
  }
}

int RuleExecutor::DrivingLiteral(const PreparedPlan& plan) const {
  const Plan& p = *plan.plan_;
  if (p.driving_step < 0) return -1;
  return static_cast<int>(
      p.steps[static_cast<size_t>(p.driving_step)].original_index);
}

int RuleExecutor::FirstPositiveStep(const PreparedPlan& plan) const {
  for (const LiteralStep& step : plan.plan_->steps) {
    if (!step.is_comparison && !step.negated) {
      return static_cast<int>(step.original_index);
    }
  }
  return -1;
}

std::vector<uint32_t> RuleExecutor::ProbeColumnsFor(
    const PreparedPlan& plan, int literal_index) const {
  for (const LiteralStep& step : plan.plan_->steps) {
    if (step.is_comparison || step.negated) continue;
    if (literal_index >= 0 &&
        step.original_index == static_cast<size_t>(literal_index)) {
      return step.probe_columns;
    }
  }
  return {};
}

std::string RuleExecutor::DescribePlan(const PreparedPlan& plan,
                                       int delta_literal) const {
  assert(plan.plan_ != nullptr);
  const Plan& p = *plan.plan_;
  // Steps absent from the batch order were fused into an earlier host
  // by the batch lowering; surface that in the description.
  std::vector<bool> in_batch(p.steps.size(), false);
  for (size_t i : p.batch_steps) in_batch[i] = true;
  std::ostringstream os;
  os << rule_.ToString() << "\n";
  size_t n = 0;
  for (size_t i = 0; i < p.steps.size(); ++i) {
    const LiteralStep& step = p.steps[i];
    const Literal& lit = rule_.body()[step.original_index];
    os << "  " << ++n << ". " << lit.ToString() << "  ";
    if (step.is_comparison) {
      os << (step.eq_binds ? "[bind]" : "[filter]");
    } else if (step.negated) {
      os << "[negation check]";
    } else if (step.probe_columns.empty()) {
      os << "[scan]";
    } else {
      os << "[probe cols";
      for (uint32_t c : step.probe_columns) os << " " << c;
      os << "]";
    }
    if (!step.is_comparison && delta_literal >= 0 &&
        step.original_index == static_cast<size_t>(delta_literal)) {
      os << " (delta)";
    }
    if (p.driving_step == static_cast<int>(i)) os << " (driving)";
    if (!in_batch[i]) os << " (batch: fused into prior step)";
    // Cost plans: the model's estimated bindings for the step, the
    // per-execution actual observed so far (cumulative, process-wide
    // via CostFeedback) and the error factor between the two — the
    // at-a-glance misestimate view behind the shell's :plan/:profile.
    if (p.cost_ordered && step.original_index < p.est_rows.size() &&
        p.est_rows[step.original_index] >= 0.0) {
      const double est = p.est_rows[step.original_index];
      char buf[96];
      std::snprintf(buf, sizeof(buf), " est~%.3g", est);
      os << buf;
      const CostFeedback::Cell* cell = p.feedback[step.original_index];
      const uint64_t execs =
          cell == nullptr
              ? 0
              : cell->executions.load(std::memory_order_relaxed);
      if (execs > 0) {
        const double actual =
            static_cast<double>(
                cell->actual_bindings.load(std::memory_order_relaxed)) /
            static_cast<double>(execs);
        const double err =
            (actual + 1.0) / (est + 1.0);  // >1: underestimated
        std::snprintf(buf, sizeof(buf), " actual~%.3g err x%.2f", actual,
                      err);
        os << buf;
      }
    }
    os << "\n";
  }
  if (p.steps.empty()) os << "  (empty body: emit head once)\n";
  os << "  planner: " << PlannerModeName(p.planner);
  if (p.planner == PlannerMode::kCost && !p.cost_ordered) {
    os << " (greedy fallback)";
  }
  os << "\n";
  std::string out = os.str();
  out.pop_back();
  return out;
}

void RuleExecutor::ExecutePlan(const PreparedPlan& plan,
                               const RelationSource& source,
                               int delta_literal, const TupleSink& sink,
                               EvalStats* stats, size_t morsel_begin,
                               size_t morsel_end) const {
  if (stats != nullptr) ++stats->rule_applications;
  const Plan& p = *plan.plan_;
  // All working state for the whole scan, allocated once: the inner
  // join loops never touch the allocator.
  ExecContext ctx;
  ctx.frame.assign(slot_count_, Term::Int(0));
  ctx.bound.assign(slot_count_, 0);
  ctx.newly_bound.resize(p.scratch_size);
  ctx.scratch_row.reserve(p.max_row_width);
  ctx.literal_bindings.assign(rule_.body().size(), 0);
  ctx.morsel_begin = morsel_begin;
  ctx.morsel_end = morsel_end;
  ExecuteStep(p, source, delta_literal, 0, &ctx, sink, stats);
  RecordFeedback(p, source, delta_literal, ctx.literal_bindings,
                 morsel_begin, morsel_end);
}

void RuleExecutor::Execute(const RelationSource& source, int delta_literal,
                           const TupleSink& sink, EvalStats* stats,
                           bool size_aware, PlannerMode planner) const {
  Result<PreparedPlan> plan =
      Prepare(source, delta_literal, size_aware,
              /*skip_delta_index=*/false, /*partition=*/false, planner);
  if (!plan.ok()) return;  // Create() validated; cannot fail here
  ExecutePlan(*plan, source, delta_literal, sink, stats);
}

void RuleExecutor::RecordFeedback(
    const Plan& plan, const RelationSource& source, int delta_literal,
    const std::vector<uint64_t>& literal_bindings, size_t morsel_begin,
    size_t morsel_end) const {
  if (plan.feedback.empty()) return;  // greedy plan: no cost model to feed
  // A morsel execution covers only a slice of the driving relation, so
  // it records the matching slice of the whole-execution estimates —
  // the summed (actual, estimated) pairs over all morsels then compare
  // one full execution against one full estimate.
  double fraction = 1.0;
  if (morsel_end != kNoMorsel && plan.driving_step >= 0) {
    const LiteralStep& drv =
        plan.steps[static_cast<size_t>(plan.driving_step)];
    const Relation* rel = nullptr;
    if (delta_literal >= 0 &&
        drv.original_index == static_cast<size_t>(delta_literal)) {
      rel = source.Delta(drv.pred);
    }
    if (rel == nullptr) rel = source.Full(drv.pred);
    const size_t n = rel == nullptr ? 0 : rel->size();
    if (n > 0) {
      const size_t end = std::min(morsel_end, n);
      const size_t begin = std::min(morsel_begin, end);
      fraction = static_cast<double>(end - begin) / static_cast<double>(n);
    }
  }
  for (size_t i = 0; i < plan.feedback.size(); ++i) {
    CostFeedback::Cell* cell = plan.feedback[i];
    if (cell == nullptr) continue;
    const uint64_t est = static_cast<uint64_t>(
        std::max(0.0, plan.est_rows[i]) * fraction + 0.5);
    cell->executions.fetch_add(1, std::memory_order_relaxed);
    const uint64_t actual =
        i < literal_bindings.size() ? literal_bindings[i] : 0;
    cell->actual_bindings.fetch_add(actual, std::memory_order_relaxed);
    cell->estimated_bindings.fetch_add(est, std::memory_order_relaxed);
  }
}

void RuleExecutor::ExecuteStep(const Plan& plan,
                               const RelationSource& source,
                               int delta_literal, size_t step_index,
                               ExecContext* ctx, const TupleSink& sink,
                               EvalStats* stats) const {
  if (step_index == plan.steps.size()) {
    // Emit the head through the shared scratch row (capacity reserved
    // in ExecutePlan, so this never allocates).
    ctx->scratch_row.clear();
    for (const TermSpec& spec : plan.head_specs) {
      ctx->scratch_row.push_back(spec.is_constant ? spec.constant
                                                  : ctx->frame[spec.slot]);
    }
    sink(RowRef(ctx->scratch_row));
    return;
  }

  const LiteralStep& step = plan.steps[step_index];
  auto value_of = [&](const TermSpec& spec) -> const Value& {
    return spec.is_constant ? spec.constant : ctx->frame[spec.slot];
  };

  if (step.is_comparison) {
    if (step.eq_binds) {
      const TermSpec& bound_side = step.lhs.bound ? step.lhs : step.rhs;
      const TermSpec& free_side = step.lhs.bound ? step.rhs : step.lhs;
      if (ctx->bound[free_side.slot]) {
        if (CompareValues(ctx->frame[free_side.slot],
                          value_of(bound_side)) != 0) {
          return;
        }
        ExecuteStep(plan, source, delta_literal, step_index + 1, ctx, sink,
                    stats);
        return;
      }
      ctx->frame[free_side.slot] = value_of(bound_side);
      ctx->bound[free_side.slot] = 1;
      ExecuteStep(plan, source, delta_literal, step_index + 1, ctx, sink,
                  stats);
      ctx->bound[free_side.slot] = 0;
      return;
    }
    if (stats != nullptr) ++stats->comparison_checks;
    bool holds =
        EvalComparisonOp(value_of(step.lhs), step.op, value_of(step.rhs));
    if (step.negated) holds = !holds;
    if (holds) {
      ExecuteStep(plan, source, delta_literal, step_index + 1, ctx, sink,
                  stats);
    }
    return;
  }

  // Relational literal.
  const Relation* relation = nullptr;
  if (delta_literal >= 0 &&
      step.original_index == static_cast<size_t>(delta_literal)) {
    relation = source.Delta(step.pred);
  }
  if (relation == nullptr) relation = source.Full(step.pred);

  if (step.negated) {
    // All arguments are statically bound; membership test through the
    // scratch row (done with it before any recursion).
    ctx->scratch_row.clear();
    for (const TermSpec& spec : step.args) {
      ctx->scratch_row.push_back(value_of(spec));
    }
    bool present =
        relation != nullptr && relation->Contains(RowRef(ctx->scratch_row));
    if (!present) {
      ExecuteStep(plan, source, delta_literal, step_index + 1, ctx, sink,
                  stats);
    }
    return;
  }

  if (relation == nullptr || relation->empty()) return;

  // Slots freshly bound at this step, restored after each recursion.
  // Slices of the shared scratch land each step its own window, so the
  // recursion never allocates.
  uint32_t* newly = ctx->newly_bound.data() + plan.scratch_offsets[step_index];

  auto try_row = [&](RowRef row) {
    size_t n_newly = 0;
    bool match = true;
    for (uint32_t col = 0; col < step.args.size() && match; ++col) {
      const TermSpec& spec = step.args[col];
      if (spec.is_constant) {
        match = row[col] == spec.constant;
      } else if (ctx->bound[spec.slot]) {
        match = row[col] == ctx->frame[spec.slot];
      } else {
        ctx->frame[spec.slot] = row[col];
        ctx->bound[spec.slot] = 1;
        newly[n_newly++] = spec.slot;
      }
    }
    if (match) {
      if (stats != nullptr) ++stats->bindings_explored;
      ++ctx->literal_bindings[step.original_index];
      ExecuteStep(plan, source, delta_literal, step_index + 1, ctx, sink,
                  stats);
    }
    for (size_t k = 0; k < n_newly; ++k) ctx->bound[newly[k]] = 0;
  };

  // The driving step of a partitioned plan always scans (its probe
  // index is never built) and honors the context's morsel row range.
  const bool is_driving = plan.driving_step == static_cast<int>(step_index);
  if (!is_driving && !step.probe_columns.empty()) {
    // Gather the probe key into the scratch row; Probe hashes it in
    // place (hash-first, no key tuple is ever materialized).
    ctx->scratch_row.clear();
    for (uint32_t col : step.probe_columns) {
      ctx->scratch_row.push_back(value_of(step.args[col]));
    }
    const std::vector<RowId>& hits =
        relation->Probe(step.probe_columns, ctx->scratch_row.data());
    for (RowId row_index : hits) {
      try_row(relation->row(row_index));
    }
  } else {
    const size_t n = relation->size();
    const size_t begin = is_driving ? std::min(ctx->morsel_begin, n) : 0;
    const size_t end = is_driving ? std::min(ctx->morsel_end, n) : n;
    for (size_t i = begin; i < end; ++i) try_row(relation->row(i));
  }
}

RuleExecutor::BatchScratch::BatchScratch() = default;
RuleExecutor::BatchScratch::~BatchScratch() = default;
RuleExecutor::BatchScratch::BatchScratch(BatchScratch&&) noexcept = default;
RuleExecutor::BatchScratch& RuleExecutor::BatchScratch::operator=(
    BatchScratch&&) noexcept = default;

void RuleExecutor::ExecutePlanBatched(
    const PreparedPlan& plan, const RelationSource& source, int delta_literal,
    const BatchSink& sink, EvalStats* stats, size_t batch_size,
    size_t morsel_begin, size_t morsel_end, BatchScratch* scratch,
    bool vectorize) const {
  if (stats != nullptr) ++stats->rule_applications;
  const Plan& p = *plan.plan_;
  // Work out of the caller's scratch when given (morsel workers run
  // thousands of executions per round; the buffers below keep their
  // steady-state capacity across them), else out of a local context.
  BatchContext local;
  BatchContext* ctx = &local;
  if (scratch != nullptr) {
    if (scratch->ctx_ == nullptr) {
      scratch->ctx_ = std::make_unique<BatchContext>();
    }
    ctx = scratch->ctx_.get();
  }
  ctx->batch_size = std::max<size_t>(1, batch_size);
  ctx->steps.resize(p.batch_steps.size() + 1);
  for (StepScratch& s : ctx->steps) s.input.Clear();
  ctx->row_scratch.clear();
  ctx->row_scratch.reserve(p.max_row_width);
  ctx->heads.Reset(static_cast<uint32_t>(p.head_specs.size()));
  ctx->batches = 0;
  ctx->morsel_begin = morsel_begin;
  ctx->morsel_end = morsel_end;
  ctx->vectorize = vectorize;
  ctx->bindings = 0;
  ctx->comparisons = 0;
  ctx->literal_bindings.assign(rule_.body().size(), 0);
  // Seed the pipeline with a single all-unbound frame; the planner's
  // static bound set decides which slots each step may read.
  StepScratch& seed = ctx->steps[0];
  seed.input.data.assign(slot_count_, Term::Int(0));
  seed.input.rows = 1;
  RunBatchFrom(p, source, delta_literal, 0, ctx, sink);
  if (ctx->heads.size() > 0) {
    sink(ctx->heads);
    ++ctx->batches;
  }
  if (stats != nullptr) {
    stats->bindings_explored += ctx->bindings;
    stats->comparison_checks += ctx->comparisons;
    stats->batches += ctx->batches;
  }
  RecordFeedback(p, source, delta_literal, ctx->literal_bindings,
                 morsel_begin, morsel_end);
}

void RuleExecutor::RunBatchFrom(const Plan& plan,
                                const RelationSource& source,
                                int delta_literal, size_t step_index,
                                BatchContext* ctx,
                                const BatchSink& sink) const {
  const FrameBlock& in = ctx->steps[step_index].input;
  const size_t width = slot_count_;
  const size_t n_in = in.rows;
  if (n_in == 0) return;
  const Value* in_data = in.data.data();

  if (step_index == plan.batch_steps.size()) {
    // Emit one head row per surviving frame, flushing full blocks to
    // the sink as they fill: one type-erased dispatch per block, not
    // per tuple.
    const Value* row = in_data;
    for (size_t f = 0; f < n_in; ++f, row += width) {
      ctx->row_scratch.clear();
      for (const TermSpec& spec : plan.head_specs) {
        ctx->row_scratch.push_back(spec.is_constant ? spec.constant
                                                    : row[spec.slot]);
      }
      ctx->heads.Append(RowRef(ctx->row_scratch));
      if (ctx->heads.size() >= ctx->batch_size) {
        sink(ctx->heads);
        ++ctx->batches;
        ctx->heads.clear();
      }
    }
    return;
  }

  const LiteralStep& step = plan.steps[plan.batch_steps[step_index]];
  const bool is_tail =
      plan.tail_emit && step_index + 1 == plan.batch_steps.size();
  FrameBlock* out = &ctx->steps[step_index + 1].input;
  if (!is_tail) out->data.reserve(ctx->batch_size * width);
  // Invariant: `out` is empty here; whenever it fills to batch_size it
  // is drained through the remaining steps and cleared, and the tail
  // is drained before returning.
  auto flush_out = [&]() {
    RunBatchFrom(plan, source, delta_literal, step_index + 1, ctx, sink);
    out->Clear();
  };
  auto copy_frame = [&](const Value* row) {
    out->data.insert(out->data.end(), row, row + width);
  };

  if (step.is_comparison) {
    if (step.eq_binds) {
      // At every step boundary the dynamically-bound slots are exactly
      // the planner's static bound set (each step's binding effect is
      // static), so the free side is always unbound here: copy the
      // frame and write the bound side's value into its slot.
      const TermSpec& bound_side = step.lhs.bound ? step.lhs : step.rhs;
      const TermSpec& free_side = step.lhs.bound ? step.rhs : step.lhs;
      const Value* row = in_data;
      for (size_t f = 0; f < n_in; ++f, row += width) {
        const size_t base = out->data.size();
        copy_frame(row);
        out->data[base + free_side.slot] =
            bound_side.is_constant ? bound_side.constant
                                   : row[bound_side.slot];
        if (++out->rows == ctx->batch_size) flush_out();
      }
    } else if (ctx->vectorize) {
      // Selection-vector form: one branch-light pass evaluates the
      // predicate into a survivor index list (unconditional store,
      // conditional advance — flat cost regardless of selectivity),
      // then a pure copy loop materializes survivors. Survivor order
      // and the comparisons counter match the fused loop exactly.
      std::vector<uint32_t>& sel = ctx->steps[step_index].sel;
      sel.resize(n_in);
      uint32_t* sel_data = sel.data();
      size_t n_sel = 0;
      const Value* row = in_data;
      for (size_t f = 0; f < n_in; ++f, row += width) {
        const Value& lhs =
            step.lhs.is_constant ? step.lhs.constant : row[step.lhs.slot];
        const Value& rhs =
            step.rhs.is_constant ? step.rhs.constant : row[step.rhs.slot];
        const bool holds =
            EvalComparisonOp(lhs, step.op, rhs) != step.negated;
        sel_data[n_sel] = static_cast<uint32_t>(f);
        n_sel += holds ? 1 : 0;
      }
      ctx->comparisons += n_in;
      for (size_t k = 0; k < n_sel; ++k) {
        copy_frame(in_data + static_cast<size_t>(sel_data[k]) * width);
        if (++out->rows == ctx->batch_size) flush_out();
      }
    } else {
      const Value* row = in_data;
      for (size_t f = 0; f < n_in; ++f, row += width) {
        ++ctx->comparisons;
        const Value& lhs =
            step.lhs.is_constant ? step.lhs.constant : row[step.lhs.slot];
        const Value& rhs =
            step.rhs.is_constant ? step.rhs.constant : row[step.rhs.slot];
        bool holds = EvalComparisonOp(lhs, step.op, rhs);
        if (step.negated) holds = !holds;
        if (holds) {
          copy_frame(row);
          if (++out->rows == ctx->batch_size) flush_out();
        }
      }
    }
    if (out->rows > 0) flush_out();
    return;
  }

  // Relational literal.
  const Relation* relation = nullptr;
  if (delta_literal >= 0 &&
      step.original_index == static_cast<size_t>(delta_literal)) {
    relation = source.Delta(step.pred);
  }
  if (relation == nullptr) relation = source.Full(step.pred);

  if (step.negated) {
    // All arguments statically bound: per-frame membership test over
    // the gathered row (no recursion between gather and use).
    const bool can_match = relation != nullptr && !relation->empty();
    if (ctx->vectorize && can_match) {
      // Batched form: gather every frame's membership row column-wise
      // into one flat block (per-column branch instead of per-value),
      // hash the whole block with the batch kernel, then run the dedup
      // probes with slot prefetch ahead of each lookup. Survivor set
      // and order are identical to the per-frame loop — same rows,
      // same hash recipe.
      StepScratch& scratch = ctx->steps[step_index];
      const size_t arity = step.args.size();
      scratch.keys.resize(n_in * arity, Term::Int(0));
      Value* keys = scratch.keys.data();
      for (size_t c = 0; c < arity; ++c) {
        const TermSpec& spec = step.args[c];
        if (spec.is_constant) {
          const Value v = spec.constant;
          for (size_t f = 0; f < n_in; ++f) keys[f * arity + c] = v;
        } else {
          const Value* src = in_data + spec.slot;
          for (size_t f = 0; f < n_in; ++f) {
            keys[f * arity + c] = src[f * width];
          }
        }
      }
      scratch.key_hashes.resize(n_in);
      size_t* hashes = scratch.key_hashes.data();
      HashValuesBatch(keys, arity, n_in, hashes);
      constexpr size_t kLookahead = 8;
      const size_t prefetch_now = std::min(kLookahead, n_in);
      for (size_t f = 0; f < prefetch_now; ++f) {
        relation->PrefetchInsert(hashes[f]);
      }
      const Value* row = in_data;
      for (size_t f = 0; f < n_in; ++f, row += width) {
        if (f + kLookahead < n_in) {
          relation->PrefetchInsert(hashes[f + kLookahead]);
        }
        if (!relation->Contains(RowRef(keys + f * arity, arity),
                                hashes[f])) {
          copy_frame(row);
          if (++out->rows == ctx->batch_size) flush_out();
        }
      }
      if (out->rows > 0) flush_out();
      return;
    }
    const Value* row = in_data;
    for (size_t f = 0; f < n_in; ++f, row += width) {
      bool present = false;
      if (can_match) {
        ctx->row_scratch.clear();
        for (const TermSpec& spec : step.args) {
          ctx->row_scratch.push_back(spec.is_constant ? spec.constant
                                                      : row[spec.slot]);
        }
        present = relation->Contains(RowRef(ctx->row_scratch));
      }
      if (!present) {
        copy_frame(row);
        if (++out->rows == ctx->batch_size) flush_out();
      }
    }
    if (out->rows > 0) flush_out();
    return;
  }

  if (relation == nullptr || relation->empty()) return;

  // Fused checks (non-binding steps folded into this step's emit
  // filter) always read the full relation: the delta occurrence is
  // never fused. Resolved once per block, probed per candidate.
  StepScratch& scratch = ctx->steps[step_index];
  const bool has_fused = !step.fused.empty();
  if (has_fused) {
    scratch.fused_rels.clear();
    for (const FusedCheck& fc : step.fused) {
      scratch.fused_rels.push_back(source.Full(fc.pred));
    }
  }
  auto fused_pass = [&](const Value* frame, const Value* row_vals) -> bool {
    for (size_t fi = 0; fi < step.fused.size(); ++fi) {
      const FusedCheck& fc = step.fused[fi];
      const Relation* rel = scratch.fused_rels[fi];
      bool present = false;
      if (rel != nullptr && !rel->empty()) {
        ctx->row_scratch.clear();
        for (const FusedCheck::Source& s : fc.sources) {
          ctx->row_scratch.push_back(
              s.kind == FusedCheck::Source::kConst   ? s.constant
              : s.kind == FusedCheck::Source::kFrame ? frame[s.idx]
                                                     : row_vals[s.idx]);
        }
        present = rel->Contains(RowRef(ctx->row_scratch));
      }
      if (fc.negated) {
        if (present) return false;
      } else {
        if (!present) return false;
        // Mirrors the per-tuple executor: an all-bound positive literal
        // contributes one explored binding when its (unique) match
        // exists.
        ++ctx->bindings;
        ++ctx->literal_bindings[fc.original_index];
      }
    }
    return true;
  };

  // Validate-then-copy: `passes` reads only the candidate row and the
  // input frame (no writes), so mismatching rows cost zero frame
  // traffic; `emit` then copies the surviving frame once and writes the
  // fresh bindings in a loop of pure kBind actions.
  auto passes = [&](const Value* frame, const Value* row_vals,
                    const std::vector<ColumnAction>& checks) -> bool {
    for (const ColumnAction& a : checks) {
      const Value& v = row_vals[a.col];
      switch (a.kind) {
        case ColumnAction::kCheckConst:
          if (!(v == a.constant)) return false;
          break;
        case ColumnAction::kCheckSlot:
          if (!(v == frame[a.slot])) return false;
          break;
        case ColumnAction::kCheckRepeat:
          if (!(v == row_vals[a.other_col])) return false;
          break;
        case ColumnAction::kBind:
          break;  // never in a check list
      }
    }
    return true;
  };
  auto emit = [&](const Value* frame, const Value* row_vals) {
    if (is_tail) {
      // Last step: project the head row directly — no frame block, no
      // terminal pass over it.
      ctx->row_scratch.clear();
      for (const FusedCheck::Source& s : plan.tail_head_sources) {
        ctx->row_scratch.push_back(
            s.kind == FusedCheck::Source::kConst   ? s.constant
            : s.kind == FusedCheck::Source::kFrame ? frame[s.idx]
                                                   : row_vals[s.idx]);
      }
      ctx->heads.Append(RowRef(ctx->row_scratch));
      if (ctx->heads.size() >= ctx->batch_size) {
        sink(ctx->heads);
        ++ctx->batches;
        ctx->heads.clear();
      }
      return;
    }
    const size_t base = out->data.size();
    copy_frame(frame);
    Value* out_row = out->data.data() + base;
    for (const ColumnAction& a : step.bind_actions) {
      out_row[a.slot] = row_vals[a.col];
    }
    if (++out->rows == ctx->batch_size) flush_out();
  };

  // The driving step of a partitioned plan always takes the scan path
  // (its probe index is never built) restricted to the context's
  // morsel row range; `scan_checks` re-validates what a probe would
  // have guaranteed, so the match set — and the `bindings` counter —
  // is identical to the serial probe execution, just split across
  // morsels.
  const bool is_driving =
      plan.driving_step >= 0 &&
      plan.batch_steps[step_index] == static_cast<size_t>(plan.driving_step);

  if (!is_driving && !step.probe_columns.empty()) {
    // Phase 1: gather every frame's probe key into one flat buffer and
    // look them all up in a single ProbeBatch pass (contiguous hashing,
    // prefetched slot/bucket walks, one index resolution). Phase 2:
    // extend frames with their hits.
    const size_t key_width = step.probe_columns.size();
    if (ctx->vectorize) {
      // Column-wise gather: one tight strided copy (or constant fill)
      // per key column, hoisting the is_constant branch out of the
      // per-frame loop. Same key block as the row-wise gather.
      scratch.keys.resize(n_in * key_width, Term::Int(0));
      Value* keys = scratch.keys.data();
      for (size_t kc = 0; kc < key_width; ++kc) {
        const TermSpec& spec = step.args[step.probe_columns[kc]];
        if (spec.is_constant) {
          const Value v = spec.constant;
          for (size_t f = 0; f < n_in; ++f) keys[f * key_width + kc] = v;
        } else {
          const Value* src = in_data + spec.slot;
          for (size_t f = 0; f < n_in; ++f) {
            keys[f * key_width + kc] = src[f * width];
          }
        }
      }
    } else {
      scratch.keys.clear();
      scratch.keys.reserve(n_in * key_width);
      const Value* frame = in_data;
      for (size_t f = 0; f < n_in; ++f, frame += width) {
        for (uint32_t col : step.probe_columns) {
          const TermSpec& spec = step.args[col];
          scratch.keys.push_back(spec.is_constant ? spec.constant
                                                  : frame[spec.slot]);
        }
      }
    }
    relation->ProbeBatch(step.probe_columns, scratch.keys.data(), n_in,
                         &scratch.key_hashes, &scratch.hit_spans);
    const Value* row = in_data;
    const bool no_checks = step.probe_checks.empty();
    for (size_t f = 0; f < n_in; ++f, row += width) {
      const std::span<const RowId> hits = scratch.hit_spans[f];
      const size_t n_hits = hits.size();
      for (size_t i = 0; i < n_hits; ++i) {
        // Hit rows beyond the first are random ids the batch probe's
        // lookahead never touched; keep a short in-span prefetch ahead
        // of the validate/emit work.
        if (i + 2 < n_hits) {
          __builtin_prefetch(relation->row(hits[i + 2]).data(),
                             /*rw=*/0, /*locality=*/1);
        }
        const Value* row_vals = relation->row(hits[i]).data();
        if (no_checks || passes(row, row_vals, step.probe_checks)) {
          ++ctx->bindings;
          ++ctx->literal_bindings[step.original_index];
          if (!has_fused || fused_pass(row, row_vals)) emit(row, row_vals);
        }
      }
    }
  } else {
    // Full scan: every check runs (no index guarantees). The driving
    // step clamps to its morsel; everything else scans whole.
    const size_t n_rows = relation->size();
    const size_t row_begin =
        is_driving ? std::min(ctx->morsel_begin, n_rows) : 0;
    const size_t row_end = is_driving ? std::min(ctx->morsel_end, n_rows)
                                      : n_rows;
    // Columnar threshold: below this many scanned rows the SoA
    // snapshot's build/refresh cost outweighs the lane-compare win.
    constexpr size_t kColumnarScanMinRows = 64;
    if (ctx->vectorize && !step.scan_checks.empty() &&
        row_end - row_begin >= kColumnarScanMinRows) {
      // Column-at-a-time scan: run each check as a flat selection /
      // refinement over the relation's columnar snapshot (SIMD lane
      // compares), touching row data only for the final survivors.
      // Frame-independent checks (constants, within-row repeats) are
      // evaluated once into `base_sel`; the frame-dependent (slot)
      // checks refine a per-frame copy. Selection vectors are
      // ascending, so survivors emit in the same order as the
      // row-at-a-time loop, and `bindings` counts the same rows.
      StepScratch& scan_scratch = ctx->steps[step_index];
      // Scratch outlives this plan (worker lanes reuse it across rules
      // and rounds), so never trust a cached view here: EnsureColumns
      // re-validates against the relation's own cache under its mutex
      // — a no-op lock when the snapshot is current.
      scan_scratch.columns = relation->EnsureColumns();
      const ColumnView& cols = *scan_scratch.columns;
      const uint32_t b = static_cast<uint32_t>(row_begin);
      const uint32_t e = static_cast<uint32_t>(row_end);
      std::vector<uint32_t>& base = scan_scratch.base_sel;
      base.clear();
      bool have_base = false;
      bool any_frame_dep = false;
      for (const ColumnAction& a : step.scan_checks) {
        if (a.kind == ColumnAction::kCheckSlot) {
          any_frame_dep = true;
          continue;
        }
        if (!have_base) {
          if (a.kind == ColumnAction::kCheckConst) {
            cols.SelectEq(a.col, a.constant, b, e, &base);
          } else {  // kCheckRepeat
            cols.SelectEqColumns(a.col, a.other_col, b, e, &base);
          }
          have_base = true;
        } else if (a.kind == ColumnAction::kCheckConst) {
          cols.RefineEq(a.col, a.constant, &base);
        } else {
          cols.RefineEqColumns(a.col, a.other_col, &base);
        }
      }
      std::vector<uint32_t>& sel = scan_scratch.sel;
      const Value* row = in_data;
      for (size_t f = 0; f < n_in; ++f, row += width) {
        const std::vector<uint32_t>* active = &base;
        if (any_frame_dep) {
          bool started = have_base;
          if (started) sel = base;
          for (const ColumnAction& a : step.scan_checks) {
            if (a.kind != ColumnAction::kCheckSlot) continue;
            if (!started) {
              sel.clear();
              cols.SelectEq(a.col, row[a.slot], b, e, &sel);
              started = true;
            } else {
              cols.RefineEq(a.col, row[a.slot], &sel);
            }
          }
          active = &sel;
        }
        const uint32_t* hits = active->data();
        const size_t n_hits = active->size();
        for (size_t i = 0; i < n_hits; ++i) {
          if (i + 4 < n_hits) {
            __builtin_prefetch(relation->row(hits[i + 4]).data(),
                               /*rw=*/0, /*locality=*/1);
          }
          const Value* row_vals = relation->row(hits[i]).data();
          ++ctx->bindings;
          ++ctx->literal_bindings[step.original_index];
          if (!has_fused || fused_pass(row, row_vals)) emit(row, row_vals);
        }
      }
    } else {
      const Value* row = in_data;
      for (size_t f = 0; f < n_in; ++f, row += width) {
        for (size_t i = row_begin; i < row_end; ++i) {
          const Value* row_vals = relation->row(i).data();
          if (passes(row, row_vals, step.scan_checks)) {
            ++ctx->bindings;
            ++ctx->literal_bindings[step.original_index];
            if (!has_fused || fused_pass(row, row_vals)) emit(row, row_vals);
          }
        }
      }
    }
  }
  if (out->rows > 0) flush_out();
}

}  // namespace semopt
