#ifndef SEMOPT_EVAL_INCREMENTAL_H_
#define SEMOPT_EVAL_INCREMENTAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ast/program.h"
#include "eval/component_plan.h"
#include "eval/eval_stats.h"
#include "eval/fixpoint.h"
#include "eval/plan_cache.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// Outcome counters for incremental view maintenance: one ApplyUpdates
/// batch, or (via Add) the running totals of many. `overdeleted` and
/// `rederived` measure the DRed passes over recursive strata,
/// `recounted` the exact per-tuple recount over counting (non-recursive)
/// strata; `net_*` are the IDB tuples that actually changed once the
/// batch settled — the deltas fed to downstream strata and visible to
/// readers. All are surfaced process-wide as `eval.ivm.*` counters.
struct IvmStats {
  size_t batches = 0;
  /// EDB tuples the batch actually removed / added (set semantics:
  /// absent deletions and duplicate insertions are no-ops).
  size_t edb_deleted = 0;
  size_t edb_inserted = 0;
  /// DRed: tuples erased by the overdeletion pass (the candidate set).
  size_t overdeleted = 0;
  /// DRed: overdeleted tuples re-inserted because they kept an
  /// alternative derivation in the new state.
  size_t rederived = 0;
  /// Counting strata: candidate tuples whose derivation count was
  /// recomputed against the post-update state.
  size_t recounted = 0;
  /// IDB tuples gone / new once the batch settled.
  size_t net_deleted = 0;
  size_t net_inserted = 0;
  /// Wall time of the whole ApplyUpdates call, microseconds.
  uint64_t maintenance_us = 0;

  void Add(const IvmStats& other);

  /// Folds the counters into `registry` as "<prefix>.batches",
  /// "<prefix>.overdeleted", ... (ApplyUpdates publishes each batch to
  /// MetricsRegistry::Global() under "eval.ivm").
  void PublishTo(obs::MetricsRegistry& registry,
                 std::string_view prefix = "eval.ivm") const;

  /// One-line "key=value" summary in declaration order.
  std::string ToString() const;
};

/// Incremental maintenance of a program's materialized IDB under mixed
/// insert/delete batches: `ApplyUpdates` propagates a batch of EDB
/// changes stratum-by-stratum through delta rules instead of
/// recomputing the fixpoint, so a batch costs O(|changes affected|)
/// joins rather than O(|database|).
///
/// Per-stratum regime (strata = dependency SCCs in topological order):
///  - Non-recursive strata use *counting*: a RowId-parallel derivation
///    count per stored tuple. A batch enumerates the affected tuples
///    with delta rules (sound overapproximation), recounts exactly those
///    tuples against the post-update state, and erases the ones whose
///    count reached zero — no fixpoint, one pass.
///  - Recursive strata use *DRed* (delete/rederive): an overdeletion
///    fixpoint computes a superset of the tuples that may have lost
///    every derivation, those are erased, and a candidate-restricted
///    rederivation fixpoint re-inserts the survivors; insertions then
///    propagate semi-naively.
/// Each stratum's net delta feeds the strata above it, which is what
/// makes stratified negation exact: by the time a stratum runs, every
/// predicate it negates holds its final post-update value.
///
/// All maintenance joins run through RuleExecutor plans memoized in a
/// PlanCache (cost planner included via EvalOptions::planner), so
/// steady-state batches skip planning entirely.
class IncrementalEvaluator {
 public:
  /// Materializes the initial fixpoint (through the standard Evaluate
  /// engine, so `options.num_threads` etc. apply) and compiles the
  /// maintenance rule sets. Programs with stratified negation are
  /// accepted; an unstratifiable program fails with InvalidArgument
  /// naming the offending negated literal. `options` is retained for
  /// maintenance joins (planner, batch size, SIMD mode, plan cache);
  /// maintenance itself runs on the calling thread — deltas are small
  /// by design, so the morsel engine's fan-out overhead is not worth
  /// paying per batch.
  static Result<IncrementalEvaluator> Create(
      const Program& program, Database edb,
      const EvalOptions& options = EvalOptions());

  IncrementalEvaluator(IncrementalEvaluator&&) = default;
  IncrementalEvaluator& operator=(IncrementalEvaluator&&) = default;

  /// Applies one batch of ground EDB facts — `dels` removed first, then
  /// `adds` inserted (a tuple in both ends up present) — and propagates
  /// the consequences so that afterwards `idb()` equals the from-scratch
  /// fixpoint over the new `edb()` exactly. Duplicate facts within a
  /// batch, deletions of absent tuples and insertions of present ones
  /// are no-ops. Facts over IDB predicates are rejected (derived
  /// relations change only through their rules). Returns the batch's
  /// IvmStats; `stats` (optional) additionally accumulates the join
  /// work of the maintenance rule executions.
  Result<IvmStats> ApplyUpdates(const std::vector<Atom>& adds,
                                const std::vector<Atom>& dels,
                                EvalStats* stats = nullptr);

  /// Insertion-only convenience (the legacy surface): equivalent to
  /// `ApplyUpdates(facts, {})`. Returns the number of IDB tuples newly
  /// derived.
  Result<size_t> AddFacts(const std::vector<Atom>& facts,
                          EvalStats* stats = nullptr);

  const Database& edb() const { return edb_; }
  const Database& idb() const { return idb_; }
  const Program& program() const { return program_; }

  /// Running totals over every ApplyUpdates call on this evaluator.
  const IvmStats& totals() const { return totals_; }

  /// The stored derivation count of `tuple` in counting (non-recursive)
  /// stratum predicate `pred`: the number of (rule, body-binding) pairs
  /// currently deriving it. Returns 0 for absent tuples and -1 when
  /// `pred` is not a counting-maintained predicate (recursive strata
  /// carry no counts — DRed re-derives instead of counting).
  int64_t DerivationCount(const PredicateId& pred, const Tuple& tuple) const;

 private:
  /// One compiled maintenance rule execution: a (possibly rewritten)
  /// rule plus the original-body index read as the delta and the
  /// predicate whose change triggers it. `trigger_on_insert` selects
  /// which side of the trigger's net delta drives it: insertions (Δ+)
  /// or deletions (Δ-). A negated trigger occurrence is rewritten
  /// positive in `executor` — inserting into q kills derivations
  /// through ¬q (a deletion trigger reads Δ+), deleting from q enables
  /// them (an insertion trigger reads Δ-).
  ///
  /// Overdeletion rules must read every *other* lower-stratum body
  /// occurrence in its pre-update state even though lower strata
  /// already hold post-update values. Materializing pre-state views
  /// would cost a full relation copy per changed predicate per batch —
  /// O(|DB|), the exact thing maintenance exists to avoid — so the
  /// rule is differentiated instead: pre ⊆ stored ∪ Δ- for a positive
  /// occurrence and ¬pre ⊆ ¬stored ∨ Δ+ for a negated one, and one
  /// compiled variant exists per choice of branch across the
  /// occurrences (2^k variants of each overdeletion rule, compile-time
  /// only). A variant whose body reads a batch delta lists it in
  /// `view_deltas` as (predicate, on_insert): the rewritten literal
  /// reads the `__ivm_dm_*` (Δ-) or `__ivm_dp_*` (Δ+) view predicate,
  /// bound per batch, and the variant is skipped whenever one of its
  /// deltas is empty — so per batch only the variants touching what
  /// actually changed execute.
  struct DeltaRule {
    RuleExecutor executor;
    PredicateId head{0, 0};
    int delta_literal = -1;
    PredicateId trigger{0, 0};
    bool trigger_on_insert = false;
    std::vector<std::pair<PredicateId, bool>> view_deltas;
  };
  /// A candidate-restricted rule `h(t) :- __ivm_cand_h(t), body...`:
  /// with the cand guard as the delta, one execution derives — per
  /// candidate tuple — every body binding the post-update state still
  /// admits. DRed rederivation consumes the set of derived heads;
  /// counting recount tallies the per-row multiplicity.
  struct RestrictedRule {
    RuleExecutor executor;
    PredicateId head{0, 0};
    PredicateId cand{0, 0};
  };
  /// One dependency SCC with its compiled maintenance machinery.
  struct Stratum {
    std::set<PredicateId> preds;
    bool recursive = false;
    /// The original compiled rules (insertion-phase semi-naive reuses
    /// their recursive_literals exactly like the fixpoint engine).
    std::vector<PlannedRule> rules;
    /// Overdeletion / affected-set triggers on lower-stratum deltas.
    std::vector<DeltaRule> delete_seeds;
    /// Overdeletion propagation within the stratum (recursive only).
    std::vector<DeltaRule> delete_propagate;
    /// Insertion triggers on lower-stratum deltas.
    std::vector<DeltaRule> insert_seeds;
    std::vector<RestrictedRule> restricted;
  };

  /// Per-predicate net delta relations of one side (Δ- or Δ+),
  /// accumulated across strata as a batch propagates upward.
  using DeltaMap = std::map<PredicateId, std::unique_ptr<Relation>>;

  IncrementalEvaluator() = default;

  /// Builds per-stratum maintenance rule sets from `components`.
  Status CompileStrata(std::vector<EvalComponent> components);

  /// Propagates the accumulated deltas through one stratum (counting or
  /// DRed regime by `stratum.recursive`), updating `idb_` in place and
  /// appending the stratum's own net deltas to `dminus`/`dplus`.
  Status MaintainStratum(Stratum& stratum, DeltaMap* dminus, DeltaMap* dplus,
                         IvmStats* batch, EvalStats* stats);

  /// Seeds counts_ for a counting stratum by recounting every stored
  /// tuple (candidates := the whole relation) — exact by construction.
  Status InitCounts(Stratum& stratum, EvalStats* stats);

  PlanCacheInterface& cache() {
    return options_.plan_cache != nullptr ? *options_.plan_cache
                                          : plan_cache_;
  }

  Program program_;
  Database edb_;
  Database idb_;
  std::set<PredicateId> idb_preds_;
  std::vector<Stratum> strata_;
  /// RowId-parallel derivation counts per counting-stratum predicate:
  /// counts_[p][id] is the number of derivations of idb tuple `id`.
  /// Kept in lockstep with Relation::Erase's swap-removal renames.
  std::map<PredicateId, std::vector<int64_t>> counts_;
  EvalOptions options_;
  PlanCache plan_cache_;
  IvmStats totals_;
};

}  // namespace semopt

#endif  // SEMOPT_EVAL_INCREMENTAL_H_
