#ifndef SEMOPT_EVAL_INCREMENTAL_H_
#define SEMOPT_EVAL_INCREMENTAL_H_

#include <vector>

#include "ast/program.h"
#include "eval/eval_stats.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// Insertion-only incremental maintenance of a program's materialized
/// IDB: new EDB facts are propagated through delta rules instead of
/// recomputing the fixpoint from scratch. Monotone (set-semantics,
/// stratification-free) maintenance only — programs containing negated
/// relational literals are rejected at Create (deletions and negation
/// would require DRed-style overestimation, which is out of scope).
class IncrementalEvaluator {
 public:
  /// Materializes the initial fixpoint.
  static Result<IncrementalEvaluator> Create(const Program& program,
                                             Database edb);

  IncrementalEvaluator(IncrementalEvaluator&&) = default;
  IncrementalEvaluator& operator=(IncrementalEvaluator&&) = default;

  /// Adds ground facts and propagates their consequences. Facts already
  /// present are ignored. Returns the number of *IDB* tuples newly
  /// derived; `stats` (optional) accumulates the propagation work.
  Result<size_t> AddFacts(const std::vector<Atom>& facts,
                          EvalStats* stats = nullptr);

  const Database& edb() const { return edb_; }
  const Database& idb() const { return idb_; }
  const Program& program() const { return program_; }

 private:
  IncrementalEvaluator() = default;

  Program program_;
  Database edb_;
  Database idb_;
};

}  // namespace semopt

#endif  // SEMOPT_EVAL_INCREMENTAL_H_
