#ifndef SEMOPT_EVAL_SHARED_PLAN_CACHE_H_
#define SEMOPT_EVAL_SHARED_PLAN_CACHE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "eval/plan_cache.h"

namespace semopt {

/// A cross-session plan cache: N independently-locked PlanCache shards,
/// selected by a hash of the rule's text. PlanCache entries are already
/// content-addressed (rule text + planner flags + cardinality bands),
/// so plans prepared by one session are valid for every other session
/// evaluating over the same shared database — the only thing sharing
/// needs is locking, and sharding keeps concurrent coordinators from
/// serializing on one mutex (different rules almost always land on
/// different shards).
///
/// The per-shard LRU cap applies independently, so the total bound is
/// `shards * max_entries_per_shard`. Get also bumps the process-wide
/// counters eval.shared_plan_cache.{hit,miss} (per-session hit/miss
/// counts flow through `stats` exactly as with a private cache).
///
/// Note on hits: a hit revalidates the plan's probe indexes, which may
/// lazily build an index on a shared relation — safe under the
/// concurrent-EnsureIndex contract of Relation.
class SharedPlanCache : public PlanCacheInterface {
 public:
  static constexpr size_t kDefaultShards = 8;

  explicit SharedPlanCache(
      size_t shards = kDefaultShards,
      size_t max_entries_per_shard = PlanCache::kDefaultMaxEntries);

  Result<RuleExecutor::PreparedPlan> Get(
      const RuleExecutor& exec, const RelationSource& source,
      int delta_literal, EvalStats* stats, bool size_aware = true,
      bool skip_delta_index = false, bool partitioned = false,
      PlannerMode planner = PlannerMode::kGreedy,
      bool coarse_bands = false) override;

  void Clear() override;

  size_t shard_count() const { return shards_.size(); }
  /// Aggregates over all shards (each taken under its lock).
  size_t size() const;
  size_t hits() const;
  size_t misses() const;
  size_t evictions() const;

 private:
  struct Shard {
    std::mutex mu;
    PlanCache cache;
    explicit Shard(size_t max_entries) : cache(max_entries) {}
  };

  Shard& ShardFor(const RuleExecutor& exec);

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace semopt

#endif  // SEMOPT_EVAL_SHARED_PLAN_CACHE_H_
