#ifndef SEMOPT_SHELL_SHELL_H_
#define SEMOPT_SHELL_SHELL_H_

#include <string>
#include <string_view>

#include "ast/program.h"
#include "eval/fixpoint.h"
#include "eval/plan_cache.h"
#include "storage/database.h"

namespace semopt {

/// An interactive session over the library: accumulate rules, ICs and
/// facts, query, optimize, and inspect. The REPL binary
/// (`tools/semopt_shell`) is a thin loop over this class, which keeps
/// every behaviour unit-testable.
///
/// Input forms:
///   p(X) :- q(X).            add a rule
///   a(X), X > 3 -> b(X).     add an integrity constraint
///   edge(a, b).              add a fact (ground, empty body)
///   ?- p(X), X != a.         run a query
///   .command [args]          session commands (see `.help`)
///   :threads N               evaluate queries with N worker threads
///   :batch N                 batched executor block size (1 = per-tuple)
///   :trace FILE / :trace off start/stop a Chrome trace_event session
///   :metrics [on|off]        per-rule metrics collection + report
///   :plan PRED               show each PRED rule's join plan
class Shell {
 public:
  Shell() { eval_options_.plan_cache = &plan_cache_; }

  /// Executes one input line and returns the text to display.
  std::string Execute(std::string_view line);

  /// True once `.quit` has been executed.
  bool done() const { return done_; }

  const Program& program() const { return program_; }
  const Database& database() const { return edb_; }

 private:
  std::string HandleCommand(std::string_view line);
  std::string HandleQuery(std::string_view body_text);
  std::string HandleStatements(std::string_view text);

  std::string CmdHelp() const;
  std::string CmdProgram() const;
  std::string CmdDb(const std::vector<std::string>& args) const;
  std::string CmdOptimize(const std::vector<std::string>& args);
  std::string CmdResidues() const;
  std::string CmdCheck() const;
  std::string CmdMagic(std::string_view rest);
  std::string CmdExplain(std::string_view rest);
  std::string CmdLoad(const std::vector<std::string>& args);
  std::string CmdLoadTsv(const std::vector<std::string>& args);

  std::string CmdThreads(const std::vector<std::string>& args);
  std::string CmdBatch(const std::vector<std::string>& args);
  std::string CmdTrace(const std::vector<std::string>& args);
  std::string CmdMetrics(const std::vector<std::string>& args);
  std::string CmdPlan(const std::vector<std::string>& args);

  Program program_;
  Database edb_;
  /// Options applied to every query evaluation (`:threads`, `:metrics`
  /// edit it).
  EvalOptions eval_options_;
  /// Session plan cache, borrowed by every evaluation through
  /// eval_options_: re-running a query re-traverses an already-seen
  /// cardinality-band trajectory, so steady-state runs hit every round
  /// (`:metrics` shows eval.plan_cache.hit/miss). Entries are keyed by
  /// rule text, so program edits simply stop matching old entries.
  PlanCache plan_cache_;
  /// Destination of the running `:trace` session ("" = no session).
  std::string trace_path_;
  /// Stats of the most recent evaluation, shown by `:metrics`.
  EvalStats last_stats_;
  bool have_last_stats_ = false;
  bool show_stats_ = false;
  bool done_ = false;
};

}  // namespace semopt

#endif  // SEMOPT_SHELL_SHELL_H_
