#ifndef SEMOPT_SHELL_SHELL_H_
#define SEMOPT_SHELL_SHELL_H_

#include <string>
#include <string_view>

#include "ast/program.h"
#include "eval/plan_cache.h"
#include "server/session.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace semopt {

/// An interactive session over the library: accumulate rules, ICs and
/// facts, query, optimize, and inspect. The REPL binary
/// (`tools/semopt_shell`) is a thin loop over this class.
///
/// The command set itself lives in SessionCommandProcessor
/// (server/session.h) — the same interpreter every query-server
/// connection runs. The shell is the single-owner embedding: it holds
/// the Database and a session PlanCache directly and serves them
/// through a trivial DatabaseHost (unmanaged snapshots, in-place
/// writes, no scheduler).
///
/// Input forms:
///   p(X) :- q(X).            add a rule
///   a(X), X > 3 -> b(X).     add an integrity constraint ("-> ." = denial)
///   edge(a, b).              add a fact
///   ?- p(X), X != a.         run a query
///   .command [args]          session commands (see `.help`)
///   :threads N               evaluate queries with N worker threads
///   :batch N                 batched executor block size (1 = per-tuple)
///   :trace FILE / :trace off start/stop a Chrome trace_event session
///   :metrics [on|off]        per-rule metrics collection + report
///   :planner greedy|cost     join-order planner for query evaluation
///   :plan PRED               show each PRED rule's join plan
class Shell {
 public:
  Shell() : host_(), processor_(&host_) {}

  /// Executes one input line and returns the text to display.
  std::string Execute(std::string_view line) {
    return processor_.Execute(line);
  }

  /// True once `.quit` has been executed.
  bool done() const { return processor_.done(); }

  const Program& program() const { return processor_.program(); }
  const Database& database() const { return host_.db; }

  /// The underlying command processor (tests inspect query profiles
  /// and session state through it).
  const SessionCommandProcessor& processor() const { return processor_; }

 private:
  /// The single-owner host: the shell's Database and plan cache, no
  /// isolation machinery (one thread, no concurrent readers).
  struct LocalHost : DatabaseHost {
    DatabaseSnapshot Snapshot() override {
      return DatabaseSnapshot::Unmanaged(&db);
    }
    Result<uint64_t> ApplyWrite(
        const std::function<Status(Database*)>& fn) override {
      SEMOPT_RETURN_IF_ERROR(fn(&db));
      return uint64_t{0};
    }
    PlanCacheInterface* plan_cache() override { return &cache; }

    Database db;
    /// Session plan cache, borrowed by every evaluation: re-running a
    /// query re-traverses an already-seen cardinality-band trajectory,
    /// so steady-state runs hit every round (`:metrics` shows
    /// eval.plan_cache.hit/miss).
    PlanCache cache;
  };

  LocalHost host_;
  SessionCommandProcessor processor_;
};

}  // namespace semopt

#endif  // SEMOPT_SHELL_SHELL_H_
