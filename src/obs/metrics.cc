#include "obs/metrics.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace semopt {
namespace obs {

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 1-based rank of the target sample under the nearest-rank method.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    double value;
    if (i == 0) {
      value = 0.0;  // bucket 0 holds exactly the value 0
    } else {
      // Interpolate within [2^(i-1), 2^i) by the rank's position among
      // the bucket's samples.
      const double lo = static_cast<double>(uint64_t{1} << (i - 1));
      const double hi = lo * 2.0;
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets[i]);
      value = lo + frac * (hi - lo);
    }
    // Clamp to the observed range: a one-sample histogram reports the
    // sample exactly, and the top bucket cannot overshoot max.
    value = std::max(value, static_cast<double>(min));
    value = std::min(value, static_cast<double>(max));
    return value;
  }
  return static_cast<double>(max);
}

size_t Histogram::BucketFor(uint64_t v) {
  if (v == 0) return 0;
  size_t bucket = 1;
  while (v > 1 && bucket + 1 < HistogramSnapshot::kBuckets) {
    v >>= 1;
    ++bucket;
  }
  return bucket;
}

void Histogram::Observe(uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = (snap.count == 0 || min == UINT64_MAX) ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void TextSink::OnCounter(std::string_view name, uint64_t value) {
  os_ << name << " " << value << "\n";
}

void TextSink::OnGauge(std::string_view name, int64_t value) {
  os_ << name << " " << value << "\n";
}

void TextSink::OnHistogram(std::string_view name,
                           const HistogramSnapshot& snapshot) {
  os_ << name << " count=" << snapshot.count << " sum=" << snapshot.sum
      << " min=" << snapshot.min << " max=" << snapshot.max
      << " mean=" << snapshot.Mean() << "\n";
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::Emit(MetricsSink& sink) const {
  // Snapshot name->kind pairs under the lock, emit merged in name
  // order. Values are read lock-free after registration.
  struct Entry {
    const std::string* name;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  std::vector<Entry> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, c] : counters_) {
      entries.push_back(Entry{&name, c.get(), nullptr, nullptr});
    }
    for (const auto& [name, g] : gauges_) {
      entries.push_back(Entry{&name, nullptr, g.get(), nullptr});
    }
    for (const auto& [name, h] : histograms_) {
      entries.push_back(Entry{&name, nullptr, nullptr, h.get()});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return *a.name < *b.name; });
  for (const Entry& e : entries) {
    if (e.counter != nullptr) {
      sink.OnCounter(*e.name, e.counter->value());
    } else if (e.gauge != nullptr) {
      sink.OnGauge(*e.name, e.gauge->value());
    } else {
      sink.OnHistogram(*e.name, e.histogram->Snapshot());
    }
  }
}

std::string MetricsRegistry::ToText() const {
  std::ostringstream os;
  TextSink sink(os);
  Emit(sink);
  return os.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace obs
}  // namespace semopt
