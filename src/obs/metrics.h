#ifndef SEMOPT_OBS_METRICS_H_
#define SEMOPT_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace semopt {
namespace obs {

/// Monotonic counter. Updates are lock-free relaxed atomics; callers
/// cache the pointer returned by MetricsRegistry::GetCounter outside
/// hot loops so updating costs one fetch_add.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (queue depth, thread count).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of a Histogram.
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 32;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // meaningful only when count > 0
  uint64_t max = 0;
  /// bucket[0] holds value 0; bucket[i>0] holds [2^(i-1), 2^i).
  uint64_t buckets[kBuckets] = {};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Estimated q-quantile (q in [0, 1]) by log-bucket interpolation:
  /// find the bucket holding the q-th ranked sample and interpolate
  /// linearly inside its [2^(i-1), 2^i) range. Exact for 0-valued
  /// samples (bucket 0 is the point value 0); for the rest the estimate
  /// is within one power-of-two band of the true sample, clamped to
  /// [min, max] so single-sample histograms report exactly. Returns 0
  /// when empty.
  double Percentile(double q) const;
};

/// Power-of-two-bucketed distribution of non-negative samples
/// (latencies in us, tuples per task, partition sizes). Observe is
/// lock-free; min/max use CAS loops, everything else relaxed adds.
class Histogram {
 public:
  void Observe(uint64_t v);
  HistogramSnapshot Snapshot() const;
  void Reset();

  /// Bucket index for `v`: 0 for 0, else 1 + floor(log2(v)), capped.
  static size_t BucketFor(uint64_t v);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[HistogramSnapshot::kBuckets] = {};
};

/// Receives one callback per metric from MetricsRegistry::Emit, in
/// name order. Implement to ship metrics wherever you like (text,
/// JSON, statsd, ...).
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void OnCounter(std::string_view name, uint64_t value) = 0;
  virtual void OnGauge(std::string_view name, int64_t value) = 0;
  virtual void OnHistogram(std::string_view name,
                           const HistogramSnapshot& snapshot) = 0;
};

/// Writes "name value" / "name count=N sum=S min=M max=X mean=E"
/// lines to a stream.
class TextSink : public MetricsSink {
 public:
  explicit TextSink(std::ostream& os) : os_(os) {}
  void OnCounter(std::string_view name, uint64_t value) override;
  void OnGauge(std::string_view name, int64_t value) override;
  void OnHistogram(std::string_view name,
                   const HistogramSnapshot& snapshot) override;

 private:
  std::ostream& os_;
};

/// Named metrics, created on first use and stable-addressed for the
/// registry's lifetime. Registration takes a mutex; the returned
/// references update lock-free. Use Global() for process-wide metrics
/// or construct private registries in tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Streams every metric to `sink` in name order (kind-mixed).
  void Emit(MetricsSink& sink) const;

  /// Renders the registry through a TextSink.
  std::string ToText() const;

  /// Zeroes every metric (names stay registered).
  void ResetAll();

  size_t size() const;

 private:
  mutable std::mutex mu_;
  // Node-based maps: values never move once created.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace semopt

#endif  // SEMOPT_OBS_METRICS_H_
