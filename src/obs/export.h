#ifndef SEMOPT_OBS_EXPORT_H_
#define SEMOPT_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace semopt {
namespace obs {

/// Renders every metric of `registry` as Prometheus text exposition
/// (text/plain; version 0.0.4), the format `curl`-style scrapers and
/// the server's `:stats` command speak:
///
///   # TYPE semopt_server_requests counter
///   semopt_server_requests 412
///   # TYPE semopt_server_sched_heavy_wait_us summary
///   semopt_server_sched_heavy_wait_us{quantile="0.5"} 118
///   semopt_server_sched_heavy_wait_us{quantile="0.9"} 5820
///   semopt_server_sched_heavy_wait_us{quantile="0.99"} 7912
///   semopt_server_sched_heavy_wait_us_sum 98213
///   semopt_server_sched_heavy_wait_us_count 64
///
/// Metric names are the registry names prefixed with "semopt_" and
/// sanitized (every character outside [a-zA-Z0-9_] becomes '_').
/// Counters map to counter, gauges to gauge, histograms to summary
/// with p50/p90/p99 estimated by HistogramSnapshot::Percentile.
/// tools/validate_stats.py round-trips this output in CI.
std::string ExportPrometheus(const MetricsRegistry& registry);

/// The sanitized exposition name for a registry metric name
/// ("server.sched.heavy.wait_us" -> "semopt_server_sched_heavy_wait_us").
std::string PrometheusName(std::string_view registry_name);

/// MetricsSink producing the exposition text incrementally; feed it to
/// MetricsRegistry::Emit to scope the dump (ExportPrometheus is the
/// whole-registry convenience wrapper).
class PrometheusSink : public MetricsSink {
 public:
  void OnCounter(std::string_view name, uint64_t value) override;
  void OnGauge(std::string_view name, int64_t value) override;
  void OnHistogram(std::string_view name,
                   const HistogramSnapshot& snapshot) override;

  /// The exposition document accumulated so far.
  const std::string& text() const { return text_; }

 private:
  std::string text_;
};

}  // namespace obs
}  // namespace semopt

#endif  // SEMOPT_OBS_EXPORT_H_
