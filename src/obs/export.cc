#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace semopt {
namespace obs {

namespace {

/// Formats a double without trailing noise: integers print as
/// integers, everything else with up to 3 fractional digits (the
/// quantile estimates are interpolations; more digits imply precision
/// the log buckets do not have).
void AppendNumber(std::string* out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  *out += buf;
}

}  // namespace

std::string PrometheusName(std::string_view registry_name) {
  std::string out = "semopt_";
  out.reserve(out.size() + registry_name.size());
  for (char c : registry_name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void PrometheusSink::OnCounter(std::string_view name, uint64_t value) {
  const std::string n = PrometheusName(name);
  text_ += "# TYPE " + n + " counter\n";
  text_ += n + " ";
  AppendNumber(&text_, static_cast<double>(value));
  text_ += "\n";
}

void PrometheusSink::OnGauge(std::string_view name, int64_t value) {
  const std::string n = PrometheusName(name);
  text_ += "# TYPE " + n + " gauge\n";
  text_ += n + " ";
  AppendNumber(&text_, static_cast<double>(value));
  text_ += "\n";
}

void PrometheusSink::OnHistogram(std::string_view name,
                                 const HistogramSnapshot& snapshot) {
  const std::string n = PrometheusName(name);
  text_ += "# TYPE " + n + " summary\n";
  static constexpr struct {
    const char* label;
    double q;
  } kQuantiles[] = {{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}};
  for (const auto& quantile : kQuantiles) {
    text_ += n + "{quantile=\"" + quantile.label + "\"} ";
    AppendNumber(&text_, snapshot.Percentile(quantile.q));
    text_ += "\n";
  }
  text_ += n + "_sum ";
  AppendNumber(&text_, static_cast<double>(snapshot.sum));
  text_ += "\n";
  text_ += n + "_count ";
  AppendNumber(&text_, static_cast<double>(snapshot.count));
  text_ += "\n";
}

std::string ExportPrometheus(const MetricsRegistry& registry) {
  PrometheusSink sink;
  registry.Emit(sink);
  return sink.text();
}

}  // namespace obs
}  // namespace semopt
