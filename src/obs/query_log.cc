#include "obs/query_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace semopt {
namespace obs {

namespace {

std::atomic<uint64_t> g_next_query_id{1};
std::atomic<uint64_t> g_next_session_id{1};

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          *out += hex;
        } else {
          *out += c;
        }
    }
  }
}

// to_chars, not snprintf: a heavy query's record carries a field per
// fixpoint round, and formatting dominates serialization cost at that
// volume (E12).
void AppendKeyU64(std::string* out, const char* key, uint64_t value,
                  bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += key;
  *out += "\":";
  char buf[20];
  char* end = std::to_chars(buf, buf + sizeof(buf), value).ptr;
  out->append(buf, static_cast<size_t>(end - buf));
}

void AppendKeyStr(std::string* out, const char* key, const std::string& value,
                  bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":\"";
  AppendEscaped(out, value);
  *out += "\"";
}

void AppendLine(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendLine(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

}  // namespace

uint64_t NextQueryId() {
  return g_next_query_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t NextSessionId() {
  return g_next_session_id.fetch_add(1, std::memory_order_relaxed);
}

std::string QueryProfile::ToJson() const {
  std::string out;
  out.reserve(512 + query.size() + error.size() + rounds.size() * 96 +
              rules.size() * 144);
  out += '{';
  bool first = true;
  AppendKeyU64(&out, "qid", ctx.query_id, &first);
  AppendKeyU64(&out, "sid", ctx.session_id, &first);
  AppendKeyStr(&out, "query", query, &first);
  AppendKeyStr(&out, "class", query_class, &first);
  if (!first) out += ",";
  first = false;
  out += ok ? "\"ok\":true" : "\"ok\":false";
  if (!ok) AppendKeyStr(&out, "error", error, &first);
  AppendKeyU64(&out, "answers", answers, &first);
  AppendKeyU64(&out, "total_us", total_us, &first);
  AppendKeyU64(&out, "parse_us", parse_us, &first);
  AppendKeyU64(&out, "queue_wait_us", queue_wait_us, &first);
  AppendKeyU64(&out, "pin_us", pin_us, &first);
  AppendKeyU64(&out, "eval_us", eval_us, &first);
  AppendKeyU64(&out, "fixpoint_us", fixpoint_us, &first);
  AppendKeyU64(&out, "render_us", render_us, &first);
  AppendKeyU64(&out, "pinned_epoch", pinned_epoch, &first);
  if (ctx.budget_us != 0) {
    AppendKeyU64(&out, "budget_us", ctx.budget_us, &first);
  }
  AppendKeyU64(&out, "plan_cache_hits", plan_cache_hits, &first);
  AppendKeyU64(&out, "plan_cache_misses", plan_cache_misses, &first);
  AppendKeyU64(&out, "iterations", iterations, &first);
  AppendKeyU64(&out, "derived", derived, &first);
  AppendKeyU64(&out, "duplicates", duplicates, &first);
  AppendKeyU64(&out, "bindings", bindings, &first);
  AppendKeyU64(&out, "batches", batches, &first);
  AppendKeyU64(&out, "morsels", morsels, &first);
  AppendKeyU64(&out, "peak_delta", peak_delta, &first);
  out += ",\"rounds\":[";
  for (size_t i = 0; i < rounds.size(); ++i) {
    const Round& r = rounds[i];
    if (i > 0) out += ",";
    out += "{";
    bool rf = true;
    AppendKeyU64(&out, "stratum", r.stratum, &rf);
    AppendKeyU64(&out, "round", r.round, &rf);
    AppendKeyU64(&out, "us", r.us, &rf);
    AppendKeyU64(&out, "delta_in", r.delta_in, &rf);
    AppendKeyU64(&out, "delta_out", r.delta_out, &rf);
    AppendKeyU64(&out, "derived", r.derived, &rf);
    out += "}";
  }
  out += "]";
  if (!rules.empty()) {
    out += ",\"rules\":[";
    for (size_t i = 0; i < rules.size(); ++i) {
      const Rule& r = rules[i];
      if (i > 0) out += ",";
      out += "{";
      bool rf = true;
      AppendKeyStr(&out, "label", r.label, &rf);
      AppendKeyU64(&out, "applications", r.applications, &rf);
      AppendKeyU64(&out, "derived", r.derived, &rf);
      AppendKeyU64(&out, "duplicates", r.duplicates, &rf);
      AppendKeyU64(&out, "us", r.us, &rf);
      out += "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string QueryProfile::Render() const {
  std::string out;
  AppendLine(&out, "query #%" PRIu64 " (session %" PRIu64 "%s%s)",
             ctx.query_id, ctx.session_id,
             query_class.empty() ? "" : ", class ",
             query_class.c_str());
  out += ": ";
  out += query;
  out += "\n";
  if (!ok) {
    out += "  status: ERROR ";
    out += error;
    out += "\n";
  }
  AppendLine(&out, "  answers: %" PRIu64 "\n", answers);
  AppendLine(&out, "  total %" PRIu64 " us = parse %" PRIu64
                   " + queue %" PRIu64 " + pin %" PRIu64 " + eval %" PRIu64
                   " + render %" PRIu64 "\n",
             total_us, parse_us, queue_wait_us, pin_us, eval_us, render_us);
  AppendLine(&out, "  fixpoint %" PRIu64 " us, pinned epoch %" PRIu64 "\n",
             fixpoint_us, pinned_epoch);
  AppendLine(&out,
             "  plan cache: %" PRIu64 " hits / %" PRIu64
             " misses; iterations %" PRIu64 ", derived %" PRIu64
             ", duplicates %" PRIu64 ", peak delta %" PRIu64 "\n",
             plan_cache_hits, plan_cache_misses, iterations, derived,
             duplicates, peak_delta);
  if (!rounds.empty()) {
    out += "  rounds (stratum/round: time, delta in -> out, derived):\n";
    for (const Round& r : rounds) {
      AppendLine(&out,
                 "    s%" PRIu64 "/r%" PRIu64 ": %" PRIu64 " us, %" PRIu64
                 " -> %" PRIu64 ", derived %" PRIu64 "\n",
                 r.stratum, r.round, r.us, r.delta_in, r.delta_out, r.derived);
    }
  }
  return out;
}

namespace {

// Whole-buffer append of complete lines. O_APPEND makes the write land
// atomically at the end of the file (the kernel serializes same-file
// appends), so buffers of whole lines never interleave mid-record;
// retry only on EINTR — a genuinely short write (disk full) is
// abandoned rather than risking a torn resume.
bool AppendWhole(int fd, const std::string& data) {
  ssize_t n;
  do {
    n = ::write(fd, data.data(), data.size());
  } while (n < 0 && errno == EINTR);
  return n == static_cast<ssize_t>(data.size());
}

}  // namespace

QueryLog::~QueryLog() { Close(); }

Status QueryLog::OpenLog(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_fd_ >= 0) {
    if (!log_buf_.empty()) AppendWhole(log_fd_, log_buf_);
    log_buf_.clear();
    ::close(log_fd_);
  }
  log_fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  any_open_.store(log_fd_ >= 0 || slow_fd_ >= 0, std::memory_order_release);
  if (log_fd_ < 0) {
    return Status::InvalidArgument("cannot open query log " + path);
  }
  return Status::Ok();
}

Status QueryLog::OpenSlowLog(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slow_fd_ >= 0) {
    if (!slow_buf_.empty()) AppendWhole(slow_fd_, slow_buf_);
    slow_buf_.clear();
    ::close(slow_fd_);
  }
  slow_fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  any_open_.store(log_fd_ >= 0 || slow_fd_ >= 0, std::memory_order_release);
  if (slow_fd_ < 0) {
    return Status::InvalidArgument("cannot open slow-query log " + path);
  }
  return Status::Ok();
}

void QueryLog::FlushLocked() {
  if (log_fd_ >= 0 && !log_buf_.empty()) {
    AppendWhole(log_fd_, log_buf_);
    log_buf_.clear();
  }
  if (slow_fd_ >= 0 && !slow_buf_.empty()) {
    AppendWhole(slow_fd_, slow_buf_);
    slow_buf_.clear();
  }
}

void QueryLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
}

void QueryLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  if (log_fd_ >= 0) ::close(log_fd_);
  if (slow_fd_ >= 0) ::close(slow_fd_);
  log_fd_ = -1;
  slow_fd_ = -1;
  any_open_.store(false, std::memory_order_release);
}

bool QueryLog::log_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_fd_ >= 0;
}

bool QueryLog::slow_log_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_fd_ >= 0;
}

void QueryLog::Record(const QueryProfile& profile,
                      uint64_t slow_threshold_us) {
  const bool slow =
      slow_threshold_us != 0 && profile.total_us >= slow_threshold_us;
  // Cheap pre-check without the lock: when neither stream is open a
  // record costs one relaxed load. Serialization happens outside the
  // lock too — the mutex guards only a string append (and, once per
  // ~kFlushBytes of records, the batched write).
  if (!any_open_.load(std::memory_order_acquire)) return;
  const std::string line = profile.ToJson() + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  if (log_fd_ >= 0) {
    log_buf_ += line;
    records_.fetch_add(1, std::memory_order_relaxed);
    if (log_buf_.size() >= kFlushBytes) {
      AppendWhole(log_fd_, log_buf_);
      log_buf_.clear();
    }
  }
  if (slow && slow_fd_ >= 0) {
    slow_buf_ += line;
    slow_records_.fetch_add(1, std::memory_order_relaxed);
    if (slow_buf_.size() >= kFlushBytes) {
      AppendWhole(slow_fd_, slow_buf_);
      slow_buf_.clear();
    }
  }
}

}  // namespace obs
}  // namespace semopt
