#include "obs/trace.h"

#ifndef SEMOPT_DISABLE_TRACING

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace semopt {
namespace obs {

namespace internal {

std::atomic<bool> g_tracing_enabled{false};

thread_local uint64_t tl_query_id = 0;

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace internal

namespace {

using internal::SpanArg;

/// One buffered event. `name` is copied (short rule labels stay in the
/// SSO buffer, so recording a span rarely allocates).
struct TraceEvent {
  std::string name;
  char phase = 'X';  // 'X' complete, 'i' instant
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  SpanArg args[internal::kMaxSpanArgs];
  size_t num_args = 0;
};

/// Hard cap per thread so a forgotten session cannot grow unboundedly
/// (~64 B/event -> ~256 MiB worst case across 16 threads at the cap).
constexpr size_t kMaxEventsPerThread = 1 << 22;

struct ThreadBuffer {
  std::mutex mu;
  uint32_t tid = 0;
  std::vector<TraceEvent> events;
  size_t dropped = 0;
};

struct Registry {
  std::mutex mu;
  /// Owns every thread's buffer; entries outlive their threads so a
  /// worker that exits before StopTracing still contributes events.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives threads
  return *registry;
}

thread_local ThreadBuffer* tl_buffer = nullptr;

ThreadBuffer& GetThreadBuffer() {
  if (tl_buffer == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffer->tid = registry.next_tid++;
    tl_buffer = buffer.get();
    registry.buffers.push_back(std::move(buffer));
  }
  return *tl_buffer;
}

void Append(TraceEvent event) {
  ThreadBuffer& buffer = GetThreadBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(std::move(event));
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          *out += hex;
        } else {
          *out += c;
        }
    }
  }
}

/// Serializes `(tid, event)` pairs as a Chrome trace_event JSON
/// document. Timestamps are microseconds with ns precision.
std::string ToJson(
    const std::vector<std::pair<uint32_t, TraceEvent>>& events) {
  std::string out = "{\"traceEvents\":[";
  char buf[64];
  bool first = true;
  for (const auto& [tid, e] : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    AppendJsonEscaped(&out, e.name);
    out += "\",\"cat\":\"semopt\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", tid);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f",
                  static_cast<double>(e.ts_ns) / 1000.0);
    out += buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(e.dur_ns) / 1000.0);
      out += buf;
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (e.num_args > 0) {
      out += ",\"args\":{";
      for (size_t i = 0; i < e.num_args; ++i) {
        if (i > 0) out += ",";
        out += "\"";
        AppendJsonEscaped(&out, e.args[i].key);
        out += "\":";
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(e.args[i].value));
        out += buf;
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

/// Disables recording and drains every thread buffer. In-flight span
/// destructors racing the stop may still append afterwards; their
/// events are cleared by the next StartTracing.
std::vector<std::pair<uint32_t, TraceEvent>> StopAndCollect() {
  internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
  std::vector<std::pair<uint32_t, TraceEvent>> collected;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const std::unique_ptr<ThreadBuffer>& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    for (TraceEvent& e : buffer->events) {
      collected.emplace_back(buffer->tid, std::move(e));
    }
    buffer->events.clear();
  }
  return collected;
}

}  // namespace

namespace internal {

void RecordComplete(std::string_view name, uint64_t start_ns, uint64_t end_ns,
                    const SpanArg* args, size_t num_args) {
  TraceEvent event;
  event.name.assign(name.data(), name.size());
  event.phase = 'X';
  event.ts_ns = start_ns;
  event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  event.num_args = num_args < kMaxSpanArgs ? num_args : kMaxSpanArgs;
  for (size_t i = 0; i < event.num_args; ++i) event.args[i] = args[i];
  // Query attribution (QueryIdScope): tagged centrally so every
  // existing span site inherits it without touching the site.
  if (tl_query_id != 0 && event.num_args < kMaxSpanArgs) {
    event.args[event.num_args++] =
        SpanArg{"qid", static_cast<int64_t>(tl_query_id)};
  }
  Append(std::move(event));
}

void RecordInstant(std::string_view name) {
  TraceEvent event;
  event.name.assign(name.data(), name.size());
  event.phase = 'i';
  event.ts_ns = MonotonicNowNs();
  if (tl_query_id != 0) {
    event.args[event.num_args++] =
        SpanArg{"qid", static_cast<int64_t>(tl_query_id)};
  }
  Append(std::move(event));
}

}  // namespace internal

void StartTracing() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const std::unique_ptr<ThreadBuffer>& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

Result<size_t> StopTracing(const std::string& path) {
  std::vector<std::pair<uint32_t, TraceEvent>> events = StopAndCollect();
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open trace file " + path);
  }
  out << ToJson(events);
  out.close();
  if (!out) return Status::Internal("failed writing trace file " + path);
  return events.size();
}

std::string StopTracingToJson() { return ToJson(StopAndCollect()); }

size_t DroppedEvents() {
  size_t total = 0;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const std::unique_ptr<ThreadBuffer>& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

}  // namespace obs
}  // namespace semopt

#endif  // SEMOPT_DISABLE_TRACING
