#ifndef SEMOPT_OBS_TRACE_H_
#define SEMOPT_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

/// A low-overhead span tracer exporting Chrome `trace_event` JSON
/// (load the file in chrome://tracing or https://ui.perfetto.dev).
///
/// Usage:
///   obs::StartTracing();
///   { obs::TraceSpan span("round"); span.AddArg("delta", 42); ... }
///   obs::StopTracing("trace.json");
///
/// Tracing is off by default: constructing a TraceSpan then costs one
/// relaxed atomic load and no allocation. Events are buffered in
/// per-thread buffers (one uncontended mutex each), so worker threads
/// never share a cache line on the hot path. Building with
/// -DSEMOPT_DISABLE_TRACING=ON compiles the whole subsystem down to
/// no-ops so instrumentation sites cost literally nothing.
namespace semopt {
namespace obs {

#ifndef SEMOPT_DISABLE_TRACING

inline constexpr bool kTracingCompiledIn = true;

namespace internal {

extern std::atomic<bool> g_tracing_enabled;

/// Thread-local query id; every span/instant recorded while it is
/// nonzero gets a "qid" arg appended. See QueryIdScope.
extern thread_local uint64_t tl_query_id;

/// Monotonic time in nanoseconds (steady_clock).
uint64_t MonotonicNowNs();

struct SpanArg {
  const char* key = nullptr;  // must be a string literal / static storage
  int64_t value = 0;
};

inline constexpr size_t kMaxSpanArgs = 6;

void RecordComplete(std::string_view name, uint64_t start_ns, uint64_t end_ns,
                    const SpanArg* args, size_t num_args);
void RecordInstant(std::string_view name);

}  // namespace internal

/// True while a trace session is active. Relaxed load; safe anywhere.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Begins a trace session: clears all buffered events and enables
/// recording. Idempotent while already tracing.
void StartTracing();

/// Ends the session and writes the buffered events to `path` as a
/// Chrome trace_event JSON document. Returns the number of events
/// written. No-op session (never started) still writes a valid empty
/// trace.
Result<size_t> StopTracing(const std::string& path);

/// Ends the session and returns the JSON document (tests, in-memory
/// sinks).
std::string StopTracingToJson();

/// Events dropped because a thread buffer hit its cap during the
/// current/last session.
size_t DroppedEvents();

/// RAII span. Records one complete ('X') event on destruction when a
/// session was active at construction. Name must outlive the span
/// (string literals and rule labels both qualify); it is copied into
/// the event buffer only when recording.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) {
    if (TracingEnabled()) {
      active_ = true;
      name_ = name;
      start_ns_ = internal::MonotonicNowNs();
    }
  }
  ~TraceSpan() {
    if (active_) {
      internal::RecordComplete(name_, start_ns_, internal::MonotonicNowNs(),
                               args_, num_args_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a key/value pair shown in the trace viewer's args panel.
  /// `key` must be a string literal. Silently drops beyond capacity.
  void AddArg(const char* key, int64_t value) {
    if (active_ && num_args_ < internal::kMaxSpanArgs) {
      args_[num_args_++] = internal::SpanArg{key, value};
    }
  }

  bool active() const { return active_; }

 private:
  bool active_ = false;
  uint64_t start_ns_ = 0;
  std::string_view name_;
  internal::SpanArg args_[internal::kMaxSpanArgs];
  size_t num_args_ = 0;
};

/// Records a zero-duration instant event.
inline void TraceInstant(std::string_view name) {
  if (TracingEnabled()) internal::RecordInstant(name);
}

/// RAII query-id attribution: while alive, every span this thread
/// records carries a "qid" arg, which is what makes a Chrome trace of
/// an N-session server run attributable query by query. Scopes nest
/// (the previous id is restored on destruction); id 0 means
/// "unattributed" and adds nothing. The parallel engine opens one per
/// morsel on each worker lane from EvalOptions::query_id, so worker
/// spans attribute to the query that scheduled them.
class QueryIdScope {
 public:
  explicit QueryIdScope(uint64_t id) : prev_(internal::tl_query_id) {
    internal::tl_query_id = id;
  }
  ~QueryIdScope() { internal::tl_query_id = prev_; }
  QueryIdScope(const QueryIdScope&) = delete;
  QueryIdScope& operator=(const QueryIdScope&) = delete;

 private:
  uint64_t prev_;
};

/// The thread's current query id (0 = none).
inline uint64_t CurrentTraceQueryId() { return internal::tl_query_id; }

#else  // SEMOPT_DISABLE_TRACING: every entry point is an inline no-op.

inline constexpr bool kTracingCompiledIn = false;

inline bool TracingEnabled() { return false; }
inline void StartTracing() {}
inline Result<size_t> StopTracing(const std::string&) { return size_t{0}; }
inline std::string StopTracingToJson() {
  return "{\"traceEvents\":[]}\n";
}
inline size_t DroppedEvents() { return 0; }

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  void AddArg(const char*, int64_t) {}
  bool active() const { return false; }
};

inline void TraceInstant(std::string_view) {}

class QueryIdScope {
 public:
  explicit QueryIdScope(uint64_t) {}
  QueryIdScope(const QueryIdScope&) = delete;
  QueryIdScope& operator=(const QueryIdScope&) = delete;
};

inline uint64_t CurrentTraceQueryId() { return 0; }

#endif  // SEMOPT_DISABLE_TRACING

/// RAII file-scoped session: starts tracing when `path` is non-empty
/// and no session is already running, and stops + writes to `path` on
/// destruction. When a session is already active (e.g. the shell's
/// `:trace`), does nothing — the outer session owns the file. This is
/// how `EvalOptions::trace_path` is honored without double-starting.
class ScopedTraceFile {
 public:
  explicit ScopedTraceFile(const std::string& path) {
    if (!path.empty() && !TracingEnabled()) {
      path_ = path;
      StartTracing();
    }
  }
  ~ScopedTraceFile() {
    // Best-effort: an unwritable path must not fail the computation.
    if (!path_.empty()) StopTracing(path_);
  }
  ScopedTraceFile(const ScopedTraceFile&) = delete;
  ScopedTraceFile& operator=(const ScopedTraceFile&) = delete;

 private:
  std::string path_;
};

}  // namespace obs
}  // namespace semopt

#endif  // SEMOPT_OBS_TRACE_H_
