#ifndef SEMOPT_OBS_QUERY_LOG_H_
#define SEMOPT_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/result.h"

namespace semopt {
namespace obs {

/// Identity of one query execution, threaded from the session command
/// processor through admission, snapshot pinning, planning and the
/// fixpoint engines: a process-monotonic query id (also tagged onto
/// every trace span via QueryIdScope, so Chrome traces of an N-session
/// run attribute by query), the owning session's id, and the query's
/// wall-clock budget (0 = unlimited; enforced per fixpoint round via
/// EvalOptions::budget_us).
struct QueryContext {
  uint64_t query_id = 0;
  uint64_t session_id = 0;
  uint64_t budget_us = 0;
};

/// Next process-monotonic query id (starts at 1).
uint64_t NextQueryId();

/// Next process-monotonic session id (starts at 1).
uint64_t NextSessionId();

/// The latency breakdown of one query — where its time went (queue,
/// snapshot pin, evaluation, per fixpoint round) and what the engine
/// did (plan cache traffic, tuples derived, peak delta). Accumulated by
/// SessionCommandProcessor for every `?-` query; serialized as one
/// JSON line into the query log and rendered by `:profile`.
///
/// The structs here are intentionally independent of EvalStats (the
/// obs layer sits below eval); the session copies the engine counters
/// across.
struct QueryProfile {
  QueryContext ctx;
  /// The query body text as executed.
  std::string query;
  /// Admission class ("heavy"/"light"; "" when the host runs no
  /// scheduler).
  std::string query_class;
  bool ok = true;
  /// Status text when !ok (parse or evaluation failure).
  std::string error;
  uint64_t answers = 0;

  // Phase breakdown, microseconds. total covers parse through render;
  // eval is the whole AnswerQuery call (planning included), fixpoint
  // the engine-reported fixpoint time inside it.
  uint64_t total_us = 0;
  uint64_t parse_us = 0;
  uint64_t queue_wait_us = 0;
  uint64_t pin_us = 0;
  uint64_t eval_us = 0;
  uint64_t fixpoint_us = 0;
  uint64_t render_us = 0;

  /// The database generation the query read (0 = unmanaged local db).
  uint64_t pinned_epoch = 0;

  // Engine counters (copied from EvalStats).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t iterations = 0;
  uint64_t derived = 0;
  uint64_t duplicates = 0;
  uint64_t bindings = 0;
  uint64_t batches = 0;
  uint64_t morsels = 0;
  /// Largest per-round delta (tuples) the fixpoint carried.
  uint64_t peak_delta = 0;

  /// One entry per fixpoint round, in execution order.
  struct Round {
    uint64_t stratum = 0;
    uint64_t round = 0;  ///< 1-based global round index
    uint64_t us = 0;
    uint64_t delta_in = 0;
    uint64_t delta_out = 0;
    uint64_t derived = 0;
  };
  std::vector<Round> rounds;

  /// Per-rule attribution (populated only when the evaluation ran with
  /// collect_metrics, e.g. under `:profile`).
  struct Rule {
    std::string label;
    uint64_t applications = 0;
    uint64_t derived = 0;
    uint64_t duplicates = 0;
    uint64_t us = 0;
  };
  std::vector<Rule> rules;

  /// One-line JSON record (no trailing newline); the query-log line
  /// format. Keys are stable — tools and CI validators parse them.
  std::string ToJson() const;

  /// Multi-line human-readable breakdown (the `:profile` header).
  std::string Render() const;
};

/// Thread-safe structured query log: one JSON line per Record call.
/// Records accumulate in a small in-memory buffer and reach disk as a
/// single write(2) of whole lines once the buffer fills (or on
/// Flush/Close/reopen) — an O_APPEND append the kernel serializes, so
/// the file is valid JSONL under any schedule of sessions or even
/// multiple processes. Batching matters: a write per query means a
/// scheduling yield per query, which on a saturated host costs far
/// more than the record itself (E12 measured ~10% of 64-session
/// throughput); a write per ~kFlushBytes is noise. Optionally mirrors
/// slow queries — total_us >= threshold — into a second file,
/// capturing the full profile of exactly the queries worth
/// investigating without grepping the firehose.
class QueryLog {
 public:
  QueryLog() = default;
  ~QueryLog();
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Opens (appends to) the always-on query log.
  Status OpenLog(const std::string& path);
  /// Opens (appends to) the slow-query log.
  Status OpenSlowLog(const std::string& path);
  /// Drains buffered records to disk. Readers that tail the files
  /// mid-run (tests, a live investigation) call this; Close and the
  /// destructor drain implicitly.
  void Flush();
  void Close();

  bool log_open() const;
  bool slow_log_open() const;

  /// Default slow threshold in microseconds (0 = never slow); sessions
  /// may override per query via EvalOptions::slow_query_us.
  void set_slow_threshold_us(uint64_t us) {
    slow_threshold_us_.store(us, std::memory_order_relaxed);
  }
  uint64_t slow_threshold_us() const {
    return slow_threshold_us_.load(std::memory_order_relaxed);
  }

  /// Appends `profile` as one JSON line to the query log (when open)
  /// and, when `slow_threshold_us` (the caller's effective threshold —
  /// pass slow_threshold_us() for the log default) is nonzero and
  /// profile.total_us reaches it, to the slow log. No-op when neither
  /// stream is open.
  void Record(const QueryProfile& profile, uint64_t slow_threshold_us);
  void Record(const QueryProfile& profile) {
    Record(profile, slow_threshold_us());
  }

  uint64_t records() const {
    return records_.load(std::memory_order_relaxed);
  }
  uint64_t slow_records() const {
    return slow_records_.load(std::memory_order_relaxed);
  }

 private:
  // Flush threshold for the record buffers (~30 records a write).
  static constexpr size_t kFlushBytes = 16 * 1024;

  void FlushLocked();

  // Guards the descriptors and buffers. Held only for a string append
  // on most records — the batched write is once per kFlushBytes.
  mutable std::mutex mu_;
  int log_fd_ = -1;
  int slow_fd_ = -1;
  std::string log_buf_;
  std::string slow_buf_;
  // True while either stream is open; lets Record() skip serialization
  // without taking mu_ when logging is disabled.
  std::atomic<bool> any_open_{false};
  std::atomic<uint64_t> slow_threshold_us_{0};
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> slow_records_{0};
};

}  // namespace obs
}  // namespace semopt

#endif  // SEMOPT_OBS_QUERY_LOG_H_
