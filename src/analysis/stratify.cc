#include "analysis/stratify.h"

#include <algorithm>

#include "analysis/dependency_graph.h"
#include "util/string_util.h"

namespace semopt {

Result<Stratification> Stratify(const Program& program) {
  DependencyGraph graph = DependencyGraph::Build(program);
  auto idb = program.IdbPredicates();

  // Iterative stratum assignment: stratum(p) >= stratum(q) for positive
  // edges p->q, stratum(p) >= stratum(q)+1 for negative edges, with EDB
  // predicates pinned at stratum 0. Failure to converge within
  // |IDB|+1 rounds means a negative cycle (unstratifiable).
  std::map<PredicateId, int> stratum;
  for (const PredicateId& p : graph.nodes()) stratum[p] = 0;

  const size_t max_rounds = idb.size() + 2;
  bool changed = true;
  size_t rounds = 0;
  while (changed) {
    changed = false;
    if (++rounds > max_rounds) {
      return Status::FailedPrecondition(
          "program is not stratifiable (negation through recursion)");
    }
    for (const Rule& rule : program.rules()) {
      PredicateId head = rule.head().pred_id();
      for (const Literal& lit : rule.body()) {
        if (!lit.IsRelational()) continue;
        PredicateId q = lit.atom().pred_id();
        int required = stratum[q] + (lit.negated() ? 1 : 0);
        if (stratum[head] < required) {
          stratum[head] = required;
          changed = true;
        }
      }
    }
  }

  Stratification out;
  int max_stratum = 0;
  for (const PredicateId& p : idb) {
    out.stratum_of[p] = stratum[p];
    max_stratum = std::max(max_stratum, stratum[p]);
  }
  out.strata.resize(max_stratum + 1);
  for (const PredicateId& p : idb) out.strata[stratum[p]].push_back(p);
  return out;
}

}  // namespace semopt
