#ifndef SEMOPT_ANALYSIS_STRATIFY_H_
#define SEMOPT_ANALYSIS_STRATIFY_H_

#include <map>
#include <vector>

#include "ast/program.h"
#include "util/result.h"

namespace semopt {

/// A stratification: predicates grouped into strata evaluated bottom-up;
/// stratum i may depend negatively only on strata < i.
struct Stratification {
  /// Stratum index per IDB predicate.
  std::map<PredicateId, int> stratum_of;
  /// Predicates per stratum, lowest first.
  std::vector<std::vector<PredicateId>> strata;
};

/// Computes a stratification of `program`, or an error if negation
/// through recursion makes the program unstratifiable. Programs without
/// negated relational literals always stratify. Negated *evaluable*
/// literals don't constrain stratification.
Result<Stratification> Stratify(const Program& program);

}  // namespace semopt

#endif  // SEMOPT_ANALYSIS_STRATIFY_H_
