#include "analysis/safety.h"

#include <functional>
#include <map>
#include <set>
#include <unordered_set>

#include "ast/rename.h"
#include "util/string_util.h"

namespace semopt {

Status CheckRangeRestricted(const Rule& rule) {
  std::unordered_set<SymbolId> body_vars;
  for (const Literal& lit : rule.body()) {
    for (SymbolId v : CollectVariables(lit)) body_vars.insert(v);
  }
  for (const Term& t : rule.head().args()) {
    if (t.IsVariable() && body_vars.count(t.symbol()) == 0) {
      return Status::FailedPrecondition(
          StrCat("rule ", rule.ToString(), " is not range restricted: head ",
                 "variable ", t.name(), " does not appear in the body"));
    }
  }
  return Status::Ok();
}

Status CheckSafe(const Rule& rule) {
  // Start with variables bound by positive relational literals; then
  // propagate through `=` literals to a fixpoint.
  std::unordered_set<SymbolId> bound;
  for (const Literal& lit : rule.body()) {
    if (lit.IsRelational() && !lit.negated()) {
      for (SymbolId v : CollectVariables(lit)) bound.insert(v);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& lit : rule.body()) {
      if (!lit.IsComparison() || lit.negated()) continue;
      if (lit.op() != ComparisonOp::kEq) continue;
      const Term& a = lit.lhs();
      const Term& b = lit.rhs();
      bool a_bound = a.IsConstant() ||
                     (a.IsVariable() && bound.count(a.symbol()) > 0);
      bool b_bound = b.IsConstant() ||
                     (b.IsVariable() && bound.count(b.symbol()) > 0);
      if (a_bound && !b_bound && b.IsVariable()) {
        bound.insert(b.symbol());
        changed = true;
      }
      if (b_bound && !a_bound && a.IsVariable()) {
        bound.insert(a.symbol());
        changed = true;
      }
    }
  }
  for (SymbolId v : CollectVariables(rule)) {
    if (bound.count(v) == 0) {
      return Status::FailedPrecondition(
          StrCat("rule ", rule.ToString(), " is unsafe: variable ",
                 SymbolName(v), " is not bound by a positive literal"));
    }
  }
  return Status::Ok();
}

bool IsConnected(const std::vector<Literal>& body) {
  if (body.size() <= 1) return true;
  // Union-find over subgoal indices, merging subgoals sharing a variable.
  std::vector<size_t> parent(body.size());
  for (size_t i = 0; i < body.size(); ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };

  std::map<SymbolId, size_t> first_seen;
  for (size_t i = 0; i < body.size(); ++i) {
    for (SymbolId v : CollectVariables(body[i])) {
      auto [it, inserted] = first_seen.emplace(v, i);
      if (!inserted) unite(i, it->second);
    }
  }
  size_t root = find(0);
  for (size_t i = 1; i < body.size(); ++i) {
    if (find(i) != root) return false;
  }
  return true;
}

bool IsConnected(const Rule& rule) { return IsConnected(rule.body()); }

bool IsConnected(const Constraint& constraint) {
  return IsConnected(constraint.body());
}

Status CheckProgramSafe(const Program& program) {
  for (const Rule& rule : program.rules()) {
    SEMOPT_RETURN_IF_ERROR(CheckRangeRestricted(rule));
    SEMOPT_RETURN_IF_ERROR(CheckSafe(rule));
  }
  return Status::Ok();
}

}  // namespace semopt
