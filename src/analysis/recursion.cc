#include "analysis/recursion.h"

#include <algorithm>
#include <map>

#include "analysis/dependency_graph.h"
#include "analysis/safety.h"
#include "util/string_util.h"

namespace semopt {

RecursionAnalysis AnalyzeRecursion(const Program& program) {
  RecursionAnalysis out;
  DependencyGraph graph = DependencyGraph::Build(program);

  // Map each predicate to its SCC id.
  std::map<PredicateId, int> scc_of;
  auto sccs = graph.Sccs();
  for (size_t i = 0; i < sccs.size(); ++i) {
    for (const PredicateId& p : sccs[i]) scc_of[p] = static_cast<int>(i);
    if (sccs[i].size() > 1) {
      out.has_mutual_recursion = true;
      out.has_recursion = true;
      for (const PredicateId& p : sccs[i]) out.recursive_predicates.insert(p);
    }
  }
  for (const PredicateId& p : graph.nodes()) {
    if (graph.DependenciesOf(p).count(p) > 0) {
      out.has_recursion = true;
      out.recursive_predicates.insert(p);
    }
  }

  // Linearity: each rule has at most one body occurrence of a predicate
  // in its head's recursion component.
  for (const Rule& rule : program.rules()) {
    PredicateId head = rule.head().pred_id();
    int in_component = 0;
    for (const Literal& lit : rule.body()) {
      if (!lit.IsRelational()) continue;
      PredicateId q = lit.atom().pred_id();
      bool same_component = scc_of.count(q) > 0 && scc_of.count(head) > 0 &&
                            scc_of[q] == scc_of[head] &&
                            out.recursive_predicates.count(head) > 0;
      // Self-loop predicates form their own singleton component too.
      if (q == head && out.recursive_predicates.count(head) > 0) {
        same_component = true;
      }
      if (same_component) ++in_component;
    }
    if (in_component > 1) out.all_linear = false;
  }
  return out;
}

Status ValidatePaperAssumptions(const Program& program) {
  // (1) Range restriction.
  for (const Rule& rule : program.rules()) {
    SEMOPT_RETURN_IF_ERROR(CheckRangeRestricted(rule));
  }
  // (2) Connectivity of rules and ICs.
  for (const Rule& rule : program.rules()) {
    if (!IsConnected(rule)) {
      return Status::FailedPrecondition(
          StrCat("rule ", rule.ToString(), " is not connected"));
    }
  }
  for (const Constraint& ic : program.constraints()) {
    if (!IsConnected(ic)) {
      return Status::FailedPrecondition(
          StrCat("constraint ", ic.ToString(), " is not connected"));
    }
  }
  // (3) Linear recursion, no mutual recursion.
  RecursionAnalysis rec = AnalyzeRecursion(program);
  if (rec.has_mutual_recursion) {
    return Status::FailedPrecondition(
        "program contains mutual recursion, which is outside the paper's "
        "fragment");
  }
  if (!rec.all_linear) {
    return Status::FailedPrecondition(
        "program contains a non-linear recursive rule, which is outside "
        "the paper's fragment");
  }
  // (4) ICs involve only EDB predicates (and evaluable predicates).
  auto idb = program.IdbPredicates();
  for (const Constraint& ic : program.constraints()) {
    auto check_atom = [&](const Atom& atom) -> Status {
      if (idb.count(atom.pred_id()) > 0) {
        return Status::FailedPrecondition(
            StrCat("constraint ", ic.ToString(), " mentions IDB predicate ",
                   atom.pred_id().ToString(),
                   "; ICs may involve only EDB predicates"));
      }
      return Status::Ok();
    };
    for (const Literal& lit : ic.body()) {
      if (lit.IsRelational()) SEMOPT_RETURN_IF_ERROR(check_atom(lit.atom()));
    }
    if (ic.head().has_value() && ic.head()->IsRelational()) {
      SEMOPT_RETURN_IF_ERROR(check_atom(ic.head()->atom()));
    }
  }
  return Status::Ok();
}

}  // namespace semopt
