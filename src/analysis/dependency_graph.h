#ifndef SEMOPT_ANALYSIS_DEPENDENCY_GRAPH_H_
#define SEMOPT_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <map>
#include <set>
#include <vector>

#include "ast/program.h"

namespace semopt {

/// The predicate dependency graph of a program: an edge p -> q exists
/// when some rule with head predicate p uses q (positively or negatively)
/// in its body. Used for recursion detection, stratification, and the
/// reachability analysis of intelligent query answering (§5).
class DependencyGraph {
 public:
  /// Builds the graph of `program`. Evaluable literals contribute no
  /// edges (comparison predicates are not database predicates).
  static DependencyGraph Build(const Program& program);

  /// All predicates mentioned in heads or bodies.
  const std::set<PredicateId>& nodes() const { return nodes_; }

  /// Direct dependencies of `p` (body predicates of p's rules).
  const std::set<PredicateId>& DependenciesOf(const PredicateId& p) const;

  /// True if an edge p -> q exists and it goes through a negated body
  /// literal in some rule.
  bool HasNegativeEdge(const PredicateId& p, const PredicateId& q) const;

  /// True if `q` is reachable from `p` following edges forward
  /// (reflexive: p is reachable from itself).
  bool Reaches(const PredicateId& p, const PredicateId& q) const;

  /// Predicates reachable from `p` (including `p`).
  std::set<PredicateId> ReachableFrom(const PredicateId& p) const;

  /// Strongly connected components in reverse topological order
  /// (callees before callers), computed with Tarjan's algorithm.
  std::vector<std::vector<PredicateId>> Sccs() const;

  /// True if `p` is recursive: its SCC has more than one node, or it has
  /// a self-loop.
  bool IsRecursive(const PredicateId& p) const;

 private:
  std::set<PredicateId> nodes_;
  std::map<PredicateId, std::set<PredicateId>> edges_;
  std::set<std::pair<PredicateId, PredicateId>> negative_edges_;
};

}  // namespace semopt

#endif  // SEMOPT_ANALYSIS_DEPENDENCY_GRAPH_H_
