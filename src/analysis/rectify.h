#ifndef SEMOPT_ANALYSIS_RECTIFY_H_
#define SEMOPT_ANALYSIS_RECTIFY_H_

#include "ast/program.h"
#include "util/result.h"

namespace semopt {

/// True if every IDB predicate's rules share an identical head
/// p(X1, ..., Xn) whose arguments are distinct variables (Ullman's
/// rectified form, which the paper assumes in §2).
bool IsRectified(const Program& program);

/// Rewrites `program` into an equivalent rectified program: each rule's
/// head becomes p(X1, ..., Xn) with canonical distinct variables, and
/// constants / repeated variables in the original head turn into `=`
/// body literals. Rules already in canonical form are preserved
/// verbatim. Constraints are copied unchanged (they have no heads to
/// rectify in this sense).
Result<Program> Rectify(const Program& program);

}  // namespace semopt

#endif  // SEMOPT_ANALYSIS_RECTIFY_H_
