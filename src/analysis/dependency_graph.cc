#include "analysis/dependency_graph.h"

#include <algorithm>
#include <functional>

namespace semopt {

DependencyGraph DependencyGraph::Build(const Program& program) {
  DependencyGraph g;
  for (const Rule& rule : program.rules()) {
    PredicateId head = rule.head().pred_id();
    g.nodes_.insert(head);
    g.edges_[head];  // ensure entry
    for (const Literal& lit : rule.body()) {
      if (!lit.IsRelational()) continue;
      PredicateId body_pred = lit.atom().pred_id();
      g.nodes_.insert(body_pred);
      g.edges_[head].insert(body_pred);
      if (lit.negated()) g.negative_edges_.insert({head, body_pred});
    }
  }
  return g;
}

const std::set<PredicateId>& DependencyGraph::DependenciesOf(
    const PredicateId& p) const {
  static const std::set<PredicateId>& kEmpty = *new std::set<PredicateId>();
  auto it = edges_.find(p);
  return it == edges_.end() ? kEmpty : it->second;
}

bool DependencyGraph::HasNegativeEdge(const PredicateId& p,
                                      const PredicateId& q) const {
  return negative_edges_.count({p, q}) > 0;
}

std::set<PredicateId> DependencyGraph::ReachableFrom(
    const PredicateId& p) const {
  std::set<PredicateId> visited;
  std::vector<PredicateId> stack = {p};
  while (!stack.empty()) {
    PredicateId current = stack.back();
    stack.pop_back();
    if (!visited.insert(current).second) continue;
    for (const PredicateId& next : DependenciesOf(current)) {
      if (visited.count(next) == 0) stack.push_back(next);
    }
  }
  return visited;
}

bool DependencyGraph::Reaches(const PredicateId& p,
                              const PredicateId& q) const {
  return ReachableFrom(p).count(q) > 0;
}

std::vector<std::vector<PredicateId>> DependencyGraph::Sccs() const {
  // Tarjan's algorithm (iterative-friendly sizes here, recursion is fine
  // for the program sizes this library targets).
  std::map<PredicateId, int> index, lowlink;
  std::map<PredicateId, bool> on_stack;
  std::vector<PredicateId> stack;
  std::vector<std::vector<PredicateId>> sccs;
  int next_index = 0;

  std::function<void(const PredicateId&)> strongconnect =
      [&](const PredicateId& v) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
        for (const PredicateId& w : DependenciesOf(v)) {
          if (index.count(w) == 0) {
            strongconnect(w);
            lowlink[v] = std::min(lowlink[v], lowlink[w]);
          } else if (on_stack[w]) {
            lowlink[v] = std::min(lowlink[v], index[w]);
          }
        }
        if (lowlink[v] == index[v]) {
          std::vector<PredicateId> component;
          PredicateId w{0, 0};
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
          } while (w != v);
          sccs.push_back(std::move(component));
        }
      };

  for (const PredicateId& v : nodes_) {
    if (index.count(v) == 0) strongconnect(v);
  }
  return sccs;
}

bool DependencyGraph::IsRecursive(const PredicateId& p) const {
  if (DependenciesOf(p).count(p) > 0) return true;  // self-loop
  for (const auto& scc : Sccs()) {
    if (scc.size() > 1 &&
        std::find(scc.begin(), scc.end(), p) != scc.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace semopt
