#ifndef SEMOPT_ANALYSIS_RECURSION_H_
#define SEMOPT_ANALYSIS_RECURSION_H_

#include <set>

#include "ast/program.h"
#include "util/status.h"

namespace semopt {

/// Summary of a program's recursion structure.
struct RecursionAnalysis {
  bool has_recursion = false;
  /// True when every recursive rule has at most one body occurrence of a
  /// predicate from its head's recursion component (linear recursion).
  bool all_linear = true;
  /// True when some SCC of the dependency graph has >1 predicate.
  bool has_mutual_recursion = false;
  std::set<PredicateId> recursive_predicates;
};

/// Classifies `program`'s recursion (linear / non-linear / mutual).
RecursionAnalysis AnalyzeRecursion(const Program& program);

/// Checks the paper's §1 assumptions on programs submitted to the
/// semantic optimizer: (1) all rules range restricted, (2) all rules and
/// ICs connected, (3) only linear recursion, no mutual recursion,
/// (4) ICs mention only EDB predicates and evaluable predicates.
/// Returns the first violation found.
Status ValidatePaperAssumptions(const Program& program);

}  // namespace semopt

#endif  // SEMOPT_ANALYSIS_RECURSION_H_
