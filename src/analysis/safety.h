#ifndef SEMOPT_ANALYSIS_SAFETY_H_
#define SEMOPT_ANALYSIS_SAFETY_H_

#include "ast/program.h"
#include "util/status.h"

namespace semopt {

/// Checks range restriction (paper §1): every variable of the head
/// appears in the body.
Status CheckRangeRestricted(const Rule& rule);

/// Checks evaluation safety: every variable of the rule is *bound* — it
/// appears in a positive relational body literal, or is transitively
/// equated (via `=` literals) to a constant or a bound variable. Negated
/// literals and non-equality comparisons do not bind.
Status CheckSafe(const Rule& rule);

/// Connectivity (paper §1): any two body subgoals share a variable
/// directly or through a chain of subgoals. Rules/ICs with <= 1 subgoal
/// are trivially connected. Only relational subgoals and comparisons
/// participate as graph nodes.
bool IsConnected(const std::vector<Literal>& body);
bool IsConnected(const Rule& rule);
bool IsConnected(const Constraint& constraint);

/// Validates every rule of `program` for range restriction and safety.
Status CheckProgramSafe(const Program& program);

}  // namespace semopt

#endif  // SEMOPT_ANALYSIS_SAFETY_H_
