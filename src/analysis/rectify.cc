#include "analysis/rectify.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "ast/rename.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// True if `head`'s arguments are distinct variables.
bool HasDistinctVarHead(const Atom& head) {
  std::unordered_set<SymbolId> seen;
  for (const Term& t : head.args()) {
    if (!t.IsVariable()) return false;
    if (!seen.insert(t.symbol()).second) return false;
  }
  return true;
}

/// Canonical head variables for `pred`: the head of the first rule whose
/// head is already in distinct-variable form, else X1..Xn.
std::vector<Term> CanonicalHeadVars(const Program& program,
                                    const PredicateId& pred) {
  for (size_t i : program.RulesFor(pred)) {
    const Atom& head = program.rules()[i].head();
    if (HasDistinctVarHead(head)) return head.args();
  }
  std::vector<Term> vars;
  for (uint32_t i = 1; i <= pred.arity; ++i) {
    vars.push_back(Term::Var(StrCat("X", i)));
  }
  return vars;
}

/// Rectifies a single rule against the canonical head `canon`.
Rule RectifyRule(const Rule& rule, const std::vector<Term>& canon,
                 FreshVariableGenerator* gen) {
  if (rule.head().args() == canon) return rule;

  // Step 1: rename every rule variable to a fresh temporary so nothing
  // in the body collides with a canonical head variable name.
  Substitution temp_renaming = RenamingFor(rule, gen);
  Atom head = temp_renaming.Apply(rule.head());
  std::vector<Literal> body = temp_renaming.Apply(rule.body());

  // Step 2: align head argument i with canonical variable canon[i].
  // A first occurrence of a temp variable is renamed to the canonical
  // variable; repeats and constants become `=` body literals.
  Substitution align;
  std::vector<Literal> equalities;
  std::unordered_set<SymbolId> assigned_temp_vars;
  for (size_t i = 0; i < canon.size(); ++i) {
    const Term& arg = head.arg(i);
    if (arg.IsVariable() &&
        assigned_temp_vars.insert(arg.symbol()).second) {
      align.Bind(arg.symbol(), canon[i]);
    } else {
      // Constant or repeated variable: equate (the repeated variable is
      // already aligned to an earlier canonical variable).
      equalities.push_back(
          Literal::Comparison(canon[i], ComparisonOp::kEq, arg));
    }
  }
  body = align.Apply(body);
  equalities = align.Apply(equalities);
  for (Literal& eq : equalities) body.push_back(std::move(eq));

  // Step 3: restore readability — map each remaining temporary variable
  // back to its original name when that name is free in the new rule.
  Rule draft(rule.label(), Atom(head.predicate(), canon), std::move(body));
  std::unordered_set<SymbolId> used;
  for (SymbolId v : CollectVariables(draft)) used.insert(v);
  Substitution restore;
  for (SymbolId v : CollectVariables(draft)) {
    const std::string& name = SymbolName(v);
    size_t dollar = name.find('$');
    if (dollar == std::string::npos) continue;
    SymbolId original = InternSymbol(name.substr(0, dollar));
    if (used.count(original) == 0) {
      restore.Bind(v, Term::Var(original));
      used.insert(original);
    }
  }
  return restore.Apply(draft);
}

}  // namespace

bool IsRectified(const Program& program) {
  std::map<PredicateId, const Atom*> heads;
  for (const Rule& rule : program.rules()) {
    if (!HasDistinctVarHead(rule.head())) return false;
    auto [it, inserted] =
        heads.emplace(rule.head().pred_id(), &rule.head());
    if (!inserted && !(*it->second == rule.head())) return false;
  }
  return true;
}

Result<Program> Rectify(const Program& program) {
  FreshVariableGenerator gen("R");
  Program out;
  std::map<PredicateId, std::vector<Term>> canon;
  for (const Rule& rule : program.rules()) {
    PredicateId pred = rule.head().pred_id();
    auto it = canon.find(pred);
    if (it == canon.end()) {
      it = canon.emplace(pred, CanonicalHeadVars(program, pred)).first;
    }
    out.AddRule(RectifyRule(rule, it->second, &gen));
  }
  for (const Constraint& ic : program.constraints()) out.AddConstraint(ic);
  return out;
}

}  // namespace semopt
