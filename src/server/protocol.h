#ifndef SEMOPT_SERVER_PROTOCOL_H_
#define SEMOPT_SERVER_PROTOCOL_H_

#include <optional>
#include <string>
#include <string_view>

namespace semopt {

/// Wire format of the query server, chosen for lossless transport of
/// the shell's multi-line answers over a plain byte stream:
///
///   request:  one line, terminated by '\n' — exactly a shell input
///             line (statement, query, or .command).
///   response: zero or more body lines, then a terminator line holding
///             a single '.'. Body lines that start with '.' are
///             escaped by doubling the leading dot (SMTP-style), so
///             any response text — including lines that are just "." —
///             round-trips exactly.
///
/// An empty response (e.g. a comment line) is just the terminator.

/// Frames `body` (the processor's response text) for the wire:
/// dot-escapes each line, ensures every line is '\n'-terminated, and
/// appends the ".\n" terminator.
std::string EncodeResponse(std::string_view body);

/// Reverses EncodeResponse given the body lines received so far
/// (terminator excluded, escapes intact): strips one leading dot from
/// dot-escaped lines and joins with '\n'.
std::string DecodeBodyLine(std::string_view line);

/// Incremental line splitter over received bytes: feed chunks, pop
/// complete '\n'-terminated lines (the '\n' — and a preceding '\r', so
/// `nc -C`/telnet clients work — is stripped). Bytes after the last
/// newline stay buffered.
class LineBuffer {
 public:
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Next complete line, or nullopt when no full line is buffered.
  std::optional<std::string> PopLine();

 private:
  std::string buffer_;
};

}  // namespace semopt

#endif  // SEMOPT_SERVER_PROTOCOL_H_
