#ifndef SEMOPT_SERVER_SCHEDULER_H_
#define SEMOPT_SERVER_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace semopt {

/// Admission class of one query. Point lookups over base relations
/// finish in microseconds and should never sit behind a recursive
/// fixpoint; recursive (IDB-touching) queries can monopolize cores for
/// seconds. The scheduler runs the two classes against separate
/// concurrency limits so a burst of heavy queries cannot starve light
/// ones (and vice versa: an unbounded flood of light queries still
/// leaves the heavy lanes intact).
enum class QueryClass {
  kLight,  // touches only EDB predicates: index probe, no fixpoint
  kHeavy,  // touches at least one IDB predicate: runs a fixpoint
};

const char* QueryClassName(QueryClass c);

/// Two-class admission control for a query server: at most
/// `max_heavy` heavy and `max_light` light queries run at once;
/// excess callers block in Admit() and are released FIFO-ish by
/// condition variable as running queries finish. This is the
/// aggregate thread-budget guard — each heavy query may spin up its
/// own evaluation pool of `threads_per_query` workers, so the
/// worst-case thread count is bounded by
/// `max_heavy * threads_per_query + max_light` regardless of how many
/// sessions are connected.
///
/// Observability (global registry):
///   server.sched.{heavy,light}.queue_depth  gauge, callers waiting
///   server.sched.{heavy,light}.running      gauge, admitted & running
///   server.sched.{heavy,light}.wait_us      histogram, time in queue
///   server.sched.{heavy,light}.admitted     counter
class SessionScheduler {
 public:
  struct Options {
    /// Concurrent heavy (recursive) queries. Default 2: two fixpoints
    /// at `threads_per_query` workers each saturate a small host.
    size_t max_heavy = 2;
    /// Concurrent light (EDB lookup) queries.
    size_t max_light = 8;
  };

  SessionScheduler() : SessionScheduler(Options{2, 8}) {}
  explicit SessionScheduler(Options options);

  /// RAII admission slot: holding one means the query is running;
  /// destruction releases the slot and wakes a waiter of the same
  /// class. Movable, not copyable.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : scheduler_(other.scheduler_), cls_(other.cls_) {
      other.scheduler_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release();

   private:
    friend class SessionScheduler;
    Ticket(SessionScheduler* scheduler, QueryClass cls)
        : scheduler_(scheduler), cls_(cls) {}

    SessionScheduler* scheduler_ = nullptr;
    QueryClass cls_ = QueryClass::kLight;
  };

  /// Blocks until a slot of `cls` is free, then claims it. Records the
  /// wait in server.sched.<class>.wait_us and a "sched.wait" span; when
  /// `waited_us` is non-null it also receives the measured queue wait
  /// (the session processor folds it into the query's profile).
  Ticket Admit(QueryClass cls, uint64_t* waited_us = nullptr);

  /// Point-in-time counts (tests / introspection).
  size_t running(QueryClass cls) const;
  size_t queued(QueryClass cls) const;

 private:
  struct ClassState {
    size_t limit = 0;
    size_t running = 0;
    size_t queued = 0;
  };

  void ReleaseSlot(QueryClass cls);
  ClassState& StateFor(QueryClass cls) {
    return cls == QueryClass::kHeavy ? heavy_ : light_;
  }
  const ClassState& StateFor(QueryClass cls) const {
    return cls == QueryClass::kHeavy ? heavy_ : light_;
  }
  void PublishGauges(QueryClass cls) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  ClassState heavy_;
  ClassState light_;
};

}  // namespace semopt

#endif  // SEMOPT_SERVER_SCHEDULER_H_
