#include "server/protocol.h"

namespace semopt {

std::string EncodeResponse(std::string_view body) {
  std::string out;
  out.reserve(body.size() + 8);
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    std::string_view line = body.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    if (!line.empty() && line.front() == '.') out.push_back('.');
    out.append(line);
    out.push_back('\n');
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  out.append(".\n");
  return out;
}

std::string DecodeBodyLine(std::string_view line) {
  if (line.size() >= 2 && line[0] == '.' && line[1] == '.') {
    line.remove_prefix(1);
  }
  return std::string(line);
}

std::optional<std::string> LineBuffer::PopLine() {
  size_t eol = buffer_.find('\n');
  if (eol == std::string::npos) return std::nullopt;
  size_t end = eol;
  if (end > 0 && buffer_[end - 1] == '\r') --end;
  std::string line = buffer_.substr(0, end);
  buffer_.erase(0, eol + 1);
  return line;
}

}  // namespace semopt
