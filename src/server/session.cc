#include "server/session.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "ast/rename.h"
#include "eval/component_plan.h"
#include "eval/constraint_check.h"
#include "eval/explain.h"
#include "eval/query.h"
#include "exec/parallel_fixpoint.h"
#include "io/binary_io.h"
#include "io/fact_io.h"
#include "magic/magic_sets.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "semopt/optimizer.h"
#include "semopt/residue_generator.h"
#include "storage/storage_metrics.h"
#include "util/simd.h"
#include "util/string_util.h"

namespace semopt {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> SplitWords(std::string_view s) {
  std::vector<std::string> words;
  std::stringstream stream{std::string(s)};
  std::string word;
  while (stream >> word) words.push_back(word);
  return words;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Copies the engine counters of one evaluation into a query profile
/// (EvalStats lives in the eval layer, QueryProfile in obs; the session
/// is where both are in scope).
void FillProfileFromStats(const EvalStats& stats, obs::QueryProfile* p) {
  p->fixpoint_us = stats.eval_ns / 1000;
  p->plan_cache_hits = stats.plan_cache_hits;
  p->plan_cache_misses = stats.plan_cache_misses;
  p->iterations = stats.iterations;
  p->derived = stats.derived_tuples;
  p->duplicates = stats.duplicate_tuples;
  p->bindings = stats.bindings_explored;
  p->batches = stats.batches;
  p->morsels = stats.morsels;
  p->peak_delta = stats.peak_delta_tuples;
  for (const RoundTiming& rt : stats.rounds) {
    obs::QueryProfile::Round round;
    round.stratum = rt.stratum;
    round.round = rt.round;
    round.us = rt.ns / 1000;
    round.delta_in = rt.delta_in;
    round.delta_out = rt.delta_out;
    round.derived = rt.derived;
    p->rounds.push_back(round);
  }
  for (const auto& [label, rs] : stats.per_rule) {
    obs::QueryProfile::Rule rule;
    rule.label = label;
    rule.applications = rs.applications;
    rule.derived = rs.derived;
    rule.duplicates = rs.duplicates;
    rule.us = rs.exec_ns / 1000;
    p->rules.push_back(rule);
  }
}

}  // namespace

SessionCommandProcessor::SessionCommandProcessor(DatabaseHost* host)
    : host_(host), session_id_(obs::NextSessionId()) {
  eval_options_.plan_cache = host_->plan_cache();
}

Result<IvmStats> DatabaseHost::ApplyUpdate(const std::vector<Atom>& adds,
                                           const std::vector<Atom>& dels) {
  IvmStats batch;
  Result<uint64_t> written = ApplyWrite([&](Database* db) -> Status {
    std::lock_guard<std::mutex> lock(view_mu_);
    if (view_ != nullptr) {
      SEMOPT_ASSIGN_OR_RETURN(batch, view_->Apply(adds, dels, db));
      return Status::Ok();
    }
    const size_t before = db->TotalTuples();
    SEMOPT_RETURN_IF_ERROR(ApplyEdbBatch(db, adds, dels));
    const size_t after = db->TotalTuples();
    batch.batches = 1;
    batch.edb_inserted = after > before ? after - before : 0;
    batch.edb_deleted = before > after ? before - after : 0;
    return Status::Ok();
  });
  SEMOPT_RETURN_IF_ERROR(written.status());
  return batch;
}

Result<size_t> DatabaseHost::Materialize(const Program& program,
                                         const EvalOptions& options,
                                         MaterializedView::Mode mode) {
  size_t tuples = 0;
  // Build and publish inside one write: the initial fixpoint runs
  // against the write clone, so no update batch can slip between the
  // base snapshot and the published IDB.
  Result<uint64_t> written = ApplyWrite([&](Database* db) -> Status {
    SEMOPT_ASSIGN_OR_RETURN(std::unique_ptr<MaterializedView> view,
                            MaterializedView::Create(program, *db, options,
                                                     mode));
    view->PublishInto(db);
    tuples = view->idb_tuples();
    std::lock_guard<std::mutex> lock(view_mu_);
    view_ = std::move(view);
    return Status::Ok();
  });
  SEMOPT_RETURN_IF_ERROR(written.status());
  return tuples;
}

bool DatabaseHost::Dematerialize() {
  std::lock_guard<std::mutex> lock(view_mu_);
  if (view_ == nullptr) return false;
  view_.reset();
  return true;
}

std::optional<MaterializedView::Mode> DatabaseHost::view_mode() {
  std::lock_guard<std::mutex> lock(view_mu_);
  if (view_ == nullptr) return std::nullopt;
  return view_->mode();
}

IvmStats DatabaseHost::view_totals() {
  std::lock_guard<std::mutex> lock(view_mu_);
  return view_ == nullptr ? IvmStats() : view_->totals();
}

obs::QueryLog* SessionCommandProcessor::EffectiveQueryLog() {
  if (own_query_log_ != nullptr) return own_query_log_.get();
  return host_->query_log();
}

QueryClass SessionCommandProcessor::Classify(const std::vector<Literal>& body,
                                             const Program& program) {
  const std::set<PredicateId> idb = program.IdbPredicates();
  for (const Literal& lit : body) {
    if (!lit.IsRelational()) continue;
    if (idb.count(lit.atom().pred_id()) > 0) return QueryClass::kHeavy;
  }
  return QueryClass::kLight;
}

std::string SessionCommandProcessor::Execute(std::string_view raw) {
  std::string_view line = Trim(raw);
  if (line.empty() || line.front() == '%') return "";
  if (line.front() == '.' || line.front() == ':') return HandleCommand(line);
  if (StartsWith(line, "?-")) return HandleQuery(line.substr(2));
  if (line.front() == '~') return HandleRetraction(line.substr(1));
  return HandleStatements(line);
}

std::string SessionCommandProcessor::HandleRetraction(std::string_view text) {
  std::string source{Trim(text)};
  if (!source.empty() && source.back() != '.') source += '.';
  Result<Program> parsed = ParseProgram(source);
  if (!parsed.ok()) return parsed.status().ToString();
  std::vector<Atom> facts;
  for (const Rule& rule : parsed->rules()) {
    if (!rule.IsFact()) {
      return StrCat("cannot retract ", rule.ToString(),
                    ": only ground facts can be retracted");
    }
    facts.push_back(rule.head());
  }
  if (!parsed->constraints().empty()) {
    return "cannot retract a constraint";
  }
  if (facts.empty()) return "nothing to retract";
  Result<IvmStats> batch = host_->ApplyUpdate({}, facts);
  if (!batch.ok()) return batch.status().ToString();
  std::ostringstream os;
  os << "retracted " << batch->edb_deleted << " fact(s)";
  if (batch->edb_deleted < facts.size()) {
    os << " (" << facts.size() - batch->edb_deleted << " absent)";
  }
  if (host_->view_mode().has_value()) {
    os << "; view: " << batch->ToString();
  }
  return os.str();
}

std::string SessionCommandProcessor::HandleStatements(std::string_view text) {
  std::string source{Trim(text)};
  if (!source.empty() && source.back() != '.') source += '.';
  Result<Program> parsed = ParseProgram(source);
  if (!parsed.ok()) return parsed.status().ToString();

  size_t rules = 0, constraints = 0;
  // Ground facts become one database write (a server host publishes
  // them as a single new generation — readers see all or none of this
  // statement batch); rules and ICs stay session-private.
  std::vector<Atom> facts;
  for (const Rule& rule : parsed->rules()) {
    bool ground_fact = rule.IsFact();
    for (const Term& t : rule.head().args()) {
      if (t.IsVariable()) ground_fact = false;
    }
    if (ground_fact) {
      facts.push_back(rule.head());
    } else {
      program_.AddRule(rule);
      ++rules;
    }
  }
  if (!facts.empty()) {
    // Through ApplyUpdate so an installed materialized view maintains
    // its IDB in the same published generation as the new facts.
    Result<IvmStats> written = host_->ApplyUpdate(facts, {});
    if (!written.ok()) return written.status().ToString();
  }
  for (const Constraint& ic : parsed->constraints()) {
    program_.AddConstraint(ic);
    ++constraints;
  }
  program_.AutoLabelRules();
  std::ostringstream os;
  os << "added";
  if (rules > 0) os << " " << rules << " rule(s)";
  if (constraints > 0) os << " " << constraints << " constraint(s)";
  if (!facts.empty()) os << " " << facts.size() << " fact(s)";
  return os.str();
}

std::string SessionCommandProcessor::HandleQuery(std::string_view body_text) {
  return RunQueryProfiled(body_text, /*force_metrics=*/false);
}

std::string SessionCommandProcessor::RunQueryProfiled(
    std::string_view body_text, bool force_metrics) {
  const uint64_t t_start = NowNs();
  obs::QueryProfile profile;
  profile.ctx.query_id = obs::NextQueryId();
  profile.ctx.session_id = session_id_;
  profile.ctx.budget_us = eval_options_.budget_us;

  std::string source{Trim(body_text)};
  if (!source.empty() && source.back() == '.') source.pop_back();
  profile.query = source;
  last_query_ = source;

  // Every span recorded on this thread during the query (including the
  // admission wait) carries the query id; the parallel engine re-opens
  // the scope on its worker lanes from EvalOptions::query_id.
  obs::QueryIdScope qid_scope(profile.ctx.query_id);

  // Records the profile (complete or failed) to the effective query
  // log; the session-level slow_query_us overrides the log's default
  // threshold when set.
  auto finish = [&](std::string out) {
    profile.total_us = (NowNs() - t_start) / 1000;
    if (obs::QueryLog* log = EffectiveQueryLog()) {
      const uint64_t threshold = eval_options_.slow_query_us != 0
                                     ? eval_options_.slow_query_us
                                     : log->slow_threshold_us();
      log->Record(profile, threshold);
    }
    last_profile_ = std::move(profile);
    have_last_profile_ = true;
    return out;
  };

  Result<std::vector<Literal>> body = ParseLiteralList(source);
  profile.parse_us = (NowNs() - t_start) / 1000;
  if (!body.ok()) {
    profile.ok = false;
    profile.error = body.status().ToString();
    return finish(body.status().ToString());
  }
  std::vector<Term> projection;
  for (SymbolId v : CollectVariables(*body)) projection.push_back(Term::Var(v));

  // Admission (when the host schedules) happens before the snapshot is
  // pinned, so queued queries don't hold generations live while they
  // wait — and each query reads the freshest head at its start of
  // execution.
  SessionScheduler::Ticket ticket;
  if (host_->scheduler() != nullptr) {
    const QueryClass cls = Classify(*body, program_);
    profile.query_class = QueryClassName(cls);
    ticket = host_->scheduler()->Admit(cls, &profile.queue_wait_us);
  }
  const uint64_t t_pin = NowNs();
  DatabaseSnapshot snap = host_->Snapshot();
  profile.pin_us = (NowNs() - t_pin) / 1000;
  profile.pinned_epoch = snap.epoch();

  EvalOptions query_options = eval_options_;
  query_options.query_id = profile.ctx.query_id;
  if (force_metrics) query_options.collect_metrics = true;

  const uint64_t t_eval = NowNs();
  EvalStats stats;
  Result<QueryResult> result = AnswerQuery(program_, snap.db(), *body,
                                           projection, query_options, &stats);
  profile.eval_us = (NowNs() - t_eval) / 1000;
  FillProfileFromStats(stats, &profile);
  // Fold into the process-wide registry so `:stats` aggregates across
  // queries and sessions (per-query cost: a handful of atomic adds).
  stats.PublishTo(obs::MetricsRegistry::Global());
  last_stats_ = stats;
  have_last_stats_ = true;
  if (!result.ok()) {
    profile.ok = false;
    profile.error = result.status().ToString();
    return finish(result.status().ToString());
  }
  profile.answers = result->size();

  const uint64_t t_render = NowNs();
  std::ostringstream os;
  if (result->empty()) {
    os << "no answers";
  } else {
    os << result->ToString() << result->size() << " answer(s)";
  }
  if (show_stats_) os << "\n[" << stats.ToString() << "]";
  profile.render_us = (NowNs() - t_render) / 1000;
  return finish(os.str());
}

std::string SessionCommandProcessor::HandleCommand(std::string_view line) {
  std::vector<std::string> words = SplitWords(line);
  const std::string& cmd = words[0];
  std::vector<std::string> args(words.begin() + 1, words.end());

  if (cmd == ".help") return CmdHelp();
  if (cmd == ".quit" || cmd == ".exit") {
    done_ = true;
    return "bye";
  }
  if (cmd == ".program") return CmdProgram();
  if (cmd == ".db") return CmdDb(args);
  if (cmd == ".optimize") return CmdOptimize(args);
  if (cmd == ".residues") return CmdResidues();
  if (cmd == ".check") return CmdCheck();
  if (cmd == ".explain") {
    size_t offset = line.find(' ');
    if (offset == std::string_view::npos) {
      return "usage: .explain pred(consts)";
    }
    return CmdExplain(line.substr(offset + 1));
  }
  if (cmd == ".magic") {
    size_t offset = line.find(' ');
    if (offset == std::string_view::npos) {
      return "usage: .magic pred(arg, ...)";
    }
    return CmdMagic(line.substr(offset + 1));
  }
  if (cmd == ".materialize") return CmdMaterialize(args);
  if (cmd == ".threads" || cmd == ":threads") return CmdThreads(args);
  if (cmd == ".batch" || cmd == ":batch") return CmdBatch(args);
  if (cmd == ".plan" || cmd == ":plan") return CmdPlan(args);
  if (cmd == ".trace" || cmd == ":trace") return CmdTrace(args);
  if (cmd == ".metrics" || cmd == ":metrics") return CmdMetrics(args);
  if (cmd == ".profile" || cmd == ":profile") {
    size_t offset = line.find(' ');
    return CmdProfile(offset == std::string_view::npos
                          ? std::string_view()
                          : line.substr(offset + 1));
  }
  if (cmd == ".qstats" || cmd == ":stats") return CmdStats();
  if (cmd == ".qlog" || cmd == ":qlog") return CmdQlog(args);
  if (cmd == ".slowlog" || cmd == ":slowlog") return CmdSlowlog(args);
  if (cmd == ".budget" || cmd == ":budget") return CmdBudget(args);
  if (cmd == ".load") return CmdLoad(args);
  if (cmd == ".loadtsv") return CmdLoadTsv(args);
  if (cmd == ".dump" || cmd == ":dump") return CmdDump(args);
  // `:load` (colon) is the binary-snapshot loader; `.load` (dot) keeps
  // its historical meaning of sourcing a text program file.
  if (cmd == ":load") return CmdLoadBinary(args);
  if (cmd == ".simd" || cmd == ":simd") return CmdSimd(args);
  if (cmd == ".planner" || cmd == ":planner") return CmdPlanner(args);
  if (cmd == ".stats") {
    show_stats_ = args.empty() || args[0] != "off";
    return StrCat("stats ", show_stats_ ? "on" : "off");
  }
  if (cmd == ".reset") {
    program_ = Program();
    host_->Dematerialize();
    Result<uint64_t> cleared = host_->ApplyWrite([](Database* db) {
      *db = Database();
      return Status::Ok();
    });
    if (!cleared.ok()) return cleared.status().ToString();
    return "reset";
  }
  return StrCat("unknown command ", cmd, " (try .help)");
}

std::string SessionCommandProcessor::CmdHelp() const {
  return R"(statements:
  head :- body.            add a rule
  body -> head.            add an integrity constraint ("-> ." = denial)
  pred(consts).            add a fact
  ?- literals.             run a query
commands:
  .program                 show rules and constraints
  .db [pred/arity]         list relations / dump one
  .optimize [flat]         run the semantic optimizer (flat: no chain factoring)
  .residues                show the residues of all constraints
  .check                   check the facts against the constraints
  .magic pred(args)        answer a (possibly bound) query via magic sets
  .explain pred(consts)    show a proof tree for a derived fact
  ~ pred(consts).          retract a fact (a maintained view updates its
                           IDB incrementally in the same write)
  .materialize [incremental|recompute|off]
                           maintain the program's IDB as base relations,
                           updated on every fact write (default:
                           incremental counting/DRed maintenance)
  .load FILE               load a program/fact file
  .loadtsv PRED FILE       load tab-separated tuples into PRED
  :dump FILE               save every relation as a binary snapshot
  :load FILE               bulk-load a binary snapshot (made by :dump)
  .stats [on|off]          show evaluation statistics with query answers
  :threads [N]             evaluate with N threads (1 = serial, 0 = auto)
  :batch [N]               batched executor block size (1 = per-tuple)
  :simd [on|off|auto]      vectorized executor kernels (auto = detect)
  :planner [greedy|cost]   join-order planner (cost = enumerated from
                           sizes/distincts + runtime feedback)
  :plan PRED[/ARITY]       show the join plan of every rule deriving PRED
                           (cost planner: est/actual rows per step)
  :trace FILE|on|off       record spans; on stop, write Chrome trace JSON
                           (open in chrome://tracing or ui.perfetto.dev)
  :metrics [on|off]        collect per-rule/per-round metrics; no args:
                           print the report for the last evaluation
  :profile [QUERY]         re-run the last (or given) query with full
                           metrics; show the latency breakdown and the
                           annotated per-rule plans (EXPLAIN ANALYZE)
  :stats                   dump all metrics (Prometheus text format)
  :qlog [FILE|off]         session-private structured query log (JSONL)
  :slowlog [N|off]         mirror queries >= N us into the slow log
  :budget [N|off]          per-query wall-clock budget in microseconds
  .reset                   clear everything
  .quit                    leave)";
}

std::string SessionCommandProcessor::CmdMaterialize(
    const std::vector<std::string>& args) {
  if (!args.empty() && args[0] == "off") {
    return host_->Dematerialize()
               ? "view dropped (published IDB stays as plain facts)"
               : "no materialized view installed";
  }
  MaterializedView::Mode mode = MaterializedView::Mode::kIncremental;
  if (!args.empty()) {
    if (args[0] == "recompute") {
      mode = MaterializedView::Mode::kRecompute;
    } else if (args[0] != "incremental") {
      return "usage: .materialize [incremental|recompute|off]";
    }
  }
  if (program_.rules().empty()) {
    return "no rules to materialize (add rules first)";
  }
  Result<size_t> tuples = host_->Materialize(program_, eval_options_, mode);
  if (!tuples.ok()) return tuples.status().ToString();
  return StrCat("materialized ", *tuples, " idb tuple(s) (",
                mode == MaterializedView::Mode::kIncremental
                    ? "incremental counting/DRed maintenance"
                    : "full recompute per write batch",
                ")");
}

std::string SessionCommandProcessor::CmdProgram() const {
  if (program_.rules().empty() && program_.constraints().empty()) {
    return "(empty program)";
  }
  std::string out = program_.ToString();
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string SessionCommandProcessor::CmdDb(
    const std::vector<std::string>& args) {
  DatabaseSnapshot snap = host_->Snapshot();
  const Database& edb = snap.db();
  std::ostringstream os;
  if (args.empty()) {
    for (const PredicateId& pred : edb.Predicates()) {
      const Relation* rel = edb.Find(pred);
      os << pred.ToString() << ": " << rel->size() << " tuple(s)\n";
    }
    os << edb.TotalTuples() << " tuple(s) total";
    return os.str();
  }
  // "pred/arity" or "pred".
  std::string name = args[0];
  int arity = -1;
  size_t slash = name.find('/');
  if (slash != std::string::npos) {
    arity = std::atoi(name.c_str() + slash + 1);
    name = name.substr(0, slash);
  }
  for (const PredicateId& pred : edb.Predicates()) {
    if (SymbolName(pred.name) != name) continue;
    if (arity >= 0 && pred.arity != static_cast<uint32_t>(arity)) continue;
    SaveFacts(os, *edb.Find(pred));
  }
  std::string out = os.str();
  if (out.empty()) return StrCat("no relation ", args[0]);
  if (out.back() == '\n') out.pop_back();
  return out;
}

std::string SessionCommandProcessor::CmdOptimize(
    const std::vector<std::string>& args) {
  OptimizerOptions options;
  for (const std::string& arg : args) {
    if (arg == "flat") options.factor_committed = false;
  }
  // Every EDB relation present in the database counts as "small" only
  // if the user says so; default: introduction for evaluable heads only.
  SemanticOptimizer optimizer(options);
  Result<OptimizeResult> result = optimizer.Optimize(program_);
  if (!result.ok()) return result.status().ToString();
  std::ostringstream os;
  os << result->Report();
  if (!result->applied.empty()) {
    program_ = result->program;
    os << "program replaced; see .program";
  } else {
    os << "no transformation applied; program unchanged";
  }
  return os.str();
}

std::string SessionCommandProcessor::CmdResidues() const {
  Result<std::vector<Residue>> residues = GenerateAllResidues(program_);
  if (!residues.ok()) return residues.status().ToString();
  if (residues->empty()) return "no residues";
  std::ostringstream os;
  for (const Residue& r : *residues) {
    os << r.ToString(program_) << "   [" << ResidueKindName(r.kind())
       << ", IC " << r.ic_label << "]\n";
  }
  std::string out = os.str();
  out.pop_back();
  return out;
}

std::string SessionCommandProcessor::CmdCheck() {
  DatabaseSnapshot snap = host_->Snapshot();
  Result<std::vector<ConstraintViolation>> violations =
      CheckConstraints(snap.db(), program_.constraints(), 10);
  if (!violations.ok()) return violations.status().ToString();
  if (violations->empty()) return "all constraints satisfied";
  std::ostringstream os;
  for (const ConstraintViolation& v : *violations) {
    os << "IC " << v.constraint_label << " " << v.description << "\n";
  }
  std::string out = os.str();
  out.pop_back();
  return out;
}

std::string SessionCommandProcessor::CmdMagic(std::string_view rest) {
  std::string source{Trim(rest)};
  if (!source.empty() && source.back() == '.') source.pop_back();
  Result<Atom> query = ParseAtom(source);
  if (!query.ok()) return query.status().ToString();

  // Magic answering of an IDB goal runs a (rewritten) fixpoint: heavy.
  // An EDB goal degenerates to a lookup: light.
  SessionScheduler::Ticket ticket;
  if (host_->scheduler() != nullptr) {
    const QueryClass cls = program_.IdbPredicates().count(query->pred_id()) > 0
                               ? QueryClass::kHeavy
                               : QueryClass::kLight;
    ticket = host_->scheduler()->Admit(cls);
  }
  DatabaseSnapshot snap = host_->Snapshot();

  EvalStats stats;
  Result<std::vector<Tuple>> answers = AnswerWithMagic(
      program_, snap.db(), *query, &stats, MagicOptions(), eval_options_);
  if (!answers.ok()) return answers.status().ToString();
  last_stats_ = stats;
  have_last_stats_ = true;
  std::ostringstream os;
  for (const Tuple& t : *answers) {
    os << query->predicate_name() << TupleToString(t) << "\n";
  }
  os << answers->size() << " answer(s)";
  if (show_stats_) os << "\n[" << stats.ToString() << "]";
  return os.str();
}

std::string SessionCommandProcessor::CmdExplain(std::string_view rest) {
  std::string source{Trim(rest)};
  if (!source.empty() && source.back() == '.') source.pop_back();
  Result<Atom> goal = ParseAtom(source);
  if (!goal.ok()) return goal.status().ToString();
  DatabaseSnapshot snap = host_->Snapshot();
  Result<ProofNode> proof = ExplainFromScratch(program_, snap.db(), *goal);
  if (!proof.ok()) return proof.status().ToString();
  std::string out = proof->ToString();
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string SessionCommandProcessor::CmdThreads(
    const std::vector<std::string>& args) {
  if (args.empty()) {
    if (eval_options_.num_threads == 0) {
      return StrCat("threads auto (", ResolveNumThreads(eval_options_),
                    " detected, morsel-parallel)");
    }
    return StrCat("threads ", eval_options_.num_threads,
                  eval_options_.num_threads == 1 ? " (serial)"
                                                 : " (morsel-parallel)");
  }
  char* end = nullptr;
  long n = std::strtol(args[0].c_str(), &end, 10);
  if (end == args[0].c_str() || *end != '\0' || n < 0) {
    return "usage: :threads N  (0 = auto-detect, 1 = serial, max 256)";
  }
  // Validate the full combination centrally; on rejection surface the
  // validator's message and keep the previous setting.
  EvalOptions candidate = eval_options_;
  candidate.num_threads = static_cast<size_t>(n);
  if (Status s = ValidateEvalOptions(candidate); !s.ok()) {
    return s.ToString();
  }
  eval_options_ = candidate;
  if (n == 0) {
    return StrCat("threads auto (", ResolveNumThreads(eval_options_),
                  " detected, morsel-parallel)");
  }
  return StrCat("threads ", eval_options_.num_threads,
                eval_options_.num_threads == 1 ? " (serial)"
                                               : " (morsel-parallel)");
}

std::string SessionCommandProcessor::CmdBatch(
    const std::vector<std::string>& args) {
  if (args.empty()) {
    return StrCat("batch ", eval_options_.batch_size,
                  eval_options_.batch_size <= 1 ? " (per-tuple)" : "");
  }
  char* end = nullptr;
  long n = std::strtol(args[0].c_str(), &end, 10);
  if (end == args[0].c_str() || *end != '\0' || n < 0 || n > 1048576) {
    return "usage: :batch N  (1 = per-tuple, default 1024, max 1048576)";
  }
  EvalOptions candidate = eval_options_;
  candidate.batch_size = static_cast<size_t>(n);
  if (Status s = ValidateEvalOptions(candidate); !s.ok()) {
    return s.ToString();
  }
  eval_options_ = candidate;
  return StrCat("batch ", eval_options_.batch_size,
                eval_options_.batch_size <= 1 ? " (per-tuple)" : "");
}

std::string SessionCommandProcessor::CmdPlan(
    const std::vector<std::string>& args) {
  if (args.size() != 1) return "usage: :plan PRED[/ARITY]";
  std::string name = args[0];
  int arity = -1;
  size_t slash = name.find('/');
  if (slash != std::string::npos) {
    arity = std::atoi(name.c_str() + slash + 1);
    name = name.substr(0, slash);
  }
  Result<std::vector<EvalComponent>> components = PlanComponents(program_);
  if (!components.ok()) return components.status().ToString();

  DatabaseSnapshot snap = host_->Snapshot();
  const Database& edb = snap.db();

  // Plan against the current EDB cardinalities; IDB relations are not
  // materialized here, so they count as empty (the order shown for a
  // fresh evaluation's first rounds).
  class EdbSource : public RelationSource {
   public:
    explicit EdbSource(const Database* edb) : edb_(edb) {}
    const Relation* Full(const PredicateId& pred) const override {
      return edb_->Find(pred);
    }
    const Relation* Delta(const PredicateId&) const override {
      return nullptr;
    }

   private:
    const Database* edb_;
  } source(&edb);

  std::ostringstream os;
  size_t shown = 0;
  for (const EvalComponent& component : *components) {
    for (const PlannedRule& pr : component.rules) {
      if (SymbolName(pr.head.name) != name) continue;
      if (arity >= 0 && pr.head.arity != static_cast<uint32_t>(arity)) {
        continue;
      }
      ++shown;
      Result<RuleExecutor::PreparedPlan> plan = pr.executor.Prepare(
          source, -1, eval_options_.cardinality_planning,
          /*skip_delta_index=*/false, /*partition=*/false,
          eval_options_.planner);
      if (!plan.ok()) {
        os << plan.status().ToString() << "\n";
        continue;
      }
      os << pr.executor.DescribePlan(*plan) << "\n";
      for (int lit_index : pr.recursive_literals) {
        Result<RuleExecutor::PreparedPlan> delta_plan = pr.executor.Prepare(
            source, lit_index, eval_options_.cardinality_planning,
            /*skip_delta_index=*/false, /*partition=*/false,
            eval_options_.planner);
        if (!delta_plan.ok()) continue;
        os << "with delta on body literal " << lit_index << ":\n"
           << pr.executor.DescribePlan(*delta_plan, lit_index) << "\n";
      }
    }
  }
  if (shown == 0) return StrCat("no rules with head ", args[0]);
  std::string out = os.str();
  out.pop_back();
  return out;
}

std::string SessionCommandProcessor::CmdTrace(
    const std::vector<std::string>& args) {
  if (!obs::kTracingCompiledIn) {
    return "tracing was compiled out (-DSEMOPT_DISABLE_TRACING)";
  }
  if (args.empty()) {
    if (obs::TracingEnabled()) {
      return StrCat("tracing on (will write ", trace_path_,
                    "; stop with :trace off)");
    }
    return "tracing off (start with :trace FILE)";
  }
  if (args[0] == "off") {
    if (!obs::TracingEnabled() || trace_path_.empty()) {
      return "tracing is not on";
    }
    Result<size_t> events = obs::StopTracing(trace_path_);
    std::string path = std::move(trace_path_);
    trace_path_.clear();
    if (!events.ok()) return events.status().ToString();
    return StrCat("trace written to ", path, " (", *events,
                  " event(s); open in chrome://tracing or Perfetto)");
  }
  trace_path_ = args[0] == "on" ? "trace.json" : args[0];
  obs::StartTracing();
  return StrCat("tracing on (will write ", trace_path_,
                "; stop with :trace off)");
}

std::string SessionCommandProcessor::CmdMetrics(
    const std::vector<std::string>& args) {
  if (!args.empty()) {
    if (args[0] == "on") {
      eval_options_.collect_metrics = true;
      return "metrics on (per-rule/per-round collection)";
    }
    if (args[0] == "off") {
      eval_options_.collect_metrics = false;
      return "metrics off";
    }
    return "usage: :metrics [on|off]";
  }
  if (!eval_options_.collect_metrics) {
    return "metrics collection is off (enable with :metrics on)";
  }
  if (!have_last_stats_) {
    return "no evaluation yet (run a query first)";
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  storage_metrics::PublishTo(registry);
  std::string out = StrCat(
      last_stats_.Report(),
      "\nstorage: tuples_bytes=", storage_metrics::LiveTupleBytes(),
      " columns_bytes=", storage_metrics::LiveColumnsBytes(),
      " rehashes=", storage_metrics::TotalRehashes(),
      "\nio: bulk_load_rows=", registry.GetCounter("io.bulk_load.rows").value(),
      " bulk_load_bytes=", registry.GetCounter("io.bulk_load.bytes").value(),
      " bulk_load_us=", registry.GetCounter("io.bulk_load.us").value());
  if (registry.GetCounter("eval.ivm.batches").value() > 0) {
    out = StrCat(
        out, "\nivm: batches=", registry.GetCounter("eval.ivm.batches").value(),
        " overdeleted=", registry.GetCounter("eval.ivm.overdeleted").value(),
        " rederived=", registry.GetCounter("eval.ivm.rederived").value(),
        " recounted=", registry.GetCounter("eval.ivm.recounted").value(),
        " net_deleted=", registry.GetCounter("eval.ivm.net_deleted").value(),
        " net_inserted=", registry.GetCounter("eval.ivm.net_inserted").value(),
        " maintenance_us=",
        registry.GetCounter("eval.ivm.maintenance_us").value());
  }
  return out;
}

std::string SessionCommandProcessor::CmdProfile(std::string_view rest) {
  std::string query{Trim(rest)};
  if (query.empty()) {
    if (last_query_.empty()) {
      return "no query to profile (run one first, or :profile QUERY)";
    }
    query = last_query_;
  }
  // Re-run the query with full metrics collection; the answers are
  // recomputed against the current head but only the breakdown is
  // shown.
  std::string result_text = RunQueryProfiled(query, /*force_metrics=*/true);
  if (!last_profile_.ok) return result_text;  // surface parse/eval errors

  std::ostringstream os;
  os << last_profile_.Render();
  // Annotated plans: the query ran as the rule `query$(vars) :- body`,
  // exactly as AnswerQuery builds it, so extending the program the same
  // way makes the query rule's own join plan part of the output (keyed
  // "query$" in the per-rule stats).
  Result<std::vector<Literal>> body = ParseLiteralList(query);
  if (body.ok()) {
    std::vector<Term> projection;
    for (SymbolId v : CollectVariables(*body)) {
      projection.push_back(Term::Var(v));
    }
    Atom head("query$answer", projection);
    Program extended = program_;
    extended.AddRule(Rule("query$", std::move(head), *body));
    DatabaseSnapshot snap = host_->Snapshot();
    os << ExplainAnalyze(extended, snap.db(), last_stats_, eval_options_);
  }
  return os.str();
}

std::string SessionCommandProcessor::CmdStats() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  storage_metrics::PublishTo(registry);
  if (obs::QueryLog* log = EffectiveQueryLog()) {
    registry.GetGauge("server.query_log.records")
        .Set(static_cast<int64_t>(log->records()));
    registry.GetGauge("server.query_log.slow_records")
        .Set(static_cast<int64_t>(log->slow_records()));
  }
  std::string out = obs::ExportPrometheus(registry);
  if (out.empty()) return "(no metrics recorded yet)";
  if (out.back() == '\n') out.pop_back();
  return out;
}

std::string SessionCommandProcessor::CmdQlog(
    const std::vector<std::string>& args) {
  if (args.empty()) {
    if (own_query_log_ != nullptr) return "session query log on (:qlog off)";
    if (host_->query_log() != nullptr && host_->query_log()->log_open()) {
      return "logging to the host query log";
    }
    return "query logging off (:qlog FILE)";
  }
  if (args[0] == "off") {
    if (own_query_log_ == nullptr) return "no session query log open";
    own_query_log_.reset();
    return "session query log closed";
  }
  auto log = std::make_unique<obs::QueryLog>();
  if (Status s = log->OpenLog(args[0]); !s.ok()) return s.ToString();
  own_query_log_ = std::move(log);
  return StrCat("session query log -> ", args[0],
                " (one JSON line per query)");
}

std::string SessionCommandProcessor::CmdSlowlog(
    const std::vector<std::string>& args) {
  if (args.empty()) {
    if (eval_options_.slow_query_us == 0) {
      return "slow-query threshold: host default (:slowlog N to override)";
    }
    return StrCat("slow-query threshold ", eval_options_.slow_query_us,
                  " us");
  }
  if (args[0] == "off") {
    eval_options_.slow_query_us = 0;
    return "slow-query threshold: host default";
  }
  char* end = nullptr;
  long long n = std::strtoll(args[0].c_str(), &end, 10);
  if (end == args[0].c_str() || *end != '\0' || n <= 0) {
    return "usage: :slowlog N  (microseconds; off = host default)";
  }
  eval_options_.slow_query_us = static_cast<uint64_t>(n);
  return StrCat("slow-query threshold ", eval_options_.slow_query_us, " us");
}

std::string SessionCommandProcessor::CmdBudget(
    const std::vector<std::string>& args) {
  if (args.empty()) {
    if (eval_options_.budget_us == 0) return "budget unlimited (:budget N)";
    return StrCat("budget ", eval_options_.budget_us, " us per query");
  }
  if (args[0] == "off") {
    eval_options_.budget_us = 0;
    return "budget unlimited";
  }
  char* end = nullptr;
  long long n = std::strtoll(args[0].c_str(), &end, 10);
  if (end == args[0].c_str() || *end != '\0' || n <= 0) {
    return "usage: :budget N  (microseconds of wall clock; off = unlimited)";
  }
  eval_options_.budget_us = static_cast<uint64_t>(n);
  return StrCat("budget ", eval_options_.budget_us,
                " us per query (checked per fixpoint round)");
}

std::string SessionCommandProcessor::CmdLoad(
    const std::vector<std::string>& args) {
  if (args.size() != 1) return "usage: .load FILE";
  std::ifstream in(args[0]);
  if (!in) return StrCat("cannot open ", args[0]);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return HandleStatements(buffer.str());
}

std::string SessionCommandProcessor::CmdDump(
    const std::vector<std::string>& args) {
  if (args.size() != 1) return "usage: :dump FILE";
  DatabaseSnapshot snap = host_->Snapshot();
  Result<size_t> bytes = SaveBinaryFile(args[0], snap.db());
  if (!bytes.ok()) return bytes.status().ToString();
  return StrCat("dumped ", snap.db().Predicates().size(), " relation(s), ",
                snap.db().TotalTuples(), " tuple(s), ", *bytes, " byte(s) -> ",
                args[0]);
}

std::string SessionCommandProcessor::CmdLoadBinary(
    const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return "usage: :load FILE  (binary snapshot; .load reads text programs)";
  }
  BulkLoadStats stats;
  Result<uint64_t> written = host_->ApplyWrite([&](Database* db) {
    SEMOPT_ASSIGN_OR_RETURN(stats, LoadBinaryFile(args[0], db));
    return Status::Ok();
  });
  if (!written.ok()) return written.status().ToString();
  return StrCat("loaded ", stats.rows, " row(s) into ", stats.relations,
                " relation(s) (", stats.bytes, " byte(s), ", stats.micros,
                " us)");
}

std::string SessionCommandProcessor::CmdSimd(
    const std::vector<std::string>& args) {
  // Renders the session's configured mode plus what it resolves to in
  // this process (build options, the SEMOPT_DISABLE_SIMD environment
  // variable and the CPU all factor in).
  auto describe = [this]() {
    const char* mode = eval_options_.simd == SimdMode::kOn    ? "on"
                       : eval_options_.simd == SimdMode::kOff ? "off"
                                                              : "auto";
    if (!ResolveSimdMode(eval_options_.simd)) {
      return StrCat("simd ", mode, " (scalar kernels)");
    }
    return StrCat("simd ", mode, " (vectorized, ",
                  simd::LevelName(simd::ActiveLevel()), ")");
  };
  if (args.empty()) return describe();
  EvalOptions candidate = eval_options_;
  if (args[0] == "on") {
    candidate.simd = SimdMode::kOn;
  } else if (args[0] == "off") {
    candidate.simd = SimdMode::kOff;
  } else if (args[0] == "auto") {
    candidate.simd = SimdMode::kAuto;
  } else {
    return "usage: :simd [on|off|auto]";
  }
  // Centralized validation; on rejection surface the validator's
  // message and keep the previous setting (same contract as :threads).
  if (Status s = ValidateEvalOptions(candidate); !s.ok()) {
    return s.ToString();
  }
  eval_options_ = candidate;
  return describe();
}

std::string SessionCommandProcessor::CmdPlanner(
    const std::vector<std::string>& args) {
  auto describe = [this]() {
    if (eval_options_.planner == PlannerMode::kCost) {
      return StrCat("planner cost (enumerated join orders; est/actual in "
                    ":plan)");
    }
    return StrCat("planner greedy (one-pass heuristic)");
  };
  if (args.empty()) return describe();
  EvalOptions candidate = eval_options_;
  if (args[0] == "greedy") {
    candidate.planner = PlannerMode::kGreedy;
  } else if (args[0] == "cost") {
    candidate.planner = PlannerMode::kCost;
  } else {
    return "usage: :planner [greedy|cost]";
  }
  // Centralized validation; on rejection surface the validator's
  // message and keep the previous setting (same contract as :simd).
  // The choice is session-private: eval_options_ rides on this
  // processor only, so other sessions keep their own planner (and the
  // shared plan cache keys on the mode, so plans never cross regimes).
  if (Status s = ValidateEvalOptions(candidate); !s.ok()) {
    return s.ToString();
  }
  eval_options_ = candidate;
  return describe();
}

std::string SessionCommandProcessor::CmdLoadTsv(
    const std::vector<std::string>& args) {
  if (args.size() != 2) return "usage: .loadtsv PRED FILE";
  size_t added = 0;
  Result<uint64_t> written = host_->ApplyWrite([&](Database* db) {
    SEMOPT_ASSIGN_OR_RETURN(added, LoadTsvFile(args[1], args[0], db));
    return Status::Ok();
  });
  if (!written.ok()) return written.status().ToString();
  return StrCat("loaded ", added, " tuple(s) into ", args[0]);
}

}  // namespace semopt
