#include "server/scheduler.h"

#include <chrono>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace semopt {

const char* QueryClassName(QueryClass c) {
  return c == QueryClass::kHeavy ? "heavy" : "light";
}

namespace {
std::string MetricName(QueryClass cls, const char* suffix) {
  return StrCat("server.sched.", QueryClassName(cls), ".", suffix);
}
}  // namespace

SessionScheduler::SessionScheduler(Options options) {
  heavy_.limit = options.max_heavy == 0 ? 1 : options.max_heavy;
  light_.limit = options.max_light == 0 ? 1 : options.max_light;
}

SessionScheduler::Ticket& SessionScheduler::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this == &other) return *this;
  Release();
  scheduler_ = other.scheduler_;
  cls_ = other.cls_;
  other.scheduler_ = nullptr;
  return *this;
}

void SessionScheduler::Ticket::Release() {
  if (scheduler_ == nullptr) return;
  scheduler_->ReleaseSlot(cls_);
  scheduler_ = nullptr;
}

SessionScheduler::Ticket SessionScheduler::Admit(QueryClass cls,
                                                 uint64_t* waited_us) {
  obs::TraceSpan span("sched.wait");
  span.AddArg("heavy", cls == QueryClass::kHeavy ? 1 : 0);
  const auto start = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mu_);
    ClassState& state = StateFor(cls);
    ++state.queued;
    PublishGauges(cls);
    cv_.wait(lock, [&] { return state.running < state.limit; });
    --state.queued;
    ++state.running;
    PublishGauges(cls);
  }
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetHistogram(MetricName(cls, "wait_us"))
      .Observe(static_cast<uint64_t>(waited.count()));
  registry.GetCounter(MetricName(cls, "admitted")).Add(1);
  if (waited_us != nullptr) {
    *waited_us = static_cast<uint64_t>(waited.count());
  }
  return Ticket(this, cls);
}

void SessionScheduler::ReleaseSlot(QueryClass cls) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ClassState& state = StateFor(cls);
    --state.running;
    PublishGauges(cls);
  }
  // Both classes share one cv: wake everyone, each waiter re-checks its
  // own class predicate. Admissions are rare enough (per query, not per
  // tuple) that the thundering herd is irrelevant.
  cv_.notify_all();
}

void SessionScheduler::PublishGauges(QueryClass cls) const {
  const ClassState& state = StateFor(cls);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetGauge(MetricName(cls, "queue_depth"))
      .Set(static_cast<int64_t>(state.queued));
  registry.GetGauge(MetricName(cls, "running"))
      .Set(static_cast<int64_t>(state.running));
}

size_t SessionScheduler::running(QueryClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return StateFor(cls).running;
}

size_t SessionScheduler::queued(QueryClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return StateFor(cls).queued;
}

}  // namespace semopt
