#ifndef SEMOPT_SERVER_SESSION_H_
#define SEMOPT_SERVER_SESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <mutex>
#include <optional>

#include "ast/program.h"
#include "eval/fixpoint.h"
#include "eval/plan_cache.h"
#include "obs/query_log.h"
#include "server/materialized_view.h"
#include "server/scheduler.h"
#include "storage/snapshot.h"
#include "util/result.h"

namespace semopt {

/// How a session reaches the database it runs against. Two
/// implementations:
///  - the interactive shell owns its Database outright and hands out
///    Unmanaged snapshots (single-threaded, no isolation needed);
///  - the query server fronts a SnapshotStore shared by every session,
///    so Snapshot() pins a frozen generation and ApplyWrite() publishes
///    the next one.
/// The processor below is written against this interface only, which
/// is what makes one command set serve both.
class DatabaseHost {
 public:
  virtual ~DatabaseHost() = default;

  /// A read view of the database as of now. Under a server host this
  /// pins a generation: concurrent writers publish new generations
  /// without disturbing it.
  virtual DatabaseSnapshot Snapshot() = 0;

  /// Applies `fn` to the database. Under a server host the mutation
  /// runs on a private clone and is published atomically; readers
  /// never observe it half-applied. Returns the resulting epoch (0
  /// for a local host).
  virtual Result<uint64_t> ApplyWrite(
      const std::function<Status(Database*)>& fn) = 0;

  /// The plan cache every evaluation of this session borrows. May be
  /// shared across sessions (SharedPlanCache) or private (PlanCache);
  /// never null.
  virtual PlanCacheInterface* plan_cache() = 0;

  /// Admission control for query execution; null = run immediately
  /// (local shell).
  virtual SessionScheduler* scheduler() { return nullptr; }

  /// The host's structured query log (one JSON line per query); null =
  /// no logging. A session may shadow it with its own `:qlog` file.
  virtual obs::QueryLog* query_log() { return nullptr; }

  /// Applies one mixed update batch — `dels` removed, then `adds`
  /// inserted — through ApplyWrite, so under a server host the batch
  /// publishes as one generation. When a materialized view is
  /// installed, the same write also maintains and republishes the IDB:
  /// a reader pinning the next snapshot sees base and derived facts
  /// move together, with no full recomputation on the incremental
  /// path. Returns the batch's maintenance stats (EDB-only counters
  /// when no view is installed).
  Result<IvmStats> ApplyUpdate(const std::vector<Atom>& adds,
                               const std::vector<Atom>& dels);

  /// Installs a materialized view of `program` over the current
  /// database and publishes its IDB. Replaces any previous view.
  /// Returns the number of IDB tuples materialized.
  Result<size_t> Materialize(const Program& program,
                             const EvalOptions& options,
                             MaterializedView::Mode mode);

  /// Drops the installed view. The already-published IDB relations
  /// stay in the database as plain facts; they simply stop being
  /// maintained. Returns false if no view was installed.
  bool Dematerialize();

  /// Mode of the installed view, or nullopt when none is installed.
  std::optional<MaterializedView::Mode> view_mode();

  /// Running maintenance totals of the installed view (zeroes when no
  /// view is installed).
  IvmStats view_totals();

 private:
  /// The installed view, guarded by `view_mu_` (hosts are shared by
  /// every session; the write path itself serializes in ApplyWrite,
  /// but Materialize/Dematerialize race with it from other sessions).
  std::mutex view_mu_;
  std::unique_ptr<MaterializedView> view_;
};

/// One session's command interpreter: the parse/dispatch/format logic
/// behind both the interactive shell and every server connection.
/// Holds the session-private state — the rule program, evaluation
/// options, last stats — and reaches shared state (database, plan
/// cache, scheduler) only through the DatabaseHost.
///
/// Input forms (one per Execute call):
///   p(X) :- q(X).            add a rule (session-private)
///   a(X), X > 3 -> b(X).     add an integrity constraint
///   edge(a, b).              add a fact (a database write)
///   ?- p(X), X != a.         run a query
///   .command [args]          commands (see `.help`)
class SessionCommandProcessor {
 public:
  explicit SessionCommandProcessor(DatabaseHost* host);

  /// Executes one input line and returns the text to display.
  std::string Execute(std::string_view line);

  /// True once `.quit` has been executed.
  bool done() const { return done_; }

  const Program& program() const { return program_; }
  const EvalOptions& eval_options() const { return eval_options_; }

  /// Sets the session's default evaluation thread count (the server
  /// applies its per-query budget here; `:threads` can change it
  /// later).
  void set_num_threads(size_t n) { eval_options_.num_threads = n; }

  /// Admission class of a parsed query body: light iff no relational
  /// literal resolves to an IDB predicate of `program` (such queries
  /// are pure base-relation lookups; everything else runs a fixpoint).
  static QueryClass Classify(const std::vector<Literal>& body,
                             const Program& program);

  /// This session's process-unique id (stamped into every profile).
  uint64_t session_id() const { return session_id_; }

  /// The profile of the most recent query (valid once a query ran).
  const obs::QueryProfile& last_profile() const { return last_profile_; }
  bool have_last_profile() const { return have_last_profile_; }

 private:
  std::string HandleCommand(std::string_view line);
  std::string HandleQuery(std::string_view body_text);
  std::string HandleStatements(std::string_view text);
  std::string HandleRetraction(std::string_view text);

  /// The full query pipeline — parse, classify, admit, pin, evaluate,
  /// render — accumulating a QueryProfile at every phase boundary and
  /// recording it to the effective query log (even on error paths).
  /// `force_metrics` turns on collect_metrics for this run (`:profile`).
  std::string RunQueryProfiled(std::string_view body_text,
                               bool force_metrics);

  /// The query log this session records to: its private `:qlog` file
  /// when open, else the host's.
  obs::QueryLog* EffectiveQueryLog();

  std::string CmdHelp() const;
  std::string CmdProgram() const;
  std::string CmdDb(const std::vector<std::string>& args);
  std::string CmdOptimize(const std::vector<std::string>& args);
  std::string CmdResidues() const;
  std::string CmdCheck();
  std::string CmdMagic(std::string_view rest);
  std::string CmdExplain(std::string_view rest);
  std::string CmdLoad(const std::vector<std::string>& args);
  std::string CmdLoadTsv(const std::vector<std::string>& args);
  std::string CmdDump(const std::vector<std::string>& args);
  std::string CmdLoadBinary(const std::vector<std::string>& args);
  std::string CmdSimd(const std::vector<std::string>& args);
  std::string CmdPlanner(const std::vector<std::string>& args);
  std::string CmdMaterialize(const std::vector<std::string>& args);

  std::string CmdThreads(const std::vector<std::string>& args);
  std::string CmdBatch(const std::vector<std::string>& args);
  std::string CmdTrace(const std::vector<std::string>& args);
  std::string CmdMetrics(const std::vector<std::string>& args);
  std::string CmdPlan(const std::vector<std::string>& args);
  std::string CmdProfile(std::string_view rest);
  std::string CmdStats();
  std::string CmdQlog(const std::vector<std::string>& args);
  std::string CmdSlowlog(const std::vector<std::string>& args);
  std::string CmdBudget(const std::vector<std::string>& args);

  DatabaseHost* host_;
  Program program_;
  /// Options applied to every query evaluation (`:threads`, `:metrics`
  /// edit it); plan_cache points at host_->plan_cache().
  EvalOptions eval_options_;
  /// Destination of the running `:trace` session ("" = no session).
  std::string trace_path_;
  /// Stats of the most recent evaluation, shown by `:metrics`.
  EvalStats last_stats_;
  bool have_last_stats_ = false;
  bool show_stats_ = false;
  bool done_ = false;

  /// Process-unique session id, stamped into every query's profile.
  uint64_t session_id_ = 0;
  /// Text of the most recent `?-` query (`:profile` with no argument
  /// re-runs it).
  std::string last_query_;
  /// Breakdown of the most recent query.
  obs::QueryProfile last_profile_;
  bool have_last_profile_ = false;
  /// Session-private query log opened with `:qlog FILE` (shadows the
  /// host's); null = log to host_->query_log().
  std::unique_ptr<obs::QueryLog> own_query_log_;
};

}  // namespace semopt

#endif  // SEMOPT_SERVER_SESSION_H_
