#include "server/materialized_view.h"

#include <chrono>
#include <map>
#include <utility>

#include "util/string_util.h"

namespace semopt {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Result<Tuple> GroundTuple(const Atom& fact) {
  Tuple tuple;
  tuple.reserve(fact.args().size());
  for (const Term& t : fact.args()) {
    if (!t.IsConstant()) {
      return Status::InvalidArgument(
          StrCat("fact ", fact.ToString(), " is not ground"));
    }
    tuple.push_back(t);
  }
  return tuple;
}

}  // namespace

Status ApplyEdbBatch(Database* db, const std::vector<Atom>& adds,
                     const std::vector<Atom>& dels) {
  // Deletions first, grouped per predicate into one Erase pass each.
  std::map<PredicateId, TupleBuffer> victims;
  for (const Atom& fact : dels) {
    SEMOPT_ASSIGN_OR_RETURN(Tuple tuple, GroundTuple(fact));
    auto [it, inserted] = victims.try_emplace(
        fact.pred_id(), static_cast<uint32_t>(tuple.size()));
    it->second.Append(tuple);
  }
  for (auto& [pred, buf] : victims) {
    if (Relation* rel = db->FindMutable(pred)) rel->Erase(buf);
  }
  for (const Atom& fact : adds) {
    SEMOPT_RETURN_IF_ERROR(db->AddFact(fact));
  }
  return Status::Ok();
}

Result<std::unique_ptr<MaterializedView>> MaterializedView::Create(
    const Program& program, const Database& base, EvalOptions options,
    Mode mode) {
  auto view = std::unique_ptr<MaterializedView>(
      new MaterializedView(mode, program, options));
  if (mode == Mode::kIncremental) {
    SEMOPT_ASSIGN_OR_RETURN(
        IncrementalEvaluator inc,
        IncrementalEvaluator::Create(program, base.Clone(), options));
    view->inc_ = std::make_unique<IncrementalEvaluator>(std::move(inc));
  } else {
    view->edb_ = base.Clone();
    SEMOPT_ASSIGN_OR_RETURN(view->idb_,
                            Evaluate(program, view->edb_, options));
  }
  return view;
}

Result<IvmStats> MaterializedView::Apply(const std::vector<Atom>& adds,
                                         const std::vector<Atom>& dels,
                                         Database* db) {
  IvmStats batch;
  if (mode_ == Mode::kIncremental) {
    SEMOPT_ASSIGN_OR_RETURN(batch, inc_->ApplyUpdates(adds, dels));
  } else {
    // Recompute baseline: mutate our EDB copy, then pay the full
    // fixpoint. Only the EDB and wall-time counters are meaningful —
    // a recomputation has no notion of per-tuple deltas.
    const uint64_t start_us = NowUs();
    const size_t before = edb_.TotalTuples();
    SEMOPT_RETURN_IF_ERROR(ApplyEdbBatch(&edb_, adds, dels));
    SEMOPT_ASSIGN_OR_RETURN(idb_, Evaluate(program_, edb_, options_));
    batch.batches = 1;
    const size_t after = edb_.TotalTuples();
    batch.edb_inserted = after > before ? after - before : 0;
    batch.edb_deleted = before > after ? before - after : 0;
    batch.maintenance_us = NowUs() - start_us;
    // Deliberately not published to eval.ivm.*: those counters mean
    // "incremental maintenance ran"; a recompute leg reports only
    // through its own wall time.
    totals_.Add(batch);
  }
  SEMOPT_RETURN_IF_ERROR(ApplyEdbBatch(db, adds, dels));
  PublishInto(db);
  if (mode_ == Mode::kIncremental) totals_ = inc_->totals();
  return batch;
}

void MaterializedView::PublishInto(Database* db) const {
  db->MergeSharedFrom(mode_ == Mode::kIncremental ? inc_->idb() : idb_);
}

size_t MaterializedView::idb_tuples() const {
  return mode_ == Mode::kIncremental ? inc_->idb().TotalTuples()
                                     : idb_.TotalTuples();
}

}  // namespace semopt
