#include "server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "server/protocol.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// Sends all of `data`, looping over short writes. MSG_NOSIGNAL: a
/// client that hung up mid-response produces EPIPE, not SIGPIPE.
bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

}  // namespace

QueryServer::QueryServer(Database initial)
    : QueryServer(std::move(initial), Options()) {}

QueryServer::QueryServer(Database initial, Options options)
    : options_(options),
      store_(std::move(initial)),
      plan_cache_(options.cache_shards, options.cache_entries_per_shard),
      scheduler_(options.sched),
      host_(this) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");

  if (!options_.query_log_path.empty()) {
    SEMOPT_RETURN_IF_ERROR(query_log_.OpenLog(options_.query_log_path));
  }
  if (!options_.slow_log_path.empty()) {
    SEMOPT_RETURN_IF_ERROR(query_log_.OpenSlowLog(options_.slow_log_path));
  }
  query_log_.set_slow_threshold_us(options_.slow_query_us);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Internal(StrCat("bind: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    Status st = Status::Internal(StrCat("listen: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status st = Status::Internal(StrCat("getsockname: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void QueryServer::Stop() {
  if (!running_.exchange(false)) return;
  // Unblock accept(); the loop sees running_ == false and exits.
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Kick live sessions out of recv(); their threads then finish.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // No new threads can appear now (accept loop is gone), so joining a
  // snapshot of the vector drains everything.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    threads.swap(session_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  // All sessions have drained; buffered query-log records hit disk
  // before Stop returns (the log stays open for inspection).
  query_log_.Flush();
}

void QueryServer::AcceptLoop() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  while (running_.load()) {
    // accept() on the retired -1 fails with EBADF, which breaks the
    // loop — exactly the Stop() path.
    int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed (Stop) or fatal
    }
    sessions_served_.fetch_add(1, std::memory_order_relaxed);
    registry.GetCounter("server.sessions.total").Add(1);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (!running_.load()) {  // raced with Stop: refuse the session
      ::close(fd);
      break;
    }
    session_fds_.push_back(fd);
    session_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void QueryServer::ServeConnection(int fd) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("server.sessions.opened").Add(1);

  SessionCommandProcessor processor(&host_);
  processor.set_num_threads(options_.threads_per_query);

  LineBuffer lines;
  char buf[4096];
  bool open = true;
  while (open) {
    // Drain every complete request already buffered before reading
    // more bytes (a client may pipeline requests).
    while (open) {
      std::optional<std::string> line = lines.PopLine();
      if (!line.has_value()) break;
      registry.GetCounter("server.requests").Add(1);
      std::string response = processor.Execute(*line);
      if (!SendAll(fd, EncodeResponse(response))) {
        open = false;
        break;
      }
      if (processor.done()) open = false;
    }
    if (!open) break;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // disconnect (or Stop's shutdown)
    lines.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session_fds_.erase(
        std::remove(session_fds_.begin(), session_fds_.end(), fd),
        session_fds_.end());
  }
  registry.GetCounter("server.sessions.closed").Add(1);
}

}  // namespace semopt
