#ifndef SEMOPT_SERVER_SERVER_H_
#define SEMOPT_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "eval/shared_plan_cache.h"
#include "obs/query_log.h"
#include "server/scheduler.h"
#include "server/session.h"
#include "storage/snapshot.h"
#include "util/result.h"

namespace semopt {

/// A multi-session query server over one shared materialized Database.
///
/// Listens on a loopback TCP socket speaking the newline-delimited
/// protocol of server/protocol.h; every accepted connection becomes a
/// session — its own thread, its own SessionCommandProcessor (private
/// rule program, private eval options) — while three things are shared
/// by all sessions:
///   - the database, behind a SnapshotStore: every read pins a frozen
///     generation, every write publishes the next one atomically;
///   - a SharedPlanCache, so a plan prepared by one session is a hit
///     for every other session at the same cardinality regime;
///   - a SessionScheduler bounding concurrent heavy (recursive) and
///     light (lookup) queries, which caps worst-case thread usage at
///     max_heavy * threads_per_query + max_light regardless of the
///     number of connected sessions.
///
/// Lifecycle: construct with the initial database, Start() (binds,
/// reports the port, spawns the accept loop), Stop() (stops accepting,
/// shuts down live connections, joins every session thread). The
/// destructor calls Stop().
class QueryServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 = ephemeral (read port()).
    uint16_t port = 0;
    /// Worker threads each query evaluation may use (the per-session
    /// default for EvalOptions::num_threads; sessions can lower/raise
    /// theirs with :threads, still subject to admission control).
    size_t threads_per_query = 1;
    SessionScheduler::Options sched;
    /// Shared plan cache shape (see SharedPlanCache).
    size_t cache_shards = SharedPlanCache::kDefaultShards;
    size_t cache_entries_per_shard = PlanCache::kDefaultMaxEntries;
    /// Structured query log: one JSON line per query across every
    /// session. "" = off.
    std::string query_log_path;
    /// Slow-query mirror: full profiles of queries whose end-to-end
    /// time reaches slow_query_us. "" = off.
    std::string slow_log_path;
    /// Default slow-query threshold in microseconds (sessions may
    /// override per session with :slowlog). 0 = nothing is slow.
    uint64_t slow_query_us = 0;
  };

  explicit QueryServer(Database initial);
  QueryServer(Database initial, Options options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and spawns the accept loop. Idempotent failure:
  /// on error nothing is running and Start may be retried.
  Status Start();

  /// Stops accepting, disconnects every live session, joins all
  /// threads. Safe to call twice (second call is a no-op).
  void Stop();

  /// The bound port (valid after Start; equals Options::port unless
  /// that was 0).
  uint16_t port() const { return port_; }

  /// Shared-state handles (also used by in-process tests, which talk
  /// to the same objects the socket sessions do).
  SnapshotStore& store() { return store_; }
  SharedPlanCache& plan_cache() { return plan_cache_; }
  SessionScheduler& scheduler() { return scheduler_; }

  /// Total sessions accepted so far.
  uint64_t sessions_served() const {
    return sessions_served_.load(std::memory_order_relaxed);
  }

  /// The server-wide query log (open only when Options named a path;
  /// recording to a closed log is a no-op).
  obs::QueryLog& query_log() { return query_log_; }

 private:
  /// The DatabaseHost all sessions share: routes reads to
  /// SnapshotStore::Pin, writes to SnapshotStore::Mutate.
  class Host : public DatabaseHost {
   public:
    explicit Host(QueryServer* server) : server_(server) {}
    DatabaseSnapshot Snapshot() override { return server_->store_.Pin(); }
    Result<uint64_t> ApplyWrite(
        const std::function<Status(Database*)>& fn) override {
      return server_->store_.Mutate(fn);
    }
    PlanCacheInterface* plan_cache() override {
      return &server_->plan_cache_;
    }
    SessionScheduler* scheduler() override { return &server_->scheduler_; }
    obs::QueryLog* query_log() override { return &server_->query_log_; }

   private:
    QueryServer* server_;
  };

  void AcceptLoop();
  void ServeConnection(int fd);

  Options options_;
  SnapshotStore store_;
  SharedPlanCache plan_cache_;
  SessionScheduler scheduler_;
  obs::QueryLog query_log_;
  Host host_;

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> sessions_served_{0};
  // Atomic: Stop() retires the fd while AcceptLoop is blocked in
  // accept() on it.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex sessions_mu_;  // guards session_threads_, session_fds_
  std::vector<std::thread> session_threads_;
  std::vector<int> session_fds_;
};

}  // namespace semopt

#endif  // SEMOPT_SERVER_SERVER_H_
