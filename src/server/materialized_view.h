#ifndef SEMOPT_SERVER_MATERIALIZED_VIEW_H_
#define SEMOPT_SERVER_MATERIALIZED_VIEW_H_

#include <memory>
#include <vector>

#include "ast/program.h"
#include "eval/fixpoint.h"
#include "eval/incremental.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// Applies one mixed update batch to `db` directly: `dels` erased first
/// (absent tuples are no-ops), then `adds` inserted (set semantics).
/// The un-materialized write path — and the EDB half of the
/// materialized one.
Status ApplyEdbBatch(Database* db, const std::vector<Atom>& adds,
                     const std::vector<Atom>& dels);

/// A maintained materialization of a program's IDB, kept inside the
/// host's write path: every update batch refreshes the IDB *in the same
/// write generation* that carries the EDB change, so a reader pinning
/// the next snapshot sees base facts and derived facts move together.
///
/// Two maintenance modes, selected at creation:
///  - kIncremental routes batches through IncrementalEvaluator
///    (counting for non-recursive strata, DRed for recursive ones) —
///    O(|Δ|-affected) work per batch;
///  - kRecompute re-runs the full fixpoint per batch — the baseline the
///    E14 bench compares against, and a fallback for programs the
///    incremental path rejects.
class MaterializedView {
 public:
  enum class Mode { kIncremental, kRecompute };

  /// Materializes `program` over a copy of `base` (every relation of
  /// `base` is treated as EDB). `options` governs the initial fixpoint
  /// and, in incremental mode, the maintenance joins — point
  /// options.plan_cache at the host's shared cache so steady-state
  /// batches skip planning.
  static Result<std::unique_ptr<MaterializedView>> Create(
      const Program& program, const Database& base, EvalOptions options,
      Mode mode);

  /// Applies one update batch: maintains the IDB, applies the EDB
  /// changes to `db`, and re-shares the refreshed IDB relations into
  /// `db` (pointer copies — MergeSharedFrom). Call inside the host's
  /// write path so the whole effect publishes as one generation.
  Result<IvmStats> Apply(const std::vector<Atom>& adds,
                         const std::vector<Atom>& dels, Database* db);

  /// Shares the current IDB relations into `db` (used right after
  /// Create to publish the initial materialization).
  void PublishInto(Database* db) const;

  Mode mode() const { return mode_; }
  const Program& program() const { return program_; }
  /// Total IDB tuples currently materialized.
  size_t idb_tuples() const;
  /// Running maintenance totals across every Apply on this view.
  const IvmStats& totals() const { return totals_; }

 private:
  MaterializedView(Mode mode, Program program, EvalOptions options)
      : mode_(mode), program_(std::move(program)),
        options_(std::move(options)) {}

  Mode mode_;
  Program program_;
  EvalOptions options_;
  /// Incremental mode: the maintained evaluator (owns its EDB + IDB).
  std::unique_ptr<IncrementalEvaluator> inc_;
  /// Recompute mode: our own EDB copy and the latest full fixpoint.
  Database edb_;
  Database idb_;
  IvmStats totals_;
};

}  // namespace semopt

#endif  // SEMOPT_SERVER_MATERIALIZED_VIEW_H_
