#ifndef SEMOPT_MAGIC_MAGIC_SETS_H_
#define SEMOPT_MAGIC_MAGIC_SETS_H_

#include "ast/program.h"
#include "eval/eval_stats.h"
#include "eval/fixpoint.h"
#include "magic/adornment.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// The result of the magic-sets transformation for one query.
struct MagicRewrite {
  /// The rewritten program: magic rules, seed fact, and guarded adorned
  /// rules.
  Program program;
  /// Predicate holding the query answers after evaluation (the adorned
  /// query predicate).
  PredicateId answer_pred{0, 0};
  /// The adornment of the query.
  Adornment query_adornment;
};

/// Options for the rewriting.
struct MagicOptions {
  /// Slice magic-rule bodies down to the guard→bound-argument variable
  /// connection path (default; a sound over-approximation of the magic
  /// sets). Disable for ablation bench A2.
  bool slice_magic_bodies = true;
};

/// Applies the magic-sets rewriting (generalized supplementary-free
/// variant with full left-to-right sideways information passing) to
/// `program` for the query atom `query`. Constant arguments of `query`
/// are bound; variables are free. Only IDB predicates are adorned; EDB
/// literals pass bindings but are kept as-is.
///
/// The rewritten program computes, for the adorned query predicate,
/// exactly the tuples relevant to the query — evaluate it with the
/// standard engine and read `answer_pred`, or use `AnswerWithMagic`.
Result<MagicRewrite> MagicSets(const Program& program, const Atom& query,
                               const MagicOptions& options = MagicOptions());

/// Convenience: rewrites, evaluates over `edb`, and returns the answer
/// tuples matching `query`'s constants. `eval_options` selects the
/// evaluation engine (threads, tracing, metrics) for the rewritten
/// program.
Result<std::vector<Tuple>> AnswerWithMagic(
    const Program& program, const Database& edb, const Atom& query,
    EvalStats* stats = nullptr, const MagicOptions& options = MagicOptions(),
    const EvalOptions& eval_options = EvalOptions());

}  // namespace semopt

#endif  // SEMOPT_MAGIC_MAGIC_SETS_H_
