#include "magic/magic_sets.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "ast/rename.h"
#include "eval/fixpoint.h"
#include "eval/rule_executor.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// Arguments of `atom` at the bound positions of `adornment`.
std::vector<Term> BoundArgs(const Atom& atom, const Adornment& adornment) {
  std::vector<Term> args;
  for (uint32_t i : adornment.BoundPositions()) args.push_back(atom.arg(i));
  return args;
}

/// Adds `atom`'s variables to `bound_vars` (order-preserving set).
void BindVars(const std::vector<Term>& terms,
              std::vector<SymbolId>* bound_vars) {
  for (const Term& t : terms) {
    if (t.IsVariable() &&
        std::find(bound_vars->begin(), bound_vars->end(), t.symbol()) ==
            bound_vars->end()) {
      bound_vars->push_back(t.symbol());
    }
  }
}

bool IsBoundTerm(const Term& t, const std::vector<SymbolId>& bound_vars) {
  return t.IsConstant() ||
         std::find(bound_vars.begin(), bound_vars.end(), t.symbol()) !=
             bound_vars.end();
}

/// Slims a magic rule's body down to the literals on the shortest
/// variable-connection paths from the guard's variables (the magic
/// predicate, body[0]) to `required` (the variables of the body
/// literal's bound arguments). Off-path literals only *filter* the
/// magic set; dropping them over-approximates it, which is sound (the
/// guarded adorned rules re-check everything) and avoids dragging
/// expensive fan-out joins into every magic rule. Falls back to the
/// full body when some required variable is unreachable.
std::vector<Literal> SliceMagicBody(const std::vector<Literal>& body,
                                    const std::vector<SymbolId>& required) {
  if (body.empty()) return body;
  // BFS over the bipartite variable/literal graph, seeded by the guard.
  std::map<SymbolId, int> var_via;       // var -> literal that reached it
  std::vector<int> literal_via(body.size(), -2);  // -2 unvisited
  std::deque<SymbolId> frontier;
  for (SymbolId v : CollectVariables(body[0])) {
    var_via[v] = -1;  // reached by the guard itself
    frontier.push_back(v);
  }
  while (!frontier.empty()) {
    SymbolId v = frontier.front();
    frontier.pop_front();
    for (size_t i = 1; i < body.size(); ++i) {
      bool contains = false;
      for (SymbolId u : CollectVariables(body[i])) {
        if (u == v) contains = true;
      }
      if (!contains || literal_via[i] != -2) continue;
      literal_via[i] = static_cast<int>(v);
      for (SymbolId u : CollectVariables(body[i])) {
        if (var_via.emplace(u, static_cast<int>(i)).second) {
          frontier.push_back(u);
        }
      }
    }
  }
  // Backtrack from every required variable, collecting path literals.
  std::set<size_t> keep;
  for (SymbolId v : required) {
    auto it = var_via.find(v);
    if (it == var_via.end()) return body;  // unreachable: keep everything
    int via = it->second;
    while (via >= 0) {
      size_t lit = static_cast<size_t>(via);
      if (!keep.insert(lit).second) break;  // already traced
      SymbolId reached_through = static_cast<SymbolId>(literal_via[lit]);
      via = var_via.at(reached_through);
    }
  }
  std::vector<Literal> sliced{body[0]};
  for (size_t i = 1; i < body.size(); ++i) {
    if (keep.count(i) > 0) sliced.push_back(body[i]);
  }
  return sliced;
}

}  // namespace

Result<MagicRewrite> MagicSets(const Program& program, const Atom& query,
                               const MagicOptions& options) {
  obs::TraceSpan span("magic.rewrite");
  std::set<PredicateId> idb = program.IdbPredicates();
  PredicateId query_pred = query.pred_id();
  if (idb.count(query_pred) == 0) {
    return Status::InvalidArgument(
        StrCat("query predicate ", query_pred.ToString(),
               " is not an IDB predicate"));
  }

  Adornment query_adornment = Adornment::ForAtom(query, {});

  MagicRewrite out;
  out.query_adornment = query_adornment;
  out.answer_pred = PredicateId{AdornedName(query_pred.name, query_adornment),
                                query_pred.arity};

  // Seed fact: magic$q$a(constants of the query).
  {
    std::vector<Term> seed_args = BoundArgs(query, query_adornment);
    out.program.AddRule(Rule(
        "magic_seed",
        Atom(MagicName(query_pred.name, query_adornment),
             std::move(seed_args)),
        {}));
  }

  std::deque<std::pair<PredicateId, Adornment>> worklist;
  std::set<std::pair<PredicateId, Adornment>> seen;
  worklist.push_back({query_pred, query_adornment});
  seen.insert({query_pred, query_adornment});

  int magic_rule_counter = 0;
  while (!worklist.empty()) {
    auto [pred, adornment] = worklist.front();
    worklist.pop_front();

    for (size_t rule_index : program.RulesFor(pred)) {
      const Rule& rule = program.rules()[rule_index];

      // The guarded adorned rule starts with the magic guard.
      std::vector<Term> guard_args = BoundArgs(rule.head(), adornment);
      std::vector<Literal> new_body;
      new_body.push_back(Literal::Relational(
          Atom(MagicName(pred.name, adornment), guard_args)));

      // Bound variables: head variables at bound positions.
      std::vector<SymbolId> bound_vars;
      BindVars(guard_args, &bound_vars);

      for (const Literal& lit : rule.body()) {
        if (lit.IsComparison()) {
          // `=` propagates bindings; other comparisons only filter.
          if (!lit.negated() && lit.op() == ComparisonOp::kEq &&
              (IsBoundTerm(lit.lhs(), bound_vars) ||
               IsBoundTerm(lit.rhs(), bound_vars))) {
            BindVars({lit.lhs(), lit.rhs()}, &bound_vars);
          }
          new_body.push_back(lit);
          continue;
        }
        const Atom& atom = lit.atom();
        if (idb.count(atom.pred_id()) == 0 || lit.negated()) {
          // EDB literal (or stratified negation): keep raw; positive
          // occurrences bind their variables.
          new_body.push_back(lit);
          if (!lit.negated()) BindVars(atom.args(), &bound_vars);
          continue;
        }
        // IDB body literal: derive its adornment from current bindings,
        // emit the magic rule, enqueue, and adorn in place.
        Adornment body_adornment = Adornment::ForAtom(atom, bound_vars);
        {
          std::vector<Term> magic_args = BoundArgs(atom, body_adornment);
          std::vector<SymbolId> required;
          for (const Term& t : magic_args) {
            if (t.IsVariable()) required.push_back(t.symbol());
          }
          Rule magic_rule(
              StrCat("magic", magic_rule_counter++),
              Atom(MagicName(atom.predicate(), body_adornment),
                   std::move(magic_args)),
              options.slice_magic_bodies ? SliceMagicBody(new_body, required)
                                         : new_body);
          // The slice may theoretically lose a binding chain a
          // comparison depended on; fall back to the full prefix if the
          // sliced rule is unsafe.
          if (!RuleExecutor::Create(magic_rule).ok()) {
            magic_rule.mutable_body() = new_body;
          }
          out.program.AddRule(std::move(magic_rule));
        }
        if (seen.insert({atom.pred_id(), body_adornment}).second) {
          worklist.push_back({atom.pred_id(), body_adornment});
        }
        new_body.push_back(Literal::Relational(
            Atom(AdornedName(atom.predicate(), body_adornment),
                 atom.args())));
        BindVars(atom.args(), &bound_vars);
      }

      Rule adorned_rule(
          StrCat(rule.label().empty() ? "r" : rule.label(), "$",
                 adornment.ToString()),
          Atom(AdornedName(pred.name, adornment), rule.head().args()),
          std::move(new_body));
      out.program.AddRule(std::move(adorned_rule));
    }
  }
  return out;
}

Result<std::vector<Tuple>> AnswerWithMagic(const Program& program,
                                           const Database& edb,
                                           const Atom& query,
                                           EvalStats* stats,
                                           const MagicOptions& options,
                                           const EvalOptions& eval_options) {
  obs::TraceSpan span("magic.answer");
  SEMOPT_ASSIGN_OR_RETURN(MagicRewrite rewrite,
                          MagicSets(program, query, options));
  SEMOPT_ASSIGN_OR_RETURN(
      Database idb, Evaluate(rewrite.program, edb, eval_options, stats));
  std::vector<Tuple> answers;
  const Relation* rel = idb.Find(rewrite.answer_pred);
  if (rel == nullptr) return answers;
  for (RowRef row : rel->rows()) {
    bool match = true;
    for (size_t i = 0; i < query.args().size() && match; ++i) {
      if (query.arg(i).IsConstant()) match = row[i] == query.arg(i);
    }
    // Repeated query variables must also agree.
    if (match) {
      std::map<SymbolId, Value> binding;
      for (size_t i = 0; i < query.args().size() && match; ++i) {
        if (!query.arg(i).IsVariable()) continue;
        auto [it, inserted] = binding.emplace(query.arg(i).symbol(), row[i]);
        if (!inserted) match = it->second == row[i];
      }
    }
    if (match) answers.emplace_back(row.begin(), row.end());
  }
  return answers;
}

}  // namespace semopt
