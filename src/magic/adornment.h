#ifndef SEMOPT_MAGIC_ADORNMENT_H_
#define SEMOPT_MAGIC_ADORNMENT_H_

#include <string>
#include <vector>

#include "ast/atom.h"

namespace semopt {

/// An adornment: one flag per argument position, 'b' (bound) or 'f'
/// (free), e.g. "bf" for p(X, Y) with X bound.
class Adornment {
 public:
  Adornment() = default;
  explicit Adornment(std::vector<bool> bound) : bound_(std::move(bound)) {}

  /// Derives the adornment of `atom` given the currently bound
  /// variables: an argument is bound if it is a constant or a variable
  /// in `bound_vars`.
  static Adornment ForAtom(const Atom& atom,
                           const std::vector<SymbolId>& bound_vars);

  size_t arity() const { return bound_.size(); }
  bool IsBound(size_t i) const { return bound_[i]; }
  bool AllFree() const;
  bool AnyBound() const;

  /// Indices of bound positions, ascending.
  std::vector<uint32_t> BoundPositions() const;

  /// "bf"-style string.
  std::string ToString() const;

  bool operator==(const Adornment& o) const { return bound_ == o.bound_; }
  bool operator<(const Adornment& o) const { return bound_ < o.bound_; }

 private:
  std::vector<bool> bound_;
};

/// Name of the adorned version of `pred` under `adornment`
/// (e.g. "p$bf"). '$' keeps generated names out of the source namespace.
SymbolId AdornedName(SymbolId pred, const Adornment& adornment);

/// Name of the magic predicate for `pred` under `adornment`
/// (e.g. "magic$p$bf").
SymbolId MagicName(SymbolId pred, const Adornment& adornment);

}  // namespace semopt

#endif  // SEMOPT_MAGIC_ADORNMENT_H_
