#include "magic/adornment.h"

#include <algorithm>

#include "util/string_util.h"

namespace semopt {

Adornment Adornment::ForAtom(const Atom& atom,
                             const std::vector<SymbolId>& bound_vars) {
  std::vector<bool> bound;
  bound.reserve(atom.args().size());
  for (const Term& t : atom.args()) {
    if (t.IsConstant()) {
      bound.push_back(true);
    } else {
      bound.push_back(std::find(bound_vars.begin(), bound_vars.end(),
                                t.symbol()) != bound_vars.end());
    }
  }
  return Adornment(std::move(bound));
}

bool Adornment::AllFree() const {
  for (bool b : bound_) {
    if (b) return false;
  }
  return true;
}

bool Adornment::AnyBound() const { return !AllFree(); }

std::vector<uint32_t> Adornment::BoundPositions() const {
  std::vector<uint32_t> positions;
  for (uint32_t i = 0; i < bound_.size(); ++i) {
    if (bound_[i]) positions.push_back(i);
  }
  return positions;
}

std::string Adornment::ToString() const {
  std::string s;
  s.reserve(bound_.size());
  for (bool b : bound_) s.push_back(b ? 'b' : 'f');
  return s;
}

SymbolId AdornedName(SymbolId pred, const Adornment& adornment) {
  return InternSymbol(
      StrCat(SymbolName(pred), "$", adornment.ToString()));
}

SymbolId MagicName(SymbolId pred, const Adornment& adornment) {
  return InternSymbol(
      StrCat("magic$", SymbolName(pred), "$", adornment.ToString()));
}

}  // namespace semopt
