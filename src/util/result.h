#ifndef SEMOPT_UTIL_RESULT_H_
#define SEMOPT_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace semopt {

/// Holds either a value of type `T` or an error `Status`, in the spirit of
/// `absl::StatusOr` / C++23 `std::expected` (neither of which is available
/// here). The error status of a `Result` is never OK.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` must be
  /// false; constructing a Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is held.
  const Status& status() const { return status_; }

  /// Accessors require `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

}  // namespace semopt

/// Propagates the error of a Result-yielding expression, otherwise binds
/// its value to `lhs`. Usage: SEMOPT_ASSIGN_OR_RETURN(auto x, Foo());
#define SEMOPT_ASSIGN_OR_RETURN(lhs, expr)                     \
  SEMOPT_ASSIGN_OR_RETURN_IMPL_(                               \
      SEMOPT_RESULT_CONCAT_(_semopt_result, __LINE__), lhs, expr)

#define SEMOPT_RESULT_CONCAT_INNER_(a, b) a##b
#define SEMOPT_RESULT_CONCAT_(a, b) SEMOPT_RESULT_CONCAT_INNER_(a, b)

#define SEMOPT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // SEMOPT_UTIL_RESULT_H_
