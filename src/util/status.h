#ifndef SEMOPT_UTIL_STATUS_H_
#define SEMOPT_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace semopt {

/// Error categories used across the library. Kept deliberately small: the
/// engine distinguishes caller errors (bad input programs) from internal
/// invariant violations and from unsupported-feature rejections.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed program, IC, or query supplied by caller
  kNotFound,          // missing predicate/relation/rule
  kFailedPrecondition,// program does not satisfy a required assumption
  kUnimplemented,     // feature outside the supported fragment
  kInternal,          // invariant violation; indicates a library bug
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, used instead of exceptions
/// (which the style guide forbids). A `Status` is cheap to copy on the
/// success path (no allocation) and carries a message on the error path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace semopt

/// Propagates a non-OK Status from an expression that yields a Status.
#define SEMOPT_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::semopt::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // SEMOPT_UTIL_STATUS_H_
