#ifndef SEMOPT_UTIL_HASH_UTIL_H_
#define SEMOPT_UTIL_HASH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace semopt {

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe).
template <typename T>
void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>()(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) +
           (*seed >> 2);
}

/// Hashes a range of hashable elements.
template <typename It>
size_t HashRange(It begin, It end) {
  size_t seed = 0;
  for (It it = begin; it != end; ++it) HashCombine(&seed, *it);
  return seed;
}

/// SplitMix64 finalizer: a full-avalanche bit mixer. Open-addressing
/// tables mask the hash with a power of two, so every table that does
/// must mix first — std::hash of an integer is the identity on
/// gcc/clang, and HashCombine of near-sequential payloads leaves the
/// low bits near-sequential, which makes linear probing cluster
/// catastrophically (prime-modulo chaining tables mask the weakness;
/// masked tables do not).
inline uint64_t MixBits(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// A deterministic 64-bit linear-congruential PRNG used by workload
/// generators and property tests so runs are reproducible across
/// platforms (std::mt19937 would also do, but this keeps seeds tiny and
/// the sequence spec'd by this library).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace semopt

#endif  // SEMOPT_UTIL_HASH_UTIL_H_
