#ifndef SEMOPT_UTIL_INTERNER_H_
#define SEMOPT_UTIL_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace semopt {

/// A stable integer id for an interned string. Ids are dense, starting at
/// 0, and valid for the lifetime of the owning `Interner`.
using SymbolId = uint32_t;

/// Maps strings to dense integer ids and back. Used for predicate names
/// and string constants so the engine compares symbols as integers.
///
/// Thread-safe: `Intern` and `Lookup` take an internal mutex, so
/// concurrent sessions (the query server) may parse — and thereby
/// intern new symbols — at the same time. Strings live in a deque, so
/// the reference `Lookup` returns stays valid for the interner's
/// lifetime even while other threads intern. The freeze machinery
/// remains as a debug check that the *parallel evaluator's worker
/// threads* never intern: everything they touch is pre-interned at
/// parse/plan time, and a worker-thread intern would mean a plan leaked
/// un-interned state.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id for `s`, interning it on first use. Interning a new
  /// symbol while the interner is frozen is a caller bug (asserts in
  /// debug builds); returning an existing id is always allowed.
  SymbolId Intern(std::string_view s);

  /// Returns the string for `id`. `id` must have been returned by
  /// `Intern` on this instance. The reference is stable for the
  /// interner's lifetime.
  const std::string& Lookup(SymbolId id) const;

  /// Number of distinct interned strings.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return strings_.size();
  }

  /// Freeze/unfreeze nesting: while frozen, `Intern` of a not-yet-known
  /// symbol debug-asserts instead of mutating the table. Used to keep
  /// concurrent evaluation honest (see InternerFreezeGuard).
  void Freeze() { freeze_depth_.fetch_add(1, std::memory_order_relaxed); }
  void Unfreeze() { freeze_depth_.fetch_sub(1, std::memory_order_relaxed); }
  bool frozen() const {
    return freeze_depth_.load(std::memory_order_relaxed) > 0;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string_view, SymbolId> ids_;
  /// Deque: element references never move, so Lookup's returned
  /// reference (and the string_view keys of `ids_`) survive growth.
  std::deque<std::string> strings_;
  std::atomic<int> freeze_depth_{0};
};

/// RAII region during which the global interner must stay read-only
/// (e.g. while fixpoint worker threads are running). New-symbol interns
/// inside the region assert in debug builds.
class InternerFreezeGuard {
 public:
  InternerFreezeGuard();
  ~InternerFreezeGuard();
  InternerFreezeGuard(const InternerFreezeGuard&) = delete;
  InternerFreezeGuard& operator=(const InternerFreezeGuard&) = delete;
};

/// Process-wide interner used by the AST layer. A single global table
/// keeps symbol ids comparable across programs, databases, and tests.
Interner& GlobalInterner();

/// Convenience wrappers over `GlobalInterner()`.
SymbolId InternSymbol(std::string_view s);
const std::string& SymbolName(SymbolId id);

}  // namespace semopt

#endif  // SEMOPT_UTIL_INTERNER_H_
