#ifndef SEMOPT_UTIL_INTERNER_H_
#define SEMOPT_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace semopt {

/// A stable integer id for an interned string. Ids are dense, starting at
/// 0, and valid for the lifetime of the owning `Interner`.
using SymbolId = uint32_t;

/// Maps strings to dense integer ids and back. Used for predicate names
/// and string constants so the engine compares symbols as integers.
///
/// Not thread-safe; the library is single-threaded by design.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id for `s`, interning it on first use.
  SymbolId Intern(std::string_view s);

  /// Returns the string for `id`. `id` must have been returned by
  /// `Intern` on this instance.
  const std::string& Lookup(SymbolId id) const;

  /// Number of distinct interned strings.
  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> strings_;
};

/// Process-wide interner used by the AST layer. A single global table
/// keeps symbol ids comparable across programs, databases, and tests.
Interner& GlobalInterner();

/// Convenience wrappers over `GlobalInterner()`.
SymbolId InternSymbol(std::string_view s);
const std::string& SymbolName(SymbolId id);

}  // namespace semopt

#endif  // SEMOPT_UTIL_INTERNER_H_
