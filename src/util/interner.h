#ifndef SEMOPT_UTIL_INTERNER_H_
#define SEMOPT_UTIL_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace semopt {

/// A stable integer id for an interned string. Ids are dense, starting at
/// 0, and valid for the lifetime of the owning `Interner`.
using SymbolId = uint32_t;

/// Maps strings to dense integer ids and back. Used for predicate names
/// and string constants so the engine compares symbols as integers.
///
/// Mutation (interning a *new* symbol) is single-threaded; concurrent
/// `Lookup` and re-`Intern` of existing symbols are safe as long as no
/// thread mutates. The parallel evaluator relies on this: everything it
/// touches is pre-interned at parse/plan time, and it freezes the
/// interner (debug-checked) while worker threads run.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id for `s`, interning it on first use. Interning a new
  /// symbol while the interner is frozen is a caller bug (asserts in
  /// debug builds); returning an existing id is always allowed.
  SymbolId Intern(std::string_view s);

  /// Returns the string for `id`. `id` must have been returned by
  /// `Intern` on this instance.
  const std::string& Lookup(SymbolId id) const;

  /// Number of distinct interned strings.
  size_t size() const { return strings_.size(); }

  /// Freeze/unfreeze nesting: while frozen, `Intern` of a not-yet-known
  /// symbol debug-asserts instead of mutating the table. Used to keep
  /// concurrent evaluation honest (see InternerFreezeGuard).
  void Freeze() { freeze_depth_.fetch_add(1, std::memory_order_relaxed); }
  void Unfreeze() { freeze_depth_.fetch_sub(1, std::memory_order_relaxed); }
  bool frozen() const {
    return freeze_depth_.load(std::memory_order_relaxed) > 0;
  }

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> strings_;
  std::atomic<int> freeze_depth_{0};
};

/// RAII region during which the global interner must stay read-only
/// (e.g. while fixpoint worker threads are running). New-symbol interns
/// inside the region assert in debug builds.
class InternerFreezeGuard {
 public:
  InternerFreezeGuard();
  ~InternerFreezeGuard();
  InternerFreezeGuard(const InternerFreezeGuard&) = delete;
  InternerFreezeGuard& operator=(const InternerFreezeGuard&) = delete;
};

/// Process-wide interner used by the AST layer. A single global table
/// keeps symbol ids comparable across programs, databases, and tests.
Interner& GlobalInterner();

/// Convenience wrappers over `GlobalInterner()`.
SymbolId InternSymbol(std::string_view s);
const std::string& SymbolName(SymbolId id);

}  // namespace semopt

#endif  // SEMOPT_UTIL_INTERNER_H_
