#ifndef SEMOPT_UTIL_SIMD_H_
#define SEMOPT_UTIL_SIMD_H_

namespace semopt {
namespace simd {

/// SIMD capability level the batched kernels dispatch on, resolved once
/// per process (see ActiveLevel). Levels are cumulative: kAVX2 implies
/// the SSE2 kernels are also usable.
enum class Level {
  kScalar,  // explicit SIMD disabled (build/env) or not supported
  kSSE2,    // baseline x86-64 vectors
  kAVX2,    // 256-bit integer vectors
};

/// True when the explicit SIMD kernel paths were compiled in (the
/// SEMOPT_DISABLE_SIMD CMake option compiles them out).
constexpr bool kCompiledIn =
#ifdef SEMOPT_DISABLE_SIMD
    false;
#else
    true;
#endif

/// True when the SEMOPT_DISABLE_SIMD environment variable is set to a
/// truthy value ("", "0", "off", "false" do not count). Read once and
/// cached: flipping the variable mid-process has no effect.
bool EnvDisabled();

/// The dispatch level every explicit-SIMD kernel uses, resolved once:
/// kScalar when compiled out, disabled via the environment, or the CPU
/// lacks vector support; otherwise the best supported level.
Level ActiveLevel();

/// True when any explicit SIMD path is active (ActiveLevel != kScalar).
inline bool Enabled() { return ActiveLevel() != Level::kScalar; }

/// True when the data-parallel kernel *schedules* (interleaved hash
/// chains, selection vectors) may be used at all: the escape hatch
/// (build option or environment) pins every kernel to its plain scalar
/// reference loop even where no explicit vector instruction is
/// involved, so a disabled build/process is a faithful pre-SIMD
/// baseline for differential runs.
inline bool KernelsEnabled() { return kCompiledIn && !EnvDisabled(); }

/// Human-readable level name ("scalar", "sse2", "avx2") for the shell's
/// `:simd` feedback and bench context stamping.
const char* LevelName(Level level);

}  // namespace simd
}  // namespace semopt

#endif  // SEMOPT_UTIL_SIMD_H_
