#include "util/simd.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace semopt {
namespace simd {

namespace {

bool ReadEnvDisabled() {
  const char* v = std::getenv("SEMOPT_DISABLE_SIMD");
  if (v == nullptr) return false;
  // Accept the usual falsy spellings so SEMOPT_DISABLE_SIMD=0 behaves;
  // anything else set means "disable".
  if (v[0] == '\0') return false;
  auto matches = [v](const char* word) {
    size_t i = 0;
    for (; v[i] != '\0' && word[i] != '\0'; ++i) {
      if (std::tolower(static_cast<unsigned char>(v[i])) != word[i]) {
        return false;
      }
    }
    return v[i] == '\0' && word[i] == '\0';
  };
  if (std::strcmp(v, "0") == 0 || matches("off") || matches("false")) {
    return false;
  }
  return true;
}

Level DetectLevel() {
  if (!kCompiledIn || ReadEnvDisabled()) return Level::kScalar;
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
  if (__builtin_cpu_supports("sse2")) return Level::kSSE2;
#endif
  return Level::kScalar;
}

}  // namespace

bool EnvDisabled() {
  static const bool disabled = ReadEnvDisabled();
  return disabled;
}

Level ActiveLevel() {
  static const Level level = DetectLevel();
  return level;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kSSE2:
      return "sse2";
    case Level::kAVX2:
      return "avx2";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace simd
}  // namespace semopt
