#ifndef SEMOPT_UTIL_STRING_UTIL_H_
#define SEMOPT_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace semopt {

/// Joins the elements of `parts`, separated by `sep`, using each element's
/// `operator<<`.
template <typename Container>
std::string JoinToString(const Container& parts, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    first = false;
    os << p;
  }
  return os.str();
}

/// Joins after applying `fn` to each element.
template <typename Container, typename Fn>
std::string JoinMapped(const Container& parts, std::string_view sep, Fn fn) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    first = false;
    os << fn(p);
  }
  return os.str();
}

/// Concatenates the stream renderings of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace semopt

#endif  // SEMOPT_UTIL_STRING_UTIL_H_
