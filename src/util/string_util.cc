#include "util/string_util.h"

namespace semopt {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace semopt
