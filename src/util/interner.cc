#include "util/interner.h"

#include <cassert>

namespace semopt {

SymbolId Interner::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  // Mutating the table while frozen would mean a parallel-evaluation
  // worker reached an un-pre-interned symbol (see class comment).
  assert(!frozen() && "interning a new symbol while the interner is frozen");
  SymbolId id = static_cast<SymbolId>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

const std::string& Interner::Lookup(SymbolId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < strings_.size());
  // The deque element's address is stable, so the reference stays valid
  // after the lock is released.
  return strings_[id];
}

Interner& GlobalInterner() {
  // Function-local static reference: never destroyed, avoiding
  // static-destruction-order issues (style guide pattern).
  static Interner& interner = *new Interner();
  return interner;
}

SymbolId InternSymbol(std::string_view s) {
  return GlobalInterner().Intern(s);
}

const std::string& SymbolName(SymbolId id) {
  return GlobalInterner().Lookup(id);
}

InternerFreezeGuard::InternerFreezeGuard() { GlobalInterner().Freeze(); }
InternerFreezeGuard::~InternerFreezeGuard() { GlobalInterner().Unfreeze(); }

}  // namespace semopt
