#include "util/status.h"

namespace semopt {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace semopt
