#include "semopt/ap_graph.h"

#include <map>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace semopt {

std::string SubgoalRef::ToString(const Program& program) const {
  const Rule& rule = program.rules()[rule_index];
  const Literal& lit = rule.body()[literal_index];
  std::string rule_name =
      rule.label().empty() ? StrCat("#", rule_index) : rule.label();
  return StrCat(lit.IsRelational() ? lit.atom().ToString() : lit.ToString(),
                "@", rule_name);
}

Result<ApGraph> ApGraph::Build(const Program& program,
                               const PredicateId& pred) {
  ApGraph graph;
  graph.pred_ = pred;
  std::set<PredicateId> idb = program.IdbPredicates();

  uint32_t next_dummy = 0;
  for (size_t rule_index : program.RulesFor(pred)) {
    const Rule& rule = program.rules()[rule_index];

    // Locate the body occurrence of the recursive predicate (if any) and
    // the output (head) variables.
    int rec_literal = -1;
    for (size_t i = 0; i < rule.body().size(); ++i) {
      const Literal& lit = rule.body()[i];
      if (lit.IsRelational() && !lit.negated() &&
          lit.atom().pred_id() == pred) {
        if (rec_literal >= 0) {
          return Status::FailedPrecondition(
              StrCat("rule ", rule.ToString(), " is not linear in ",
                     pred.ToString()));
        }
        rec_literal = static_cast<int>(i);
      }
    }
    std::map<SymbolId, uint32_t> head_pos_of;  // output var -> i
    for (uint32_t i = 0; i < rule.head().args().size(); ++i) {
      const Term& t = rule.head().arg(i);
      if (!t.IsVariable() || head_pos_of.count(t.symbol()) > 0) {
        return Status::FailedPrecondition(
            StrCat("rule ", rule.ToString(),
                   " is not rectified; rectify the program first"));
      }
      head_pos_of.emplace(t.symbol(), i);
    }
    std::map<SymbolId, std::vector<uint32_t>> rec_pos_of;  // body rec var
    if (rec_literal >= 0) {
      const Atom& rec_atom = rule.body()[rec_literal].atom();
      for (uint32_t j = 0; j < rec_atom.args().size(); ++j) {
        if (rec_atom.arg(j).IsVariable()) {
          rec_pos_of[rec_atom.arg(j).symbol()].push_back(j);
        }
      }
      // Directed <p_i, p_j> edges: output variable X_i at body position j.
      for (const auto& [var, head_pos] : head_pos_of) {
        auto it = rec_pos_of.find(var);
        if (it == rec_pos_of.end()) continue;
        for (uint32_t j : it->second) {
          graph.pos_pos_edges_.push_back(PosPosEdge{head_pos, j, rule_index});
        }
      }
    }

    // EDB subgoal occurrences and their edges.
    std::vector<std::pair<SubgoalRef, const Atom*>> edb_subgoals;
    for (size_t i = 0; i < rule.body().size(); ++i) {
      const Literal& lit = rule.body()[i];
      if (!lit.IsRelational() || lit.negated()) continue;
      if (idb.count(lit.atom().pred_id()) > 0) continue;  // IDB subgoal
      SubgoalRef ref{rule_index, i};
      graph.subgoals_.push_back(ref);
      edb_subgoals.emplace_back(ref, &lit.atom());

      for (uint32_t arg = 0; arg < lit.atom().args().size(); ++arg) {
        const Term& t = lit.atom().arg(arg);
        if (!t.IsVariable()) continue;
        // Undirected (a, p_k): shares a variable with the body
        // occurrence of the recursive predicate.
        auto rp = rec_pos_of.find(t.symbol());
        if (rp != rec_pos_of.end()) {
          for (uint32_t k : rp->second) {
            graph.subgoal_pos_edges_.push_back(
                SubgoalPosEdge{ref, arg, k});
          }
        }
        // Directed (p_i, a): carries the output variable X_i.
        auto hp = head_pos_of.find(t.symbol());
        if (hp != head_pos_of.end()) {
          graph.pos_subgoal_edges_.push_back(
              PosSubgoalEdge{hp->second, ref, arg});
        }
      }
    }

    // Dummy edges: same-rule sharing between two EDB subgoals through a
    // variable that touches neither the head nor the body recursive
    // atom.
    for (size_t x = 0; x < edb_subgoals.size(); ++x) {
      for (size_t y = x + 1; y < edb_subgoals.size(); ++y) {
        const auto& [ref_a, atom_a] = edb_subgoals[x];
        const auto& [ref_b, atom_b] = edb_subgoals[y];
        for (uint32_t i = 0; i < atom_a->args().size(); ++i) {
          const Term& t = atom_a->arg(i);
          if (!t.IsVariable()) continue;
          if (head_pos_of.count(t.symbol()) > 0 ||
              rec_pos_of.count(t.symbol()) > 0) {
            continue;
          }
          for (uint32_t j = 0; j < atom_b->args().size(); ++j) {
            if (atom_b->arg(j) == t) {
              graph.dummy_edges_.push_back(
                  DummyEdge{ref_a, i, ref_b, j, next_dummy++});
            }
          }
        }
      }
    }
  }
  return graph;
}

const Atom& ApGraph::AtomOf(const Program& program,
                            const SubgoalRef& ref) const {
  return program.rules()[ref.rule_index].body()[ref.literal_index].atom();
}

std::string ApGraph::ToString(const Program& program) const {
  std::ostringstream os;
  os << "AP-graph for " << pred_.ToString() << "\n";
  for (const SubgoalPosEdge& e : subgoal_pos_edges_) {
    os << "  (" << e.subgoal.ToString(program) << ", p" << e.rec_pos + 1
       << ") <*, " << e.arg + 1 << ">\n";
  }
  for (const PosSubgoalEdge& e : pos_subgoal_edges_) {
    os << "  <p" << e.head_pos + 1 << ", " << e.subgoal.ToString(program)
       << "> <" << program.rules()[e.subgoal.rule_index].label() << ", "
       << e.arg + 1 << ">\n";
  }
  for (const PosPosEdge& e : pos_pos_edges_) {
    os << "  <p" << e.head_pos + 1 << ", p" << e.rec_pos + 1 << "> <"
       << program.rules()[e.rule_index].label() << ", *>\n";
  }
  for (const DummyEdge& e : dummy_edges_) {
    os << "  (" << e.a.ToString(program) << ", d" << e.dummy_id << "), ("
       << e.b.ToString(program) << ", d" << e.dummy_id << ")\n";
  }
  return os.str();
}

}  // namespace semopt
