#include "semopt/push.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "ast/rename.h"
#include "semopt/subsumption.h"
#include "util/string_util.h"

namespace semopt {

size_t LocalizedResidue::MaxMatchedStep() const {
  size_t m = 0;
  for (size_t s : matched_steps) m = std::max(m, s);
  return m;
}

namespace {

/// Positive relational atoms of an unfolded rule body.
std::vector<Atom> TargetsOf(const UnfoldedSequence& unfolded) {
  std::vector<Atom> targets;
  for (const Literal& lit : unfolded.rule.body()) {
    if (lit.IsRelational() && !lit.negated()) targets.push_back(lit.atom());
  }
  return targets;
}

/// Maps target-atom indices (over TargetsOf) back to body indices.
std::vector<size_t> TargetBodyIndices(const UnfoldedSequence& unfolded) {
  std::vector<size_t> body_indices;
  for (size_t i = 0; i < unfolded.rule.body().size(); ++i) {
    const Literal& lit = unfolded.rule.body()[i];
    if (lit.IsRelational() && !lit.negated()) body_indices.push_back(i);
  }
  return body_indices;
}

/// Builds the simplified residue of a match, or nullopt when vacuous.
std::optional<Residue> ResidueOfMatch(const Constraint& ic,
                                      const SubsumptionMatch& match) {
  Residue residue;
  for (const Literal& e : ic.EvaluableBody()) {
    residue.conditions.push_back(match.theta.Apply(e));
  }
  if (ic.head().has_value()) {
    residue.head = match.theta.Apply(*ic.head());
  }
  residue.theta = match.theta;
  return SimplifyResidue(std::move(residue));
}

bool SameConditionSet(const std::vector<Literal>& a,
                      const std::vector<Literal>& b) {
  if (a.size() != b.size()) return false;
  for (const Literal& x : a) {
    if (std::find(b.begin(), b.end(), x) == b.end()) return false;
  }
  return true;
}

/// Replaces each committed-rule copy by its split family and rebuilds
/// the program (committed_rules indices are remapped).
void ReplaceCommitted(
    IsolationResult* iso,
    const std::function<std::vector<Rule>(const Rule&)>& family_of) {
  std::map<size_t, std::vector<Rule>> replacements;
  for (size_t rule_index : iso->committed_rules) {
    replacements[rule_index] =
        family_of(iso->program.rules()[rule_index]);
  }
  Program rebuilt;
  std::vector<size_t> new_committed;
  for (size_t i = 0; i < iso->program.rules().size(); ++i) {
    auto it = replacements.find(i);
    if (it == replacements.end()) {
      rebuilt.AddRule(iso->program.rules()[i]);
      continue;
    }
    for (const Rule& r : it->second) {
      new_committed.push_back(rebuilt.rules().size());
      rebuilt.AddRule(r);
    }
  }
  for (const Constraint& ic : iso->program.constraints()) {
    rebuilt.AddConstraint(ic);
  }
  iso->program = std::move(rebuilt);
  iso->committed_rules = std::move(new_committed);
}

/// Splits every committed copy: the then-branch (`then_variant` + the
/// conditions appended; skipped when nullopt) plus one guard copy per
/// condition (prefix E1..E_{j-1} and ¬Ej). With no conditions only the
/// then-branch survives (unconditional elimination/pruning).
Status SplitCommitted(
    IsolationResult* iso, const std::vector<Literal>& conditions,
    const std::function<std::optional<Rule>(const Rule&)>& then_variant) {
  ReplaceCommitted(iso, [&](const Rule& original) {
    std::vector<Rule> copies;
    std::optional<Rule> then_rule = then_variant(original);
    if (then_rule.has_value()) {
      for (const Literal& e : conditions) {
        then_rule->mutable_body().push_back(e);
      }
      copies.push_back(std::move(*then_rule));
    }
    for (size_t j = 0; j < conditions.size(); ++j) {
      Rule guard = original;
      for (size_t prefix = 0; prefix < j; ++prefix) {
        guard.mutable_body().push_back(conditions[prefix]);
      }
      guard.mutable_body().push_back(conditions[j].Negated().Simplify());
      guard.set_label(StrCat(original.label(), "$not", j + 1));
      copies.push_back(std::move(guard));
    }
    return copies;
  });
  return Status::Ok();
}

}  // namespace

Result<LocalizedResidue> LocalizeResidue(const Residue& residue,
                                         const Constraint& original_ic,
                                         const IsolationResult& iso) {
  // Same deterministic renaming the generator used, so the exact-match
  // comparison below sees identical residues.
  Constraint ic = RenameIcApart(original_ic);
  std::vector<Atom> targets = TargetsOf(iso.unfolded);
  std::vector<size_t> body_indices = TargetBodyIndices(iso.unfolded);
  std::vector<SubsumptionMatch> matches =
      FindSubsumptions(ic.DatabaseBody(), targets, /*require_all=*/true);

  // Prefer the match reproducing the residue exactly (unfolding is
  // deterministic, so this normally succeeds); fall back to any match.
  const SubsumptionMatch* chosen = nullptr;
  std::optional<Residue> chosen_residue;
  for (const SubsumptionMatch& match : matches) {
    std::optional<Residue> candidate = ResidueOfMatch(ic, match);
    if (!candidate.has_value()) continue;
    bool exact = SameConditionSet(candidate->conditions, residue.conditions) &&
                 candidate->head == residue.head;
    if (chosen == nullptr || exact) {
      chosen = &match;
      chosen_residue = candidate;
      if (exact) break;
    }
  }
  if (chosen == nullptr) {
    return Status::FailedPrecondition(
        StrCat("residue ", residue.ToString(),
               " does not match the isolated sequence"));
  }

  LocalizedResidue out;
  out.conditions = chosen_residue->conditions;
  out.head = chosen_residue->head;
  out.ic_label = original_ic.label();
  for (size_t i = 0; i < chosen->target_index.size(); ++i) {
    int t = chosen->target_index[i];
    if (t >= 0) {
      out.matched_steps.push_back(
          iso.unfolded.source_step[body_indices[static_cast<size_t>(t)]]);
    }
  }
  chosen_residue->sequence = iso.sequence;
  out.head_occurrence = FindUsefulOccurrence(*chosen_residue, iso.unfolded);
  return out;
}

Status PushAtomElimination(IsolationResult* iso, const LocalizedResidue& r,
                           const Constraint& /*ic*/,
                           const PushOptions& /*options*/) {
  if (!r.head_occurrence.has_value()) {
    return Status::FailedPrecondition(
        "atom elimination requires a useful fact residue whose head "
        "occurs in the sequence");
  }
  const HeadOccurrence& occ = *r.head_occurrence;
  // The matched atom plus its companions (same-step literals whose
  // local variables were rebound; each is witnessed elsewhere in the
  // sequence) are removed together. The committed rule realizes the
  // entire sequence, so all witnesses are guaranteed.
  std::vector<Literal> eliminated{iso->unfolded.rule.body()[occ.body_index]};
  for (size_t j : occ.companion_body_indices) {
    eliminated.push_back(iso->unfolded.rule.body()[j]);
  }

  for (size_t rule_index : iso->committed_rules) {
    const Rule& rule = iso->program.rules()[rule_index];
    for (const Literal& lit : eliminated) {
      if (std::find(rule.body().begin(), rule.body().end(), lit) ==
          rule.body().end()) {
        return Status::FailedPrecondition(
            "eliminated atom already removed by a previous transformation");
      }
    }
  }

  return SplitCommitted(
      iso, r.conditions,
      [&](const Rule& original) -> std::optional<Rule> {
        Rule modified = original;
        for (const Literal& lit : eliminated) {
          auto it = std::find(modified.mutable_body().begin(),
                              modified.mutable_body().end(), lit);
          if (it == modified.mutable_body().end()) return std::nullopt;
          modified.mutable_body().erase(it);
        }
        modified.set_label(StrCat(original.label(), "$elim"));
        return modified;
      });
}

Status PushAtomIntroduction(IsolationResult* iso, const LocalizedResidue& r,
                            const Constraint& /*ic*/,
                            const PushOptions& /*options*/) {
  if (!r.head.has_value()) {
    return Status::FailedPrecondition(
        "atom introduction requires a fact residue");
  }
  // Rename residue-head variables that are not sequence variables (the
  // IC's existential remainder, e.g. V7 in Example 2.1) to fresh names
  // so they cannot capture rule variables.
  Literal introduced = *r.head;
  {
    std::set<SymbolId> sequence_vars;
    for (SymbolId v : CollectVariables(iso->unfolded.rule)) {
      sequence_vars.insert(v);
    }
    FreshVariableGenerator gen("I");
    Substitution rename;
    for (SymbolId v : CollectVariables(introduced)) {
      if (sequence_vars.count(v) == 0) {
        if (introduced.IsComparison()) {
          return Status::FailedPrecondition(
              "evaluable residue head has an unbound variable");
        }
        rename.Bind(v, gen.FreshLike(Term::Var(v)));
      }
    }
    introduced = rename.Apply(introduced);
  }

  return SplitCommitted(
      iso, r.conditions,
      [&](const Rule& original) -> std::optional<Rule> {
        Rule modified = original;
        modified.mutable_body().push_back(introduced);
        modified.set_label(StrCat(original.label(), "$intro"));
        return modified;
      });
}

Status PushSubtreePruning(IsolationResult* iso, const LocalizedResidue& r,
                          const Constraint& /*ic*/,
                          const PushOptions& /*options*/) {
  if (r.head.has_value()) {
    return Status::FailedPrecondition(
        "subtree pruning requires a null residue");
  }
  // Conditional: keep only the ¬E branches (when all conditions hold,
  // the committed derivation is dead). Unconditional: the committed
  // rule disappears entirely — the paper's "delete the rule defining
  // p_{k-1}", flattened.
  return SplitCommitted(
      iso, r.conditions,
      [](const Rule&) -> std::optional<Rule> { return std::nullopt; });
}

}  // namespace semopt
