#ifndef SEMOPT_SEMOPT_PATTERN_GRAPH_H_
#define SEMOPT_SEMOPT_PATTERN_GRAPH_H_

#include <string>
#include <vector>

#include "ast/rule.h"
#include "semopt/sd_graph.h"
#include "util/result.h"

namespace semopt {

/// The pattern graph of an IC (paper §3): the undirected path graph over
/// the IC's database subgoals D1..Dk, with each edge (D_i, D_{i+1})
/// labelled by the argument-position pairs holding shared variables.
struct PatternGraph {
  /// The database atoms of the IC, in body order.
  std::vector<Atom> atoms;
  /// edges[i] labels (atoms[i], atoms[i+1]); size = atoms.size()-1.
  std::vector<std::vector<ArgPair>> edges;

  /// Builds the pattern graph and validates the paper's IC shape: each
  /// D_i shares one or more variables with D_{i-1} and D_{i+1} and with
  /// no other database subgoal (§3). Returns FailedPrecondition for ICs
  /// outside this class.
  static Result<PatternGraph> Build(const Constraint& ic);

  /// The same pattern with atoms (and edge labels) reversed — used to
  /// try the D_k -> D_1 embedding direction of Lemma 3.1.
  PatternGraph Reversed() const;

  std::string ToString() const;
};

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_PATTERN_GRAPH_H_
