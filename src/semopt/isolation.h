#ifndef SEMOPT_SEMOPT_ISOLATION_H_
#define SEMOPT_SEMOPT_ISOLATION_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "semopt/expansion.h"
#include "util/result.h"

namespace semopt {

/// The result of Algorithm 4.1 in *flattened* form: a program Q
/// equivalent to P in which the given expansion sequence is isolated.
///
/// The paper's construction introduces auxiliary spine predicates
/// p_1..p_{k-1} chaining one α-rule per step. Evaluated bottom-up, that
/// chain materializes full-size intermediate relations; this
/// implementation therefore *flattens* the spine (composing the α-rules
/// by unfolding — Step 5's unification taken to its fixpoint):
///
///   * the COMMITTED rule is the sequence's complete unfolding — a
///     k-step rule covering exactly the proof trees whose spine follows
///     the sequence; every pushed optimization lands here, and because
///     the rule commits to all k steps, every residue condition is
///     evaluable in it and every matched subgoal is guaranteed, with no
///     further soundness analysis;
///   * one DEVIATION rule per first-deviation depth d (1..k-1): the
///     unfolding of the sequence's first d rules, with the trailing
///     recursive atom redirected to the exit predicate q_d defined by
///     every original rule except the sequence's d-th (q predicates
///     with the same excluded rule are shared);
///   * the original rules other than the sequence's first remain as the
///     rules of p (the paper's γ-rules for q_0 = p).
///
/// Proof trees partition by their first deviation from the sequence, so
/// Q computes exactly P's relation (Theorem 4.1), while deriving no
/// auxiliary spine tuples.
struct IsolationResult {
  Program program;
  ExpansionSequence sequence;
  UnfoldedSequence unfolded;
  /// Sequence length k.
  size_t k = 0;
  /// Indices (into program.rules()) of the current copies of the
  /// committed rule. Initially one; pushing may split it into several.
  std::vector<size_t> committed_rules;
  /// Exit predicates q_1..q_{k-1} (deduplicated; empty for k == 1).
  std::vector<SymbolId> q_names;
  /// The predicate being isolated.
  PredicateId pred{0, 0};
  /// The program the isolation was built from.
  Program source_program;
};

/// Algorithm 4.1 (flattened). Transforms `program` so that `sequence`
/// (rules of one linear recursive predicate) is isolated.
/// `isolation_id` namespaces the exit predicates so multiple isolations
/// coexist. Preconditions: rectified program, linear recursion, all
/// sequence rules define the same predicate, only the last rule may be
/// non-recursive. For k == 1 the program is returned with the single
/// rule rebuilt in unfolding order (no exit predicates).
Result<IsolationResult> IsolateSequence(const Program& program,
                                        const ExpansionSequence& sequence,
                                        int isolation_id);

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_ISOLATION_H_
