#ifndef SEMOPT_SEMOPT_RESIDUE_GENERATOR_H_
#define SEMOPT_SEMOPT_RESIDUE_GENERATOR_H_

#include <vector>

#include "ast/program.h"
#include "semopt/residue.h"
#include "util/result.h"

namespace semopt {

/// Tuning knobs and work counters for residue generation.
struct ResidueGenOptions {
  /// Maximum number of rule applications a variable flow may traverse
  /// when deriving SD-graph edges (bounds cross-instance reach).
  size_t max_flow_depth = 6;
  /// Cap on candidate sequences per (IC, predicate).
  size_t max_candidates = 64;
  /// Drop residues that are not useful for their sequence (paper §3).
  bool require_useful = true;
  /// Cap on subsumption matches explored per sequence.
  size_t max_matches_per_sequence = 16;
};

struct ResidueGenStats {
  size_t candidate_sequences = 0;
  size_t sequences_unfolded = 0;
  size_t subsumption_calls = 0;
  size_t residues_found = 0;

  void Add(const ResidueGenStats& o) {
    candidate_sequences += o.candidate_sequences;
    sequences_unfolded += o.sequences_unfolded;
    subsumption_calls += o.subsumption_calls;
    residues_found += o.residues_found;
  }
};

/// Algorithm 3.1 (generalized to return every residue found rather than
/// the first): detects the expansion sequences of `pred` maximally
/// (and freely) subsumed by `ic` via the AP-/SD-/pattern-graph
/// embedding, then verifies each candidate by direct subsumption on its
/// unfolding and extracts the residues. ICs outside the paper's chain
/// class yield an empty result (no error). The program must be
/// rectified.
Result<std::vector<Residue>> GenerateResidues(
    const Program& program, const Constraint& ic, const PredicateId& pred,
    const ResidueGenOptions& options = ResidueGenOptions(),
    ResidueGenStats* stats = nullptr);

/// Runs GenerateResidues for every IC against every IDB predicate.
Result<std::vector<Residue>> GenerateAllResidues(
    const Program& program,
    const ResidueGenOptions& options = ResidueGenOptions(),
    ResidueGenStats* stats = nullptr);

/// The exhaustive baseline the paper calls "unattractive and
/// inefficient" (§3): enumerate every expansion sequence of `pred` up
/// to `max_sequence_length` and subsumption-test each one. Produces the
/// same residues as GenerateResidues for sequences within the length
/// bound; used by bench E4 and as a test oracle.
Result<std::vector<Residue>> GenerateResiduesExhaustive(
    const Program& program, const Constraint& ic, const PredicateId& pred,
    size_t max_sequence_length, const ResidueGenOptions& options,
    ResidueGenStats* stats = nullptr);

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_RESIDUE_GENERATOR_H_
