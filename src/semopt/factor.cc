#include "semopt/factor.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "ast/rename.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// The source level of variable `v` in the unfolding: the smallest step
/// whose literals contain it (head-only variables map to 0).
std::optional<size_t> VarSourceLevel(const UnfoldedSequence& unfolded,
                                     SymbolId v) {
  std::optional<size_t> best;
  for (size_t i = 0; i < unfolded.rule.body().size(); ++i) {
    for (SymbolId u : CollectVariables(unfolded.rule.body()[i])) {
      if (u == v) {
        size_t step = unfolded.source_step[i];
        if (!best.has_value() || step < *best) best = step;
      }
    }
  }
  if (!best.has_value()) {
    for (SymbolId u : CollectVariables(unfolded.rule.head())) {
      if (u == v) return 0;
    }
  }
  return best;
}

/// Deterministic variable ordering: first occurrence in the committed
/// rule (head first, then body).
std::vector<SymbolId> OrderedVars(const Rule& rule) {
  return CollectVariables(rule);
}

}  // namespace

Status FactorCommittedRules(IsolationResult* iso, int isolation_id) {
  const size_t k = iso->k;
  if (k <= 1 || iso->committed_rules.empty()) return Status::Ok();

  struct FactoredCopy {
    Rule consumer;
    std::vector<Rule> chain;  // c_1 .. c_{k-1} rules actually created
  };
  std::vector<FactoredCopy> factored;

  // Cache of shared suffixes: key -> existing chain predicate head atom.
  std::map<std::string, Atom> suffix_cache;
  int next_chain_id = 0;

  for (size_t rule_index : iso->committed_rules) {
    const Rule& rule = iso->program.rules()[rule_index];

    // Assign every body literal to a segment (sequence step). Pass 1:
    // literals inherited from the unfolding keep their step.
    std::vector<std::vector<Literal>> segments(k);
    std::vector<bool> unfolded_used(iso->unfolded.rule.body().size(), false);
    std::vector<Literal> added;
    for (const Literal& lit : rule.body()) {
      int inherited = -1;
      for (size_t u = 0; u < iso->unfolded.rule.body().size(); ++u) {
        if (!unfolded_used[u] && iso->unfolded.rule.body()[u] == lit) {
          inherited = static_cast<int>(u);
          break;
        }
      }
      if (inherited >= 0) {
        unfolded_used[inherited] = true;
        segments[iso->unfolded.source_step[inherited]].push_back(lit);
      } else {
        added.push_back(lit);
      }
    }
    // Pass 2: literals added by the pushes (conditions, guards,
    // introduced atoms) go to the deepest segment at which all their
    // variables are in scope — bottom-up, the chain evaluates that
    // segment first, so the condition filters before anything above is
    // materialized. Variables placed at the consumer (segment 0) are
    // carried up automatically by the interface computation below.
    std::vector<std::set<SymbolId>> inherited_vars(k);
    for (size_t j = 0; j < k; ++j) {
      for (const Literal& lit : segments[j]) {
        for (SymbolId v : CollectVariables(lit)) inherited_vars[j].insert(v);
      }
    }
    for (const Literal& lit : added) {
      size_t candidate = 0;
      for (SymbolId v : CollectVariables(lit)) {
        std::optional<size_t> level = VarSourceLevel(iso->unfolded, v);
        if (level.has_value()) candidate = std::max(candidate, *level);
      }
      auto in_scope_at = [&](size_t j) {
        for (SymbolId v : CollectVariables(lit)) {
          bool found = false;
          for (size_t j2 = j; j2 < k && !found; ++j2) {
            if (inherited_vars[j2].count(v) > 0) found = true;
          }
          if (!found) return false;
        }
        return true;
      };
      if (!in_scope_at(candidate)) candidate = 0;
      segments[candidate].push_back(lit);
    }

    // Variables used by each segment and by the head.
    std::vector<std::set<SymbolId>> segment_vars(k);
    for (size_t j = 0; j < k; ++j) {
      for (const Literal& lit : segments[j]) {
        for (SymbolId v : CollectVariables(lit)) segment_vars[j].insert(v);
      }
    }
    std::set<SymbolId> head_vars;
    for (SymbolId v : CollectVariables(rule.head())) head_vars.insert(v);

    // Build the chain bottom-up (deepest segment first); skip split
    // points whose suffix segment is empty by merging it downward.
    std::vector<SymbolId> var_order = OrderedVars(rule);
    FactoredCopy copy{Rule(rule.label(), rule.head(), {}), {}};

    // suffix_body accumulates the literals of segments >= j while no
    // split has been emitted yet for them.
    std::vector<Literal> suffix_body;
    std::optional<Atom> suffix_atom;  // chain predicate summarizing deeper
    for (size_t j = k; j-- > 1;) {
      for (const Literal& lit : segments[j]) suffix_body.push_back(lit);
      if (suffix_body.empty()) continue;  // nothing to materialize yet

      // Interface: variables of the suffix (segments >= j, represented
      // by suffix_body + suffix_atom) also used by segments < j or the
      // head.
      std::set<SymbolId> suffix_vars;
      for (const Literal& lit : suffix_body) {
        for (SymbolId v : CollectVariables(lit)) suffix_vars.insert(v);
      }
      if (suffix_atom.has_value()) {
        for (SymbolId v : CollectVariables(*suffix_atom)) {
          suffix_vars.insert(v);
        }
      }
      std::set<SymbolId> outside;
      for (size_t j2 = 0; j2 < j; ++j2) {
        for (SymbolId v : segment_vars[j2]) outside.insert(v);
      }
      for (SymbolId v : head_vars) outside.insert(v);

      std::vector<Term> interface_args;
      for (SymbolId v : var_order) {
        if (suffix_vars.count(v) > 0 && outside.count(v) > 0) {
          interface_args.push_back(Term::Var(v));
        }
      }

      // Shared-suffix lookup key: the literals + the interface.
      std::ostringstream key;
      for (const Literal& lit : suffix_body) key << lit << ";";
      if (suffix_atom.has_value()) key << "@" << *suffix_atom;
      key << "|" << JoinToString(interface_args, ",");

      auto cached = suffix_cache.find(key.str());
      if (cached != suffix_cache.end()) {
        suffix_atom = cached->second;
      } else {
        SymbolId chain_pred = InternSymbol(
            StrCat(SymbolName(iso->pred.name), "$c", isolation_id, "_",
                   next_chain_id++));
        std::vector<Literal> body = suffix_body;
        if (suffix_atom.has_value()) {
          // Deeper chain link was already materialized into the body
          // via suffix_body? No: deeper link is a predicate atom.
          body.push_back(Literal::Relational(*suffix_atom));
        }
        Rule link(StrCat("chain$", isolation_id, "_", next_chain_id - 1),
                  Atom(chain_pred, interface_args), std::move(body));
        suffix_atom = link.head();
        copy.chain.push_back(std::move(link));
        suffix_cache.emplace(key.str(), *suffix_atom);
      }
      suffix_body.clear();
    }

    // Consumer: segment 0 plus the top chain link (or, if no link was
    // created because all deeper segments were empty, just segment 0).
    std::vector<Literal> consumer_body = segments[0];
    if (suffix_atom.has_value()) {
      consumer_body.push_back(Literal::Relational(*suffix_atom));
    }
    for (Literal& lit : suffix_body) consumer_body.push_back(lit);
    copy.consumer.mutable_body() = std::move(consumer_body);
    factored.push_back(std::move(copy));
  }

  // Rebuild the program: committed copies replaced by consumers; chain
  // rules appended once each.
  std::set<size_t> committed(iso->committed_rules.begin(),
                             iso->committed_rules.end());
  Program rebuilt;
  std::vector<size_t> new_committed;
  size_t copy_index = 0;
  for (size_t i = 0; i < iso->program.rules().size(); ++i) {
    if (committed.count(i) == 0) {
      rebuilt.AddRule(iso->program.rules()[i]);
      continue;
    }
    new_committed.push_back(rebuilt.rules().size());
    rebuilt.AddRule(factored[copy_index].consumer);
    for (const Rule& link : factored[copy_index].chain) {
      rebuilt.AddRule(link);
    }
    ++copy_index;
  }
  for (const Constraint& ic : iso->program.constraints()) {
    rebuilt.AddConstraint(ic);
  }
  iso->program = std::move(rebuilt);
  iso->committed_rules = std::move(new_committed);
  return Status::Ok();
}

}  // namespace semopt
