#ifndef SEMOPT_SEMOPT_AP_GRAPH_H_
#define SEMOPT_SEMOPT_AP_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/program.h"
#include "util/result.h"

namespace semopt {

/// Identifies one EDB subgoal occurrence in a program: the
/// `literal_index`-th body literal of rule `rule_index`. The paper
/// treats subgoal occurrences in the same and different rules as
/// distinct (§3), which this reference captures.
struct SubgoalRef {
  size_t rule_index;
  size_t literal_index;

  bool operator==(const SubgoalRef& o) const {
    return rule_index == o.rule_index && literal_index == o.literal_index;
  }
  bool operator!=(const SubgoalRef& o) const { return !(*this == o); }
  bool operator<(const SubgoalRef& o) const {
    if (rule_index != o.rule_index) return rule_index < o.rule_index;
    return literal_index < o.literal_index;
  }

  std::string ToString(const Program& program) const;
};

/// The argument/predicate graph of Definition 3.2, built per defined
/// predicate. Vertices are (i) EDB subgoal occurrences in the
/// predicate's rules, (ii) argument positions p_1..p_n of the recursive
/// predicate, and (iii) dummy argument positions mediating same-rule
/// variable sharing that bypasses the recursive predicate. The three
/// edge families of the definition are stored explicitly.
class ApGraph {
 public:
  /// Undirected edge (a, p_k) with label <*, j>: the j-th argument of
  /// subgoal `subgoal` shares a variable with position k of the
  /// *body* occurrence of the recursive predicate in the same rule.
  struct SubgoalPosEdge {
    SubgoalRef subgoal;
    uint32_t arg;      // j
    uint32_t rec_pos;  // k
  };

  /// Directed edge <p_i, a> with label <r, j>: subgoal `subgoal` in rule
  /// `rule_index` has the output (head) variable X_i at position j.
  struct PosSubgoalEdge {
    uint32_t head_pos;  // i
    SubgoalRef subgoal;
    uint32_t arg;  // j
  };

  /// Directed edge <p_i, p_j> with label <r, *>: the output variable
  /// X_i occupies position j of the body recursive atom of rule
  /// `rule_index`.
  struct PosPosEdge {
    uint32_t head_pos;  // i
    uint32_t rec_pos;   // j
    size_t rule_index;  // r
  };

  /// Same-rule sharing via a dummy argument position d: subgoals a and b
  /// share a variable that does not touch the recursive predicate.
  struct DummyEdge {
    SubgoalRef a;
    uint32_t a_arg;
    SubgoalRef b;
    uint32_t b_arg;
    uint32_t dummy_id;
  };

  /// Builds the AP-graph of `pred`'s rules. The program must be
  /// rectified (output variables X_i must be well defined across rules).
  /// Non-recursive predicates yield a graph with no position edges.
  static Result<ApGraph> Build(const Program& program,
                               const PredicateId& pred);

  const PredicateId& pred() const { return pred_; }
  const std::vector<SubgoalRef>& subgoals() const { return subgoals_; }
  const std::vector<SubgoalPosEdge>& subgoal_pos_edges() const {
    return subgoal_pos_edges_;
  }
  const std::vector<PosSubgoalEdge>& pos_subgoal_edges() const {
    return pos_subgoal_edges_;
  }
  const std::vector<PosPosEdge>& pos_pos_edges() const {
    return pos_pos_edges_;
  }
  const std::vector<DummyEdge>& dummy_edges() const { return dummy_edges_; }

  /// The atom of a subgoal occurrence.
  const Atom& AtomOf(const Program& program, const SubgoalRef& ref) const;

  std::string ToString(const Program& program) const;

 private:
  PredicateId pred_{0, 0};
  std::vector<SubgoalRef> subgoals_;
  std::vector<SubgoalPosEdge> subgoal_pos_edges_;
  std::vector<PosSubgoalEdge> pos_subgoal_edges_;
  std::vector<PosPosEdge> pos_pos_edges_;
  std::vector<DummyEdge> dummy_edges_;
};

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_AP_GRAPH_H_
