#ifndef SEMOPT_SEMOPT_PUSH_H_
#define SEMOPT_SEMOPT_PUSH_H_

#include <optional>
#include <vector>

#include "semopt/isolation.h"
#include "semopt/residue.h"
#include "util/result.h"

namespace semopt {

/// A residue re-expressed in the variable space of an isolation's
/// unfolding, with the match locations needed by the pushing
/// transformations.
struct LocalizedResidue {
  /// Evaluable conditions E1..Em over the unfolding's variables.
  std::vector<Literal> conditions;
  /// The consequent A (absent for null residues).
  std::optional<Literal> head;
  /// Steps (0-based) of the unfolded body atoms matched by the IC's
  /// database subgoals.
  std::vector<size_t> matched_steps;
  /// For fact residues whose head matched a sequence atom: where.
  std::optional<HeadOccurrence> head_occurrence;
  /// Label of the originating IC (for logging).
  std::string ic_label;

  size_t MaxMatchedStep() const;
};

/// Re-derives `residue` against `iso`'s own unfolding (maximal free
/// subsumption), returning the localized form whose variables are the
/// committed rule's variables. Fails when the residue no longer matches
/// (should not happen for residues generated from the same sequence).
Result<LocalizedResidue> LocalizeResidue(const Residue& residue,
                                         const Constraint& ic,
                                         const IsolationResult& iso);

/// Pushing options (currently none; the flattened isolation makes every
/// push structurally sound — the committed rule realizes the whole
/// sequence, so all matched subgoals are guaranteed and all condition
/// variables are in scope).
struct PushOptions {};

/// Atom elimination (§4(1)): removes the matched head atom — and its
/// witnessed companions — from the committed rule, splitting it on the
/// residue conditions (one copy drops the atoms under E1..Em; m guard
/// copies keep them under ¬Ej). Sound only on databases satisfying the
/// originating IC.
Status PushAtomElimination(IsolationResult* iso, const LocalizedResidue& r,
                           const Constraint& ic,
                           const PushOptions& options = PushOptions());

/// Atom introduction (§4(2)): adds the residue head A as a subgoal to
/// the committed rule (one copy gains A; m guard copies gain ¬Ej). The
/// caller decides *whether* introduction is profitable (evaluable head,
/// or small relation).
Status PushAtomIntroduction(IsolationResult* iso, const LocalizedResidue& r,
                            const Constraint& ic,
                            const PushOptions& options = PushOptions());

/// Subtree pruning (§4(3)): for a conditional null residue, guards the
/// committed rule with ¬E (split into m copies); for an unconditional
/// null residue, deletes the committed rule outright.
Status PushSubtreePruning(IsolationResult* iso, const LocalizedResidue& r,
                          const Constraint& ic,
                          const PushOptions& options = PushOptions());

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_PUSH_H_
