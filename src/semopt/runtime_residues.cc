#include "semopt/runtime_residues.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "analysis/dependency_graph.h"
#include "analysis/rectify.h"
#include "analysis/recursion.h"
#include "eval/rule_executor.h"
#include "semopt/expansion.h"
#include "semopt/residue.h"
#include "semopt/subsumption.h"
#include "util/string_util.h"

namespace semopt {

namespace {

class TwoDbSource : public RelationSource {
 public:
  TwoDbSource(const Database* edb, Database* idb,
              const std::set<PredicateId>* idb_preds)
      : edb_(edb), idb_(idb), idb_preds_(idb_preds) {}

  const Relation* Full(const PredicateId& pred) const override {
    if (idb_preds_->count(pred) > 0) return idb_->Find(pred);
    return edb_->Find(pred);
  }
  const Relation* Delta(const PredicateId& pred) const override {
    auto it = deltas_.find(pred);
    return it == deltas_.end() ? nullptr : it->second;
  }
  void SetDelta(const PredicateId& pred, const Relation* rel) {
    deltas_[pred] = rel;
  }
  void ClearDeltas() { deltas_.clear(); }

 private:
  const Database* edb_;
  Database* idb_;
  const std::set<PredicateId>* idb_preds_;
  std::map<PredicateId, const Relation*> deltas_;
};

/// The per-iteration residue application: derive the residues of the
/// depth-2 subquery r·r' (or the depth-1 subquery r) for every IC and
/// exploit them on rule r. Returns the rule to actually execute, or
/// nullopt when a null residue kills this (r, source) combination.
/// Every subsumption test is counted in stats->runtime_residue_checks.
std::optional<Rule> ApplyResiduesToSubquery(const Program& program,
                                            const ExpansionSequence& seq,
                                            EvalStats* stats) {
  Result<UnfoldedSequence> unfolded_result = Unfold(program, seq);
  if (!unfolded_result.ok()) return program.rules()[seq.rule_indices[0]];
  const UnfoldedSequence& unfolded = *unfolded_result;

  Rule working = program.rules()[seq.rule_indices[0]];

  std::vector<Atom> targets;
  for (const Literal& lit : unfolded.rule.body()) {
    if (lit.IsRelational() && !lit.negated()) targets.push_back(lit.atom());
  }

  for (const Constraint& original_ic : program.constraints()) {
    Constraint ic = RenameIcApart(original_ic);
    if (stats != nullptr) ++stats->runtime_residue_checks;
    std::vector<SubsumptionMatch> matches = FindSubsumptions(
        ic.DatabaseBody(), targets, /*require_all=*/true, /*max_matches=*/4);
    for (const SubsumptionMatch& match : matches) {
      Residue residue;
      residue.sequence = seq;
      residue.ic_label = ic.label();
      residue.theta = match.theta;
      for (const Literal& e : ic.EvaluableBody()) {
        residue.conditions.push_back(match.theta.Apply(e));
      }
      if (ic.head().has_value()) {
        residue.head = match.theta.Apply(*ic.head());
      }
      std::optional<Residue> simplified = SimplifyResidue(std::move(residue));
      if (!simplified.has_value()) continue;

      if (simplified->IsNull() && simplified->conditions.empty()) {
        // The subquery cannot produce tuples at all.
        return std::nullopt;
      }
      if (!simplified->IsNull() && simplified->conditions.empty() &&
          simplified->head->IsRelational()) {
        // Unconditional fact residue: drop the implied atom from the
        // consuming rule when it occurs at step 0 (inside rule r).
        std::optional<HeadOccurrence> occurrence =
            FindUsefulOccurrence(*simplified, unfolded);
        // Exploitable only when the atom and its companions all sit in
        // the consuming rule (step 0); their witnesses live in the
        // producer, guaranteed by the per-rule delta provenance.
        bool at_step0 = occurrence.has_value() && occurrence->step == 0;
        if (at_step0) {
          std::vector<Literal> to_remove{
              unfolded.rule.body()[occurrence->body_index]};
          for (size_t j : occurrence->companion_body_indices) {
            if (unfolded.source_step[j] != 0) at_step0 = false;
            to_remove.push_back(unfolded.rule.body()[j]);
          }
          int relational = 0;
          for (const Literal& l : working.body()) {
            if (l.IsRelational()) ++relational;
          }
          // Keep at least the recursive subgoal plus one more binder.
          if (at_step0 &&
              relational > static_cast<int>(to_remove.size()) + 1) {
            for (const Literal& lit : to_remove) {
              auto it = std::find(working.mutable_body().begin(),
                                  working.mutable_body().end(), lit);
              if (it != working.mutable_body().end()) {
                working.mutable_body().erase(it);
              }
            }
          }
        }
      }
      // Conditional residues: the evaluation paradigm re-checks them per
      // subquery; exploiting them would require splitting the iteration,
      // which Lee & Han handle only for restricted cases — we charge the
      // check cost (above) and keep the rule unchanged.
    }
  }
  return working;
}

}  // namespace

Result<Database> EvaluateWithRuntimeResidues(const Program& input,
                                             const Database& edb,
                                             EvalStats* stats) {
  SEMOPT_RETURN_IF_ERROR(ValidatePaperAssumptions(input));
  Program program = input;
  if (!IsRectified(program)) {
    SEMOPT_ASSIGN_OR_RETURN(program, Rectify(program));
  }
  program.AutoLabelRules();

  DependencyGraph graph = DependencyGraph::Build(program);
  std::set<PredicateId> idb_preds = program.IdbPredicates();
  std::vector<std::vector<PredicateId>> sccs = graph.Sccs();

  Database idb;
  for (const PredicateId& p : idb_preds) idb.GetOrCreate(p);
  TwoDbSource source(&edb, &idb, &idb_preds);

  for (const auto& scc : sccs) {
    std::set<PredicateId> component(scc.begin(), scc.end());
    std::vector<size_t> component_rules;
    for (size_t i = 0; i < program.rules().size(); ++i) {
      if (component.count(program.rules()[i].head().pred_id()) > 0) {
        component_rules.push_back(i);
      }
    }
    if (component_rules.empty()) continue;

    bool recursive = false;
    std::map<size_t, int> recursive_literal;  // rule -> body index
    for (size_t i : component_rules) {
      const Rule& rule = program.rules()[i];
      for (size_t b = 0; b < rule.body().size(); ++b) {
        const Literal& lit = rule.body()[b];
        if (lit.IsRelational() && !lit.negated() &&
            component.count(lit.atom().pred_id()) > 0) {
          recursive_literal[i] = static_cast<int>(b);
          recursive = true;
        }
      }
    }

    // Round 0: depth-1 residue application, then run every rule.
    std::map<size_t, std::unique_ptr<Relation>> rule_delta;
    for (size_t i : component_rules) {
      rule_delta[i] =
          std::make_unique<Relation>(program.rules()[i].head().pred_id());
    }

    if (stats != nullptr) ++stats->iterations;
    for (size_t i : component_rules) {
      ExpansionSequence seq;
      seq.rule_indices = {i};
      std::optional<Rule> variant = ApplyResiduesToSubquery(program, seq, stats);
      if (!variant.has_value()) continue;
      Result<RuleExecutor> exec = RuleExecutor::Create(*variant);
      if (!exec.ok()) {
        variant = program.rules()[i];
        exec = RuleExecutor::Create(*variant);
        if (!exec.ok()) return exec.status();
      }
      Relation& target = idb.GetOrCreate(variant->head().pred_id());
      // Buffer derivations: the rule may scan its own target relation.
      TupleBuffer buffer(variant->head().pred_id().arity);
      exec->Execute(source, -1, [&](RowRef t) { buffer.Append(t); }, stats);
      for (size_t bi = 0; bi < buffer.size(); ++bi) {
        RowRef t = buffer.row(bi);
        if (target.Insert(t)) {
          rule_delta[i]->Insert(t);
          if (stats != nullptr) ++stats->derived_tuples;
        } else if (stats != nullptr) {
          ++stats->duplicate_tuples;
        }
      }
    }

    if (!recursive) continue;

    auto any_delta = [&]() {
      for (const auto& [i, rel] : rule_delta) {
        if (!rel->empty()) return true;
      }
      return false;
    };

    while (any_delta()) {
      if (stats != nullptr) ++stats->iterations;
      std::map<size_t, std::unique_ptr<Relation>> next_delta;
      for (size_t i : component_rules) {
        next_delta[i] =
            std::make_unique<Relation>(program.rules()[i].head().pred_id());
      }
      for (size_t r : component_rules) {
        auto rec_it = recursive_literal.find(r);
        if (rec_it == recursive_literal.end()) continue;
        const PredicateId rec_pred = program.rules()[r]
                                         .body()[rec_it->second]
                                         .atom()
                                         .pred_id();
        // One execution per producing rule r' whose head feeds the
        // recursive literal, reading only delta(r').
        for (size_t producer : component_rules) {
          const Rule& producer_rule = program.rules()[producer];
          if (!(producer_rule.head().pred_id() == rec_pred)) continue;
          if (rule_delta[producer]->empty()) continue;

          ExpansionSequence seq;
          seq.rule_indices = {r, producer};
          std::optional<Rule> variant =
              ApplyResiduesToSubquery(program, seq, stats);
          if (!variant.has_value()) continue;

          Result<RuleExecutor> exec = RuleExecutor::Create(*variant);
          if (!exec.ok()) {
            // Atom removal made the variant unsafe; fall back to the
            // unoptimized rule.
            variant = program.rules()[r];
            exec = RuleExecutor::Create(*variant);
            if (!exec.ok()) return exec.status();
          }
          // The recursive literal's index may have shifted if an atom
          // before it was removed; locate it in the variant.
          int delta_literal = -1;
          for (size_t b = 0; b < variant->body().size(); ++b) {
            const Literal& lit = variant->body()[b];
            if (lit.IsRelational() && !lit.negated() &&
                lit.atom().pred_id() == rec_pred) {
              delta_literal = static_cast<int>(b);
              break;
            }
          }
          source.ClearDeltas();
          source.SetDelta(rec_pred, rule_delta[producer].get());
          Relation& target = idb.GetOrCreate(variant->head().pred_id());
          TupleBuffer buffer(variant->head().pred_id().arity);
          exec->Execute(source, delta_literal,
                        [&](RowRef t) { buffer.Append(t); }, stats);
          for (size_t bi = 0; bi < buffer.size(); ++bi) {
            RowRef t = buffer.row(bi);
            if (target.Insert(t)) {
              next_delta[r]->Insert(t);
              if (stats != nullptr) ++stats->derived_tuples;
            } else if (stats != nullptr) {
              ++stats->duplicate_tuples;
            }
          }
        }
      }
      source.ClearDeltas();
      rule_delta = std::move(next_delta);
    }
  }
  return idb;
}

}  // namespace semopt
