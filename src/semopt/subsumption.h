#ifndef SEMOPT_SEMOPT_SUBSUMPTION_H_
#define SEMOPT_SEMOPT_SUBSUMPTION_H_

#include <vector>

#include "ast/rule.h"
#include "ast/substitution.h"

namespace semopt {

/// One way of mapping IC body atoms into target atoms.
struct SubsumptionMatch {
  /// The subsuming substitution θ (maps IC variables to target terms).
  Substitution theta;
  /// For each IC database atom (in IC body order): the index of the
  /// target atom it maps onto, or -1 when unmatched (partial
  /// subsumption only).
  std::vector<int> target_index;

  /// Number of matched IC atoms.
  size_t matched_count() const {
    size_t n = 0;
    for (int t : target_index) {
      if (t >= 0) ++n;
    }
    return n;
  }
};

/// Enumerates the ways the atoms `ic_atoms` map into `target_atoms`
/// under one-way matching ("free" subsumption: clauses are taken as they
/// appear, no expansion, per Definition 2.1).
///
/// When `require_all` is true only complete matches are returned
/// (maximal subsumption of Definition 3.1); otherwise all partial
/// matches with at least one matched atom are returned (each unmatched
/// atom marked -1). Two IC atoms may map onto the same target atom.
/// At most `max_matches` matches are collected (0 = unlimited).
std::vector<SubsumptionMatch> FindSubsumptions(
    const std::vector<Atom>& ic_atoms,
    const std::vector<Atom>& target_atoms, bool require_all,
    size_t max_matches = 0);

/// Classical clause subsumption: true if some substitution maps every
/// atom of `c` onto an atom of `d`.
bool Subsumes(const std::vector<Atom>& c, const std::vector<Atom>& d);

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_SUBSUMPTION_H_
