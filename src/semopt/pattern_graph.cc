#include "semopt/pattern_graph.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace semopt {

Result<PatternGraph> PatternGraph::Build(const Constraint& ic) {
  PatternGraph graph;
  graph.atoms = ic.DatabaseBody();
  const size_t k = graph.atoms.size();
  if (k == 0) {
    return Status::FailedPrecondition(
        StrCat("IC ", ic.ToString(), " has no database subgoals"));
  }

  // Shared variable pairs for every atom pair; used both for edge
  // labels and to validate the chain shape.
  auto shared_pairs = [&](size_t x, size_t y) {
    std::vector<ArgPair> pairs;
    const Atom& a = graph.atoms[x];
    const Atom& b = graph.atoms[y];
    for (uint32_t i = 0; i < a.args().size(); ++i) {
      if (!a.arg(i).IsVariable()) continue;
      for (uint32_t j = 0; j < b.args().size(); ++j) {
        if (a.arg(i) == b.arg(j)) pairs.push_back(ArgPair{i, j});
      }
    }
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };

  for (size_t x = 0; x < k; ++x) {
    for (size_t y = x + 1; y < k; ++y) {
      bool consecutive = (y == x + 1);
      std::vector<ArgPair> pairs = shared_pairs(x, y);
      if (consecutive) {
        if (pairs.empty() && k > 1) {
          return Status::FailedPrecondition(
              StrCat("IC ", ic.ToString(), ": database subgoals ",
                     graph.atoms[x].ToString(), " and ",
                     graph.atoms[y].ToString(),
                     " share no variables; the IC is not a chain"));
        }
        graph.edges.push_back(std::move(pairs));
      } else if (!pairs.empty()) {
        return Status::FailedPrecondition(
            StrCat("IC ", ic.ToString(), ": non-consecutive subgoals ",
                   graph.atoms[x].ToString(), " and ",
                   graph.atoms[y].ToString(),
                   " share variables; the IC is not a chain"));
      }
    }
  }
  return graph;
}

PatternGraph PatternGraph::Reversed() const {
  PatternGraph reversed;
  reversed.atoms.assign(atoms.rbegin(), atoms.rend());
  for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
    std::vector<ArgPair> swapped;
    for (const ArgPair& p : *it) {
      swapped.push_back(ArgPair{p.to_arg, p.from_arg});
    }
    std::sort(swapped.begin(), swapped.end());
    reversed.edges.push_back(std::move(swapped));
  }
  return reversed;
}

std::string PatternGraph::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) {
      os << " --{";
      for (size_t j = 0; j < edges[i - 1].size(); ++j) {
        if (j > 0) os << " ";
        os << "(" << edges[i - 1][j].from_arg + 1 << ","
           << edges[i - 1][j].to_arg + 1 << ")";
      }
      os << "}-- ";
    }
    os << atoms[i].ToString();
  }
  return os.str();
}

}  // namespace semopt
