#include "semopt/residue.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "ast/rename.h"
#include "ast/unify.h"
#include "eval/builtins.h"
#include "util/string_util.h"

namespace semopt {

const char* ResidueKindName(ResidueKind kind) {
  switch (kind) {
    case ResidueKind::kUnconditionalFact:
      return "unconditional fact";
    case ResidueKind::kConditionalFact:
      return "conditional fact";
    case ResidueKind::kUnconditionalNull:
      return "unconditional null";
    case ResidueKind::kConditionalNull:
      return "conditional null";
  }
  return "?";
}

ResidueKind Residue::kind() const {
  if (IsNull()) {
    return IsConditional() ? ResidueKind::kConditionalNull
                           : ResidueKind::kUnconditionalNull;
  }
  return IsConditional() ? ResidueKind::kConditionalFact
                         : ResidueKind::kUnconditionalFact;
}

std::string Residue::ToString() const {
  std::ostringstream os;
  if (!conditions.empty()) os << JoinToString(conditions, ", ") << " ";
  os << "->";
  if (head.has_value()) os << " " << *head;
  return os.str();
}

std::string Residue::ToString(const Program& program) const {
  return StrCat("(", sequence.ToString(program), ", ", ToString(), ")");
}

std::optional<HeadOccurrence> FindUsefulOccurrence(
    const Residue& residue, const UnfoldedSequence& unfolded) {
  if (!residue.head.has_value() || !residue.head->IsRelational()) {
    return std::nullopt;
  }
  const Atom& head_atom = residue.head->atom();

  // Protected variables can never be rebound: the unfolded head's and
  // every recursive-call interface's variables (the only channels
  // between step instances and to the outside).
  std::set<SymbolId> protected_vars;
  for (SymbolId v : CollectVariables(unfolded.rule.head())) {
    protected_vars.insert(v);
  }
  for (const std::vector<Term>& args : unfolded.recursive_args) {
    for (const Term& t : args) {
      if (t.IsVariable()) protected_vars.insert(t.symbol());
    }
  }

  // Pass 1: prefer an exact occurrence (no local rebinding), which
  // needs no companions. Pass 2: allow local rebinding with witnessed
  // companions.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < unfolded.rule.body().size(); ++i) {
      const Literal& lit = unfolded.rule.body()[i];
      if (!lit.IsRelational() || lit.negated()) continue;
      const size_t step = unfolded.source_step[i];

      std::set<SymbolId> frozen = protected_vars;
      if (pass == 0) {
        // Exact: every sequence variable is rigid; only IC leftovers in
        // the head may bind.
        for (SymbolId v : CollectVariables(unfolded.rule)) frozen.insert(v);
      } else {
        // Local rebinding: variables of OTHER steps stay rigid; this
        // step's local variables may bind.
        for (size_t j = 0; j < unfolded.rule.body().size(); ++j) {
          if (unfolded.source_step[j] == step) continue;
          for (SymbolId v : CollectVariables(unfolded.rule.body()[j])) {
            frozen.insert(v);
          }
        }
      }

      Substitution sigma;
      if (!UnifyAtomsFrozen(lit.atom(), head_atom, frozen, &sigma)) continue;

      HeadOccurrence occurrence;
      occurrence.body_index = i;
      occurrence.step = step;
      occurrence.literal_in_rule = unfolded.source_literal[i];
      occurrence.extension = sigma;

      // Companions: same-step literals containing a rebound local
      // variable; each must be witnessed.
      bool all_witnessed = true;
      for (size_t j = 0; j < unfolded.rule.body().size() && all_witnessed;
           ++j) {
        if (j == i || unfolded.source_step[j] != step) continue;
        const Literal& other = unfolded.rule.body()[j];
        bool touched = false;
        for (SymbolId v : CollectVariables(other)) {
          if (sigma.IsBound(v)) touched = true;
        }
        if (!touched) continue;
        Literal rewritten = sigma.Apply(other);
        // Ground-true comparisons need no witness.
        if (rewritten.IsComparison()) {
          Result<bool> value = EvalComparison(rewritten);
          if (value.ok() && *value) {
            occurrence.companion_body_indices.push_back(j);
            occurrence.witness_body_indices.push_back(SIZE_MAX);
            continue;
          }
        }
        bool witnessed = false;
        for (size_t w = 0; w < unfolded.rule.body().size(); ++w) {
          if (w == j) continue;
          if (unfolded.rule.body()[w] == rewritten) {
            occurrence.companion_body_indices.push_back(j);
            occurrence.witness_body_indices.push_back(w);
            occurrence.witness_steps.push_back(unfolded.source_step[w]);
            witnessed = true;
            break;
          }
        }
        if (!witnessed) all_witnessed = false;
      }
      if (!all_witnessed) continue;
      return occurrence;
    }
  }
  return std::nullopt;
}

bool IsUseful(const Residue& residue, const UnfoldedSequence& unfolded) {
  if (!residue.head.has_value() || !residue.head->IsRelational()) {
    // Null residues and evaluable heads are trivially useful (paper §3).
    return true;
  }
  return FindUsefulOccurrence(residue, unfolded).has_value();
}

std::optional<Residue> SimplifyResidue(Residue residue) {
  std::vector<Literal> kept;
  for (const Literal& cond : residue.conditions) {
    if (cond.IsComparison() && cond.lhs().IsConstant() &&
        cond.rhs().IsConstant()) {
      Result<bool> value = EvalComparison(cond);
      if (value.ok() && *value) continue;       // trivially true: drop
      if (value.ok() && !*value) return std::nullopt;  // vacuous residue
    }
    // `X = X` is also trivially true.
    if (cond.IsComparison() && !cond.negated() &&
        cond.op() == ComparisonOp::kEq && cond.lhs() == cond.rhs()) {
      continue;
    }
    if (std::find(kept.begin(), kept.end(), cond) == kept.end()) {
      kept.push_back(cond);
    }
  }
  residue.conditions = std::move(kept);

  if (residue.head.has_value() && residue.head->IsComparison()) {
    const Literal& h = *residue.head;
    if (h.lhs().IsConstant() && h.rhs().IsConstant()) {
      Result<bool> value = EvalComparison(h);
      if (value.ok() && *value) return std::nullopt;  // tautology
      if (value.ok() && !*value) residue.head.reset();  // null residue
    } else if (!h.negated() && h.op() == ComparisonOp::kEq &&
               h.lhs() == h.rhs()) {
      return std::nullopt;  // X = X tautology (paper Example 3.2)
    }
  }
  return residue;
}

Constraint RenameIcApart(const Constraint& ic) {
  Substitution renaming;
  int counter = 0;
  for (SymbolId v : CollectVariables(ic)) {
    renaming.Bind(
        v, Term::Var(StrCat(SymbolName(v), "$ic", ++counter)));
  }
  return renaming.Apply(ic);
}

}  // namespace semopt
