#ifndef SEMOPT_SEMOPT_RESIDUE_H_
#define SEMOPT_SEMOPT_RESIDUE_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/rule.h"
#include "ast/substitution.h"
#include "semopt/expansion.h"

namespace semopt {

/// Classification of residues (paper Definition 4.1). Free residues
/// never contain database atoms in their *body*; the body is a
/// conjunction of evaluable conditions and the head is a single
/// database/evaluable atom (fact residue) or absent (null residue).
enum class ResidueKind {
  kUnconditionalFact,  //        -> A
  kConditionalFact,    // E1..Em -> A   (m > 0)
  kUnconditionalNull,  //        -> ⊥   (body always unsatisfiable)
  kConditionalNull,    // E1..Em -> ⊥
};

const char* ResidueKindName(ResidueKind kind);

/// A residue of an IC w.r.t. an expansion sequence: the part of the IC
/// left over after (free, maximal) subsumption, under the subsuming
/// substitution θ. Written (s, R) in the paper.
struct Residue {
  /// Evaluable conditions E1..Em (θ already applied).
  std::vector<Literal> conditions;
  /// The consequent A (θ applied); nullopt for a null residue.
  std::optional<Literal> head;
  /// The expansion sequence s that produced this residue.
  ExpansionSequence sequence;
  /// Label of the originating IC.
  std::string ic_label;
  /// The subsuming substitution (for usefulness extension).
  Substitution theta;

  bool IsNull() const { return !head.has_value(); }
  bool IsConditional() const { return !conditions.empty(); }
  ResidueKind kind() const;

  /// Renders e.g. "(r1 r1, -> expert(P, F))" without program context, or
  /// "R = 'executive' -> experienced(U)".
  std::string ToString() const;
  std::string ToString(const Program& program) const;
};

/// Where a fact residue's head atom occurs inside the unfolded sequence
/// (needed to push atom elimination into the right α-rule).
///
/// The match is taken modulo (i) the IC's leftover variables (the
/// paper's extension "θ' so that Aθ' = B") and (ii) the matched rule
/// instance's *local existential* variables — variables occurring
/// neither in the unfolded head nor in any recursive-call interface.
/// Rebinding a local variable is what makes Example 3.2 work: the
/// residue head expert(P, F') matches the rule atom expert(P, F) with
/// F ↦ F'. Every other same-step literal containing a rebound local
/// variable must then itself be witnessed by an existing sequence
/// literal (field(T, F') in the example); those companions are removed
/// together with the atom during elimination.
struct HeadOccurrence {
  /// Index of the matched atom in the unfolded rule's body.
  size_t body_index = 0;
  /// Which sequence step contributed the matched atom.
  size_t step = 0;
  /// Literal index inside that step's original rule body.
  size_t literal_in_rule = 0;
  /// The unifier realizing head == atom (binds IC leftovers and the
  /// instance's local variables).
  Substitution extension;
  /// Body indices (into the unfolded rule) of same-step literals that
  /// contained a rebound local variable; each is justified by
  /// `witness_body_indices` and must be eliminated together with the
  /// matched atom.
  std::vector<size_t> companion_body_indices;
  /// Body indices of the literals witnessing each companion (parallel
  /// to companion_body_indices; SIZE_MAX marks a ground-true
  /// comparison needing no witness literal).
  std::vector<size_t> witness_body_indices;
  /// Steps contributing the witnesses (for soundness-depth analysis).
  std::vector<size_t> witness_steps;
};

/// Usefulness test (paper §3, generalized as documented on
/// HeadOccurrence): a residue with a database head A is useful for its
/// sequence iff A identifies with some atom B of the unfolded sequence
/// modulo IC leftovers and B's instance-local variables, with all
/// companions witnessed; returns that occurrence. Residues without a
/// database head are trivially useful (returns nullopt but `IsUseful`
/// is true).
std::optional<HeadOccurrence> FindUsefulOccurrence(
    const Residue& residue, const UnfoldedSequence& unfolded);

/// Full usefulness check.
bool IsUseful(const Residue& residue, const UnfoldedSequence& unfolded);

/// Simplifies a residue: ground-true conditions drop; a ground-false
/// condition makes the residue vacuous (returns nullopt); a ground-true
/// evaluable head makes it trivial (nullopt); a ground-false evaluable
/// head turns it into a null residue. Duplicate conditions collapse.
std::optional<Residue> SimplifyResidue(Residue residue);

/// Renames the IC's variables apart deterministically (suffix "$icN",
/// which no other generator produces). The IC's variables are
/// implicitly quantified separately from any rule's, so every
/// subsumption test against program clauses must use the renamed form —
/// otherwise an accidental name collision lets one clause capture the
/// other's variables.
Constraint RenameIcApart(const Constraint& ic);

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_RESIDUE_H_
