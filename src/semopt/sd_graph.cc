#include "semopt/sd_graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace semopt {

std::string SdEdge::ToString(const Program& program) const {
  std::ostringstream os;
  os << "<" << from.ToString(program) << ", " << to.ToString(program)
     << "> <";
  if (expansion.empty()) {
    os << "same-instance";
  } else {
    for (size_t i = 0; i < expansion.size(); ++i) {
      if (i > 0) os << " ";
      os << program.rules()[expansion[i]].label();
    }
  }
  os << ", {";
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) os << " ";
    os << "(" << pairs[i].from_arg + 1 << "," << pairs[i].to_arg + 1 << ")";
  }
  os << "}>";
  return os.str();
}

namespace {

using EdgeKey = std::tuple<SubgoalRef, SubgoalRef, std::vector<size_t>>;

void AddPair(std::map<EdgeKey, std::set<ArgPair>>* acc, const SubgoalRef& a,
             const SubgoalRef& b, std::vector<size_t> expansion,
             ArgPair pair) {
  (*acc)[EdgeKey{a, b, std::move(expansion)}].insert(pair);
}

}  // namespace

SdGraph SdGraph::Build(const Program& program, const ApGraph& ap_graph,
                       size_t max_flow_depth) {
  SdGraph graph;
  graph.program_ = &program;

  std::map<EdgeKey, std::set<ArgPair>> acc;

  // --- Same-instance edges ------------------------------------------------
  // Two EDB subgoals of the same rule sharing a variable: directly
  // (dummy edges cover sharing that bypasses the recursive predicate),
  // or through a head/recursive variable. We just scan atoms pairwise;
  // this realizes the paper's undirected SD edges.
  for (size_t x = 0; x < ap_graph.subgoals().size(); ++x) {
    for (size_t y = 0; y < ap_graph.subgoals().size(); ++y) {
      if (x == y) continue;
      const SubgoalRef& a = ap_graph.subgoals()[x];
      const SubgoalRef& b = ap_graph.subgoals()[y];
      if (a.rule_index != b.rule_index) continue;
      const Atom& atom_a = ap_graph.AtomOf(program, a);
      const Atom& atom_b = ap_graph.AtomOf(program, b);
      for (uint32_t i = 0; i < atom_a.args().size(); ++i) {
        if (!atom_a.arg(i).IsVariable()) continue;
        for (uint32_t j = 0; j < atom_b.args().size(); ++j) {
          if (atom_a.arg(i) == atom_b.arg(j)) {
            AddPair(&acc, a, b, {}, ArgPair{i, j});
          }
        }
      }
    }
  }

  // --- Cross-instance edges -----------------------------------------------
  // Index the AP-graph's directed edges for traversal.
  std::map<uint32_t, std::vector<ApGraph::PosSubgoalEdge>> pos_to_subgoal;
  for (const auto& e : ap_graph.pos_subgoal_edges()) {
    pos_to_subgoal[e.head_pos].push_back(e);
  }
  std::map<uint32_t, std::vector<ApGraph::PosPosEdge>> pos_to_pos;
  for (const auto& e : ap_graph.pos_pos_edges()) {
    pos_to_pos[e.head_pos].push_back(e);
  }

  // DFS over (recursive position, rule path). From subgoal `a` arg `i`
  // entering body-recursive position k, each further rule application
  // maps head position k of the inner instance either into a subgoal
  // (emit an edge) or onto a deeper recursive position (continue).
  struct FlowStart {
    SubgoalRef subgoal;
    uint32_t arg;
    uint32_t rec_pos;
  };
  std::vector<FlowStart> starts;
  for (const auto& e : ap_graph.subgoal_pos_edges()) {
    starts.push_back(FlowStart{e.subgoal, e.arg, e.rec_pos});
  }

  for (const FlowStart& start : starts) {
    // Depth-first over expansion paths; each path is a sequence of rule
    // indices applied below start.subgoal's instance.
    struct Frame {
      uint32_t pos;
      std::vector<size_t> path;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{start.rec_pos, {}});
    while (!stack.empty()) {
      Frame frame = std::move(stack.back());
      stack.pop_back();
      if (frame.path.size() >= max_flow_depth) continue;
      // Apply one more rule: the inner instance's head position
      // frame.pos may feed subgoals of that rule or its own recursive
      // call.
      for (const auto& e : pos_to_subgoal[frame.pos]) {
        std::vector<size_t> expansion = frame.path;
        expansion.push_back(e.subgoal.rule_index);
        AddPair(&acc, start.subgoal, e.subgoal, std::move(expansion),
                ArgPair{start.arg, e.arg});
      }
      for (const auto& e : pos_to_pos[frame.pos]) {
        // Avoid revisiting the same position through the same rule more
        // than the depth bound allows; the depth bound alone keeps the
        // search finite.
        Frame next;
        next.pos = e.rec_pos;
        next.path = frame.path;
        next.path.push_back(e.rule_index);
        stack.push_back(std::move(next));
      }
    }
  }

  for (auto& [key, pairs] : acc) {
    SdEdge edge;
    edge.from = std::get<0>(key);
    edge.to = std::get<1>(key);
    edge.expansion = std::get<2>(key);
    edge.pairs.assign(pairs.begin(), pairs.end());
    graph.edges_.push_back(std::move(edge));
  }
  return graph;
}

std::vector<const SdEdge*> SdGraph::EdgesBetween(
    const Program& program, const PredicateId& from,
    const PredicateId& to) const {
  std::vector<const SdEdge*> out;
  for (const SdEdge& e : edges_) {
    const Atom& a =
        program.rules()[e.from.rule_index].body()[e.from.literal_index].atom();
    const Atom& b =
        program.rules()[e.to.rule_index].body()[e.to.literal_index].atom();
    if (a.pred_id() == from && b.pred_id() == to) out.push_back(&e);
  }
  return out;
}

std::string SdGraph::ToString(const Program& program) const {
  std::ostringstream os;
  for (const SdEdge& e : edges_) os << "  " << e.ToString(program) << "\n";
  return os.str();
}

}  // namespace semopt
