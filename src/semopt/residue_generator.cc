#include "semopt/residue_generator.h"

#include <algorithm>
#include <map>
#include <set>

#include "semopt/ap_graph.h"
#include "semopt/pattern_graph.h"
#include "semopt/sd_graph.h"
#include "semopt/subsumption.h"
#include "util/string_util.h"

namespace semopt {

namespace {

/// Extracts the residues of `ic` against one unfolded sequence.
void ResiduesOfSequence(const Constraint& original_ic,
                        const ExpansionSequence& sequence,
                        const UnfoldedSequence& unfolded,
                        const ResidueGenOptions& options,
                        ResidueGenStats* stats, std::vector<Residue>* out) {
  // The IC's variables quantify separately from the program's; rename
  // apart so name collisions cannot capture sequence variables.
  Constraint ic = RenameIcApart(original_ic);
  std::vector<Atom> targets;
  for (const Literal& lit : unfolded.rule.body()) {
    if (lit.IsRelational() && !lit.negated()) targets.push_back(lit.atom());
  }
  if (stats != nullptr) ++stats->subsumption_calls;
  std::vector<SubsumptionMatch> matches =
      FindSubsumptions(ic.DatabaseBody(), targets, /*require_all=*/true,
                       options.max_matches_per_sequence);
  for (const SubsumptionMatch& match : matches) {
    Residue residue;
    residue.sequence = sequence;
    residue.ic_label = ic.label();
    residue.theta = match.theta;
    for (const Literal& e : ic.EvaluableBody()) {
      residue.conditions.push_back(match.theta.Apply(e));
    }
    if (ic.head().has_value()) {
      residue.head = match.theta.Apply(*ic.head());
    }
    std::optional<Residue> simplified = SimplifyResidue(std::move(residue));
    if (!simplified.has_value()) continue;
    if (options.require_useful) {
      // Useful (paper §3): null residues and evaluable heads trivially;
      // a database head when it occurs in the sequence (enabling
      // elimination). Additionally, a database head *sharing variables*
      // with the sequence is kept: it does not occur but can be
      // introduced as a subgoal (Example 4.2's doctoral(S) residue).
      bool useful = IsUseful(*simplified, unfolded);
      if (!useful && simplified->head.has_value() &&
          simplified->head->IsRelational()) {
        std::set<SymbolId> seq_vars;
        for (SymbolId v : CollectVariables(unfolded.rule)) {
          seq_vars.insert(v);
        }
        for (SymbolId v : CollectVariables(*simplified->head)) {
          if (seq_vars.count(v) > 0) useful = true;
        }
      }
      if (!useful) continue;
    }
    // Dedup by (sequence, conditions, head).
    bool duplicate = false;
    for (const Residue& existing : *out) {
      if (existing.sequence == simplified->sequence &&
          existing.head == simplified->head &&
          existing.conditions.size() == simplified->conditions.size()) {
        bool same = true;
        for (const Literal& c : simplified->conditions) {
          if (std::find(existing.conditions.begin(),
                        existing.conditions.end(),
                        c) == existing.conditions.end()) {
            same = false;
            break;
          }
        }
        if (same) {
          duplicate = true;
          break;
        }
      }
    }
    if (!duplicate) {
      if (stats != nullptr) ++stats->residues_found;
      out->push_back(std::move(*simplified));
    }
  }
}

/// Stitches SD edges along the pattern chain into candidate expansion
/// sequences (phase 1 of Algorithm 3.1). `orientation` is the pattern
/// graph in the embedding direction being tried.
void CollectCandidates(const Program& program, const SdGraph& sd,
                       const PatternGraph& orientation,
                       const ResidueGenOptions& options,
                       std::set<ExpansionSequence>* candidates) {
  const size_t k = orientation.atoms.size();

  // Pre-index SD edges by source occurrence + destination predicate.
  // Label containment (Lemma 3.1(ii)): the pattern edge's pairs must be
  // a subset of the SD edge's pairs.
  auto pairs_contained = [](const std::vector<ArgPair>& needed,
                            const std::vector<ArgPair>& have) {
    for (const ArgPair& p : needed) {
      if (std::find(have.begin(), have.end(), p) == have.end()) return false;
    }
    return true;
  };

  struct State {
    size_t t;                // next pattern edge to satisfy
    SubgoalRef occurrence;   // where atom t is matched
    std::vector<size_t> sequence;
  };

  auto atom_of = [&](const SubgoalRef& ref) -> const Atom& {
    return program.rules()[ref.rule_index].body()[ref.literal_index].atom();
  };

  std::vector<State> stack;
  // Seed: every occurrence of the first pattern atom's predicate.
  std::set<SubgoalRef> seeds;
  for (const SdEdge& e : sd.edges()) {
    if (atom_of(e.from).pred_id() == orientation.atoms[0].pred_id()) {
      seeds.insert(e.from);
    }
    if (atom_of(e.to).pred_id() == orientation.atoms[0].pred_id()) {
      seeds.insert(e.to);
    }
  }
  // For k == 1 there are no edges; handled by the caller.
  for (const SubgoalRef& seed : seeds) {
    stack.push_back(State{0, seed, {seed.rule_index}});
  }

  while (!stack.empty()) {
    if (candidates->size() >= options.max_candidates) return;
    State state = std::move(stack.back());
    stack.pop_back();
    if (state.t == k - 1) {
      ExpansionSequence seq;
      seq.rule_indices = state.sequence;
      candidates->insert(std::move(seq));
      continue;
    }
    for (const SdEdge& e : sd.edges()) {
      if (!(e.from == state.occurrence)) continue;
      if (atom_of(e.to).pred_id() !=
          orientation.atoms[state.t + 1].pred_id()) {
        continue;
      }
      if (!pairs_contained(orientation.edges[state.t], e.pairs)) continue;
      State next;
      next.t = state.t + 1;
      next.occurrence = e.to;
      next.sequence = state.sequence;
      for (size_t r : e.expansion) next.sequence.push_back(r);
      stack.push_back(std::move(next));
    }
  }
}

}  // namespace

Result<std::vector<Residue>> GenerateResidues(const Program& program,
                                              const Constraint& ic,
                                              const PredicateId& pred,
                                              const ResidueGenOptions& options,
                                              ResidueGenStats* stats) {
  std::vector<Residue> out;

  Result<PatternGraph> pattern = PatternGraph::Build(ic);
  if (!pattern.ok()) {
    if (pattern.status().code() == StatusCode::kFailedPrecondition) {
      return out;  // IC outside the supported chain class: no residues
    }
    return pattern.status();
  }

  if (program.RulesFor(pred).empty()) return out;
  SEMOPT_ASSIGN_OR_RETURN(ApGraph ap, ApGraph::Build(program, pred));

  // Pattern variants to embed: the IC's database chain, and — when the
  // IC head is a database atom sharing variables with exactly one end
  // of the chain — the chain extended with the head atom. The extension
  // finds the sequences on which the residue head becomes *useful*
  // (Example 4.1: boss alone embeds anywhere, but only following the
  // flow to the experienced(B) occurrence yields r2 r2 r2 r2).
  std::vector<PatternGraph> variants{*pattern};
  if (ic.head().has_value() && ic.head()->IsRelational() &&
      !ic.head()->negated()) {
    const Atom& head = ic.head()->atom();
    auto shared_pairs = [](const Atom& a, const Atom& b) {
      std::vector<ArgPair> pairs;
      for (uint32_t i = 0; i < a.args().size(); ++i) {
        if (!a.arg(i).IsVariable()) continue;
        for (uint32_t j = 0; j < b.args().size(); ++j) {
          if (a.arg(i) == b.arg(j)) pairs.push_back(ArgPair{i, j});
        }
      }
      std::sort(pairs.begin(), pairs.end());
      return pairs;
    };
    std::vector<ArgPair> with_first = shared_pairs(pattern->atoms.front(), head);
    std::vector<ArgPair> with_last = shared_pairs(pattern->atoms.back(), head);
    if (!with_last.empty() &&
        (pattern->atoms.size() == 1 || with_first.empty())) {
      PatternGraph extended = *pattern;
      extended.atoms.push_back(head);
      extended.edges.push_back(with_last);
      variants.push_back(std::move(extended));
    } else if (!with_first.empty() && with_last.empty()) {
      PatternGraph extended;
      extended.atoms.push_back(head);
      extended.atoms.insert(extended.atoms.end(), pattern->atoms.begin(),
                            pattern->atoms.end());
      std::vector<ArgPair> swapped;
      for (const ArgPair& p : with_first) {
        swapped.push_back(ArgPair{p.to_arg, p.from_arg});
      }
      std::sort(swapped.begin(), swapped.end());
      extended.edges.push_back(swapped);
      extended.edges.insert(extended.edges.end(), pattern->edges.begin(),
                            pattern->edges.end());
      variants.push_back(std::move(extended));
    }
  }

  std::set<ExpansionSequence> candidates;
  bool need_sd = false;
  for (const PatternGraph& variant : variants) {
    if (variant.atoms.size() > 1) need_sd = true;
  }
  {
    // Degenerate single-atom chain: any single rule containing an
    // occurrence of the atom's predicate.
    if (pattern->atoms.size() == 1) {
      for (const SubgoalRef& ref : ap.subgoals()) {
        if (ap.AtomOf(program, ref).pred_id() ==
            pattern->atoms[0].pred_id()) {
          ExpansionSequence seq;
          seq.rule_indices = {ref.rule_index};
          candidates.insert(std::move(seq));
        }
      }
    }
    if (need_sd) {
      SdGraph sd = SdGraph::Build(program, ap, options.max_flow_depth);
      for (const PatternGraph& variant : variants) {
        if (variant.atoms.size() < 2) continue;
        CollectCandidates(program, sd, variant, options, &candidates);
        CollectCandidates(program, sd, variant.Reversed(), options,
                          &candidates);
      }
    }
  }
  if (stats != nullptr) stats->candidate_sequences += candidates.size();

  // Phase 2: verify each candidate by direct maximal subsumption on its
  // unfolding and extract residues. Shorter sequences first so the
  // optimizer prefers cheaper isolations.
  std::vector<ExpansionSequence> ordered(candidates.begin(),
                                         candidates.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const ExpansionSequence& a, const ExpansionSequence& b) {
              if (a.rule_indices.size() != b.rule_indices.size()) {
                return a.rule_indices.size() < b.rule_indices.size();
              }
              return a.rule_indices < b.rule_indices;
            });
  for (const ExpansionSequence& seq : ordered) {
    Result<UnfoldedSequence> unfolded = Unfold(program, seq);
    if (!unfolded.ok()) continue;  // e.g. non-recursive rule mid-sequence
    if (stats != nullptr) ++stats->sequences_unfolded;
    ResiduesOfSequence(ic, seq, *unfolded, options, stats, &out);
  }
  return out;
}

Result<std::vector<Residue>> GenerateAllResidues(
    const Program& program, const ResidueGenOptions& options,
    ResidueGenStats* stats) {
  std::vector<Residue> out;
  for (const PredicateId& pred : program.IdbPredicates()) {
    for (const Constraint& ic : program.constraints()) {
      SEMOPT_ASSIGN_OR_RETURN(
          std::vector<Residue> found,
          GenerateResidues(program, ic, pred, options, stats));
      for (Residue& r : found) out.push_back(std::move(r));
    }
  }
  return out;
}

Result<std::vector<Residue>> GenerateResiduesExhaustive(
    const Program& program, const Constraint& ic, const PredicateId& pred,
    size_t max_sequence_length, const ResidueGenOptions& options,
    ResidueGenStats* stats) {
  std::vector<Residue> out;
  std::vector<ExpansionSequence> sequences =
      EnumerateSequences(program, pred, max_sequence_length);
  if (stats != nullptr) stats->candidate_sequences += sequences.size();
  for (const ExpansionSequence& seq : sequences) {
    Result<UnfoldedSequence> unfolded = Unfold(program, seq);
    if (!unfolded.ok()) continue;
    if (stats != nullptr) ++stats->sequences_unfolded;
    ResiduesOfSequence(ic, seq, *unfolded, options, stats, &out);
  }
  return out;
}

}  // namespace semopt
