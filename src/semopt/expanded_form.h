#ifndef SEMOPT_SEMOPT_EXPANDED_FORM_H_
#define SEMOPT_SEMOPT_EXPANDED_FORM_H_

#include <vector>

#include "ast/rule.h"
#include "semopt/residue.h"

namespace semopt {

/// Converts `ic` to expanded form (paper §2, after Chakravarthy et al.):
/// every argument of every database body atom becomes a distinct fresh
/// variable, with the displaced constant/shared-variable constraints
/// made explicit as `=` literals appended to the body. The head and
/// evaluable body literals keep their original terms.
///
/// Example (paper Example 2.1):
///   a(V1,V2,V3), b(V2,V4), c(V4,V5,V6) -> d(V6,V7)
/// expands to
///   a(V1,V2,V3), b(V8,V4), c(V9,V5,V6), V8 = V2, V9 = V4 -> d(V6,V7).
Constraint ExpandConstraint(const Constraint& ic);

/// Classical (Chakravarthy-style) residues of `ic` w.r.t. a single
/// rule's body: the IC is expanded first, partial subsumption is run on
/// the expanded database atoms against the rule's database body atoms,
/// and the unmatched remainder (equalities included, trivially-true ones
/// simplified away) forms the residue. Unlike the *free* residues of
/// Definition 2.1, classical residues may retain database atoms in
/// their body, so they are returned as Constraints. Used for the E7
/// ablation and by the evaluation-paradigm baseline.
std::vector<Constraint> ClassicalRuleResidues(const Constraint& ic,
                                              const Rule& rule);

/// True when a classical residue is trivial in the context of its rule:
/// its body is empty or only trivially-true equalities, and its head is
/// already a body literal of the rule or a tautology (paper Example 3.2:
/// `P = P' -> expert(P, F)` is trivial for r1).
bool IsTrivialClassicalResidue(const Constraint& residue, const Rule& rule);

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_EXPANDED_FORM_H_
