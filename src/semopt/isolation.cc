#include "semopt/isolation.h"

#include <algorithm>
#include <map>
#include <set>

#include "ast/rename.h"
#include "util/string_util.h"

namespace semopt {

Result<IsolationResult> IsolateSequence(const Program& program,
                                        const ExpansionSequence& sequence,
                                        int isolation_id) {
  SEMOPT_ASSIGN_OR_RETURN(UnfoldedSequence unfolded,
                          Unfold(program, sequence));
  const size_t k = sequence.rule_indices.size();
  PredicateId pred =
      program.rules()[sequence.rule_indices[0]].head().pred_id();

  IsolationResult out;
  out.sequence = sequence;
  out.unfolded = unfolded;
  out.k = k;
  out.pred = pred;
  out.source_program = program;

  if (k == 1) {
    // No exit predicates needed: replace the rule with its
    // unfolding-ordered reconstruction so literal positions line up
    // with `unfolded`.
    for (size_t i = 0; i < program.rules().size(); ++i) {
      if (i == sequence.rule_indices[0]) {
        Rule rebuilt(program.rules()[i].label(), unfolded.rule.head(),
                     unfolded.rule.body());
        out.committed_rules.push_back(out.program.rules().size());
        out.program.AddRule(std::move(rebuilt));
      } else {
        out.program.AddRule(program.rules()[i]);
      }
    }
    for (const Constraint& ic : program.constraints()) {
      out.program.AddConstraint(ic);
    }
    return out;
  }

  // Exit predicate per distinct excluded rule: q_d routes derivations
  // that follow the sequence's first d rules and then deviate (apply a
  // rule other than seq[d]).
  std::map<size_t, SymbolId> q_by_excluded_rule;
  out.q_names.reserve(k - 1);
  for (size_t d = 1; d < k; ++d) {
    size_t excluded = sequence.rule_indices[d];
    auto it = q_by_excluded_rule.find(excluded);
    if (it == q_by_excluded_rule.end()) {
      it = q_by_excluded_rule
               .emplace(excluded,
                        InternSymbol(StrCat(SymbolName(pred.name), "$q",
                                            isolation_id, "_", d)))
               .first;
    }
    out.q_names.push_back(it->second);
  }

  // Rules of other predicates are copied unchanged.
  std::vector<size_t> pred_rules = program.RulesFor(pred);
  std::set<size_t> pred_rule_set(pred_rules.begin(), pred_rules.end());
  for (size_t i = 0; i < program.rules().size(); ++i) {
    if (pred_rule_set.count(i) == 0) out.program.AddRule(program.rules()[i]);
  }

  // γ-rules for q_0 = p: the original rules except the sequence's first.
  for (size_t l : pred_rules) {
    if (l == sequence.rule_indices[0]) continue;
    out.program.AddRule(program.rules()[l]);
  }

  // Deviation rules: for each first-deviation depth d, the prefix
  // unfolding with its trailing recursive atom redirected to q_d.
  for (size_t d = 1; d < k; ++d) {
    ExpansionSequence prefix;
    prefix.rule_indices.assign(sequence.rule_indices.begin(),
                               sequence.rule_indices.begin() + d);
    SEMOPT_ASSIGN_OR_RETURN(UnfoldedSequence prefix_unfolded,
                            Unfold(program, prefix));
    if (!prefix_unfolded.ends_recursive) {
      return Status::Internal(
          "non-recursive rule inside the sequence prefix");
    }
    Rule dev = prefix_unfolded.rule;
    Literal& trailing = dev.mutable_body().back();
    trailing = Literal::Relational(
        Atom(out.q_names[d - 1], trailing.atom().args()));
    dev.set_label(StrCat("dev", d, "$", isolation_id));
    out.program.AddRule(std::move(dev));
  }

  // The committed rule: the full unfolding (its trailing recursive atom
  // — when the sequence ends recursively — continues as plain p).
  {
    Rule committed = unfolded.rule;
    committed.set_label(StrCat("committed$", isolation_id));
    out.committed_rules.push_back(out.program.rules().size());
    out.program.AddRule(std::move(committed));
  }

  // γ-rules for the exit predicates (once per distinct q).
  for (const auto& [excluded, q_name] : q_by_excluded_rule) {
    for (size_t l : pred_rules) {
      if (l == excluded) continue;
      const Rule& original = program.rules()[l];
      Rule gamma(StrCat("exit$", isolation_id, "$", SymbolName(q_name), "$",
                        original.label()),
                 Atom(q_name, original.head().args()), original.body());
      out.program.AddRule(std::move(gamma));
    }
  }

  for (const Constraint& ic : program.constraints()) {
    out.program.AddConstraint(ic);
  }
  return out;
}

}  // namespace semopt
