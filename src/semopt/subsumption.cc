#include "semopt/subsumption.h"

#include "ast/unify.h"

namespace semopt {

namespace {

/// Backtracking search mapping IC atoms (in order) onto target atoms.
class SubsumptionSearch {
 public:
  SubsumptionSearch(const std::vector<Atom>& ic_atoms,
                    const std::vector<Atom>& target_atoms, bool require_all,
                    size_t max_matches)
      : ic_atoms_(ic_atoms),
        target_atoms_(target_atoms),
        require_all_(require_all),
        max_matches_(max_matches) {}

  std::vector<SubsumptionMatch> Run() {
    assignment_.assign(ic_atoms_.size(), -1);
    Explore(0, Substitution());
    return std::move(results_);
  }

 private:
  bool Full() const {
    return max_matches_ > 0 && results_.size() >= max_matches_;
  }

  void Explore(size_t ic_index, const Substitution& theta) {
    if (Full()) return;
    if (ic_index == ic_atoms_.size()) {
      SubsumptionMatch match;
      match.theta = theta;
      match.target_index = assignment_;
      if (match.matched_count() > 0) results_.push_back(std::move(match));
      return;
    }
    for (size_t t = 0; t < target_atoms_.size(); ++t) {
      Substitution extended = theta;
      if (MatchAtom(ic_atoms_[ic_index], target_atoms_[t], &extended)) {
        assignment_[ic_index] = static_cast<int>(t);
        Explore(ic_index + 1, extended);
        assignment_[ic_index] = -1;
        if (Full()) return;
      }
    }
    if (!require_all_) {
      // Leave this IC atom unmatched (partial subsumption).
      Explore(ic_index + 1, theta);
    }
  }

  const std::vector<Atom>& ic_atoms_;
  const std::vector<Atom>& target_atoms_;
  bool require_all_;
  size_t max_matches_;
  std::vector<int> assignment_;
  std::vector<SubsumptionMatch> results_;
};

}  // namespace

std::vector<SubsumptionMatch> FindSubsumptions(
    const std::vector<Atom>& ic_atoms,
    const std::vector<Atom>& target_atoms, bool require_all,
    size_t max_matches) {
  if (ic_atoms.empty()) return {};
  return SubsumptionSearch(ic_atoms, target_atoms, require_all, max_matches)
      .Run();
}

bool Subsumes(const std::vector<Atom>& c, const std::vector<Atom>& d) {
  if (c.empty()) return true;
  return !FindSubsumptions(c, d, /*require_all=*/true, /*max_matches=*/1)
              .empty();
}

}  // namespace semopt
