#ifndef SEMOPT_SEMOPT_RUNTIME_RESIDUES_H_
#define SEMOPT_SEMOPT_RUNTIME_RESIDUES_H_

#include "ast/program.h"
#include "eval/eval_stats.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// The evaluation-paradigm baseline (paper §1: Chakravarthy et al.,
/// Lee & Han): residues are applied to the subqueries computed in each
/// iteration of the bottom-up loop, instead of being pushed into the
/// program once at compile time.
///
/// Model implemented here (documented in DESIGN.md): the evaluator
/// tracks *per-rule* deltas (one-level derivation provenance, after
/// Lee & Han's specialization). At every iteration, for every pair
/// (consuming rule r, producing rule r'), the engine re-derives the
/// residues of each IC against the depth-2 subquery r·r' — this is the
/// recurring run-time residue-application cost the transformation
/// approach avoids — and then evaluates r against delta(r') with the
/// residue exploited (redundant atom skipped, or iteration pruned).
/// Depth-1 (rule-level) residues are exploited the same way.
///
/// The computed fixpoint is identical to plain evaluation on databases
/// satisfying the ICs; `stats->runtime_residue_checks` counts the
/// subsumption tests performed during evaluation.
Result<Database> EvaluateWithRuntimeResidues(const Program& program,
                                             const Database& edb,
                                             EvalStats* stats = nullptr);

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_RUNTIME_RESIDUES_H_
