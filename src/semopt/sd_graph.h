#ifndef SEMOPT_SEMOPT_SD_GRAPH_H_
#define SEMOPT_SEMOPT_SD_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "semopt/ap_graph.h"

namespace semopt {

/// A pair of argument positions (i, j): argument i of the source
/// subgoal holds the same value as argument j of the destination
/// subgoal across the edge's expansion.
struct ArgPair {
  uint32_t from_arg;
  uint32_t to_arg;

  bool operator==(const ArgPair& o) const {
    return from_arg == o.from_arg && to_arg == o.to_arg;
  }
  bool operator<(const ArgPair& o) const {
    if (from_arg != o.from_arg) return from_arg < o.from_arg;
    return to_arg < o.to_arg;
  }
};

/// A subgoal dependency edge: within the proof trees of the program,
/// subgoal `from` (in its rule instance) shares values with subgoal
/// `to`, whose instance is reached by applying the rules of `expansion`
/// below `from`'s instance. An empty expansion means both subgoals sit
/// in the same rule instance (the paper's undirected SD edges); a
/// non-empty expansion corresponds to a directed path through the
/// AP-graph's position nodes.
struct SdEdge {
  SubgoalRef from;
  SubgoalRef to;
  std::vector<size_t> expansion;  // rule indices applied below `from`
  std::vector<ArgPair> pairs;     // sorted, deduplicated

  std::string ToString(const Program& program) const;
};

/// The subgoal dependency graph derived from an AP-graph (paper §3).
/// Edges are computed by following variable flow: a subgoal argument
/// that coincides with a position of the body recursive atom reaches,
/// one expansion step later, the corresponding head position of the
/// next instance, from which it may enter a subgoal (PosSubgoal edge)
/// or continue to a deeper instance (PosPos edge). Flow paths are
/// explored up to `max_flow_depth` rule applications.
class SdGraph {
 public:
  static SdGraph Build(const Program& program, const ApGraph& ap_graph,
                       size_t max_flow_depth);

  const std::vector<SdEdge>& edges() const { return edges_; }

  /// Edges whose endpoints have the given predicates (either may match
  /// several occurrences).
  std::vector<const SdEdge*> EdgesBetween(const Program& program,
                                          const PredicateId& from,
                                          const PredicateId& to) const;

  std::string ToString(const Program& program) const;

 private:
  const Program* program_ = nullptr;
  std::vector<SdEdge> edges_;
};

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_SD_GRAPH_H_
