#ifndef SEMOPT_SEMOPT_FACTOR_H_
#define SEMOPT_SEMOPT_FACTOR_H_

#include "semopt/isolation.h"
#include "util/result.h"

namespace semopt {

/// Post-pass over a pushed isolation: factors each (flat) committed
/// k-step rule into a chain of materialized intermediate predicates,
/// one per sequence step — the committed-only version of the paper's
/// p_i spine.
///
/// Why: the flat committed rule re-explores its multi-step join per
/// delta tuple, which multiplies duplicate derivations on databases
/// with join fan-in (R paths per step become R^k per rule); the chain
/// deduplicates at every step boundary at the cost of materializing the
/// intermediates. Factoring is a pure join re-association, so it
/// preserves the program's semantics; whether it pays off depends on
/// the workload's fan-in (see bench E3's ablation).
///
/// Literal placement: literals inherited from the unfolding stay with
/// their sequence step; literals added by the pushes (conditions,
/// guards, introduced atoms) are placed at the *earliest* step where
/// all their variables are bound (deep-step variables flow upward
/// through the chain interfaces automatically). Chain heads carry
/// exactly the interface variables (shared between the suffix and the
/// prefix/head), so e.g. Example 4.1's rank condition is evaluated at
/// the bottom of the chain, before anything is materialized.
///
/// Identical chain suffixes across committed copies (guard splits)
/// share their intermediate predicates.
///
/// Must run after all pushes on `iso`; committed_rules afterwards
/// refers to the chain-consumer rules, on which further pushes are not
/// supported.
Status FactorCommittedRules(IsolationResult* iso, int isolation_id);

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_FACTOR_H_
