#ifndef SEMOPT_SEMOPT_EXPANSION_H_
#define SEMOPT_SEMOPT_EXPANSION_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "ast/rename.h"
#include "util/result.h"

namespace semopt {

/// An expansion sequence (paper §2): a sequence of program rules applied
/// top-down when expanding the recursive predicate, in 1-1
/// correspondence with proof trees for linear programs. Stored as
/// indices into the program's rule list.
struct ExpansionSequence {
  std::vector<size_t> rule_indices;

  bool operator==(const ExpansionSequence& o) const {
    return rule_indices == o.rule_indices;
  }
  bool operator<(const ExpansionSequence& o) const {
    return rule_indices < o.rule_indices;
  }

  size_t length() const { return rule_indices.size(); }

  /// Renders rule labels, e.g. "r0 r0 r0".
  std::string ToString(const Program& program) const;
};

/// The unfolding of an expansion sequence into a single conjunctive
/// rule, with provenance linking each body literal back to the sequence
/// step and rule-body position it came from.
struct UnfoldedSequence {
  /// head p(X1..Xn); body = accumulated non-recursive literals of every
  /// step, followed by the trailing recursive literal when the last rule
  /// of the sequence is recursive.
  Rule rule;
  /// For each body literal of `rule`: the sequence step (0-based) that
  /// contributed it. The trailing recursive literal carries the last
  /// step index.
  std::vector<size_t> source_step;
  /// For each body literal of `rule`: its literal index within the
  /// original rule body of that step.
  std::vector<size_t> source_literal;
  /// Recursive-call arguments after each step i (Z̄_i in the isolation
  /// construction): args[i] are the arguments the step-i rule instance
  /// passes to the next instance. Size = number of recursive steps.
  std::vector<std::vector<Term>> recursive_args;
  /// True when the final rule of the sequence is recursive (so `rule`
  /// has a trailing recursive literal).
  bool ends_recursive = false;
};

/// Unfolds `sequence` top-down (paper §2 / Example 3.1). Requirements:
/// all rules in the sequence define the same predicate; every rule but
/// possibly the last contains exactly one body occurrence of that
/// predicate (linear recursion); the program is rectified. Freshly
/// renames each inner instance so no variables collide.
Result<UnfoldedSequence> Unfold(const Program& program,
                                const ExpansionSequence& sequence);

/// Enumerates all expansion sequences for `pred` of length in
/// [1, max_length]: any rule of `pred` may appear last; every non-final
/// position must be a (linearly) recursive rule. Used by the exhaustive
/// residue-generation baseline (bench E4) and by tests.
std::vector<ExpansionSequence> EnumerateSequences(const Program& program,
                                                  const PredicateId& pred,
                                                  size_t max_length);

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_EXPANSION_H_
