#include "semopt/expansion.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <sstream>

#include "ast/unify.h"
#include "util/string_util.h"

namespace semopt {

std::string ExpansionSequence::ToString(const Program& program) const {
  std::ostringstream os;
  for (size_t i = 0; i < rule_indices.size(); ++i) {
    if (i > 0) os << " ";
    const Rule& r = program.rules()[rule_indices[i]];
    os << (r.label().empty() ? StrCat("#", rule_indices[i]) : r.label());
  }
  return os.str();
}

namespace {

/// Index of the unique positive body occurrence of `pred` in `rule`, or
/// -1 when absent. Returns -2 when there is more than one (non-linear).
int RecursiveLiteralIndex(const Rule& rule, const PredicateId& pred) {
  int found = -1;
  for (size_t i = 0; i < rule.body().size(); ++i) {
    const Literal& lit = rule.body()[i];
    if (lit.IsRelational() && !lit.negated() &&
        lit.atom().pred_id() == pred) {
      if (found >= 0) return -2;
      found = static_cast<int>(i);
    }
  }
  return found;
}

}  // namespace

Result<UnfoldedSequence> Unfold(const Program& program,
                                const ExpansionSequence& sequence) {
  if (sequence.rule_indices.empty()) {
    return Status::InvalidArgument("cannot unfold an empty sequence");
  }
  for (size_t index : sequence.rule_indices) {
    if (index >= program.rules().size()) {
      return Status::InvalidArgument(
          StrCat("rule index ", index, " out of range"));
    }
  }

  const Rule& first = program.rules()[sequence.rule_indices[0]];
  PredicateId pred = first.head().pred_id();
  for (size_t index : sequence.rule_indices) {
    if (program.rules()[index].head().pred_id() != pred) {
      return Status::InvalidArgument(
          "expansion sequence mixes rules of different predicates");
    }
  }

  FreshVariableGenerator gen("U");
  UnfoldedSequence out;
  out.rule = Rule(Atom(pred.name, first.head().args()), {});

  // `pending` is the recursive atom awaiting expansion by the next step.
  std::optional<Atom> pending;

  for (size_t step = 0; step < sequence.rule_indices.size(); ++step) {
    const Rule& original = program.rules()[sequence.rule_indices[step]];
    Rule instance = original;
    if (step > 0) {
      // Inner instance: rename apart, then unify its (rectified,
      // distinct-variable) head with the pending recursive atom.
      instance = RenameApart(original, &gen);
      Substitution mgu;
      if (!UnifyAtoms(instance.head(), *pending, &mgu)) {
        return Status::Internal(
            StrCat("failed to unify ", instance.head().ToString(), " with ",
                   pending->ToString()));
      }
      instance = mgu.Apply(instance);
      // The pending atom's variables came from the outer instance; the
      // head unification must not rebind them. For rectified rules the
      // instance head is distinct fresh variables, so the MGU only binds
      // instance-side variables — nothing to fix up here.
    }

    int rec = RecursiveLiteralIndex(instance, pred);
    if (rec == -2) {
      return Status::FailedPrecondition(
          StrCat("rule ", original.ToString(),
                 " is not linear in ", pred.ToString()));
    }
    bool is_last = step + 1 == sequence.rule_indices.size();
    if (rec < 0 && !is_last) {
      return Status::InvalidArgument(
          StrCat("non-recursive rule ", original.ToString(),
                 " appears before the end of the expansion sequence"));
    }

    for (size_t i = 0; i < instance.body().size(); ++i) {
      if (static_cast<int>(i) == rec) continue;
      out.rule.mutable_body().push_back(instance.body()[i]);
      out.source_step.push_back(step);
      out.source_literal.push_back(i);
    }
    if (rec >= 0) {
      const Atom& rec_atom = instance.body()[rec].atom();
      out.recursive_args.push_back(rec_atom.args());
      if (is_last) {
        out.rule.mutable_body().push_back(Literal::Relational(rec_atom));
        out.source_step.push_back(step);
        out.source_literal.push_back(rec);
        out.ends_recursive = true;
      } else {
        pending = rec_atom;
      }
    }
  }
  return out;
}

std::vector<ExpansionSequence> EnumerateSequences(const Program& program,
                                                  const PredicateId& pred,
                                                  size_t max_length) {
  std::vector<size_t> all_rules = program.RulesFor(pred);
  std::vector<size_t> recursive_rules;
  for (size_t i : all_rules) {
    if (RecursiveLiteralIndex(program.rules()[i], pred) >= 0) {
      recursive_rules.push_back(i);
    }
  }

  std::vector<ExpansionSequence> out;
  // Sequences are a (possibly empty) prefix of recursive rules followed
  // by one final rule (recursive or not).
  std::vector<size_t> prefix;
  std::function<void()> grow = [&]() {
    if (prefix.size() >= max_length) return;
    for (size_t last : all_rules) {
      ExpansionSequence seq;
      seq.rule_indices = prefix;
      seq.rule_indices.push_back(last);
      out.push_back(std::move(seq));
    }
    for (size_t r : recursive_rules) {
      prefix.push_back(r);
      grow();
      prefix.pop_back();
    }
  };
  grow();

  // grow() emits length-(prefix+1) sequences; dedup final-rule overlap:
  // a recursive rule appears both as "last" and as prefix extension, so
  // identical sequences are produced only once — but a recursive rule
  // used as `last` of a longer prefix equals prefix+that rule; no
  // duplicates arise. Sort for deterministic output.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace semopt
