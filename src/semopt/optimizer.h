#ifndef SEMOPT_SEMOPT_OPTIMIZER_H_
#define SEMOPT_SEMOPT_OPTIMIZER_H_

#include <set>
#include <string>
#include <vector>

#include "ast/program.h"
#include "semopt/push.h"
#include "semopt/residue_generator.h"
#include "util/result.h"

namespace semopt {

/// Options steering the end-to-end semantic optimizer.
struct OptimizerOptions {
  ResidueGenOptions residue_options;
  PushOptions push_options;
  bool enable_elimination = true;
  bool enable_introduction = true;
  bool enable_pruning = true;
  /// Database predicates considered "small" — introducing one of these
  /// as an extra subgoal is assumed profitable (paper §4(2)). Evaluable
  /// residue heads are always introducible (scan reduction).
  std::set<PredicateId> small_relations;
  /// Rectify the input program automatically when needed.
  bool auto_rectify = true;
  /// After pushing, factor each committed k-step rule into a chain of
  /// materialized intermediates (the committed-only version of the
  /// paper's p_i spine). Deduplicates join work on fan-in-heavy
  /// databases at the cost of materializing the intermediates; see
  /// bench E3's ablation.
  bool factor_committed = true;
  /// Number of optimization rounds. Each round regenerates residues
  /// against the (possibly already transformed) program and pushes
  /// again, so deeper redundancies across committed rules can be found;
  /// every round is equivalence-preserving. 1 reproduces the paper's
  /// single pass.
  size_t max_rounds = 1;
};

/// One transformation the optimizer performed.
struct AppliedOptimization {
  enum class Kind { kElimination, kIntroduction, kPruning };
  Kind kind;
  std::string description;
};

const char* OptimizationKindName(AppliedOptimization::Kind kind);

/// The outcome of semantic optimization.
struct OptimizeResult {
  /// The transformed program (semantically equivalent to the input on
  /// every database satisfying the input's integrity constraints).
  Program program;
  /// Every residue discovered, applied or not.
  std::vector<Residue> residues;
  std::vector<AppliedOptimization> applied;
  /// Residues (or pushes) that were found but not applied, with the
  /// reason.
  std::vector<std::string> skipped;
  /// Aggregated residue-generation work counters across all rounds,
  /// predicates, and ICs — the compile-time side of the paper's "no
  /// run-time overhead" claim, reported next to run-time stats.
  ResidueGenStats residue_stats;

  std::string Report() const;
};

/// End-to-end semantic optimizer: validates the paper's assumptions,
/// rectifies, generates residues (Algorithm 3.1) for every IC against
/// every IDB predicate of the input, isolates the best-scoring
/// expansion sequence per predicate (Algorithm 4.1), and pushes the
/// sequence's residues inside the recursion (§4). One isolation per
/// predicate is performed; residues on other sequences are reported in
/// `skipped`.
class SemanticOptimizer {
 public:
  explicit SemanticOptimizer(OptimizerOptions options = OptimizerOptions())
      : options_(std::move(options)) {}

  Result<OptimizeResult> Optimize(const Program& program) const;

 private:
  OptimizerOptions options_;
};

}  // namespace semopt

#endif  // SEMOPT_SEMOPT_OPTIMIZER_H_
