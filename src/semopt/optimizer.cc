#include "semopt/optimizer.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "analysis/recursion.h"
#include "analysis/rectify.h"
#include "obs/trace.h"
#include "semopt/factor.h"
#include "semopt/isolation.h"
#include "util/string_util.h"

namespace semopt {

const char* OptimizationKindName(AppliedOptimization::Kind kind) {
  switch (kind) {
    case AppliedOptimization::Kind::kElimination:
      return "atom elimination";
    case AppliedOptimization::Kind::kIntroduction:
      return "atom introduction";
    case AppliedOptimization::Kind::kPruning:
      return "subtree pruning";
  }
  return "?";
}

std::string OptimizeResult::Report() const {
  std::ostringstream os;
  os << "residues found: " << residues.size() << "\n";
  os << "residue generation: candidates=" << residue_stats.candidate_sequences
     << " unfolded=" << residue_stats.sequences_unfolded
     << " subsumption_calls=" << residue_stats.subsumption_calls
     << " residues=" << residue_stats.residues_found << "\n";
  for (const AppliedOptimization& a : applied) {
    os << "applied " << OptimizationKindName(a.kind) << ": " << a.description
       << "\n";
  }
  for (const std::string& s : skipped) os << "skipped: " << s << "\n";
  return os.str();
}

namespace {

/// How the optimizer would use one residue on its sequence's isolation.
enum class PlannedUse { kPruning, kElimination, kIntroduction, kNone };

}  // namespace

Result<OptimizeResult> SemanticOptimizer::Optimize(
    const Program& program) const {
  obs::TraceSpan optimize_span("semopt.optimize");
  {
    obs::TraceSpan validate_span("semopt.validate");
    SEMOPT_RETURN_IF_ERROR(ValidatePaperAssumptions(program));
  }

  OptimizeResult out;
  Program current = program;
  if (!IsRectified(current)) {
    if (!options_.auto_rectify) {
      return Status::FailedPrecondition(
          "program is not rectified and auto_rectify is disabled");
    }
    obs::TraceSpan rectify_span("semopt.rectify");
    SEMOPT_ASSIGN_OR_RETURN(current, Rectify(current));
  }
  current.AutoLabelRules();

  // Optimize the original predicates one at a time. Residues are
  // regenerated against the current program so rule indices stay valid
  // after earlier isolations. Additional rounds re-analyze the
  // transformed program (each round is equivalence-preserving).
  std::set<PredicateId> original_preds = program.IdbPredicates();
  int isolation_id = 0;
  size_t rounds = options_.max_rounds == 0 ? 1 : options_.max_rounds;

  for (size_t round = 0; round < rounds; ++round) {
  bool round_applied = false;
  for (const PredicateId& pred : original_preds) {
    std::vector<Residue> residues;
    {
      obs::TraceSpan residues_span("semopt.residues");
      for (const Constraint& ic : current.constraints()) {
        SEMOPT_ASSIGN_OR_RETURN(
            std::vector<Residue> found,
            GenerateResidues(current, ic, pred, options_.residue_options,
                             &out.residue_stats));
        for (Residue& r : found) residues.push_back(std::move(r));
      }
      residues_span.AddArg("found", static_cast<int64_t>(residues.size()));
    }
    for (const Residue& r : residues) out.residues.push_back(r);
    if (residues.empty()) continue;

    // Decide the intended use of each residue and score sequences.
    auto planned_use = [&](const Residue& r) -> PlannedUse {
      if (r.IsNull()) {
        return options_.enable_pruning ? PlannedUse::kPruning
                                       : PlannedUse::kNone;
      }
      if (options_.enable_elimination && r.head->IsRelational()) {
        // Elimination requires the head to occur in the sequence; the
        // generator only kept useful residues, so a relational head
        // occurs when require_useful was set. Verified again at push
        // time.
        return PlannedUse::kElimination;
      }
      if (options_.enable_introduction) {
        bool profitable =
            r.head->IsComparison() ||
            (r.head->IsRelational() &&
             options_.small_relations.count(r.head->atom().pred_id()) > 0);
        if (profitable) return PlannedUse::kIntroduction;
      }
      return PlannedUse::kNone;
    };

    std::map<ExpansionSequence, int> sequence_score;
    for (const Residue& r : residues) {
      int score = 0;
      switch (planned_use(r)) {
        case PlannedUse::kPruning:
          score = 4;
          break;
        case PlannedUse::kElimination:
          score = 3;
          break;
        case PlannedUse::kIntroduction:
          score = 1;
          break;
        case PlannedUse::kNone:
          score = 0;
          break;
      }
      sequence_score[r.sequence] += score;
    }
    // Isolation cost heuristic: each distinct q predicate whose γ-rules
    // include a recursive rule re-derives a full copy of the recursion,
    // so prefer sequences avoiding that (homogeneous sequences have a
    // single, usually non-recursive, exit).
    auto gamma_cost = [&](const ExpansionSequence& seq) {
      std::set<size_t> excluded(seq.rule_indices.begin() + 1,
                                seq.rule_indices.end());
      int cost = 0;
      for (size_t e : excluded) {
        for (size_t l : current.RulesFor(pred)) {
          if (l != e && current.rules()[l].BodyUses(pred)) ++cost;
        }
      }
      return cost;
    };
    const ExpansionSequence* best = nullptr;
    int best_score = 0;
    int best_cost = 0;
    for (const auto& [seq, score] : sequence_score) {
      if (score == 0) continue;
      int cost = gamma_cost(seq);
      bool better =
          best == nullptr || score > best_score ||
          (score == best_score &&
           (cost < best_cost ||
            (cost == best_cost &&
             seq.rule_indices.size() < best->rule_indices.size())));
      if (better) {
        best = &seq;
        best_score = score;
        best_cost = cost;
      }
    }
    if (best == nullptr || best_score == 0) {
      for (const Residue& r : residues) {
        out.skipped.push_back(
            StrCat("no applicable use for residue ", r.ToString(current)));
      }
      continue;
    }
    ExpansionSequence chosen = *best;

    SEMOPT_ASSIGN_OR_RETURN(IsolationResult iso,
                            [&]() -> Result<IsolationResult> {
                              obs::TraceSpan isolate_span("semopt.isolate");
                              return IsolateSequence(current, chosen,
                                                     isolation_id++);
                            }());

    bool any_applied = false;
    for (const Residue& r : residues) {
      if (!(r.sequence == chosen)) {
        if (planned_use(r) != PlannedUse::kNone) {
          out.skipped.push_back(
              StrCat("residue ", r.ToString(current),
                     " is on a different sequence than the isolated one"));
        }
        continue;
      }
      PlannedUse use = planned_use(r);
      if (use == PlannedUse::kNone) continue;

      const Constraint* ic = nullptr;
      for (const Constraint& c : current.constraints()) {
        if (c.label() == r.ic_label) {
          ic = &c;
          break;
        }
      }
      if (ic == nullptr) {
        out.skipped.push_back(
            StrCat("originating IC ", r.ic_label, " not found"));
        continue;
      }

      Result<LocalizedResidue> localized = LocalizeResidue(r, *ic, iso);
      if (!localized.ok()) {
        out.skipped.push_back(localized.status().ToString());
        continue;
      }
      // A fact residue whose head does not occur in the sequence cannot
      // be eliminated; fall back to introduction when profitable.
      if (use == PlannedUse::kElimination &&
          !localized->head_occurrence.has_value()) {
        bool introducible =
            options_.enable_introduction &&
            (r.head->IsComparison() ||
             (r.head->IsRelational() &&
              options_.small_relations.count(r.head->atom().pred_id()) > 0));
        if (introducible) {
          use = PlannedUse::kIntroduction;
        } else {
          out.skipped.push_back(
              StrCat("residue ", r.ToString(current),
                     ": head does not occur in the sequence and "
                     "introduction is not profitable"));
          continue;
        }
      }
      obs::TraceSpan push_span("semopt.push");
      Status push_status = Status::Ok();
      AppliedOptimization::Kind kind = AppliedOptimization::Kind::kPruning;
      switch (use) {
        case PlannedUse::kPruning:
          kind = AppliedOptimization::Kind::kPruning;
          push_status = PushSubtreePruning(&iso, *localized, *ic,
                                           options_.push_options);
          break;
        case PlannedUse::kElimination:
          kind = AppliedOptimization::Kind::kElimination;
          push_status = PushAtomElimination(&iso, *localized, *ic,
                                            options_.push_options);
          break;
        case PlannedUse::kIntroduction:
          kind = AppliedOptimization::Kind::kIntroduction;
          push_status = PushAtomIntroduction(&iso, *localized, *ic,
                                             options_.push_options);
          break;
        case PlannedUse::kNone:
          continue;
      }
      if (push_status.ok()) {
        any_applied = true;
        out.applied.push_back(AppliedOptimization{
            kind, StrCat(r.ToString(current), " [IC ", r.ic_label, "]")});
      } else {
        out.skipped.push_back(StrCat(r.ToString(current), ": ",
                                     push_status.ToString()));
      }
    }

    if (any_applied) {
      round_applied = true;
      if (options_.factor_committed) {
        obs::TraceSpan factor_span("semopt.factor");
        Status factored = FactorCommittedRules(&iso, isolation_id - 1);
        if (!factored.ok()) {
          out.skipped.push_back(
              StrCat("factoring failed: ", factored.ToString()));
        }
      }
      current = iso.program;
    } else {
      out.skipped.push_back(
          StrCat("isolation of ", chosen.ToString(current), " for ",
                 pred.ToString(), " discarded: no push succeeded"));
    }
  }

  if (!round_applied) break;  // fixpoint reached
  }

  out.program = std::move(current);
  return out;
}

}  // namespace semopt
