#include "semopt/expanded_form.h"

#include <algorithm>
#include <set>

#include "ast/rename.h"
#include "eval/builtins.h"
#include "semopt/subsumption.h"
#include "util/string_util.h"

namespace semopt {

Constraint ExpandConstraint(const Constraint& ic) {
  FreshVariableGenerator gen("V");
  std::set<SymbolId> seen;
  std::vector<Literal> body;
  std::vector<Literal> equalities;

  for (const Literal& lit : ic.body()) {
    if (!lit.IsRelational()) {
      body.push_back(lit);
      continue;
    }
    std::vector<Term> args;
    args.reserve(lit.atom().args().size());
    for (const Term& t : lit.atom().args()) {
      if (t.IsVariable() && seen.insert(t.symbol()).second) {
        // First occurrence stays (paper keeps a(V1,V2,V3) intact in
        // Example 2.1 and renames only repeats).
        args.push_back(t);
        continue;
      }
      // Constant or repeated variable: displace into an equality.
      Term fresh = gen.Fresh();
      args.push_back(fresh);
      equalities.push_back(
          Literal::Comparison(fresh, ComparisonOp::kEq, t));
    }
    Atom expanded(lit.atom().predicate(), std::move(args));
    body.push_back(lit.negated()
                       ? Literal::NegatedRelational(std::move(expanded))
                       : Literal::Relational(std::move(expanded)));
  }
  for (Literal& eq : equalities) body.push_back(std::move(eq));
  return Constraint(ic.label(), std::move(body), ic.head());
}

std::vector<Constraint> ClassicalRuleResidues(const Constraint& ic,
                                              const Rule& rule) {
  // Rename the IC apart from the rule so that identical variable names
  // in the two clauses do not accidentally constrain the matching.
  FreshVariableGenerator gen("W");
  Constraint renamed = RenameApart(ic, &gen);
  Constraint expanded = ExpandConstraint(renamed);

  std::vector<Atom> ic_atoms = expanded.DatabaseBody();
  std::vector<Atom> targets;
  for (const Literal& lit : rule.body()) {
    if (lit.IsRelational() && !lit.negated()) targets.push_back(lit.atom());
  }

  std::vector<Constraint> residues;
  for (const SubsumptionMatch& match :
       FindSubsumptions(ic_atoms, targets, /*require_all=*/false)) {
    // The residue is the θ-image of the IC parts that did not
    // participate in the subsumption: unmatched database atoms, all
    // evaluable body literals, and the head.
    std::vector<Literal> body;
    size_t db_index = 0;
    for (const Literal& lit : expanded.body()) {
      if (lit.IsRelational()) {
        if (match.target_index[db_index] < 0) {
          body.push_back(match.theta.Apply(lit));
        }
        ++db_index;
        continue;
      }
      Literal mapped = match.theta.Apply(lit);
      // Simplify: drop trivially-true equalities/comparisons.
      if (mapped.IsComparison() && mapped.lhs().IsConstant() &&
          mapped.rhs().IsConstant()) {
        Result<bool> value = EvalComparison(mapped);
        if (value.ok() && *value) continue;
      }
      if (mapped.IsComparison() && !mapped.negated() &&
          mapped.op() == ComparisonOp::kEq && mapped.lhs() == mapped.rhs()) {
        continue;
      }
      body.push_back(std::move(mapped));
    }
    std::optional<Literal> head;
    if (expanded.head().has_value()) {
      head = match.theta.Apply(*expanded.head());
    }
    Constraint residue(ic.label(), std::move(body), std::move(head));
    if (std::find(residues.begin(), residues.end(), residue) ==
        residues.end()) {
      residues.push_back(std::move(residue));
    }
  }
  return residues;
}

bool IsTrivialClassicalResidue(const Constraint& residue, const Rule& rule) {
  if (!residue.head().has_value()) return false;
  const Literal& head = *residue.head();
  if (head.IsComparison()) {
    if (!head.negated() && head.op() == ComparisonOp::kEq &&
        head.lhs() == head.rhs()) {
      return true;  // tautological head
    }
    return false;
  }
  // A database head already present as a rule subgoal contributes no
  // optimization (paper Example 3.2).
  for (const Literal& lit : rule.body()) {
    if (lit == head) return true;
  }
  return false;
}

}  // namespace semopt
