#ifndef SEMOPT_EXEC_PARALLEL_FIXPOINT_H_
#define SEMOPT_EXEC_PARALLEL_FIXPOINT_H_

#include <cstddef>

#include "ast/program.h"
#include "eval/eval_stats.h"
#include "eval/fixpoint.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// `options.num_threads`, with 0 resolved to the hardware thread count
/// (at least 1).
size_t ResolveNumThreads(const EvalOptions& options);

/// Parallel bottom-up evaluation: components in topological order, each
/// evaluated with rounds of rule executions fanned out over a fixed
/// thread pool. Each round freezes the database state, hash-partitions
/// the round's delta (semi-naive) or the outermost-scanned relation of
/// each rule's plan (naive / one-pass components) across workers, runs
/// the executions concurrently on read-only snapshots into per-worker
/// sinks, and then merges the derived tuples into the IDB and next
/// delta with a single-owner-per-relation dedup pass.
///
/// The result is set-equal to the serial `Evaluate` (rows may be
/// derived in a different order and per-round visibility differs, but
/// the fixpoint is the same; tests assert this property). Normally
/// reached through `Evaluate` with `options.num_threads != 1`.
Result<Database> EvaluateParallel(const Program& program, const Database& edb,
                                  const EvalOptions& options,
                                  EvalStats* stats);

}  // namespace semopt

#endif  // SEMOPT_EXEC_PARALLEL_FIXPOINT_H_
