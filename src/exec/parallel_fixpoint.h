#ifndef SEMOPT_EXEC_PARALLEL_FIXPOINT_H_
#define SEMOPT_EXEC_PARALLEL_FIXPOINT_H_

#include <cstddef>

#include "ast/program.h"
#include "eval/eval_stats.h"
#include "eval/fixpoint.h"
#include "storage/database.h"
#include "util/result.h"

namespace semopt {

/// `options.num_threads`, with 0 resolved to the hardware thread count
/// (at least 1).
size_t ResolveNumThreads(const EvalOptions& options);

/// Rows per morsel: `options.morsel_size`, with 0 (auto) resolved to
/// max(batch_size, 64) — a morsel always fills at least one batched-
/// executor block, and the per-morsel shared-cursor claim stays
/// negligible.
size_t ResolveMorselSize(const EvalOptions& options);

/// Morsel-driven parallel bottom-up evaluation: components in
/// topological order, each evaluated in synchronous rounds. Each round
/// freezes the database state, prepares one partitioned plan per rule
/// execution — the delta occurrence rotated to the front of the join
/// order and marked as the *driving* step (the first positive literal
/// drives when there is no delta) — and carves the driving relation
/// into contiguous row ranges of ~morsel_size rows. Worker lanes pull
/// morsels off the thread pool's shared atomic cursor (dynamic load
/// balancing; uneven morsel costs even out automatically), run each
/// through the batched executor with a per-lane reusable scratch, and
/// buffer derived rows with precomputed hashes in per-(lane, execution)
/// sinks. A sharded merge phase — one owner per head relation — then
/// commits the sinks into the IDB and next delta, reusing the worker
/// hashes for the dedup probes.
///
/// Because morsels partition the plan's actual outermost scan, no body
/// literal is ever re-scanned per task: join-work counters (`bindings`)
/// are invariant in the thread count, and the serial-vs-parallel work
/// ratio stays 1 (the old hash-partitioned engine re-scanned leading
/// literals per partition and paid a per-round partition/copy cycle).
///
/// The result is set-equal to the serial `Evaluate` (rows may be
/// derived in a different order and per-round visibility differs, but
/// the fixpoint is the same; tests assert this property). Normally
/// reached through `Evaluate` with `options.num_threads != 1`.
Result<Database> EvaluateParallel(const Program& program, const Database& edb,
                                  const EvalOptions& options,
                                  EvalStats* stats);

}  // namespace semopt

#endif  // SEMOPT_EXEC_PARALLEL_FIXPOINT_H_
