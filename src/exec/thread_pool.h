#ifndef SEMOPT_EXEC_THREAD_POOL_H_
#define SEMOPT_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace semopt {

/// A fixed-size pool of worker threads with a fork-join ParallelFor
/// primitive. The pool is created once and reused across fixpoint
/// rounds; workers sleep on a condition variable between jobs.
///
/// `ThreadPool(n)` provides total parallelism `n`: it spawns `n - 1`
/// background threads and the thread calling `ParallelFor` executes
/// tasks too. `ThreadPool(1)` therefore spawns no threads and runs
/// every task inline, which keeps single-threaded callers allocation-
/// and synchronization-free on the task path.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (background workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs `fn(i)` for every i in [0, n), distributing tasks across the
  /// pool and the calling thread, and blocks until all have finished.
  /// Tasks are claimed dynamically (an atomic counter), so uneven task
  /// costs balance automatically.
  ///
  /// On the first non-ok Status (lowest task index wins for
  /// determinism) remaining unclaimed tasks are cancelled; tasks
  /// already running are allowed to finish. A task that throws is
  /// converted to an Internal status the same way (the library is
  /// exception-free by style, but third-party code reached from a task
  /// might throw).
  ///
  /// Must not be called concurrently from multiple threads, and tasks
  /// must not themselves call ParallelFor on this pool.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

  /// Like ParallelFor, but also passes the executing thread's stable
  /// lane id in [0, num_threads()) as the first argument: the calling
  /// thread is lane 0, background workers are lanes 1..num_threads()-1.
  /// A lane runs at most one task at a time, so per-lane state (scratch
  /// buffers, output sinks, counters) needs no synchronization — this
  /// is how the morsel scheduler gives every worker thread-local
  /// execution contexts and commit buffers without thread_local
  /// globals. Same error/cancellation contract as ParallelFor.
  Status ParallelForWorkers(
      size_t n, const std::function<Status(size_t lane, size_t index)>& fn);

 private:
  struct Job {
    size_t n = 0;
    const std::function<Status(size_t, size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    // Guarded by the pool mutex.
    bool failed = false;
    size_t error_index = 0;
    Status error;
  };

  void WorkerLoop(size_t lane);
  /// Claims and runs tasks of `job` until none remain; `lane` is the
  /// claiming thread's stable lane id.
  void RunTasks(Job* job, size_t lane);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new job or stop
  std::condition_variable done_cv_;  // coordinator: job finished
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;        // guarded by mu_
  uint64_t generation_ = 0;   // guarded by mu_; bumped per job
  size_t active_workers_ = 0; // guarded by mu_; workers inside RunTasks
  bool stop_ = false;         // guarded by mu_
};

}  // namespace semopt

#endif  // SEMOPT_EXEC_THREAD_POOL_H_
