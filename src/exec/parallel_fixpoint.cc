#include "exec/parallel_fixpoint.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "eval/component_plan.h"
#include "eval/plan_cache.h"
#include "eval/rule_executor.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/interner.h"
#include "util/string_util.h"

namespace semopt {

size_t ResolveNumThreads(const EvalOptions& options) {
  if (options.num_threads != 0) return options.num_threads;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

/// Read-only view over the frozen EDB + IDB with at most one delta
/// binding: the partition (or full delta) a single execution reads at
/// its delta literal. One instance per task; Full/Delta only read
/// shared state.
class SnapshotSource : public RelationSource {
 public:
  SnapshotSource(const Database* edb, const Database* idb,
                 const std::set<PredicateId>* idb_preds)
      : edb_(edb), idb_(idb), idb_preds_(idb_preds) {}

  const Relation* Full(const PredicateId& pred) const override {
    if (idb_preds_->count(pred) > 0) return idb_->Find(pred);
    return edb_->Find(pred);
  }

  const Relation* Delta(const PredicateId& pred) const override {
    if (delta_rel_ != nullptr && pred == delta_pred_) return delta_rel_;
    return nullptr;
  }

  void SetDelta(const PredicateId& pred, const Relation* rel) {
    delta_pred_ = pred;
    delta_rel_ = rel;
  }

 private:
  const Database* edb_;
  const Database* idb_;
  const std::set<PredicateId>* idb_preds_;
  PredicateId delta_pred_{0, 0};
  const Relation* delta_rel_ = nullptr;
};

/// One rule application of a round: the rule, the original-body literal
/// whose relation is split across workers (-1 = run as a single task),
/// and the relation being split.
struct Execution {
  const PlannedRule* rule = nullptr;
  int delta_literal = -1;
  const Relation* partition_src = nullptr;
  RuleExecutor::PreparedPlan plan;
  PredicateId delta_pred{0, 0};
  std::vector<uint32_t> partition_probe_cols;
  /// Hash partitions of partition_src (possibly shared between
  /// executions reading the same delta relation).
  const std::vector<std::unique_ptr<Relation>>* partitions = nullptr;
};

/// Span name for one task: the rule's label when set, so per-rule
/// lanes aggregate by name in the trace viewer.
std::string_view TaskSpanName(const Execution& exec) {
  const std::string& label = exec.rule->executor.rule().label();
  return label.empty() ? std::string_view("task") : std::string_view(label);
}

/// Key for EvalStats::per_rule.
std::string TaskRuleKey(const Execution& exec) {
  const std::string& label = exec.rule->executor.rule().label();
  return label.empty() ? exec.rule->head.ToString() : label;
}

/// Hash-splits `rel`'s rows into `parts` relations, reusing the hash
/// each row's store already cached at insert time.
std::vector<std::unique_ptr<Relation>> PartitionRelation(const Relation& rel,
                                                         size_t parts) {
  std::vector<std::unique_ptr<Relation>> out;
  out.reserve(parts);
  for (size_t w = 0; w < parts; ++w) {
    out.push_back(std::make_unique<Relation>(rel.pred()));
  }
  const size_t n = rel.size();
  for (size_t i = 0; i < n; ++i) {
    out[rel.row_hash(i) % parts]->Insert(rel.row(i));
  }
  return out;
}

struct Task {
  size_t exec_index = 0;
  /// The delta slice this task reads; null for unpartitioned tasks.
  const Relation* partition = nullptr;
  /// Partition slot ("worker lane") the slice came from; 0 for
  /// unpartitioned tasks. Feeds the per-round balance stats.
  size_t slot = 0;
};

/// Executes one round: plans every execution against the frozen state,
/// partitions, fans the tasks out over `pool`, and merges the buffered
/// derivations into `idb` (and `next_delta` if given) with one owner
/// per head relation. Returns true when any new tuple was inserted.
/// `round` is the 1-based global round index (trace/stats labeling).
Result<bool> RunRound(
    ThreadPool& pool, PlanCache& plan_cache, const Database& edb,
    Database& idb, const std::set<PredicateId>& idb_preds,
    std::vector<Execution>& execs,
    std::map<PredicateId, std::unique_ptr<Relation>>* next_delta,
    const EvalOptions& options, EvalStats* stats, size_t round) {
  const size_t parts = pool.num_threads();
  SnapshotSource planning_source(&edb, &idb, &idb_preds);

  obs::TraceSpan round_span("parallel.round");
  round_span.AddArg("round", static_cast<int64_t>(round));
  round_span.AddArg("workers", static_cast<int64_t>(parts));

  // Plan and pre-build indexes, single-threaded. Partitions of the same
  // delta relation are shared between executions.
  std::map<const Relation*, std::vector<std::unique_ptr<Relation>>>
      partition_cache;
  std::vector<Task> tasks;
  {
    obs::TraceSpan plan_span("parallel.plan");
    plan_span.AddArg("executions", static_cast<int64_t>(execs.size()));
    for (size_t e = 0; e < execs.size(); ++e) {
      Execution& exec = execs[e];
      const RuleExecutor& executor = exec.rule->executor;
      bool partitioned = exec.partition_src != nullptr;
      if (partitioned) {
        exec.delta_pred = exec.partition_src->pred();
        planning_source.SetDelta(exec.delta_pred, exec.partition_src);
      } else {
        planning_source.SetDelta(PredicateId{0, 0}, nullptr);
      }
      // Plans are memoized per (rule, delta literal, cardinality-band
      // signature): rounds in an already-seen regime reuse the plan
      // (indexes re-verified). Partitioned executions skip the delta
      // index; each fresh slice is indexed below.
      SEMOPT_ASSIGN_OR_RETURN(
          exec.plan,
          plan_cache.Get(executor, planning_source, exec.delta_literal,
                         stats, options.cardinality_planning,
                         /*skip_delta_index=*/partitioned));
      if (!partitioned) {
        // No delta to split: split the plan's outermost positive literal
        // so one-pass components and naive rounds scale too.
        int split = executor.FirstPositiveStep(exec.plan);
        if (split >= 0) {
          const Literal& lit = exec.rule->executor.rule().body()[split];
          const Relation* rel = planning_source.Full(lit.atom().pred_id());
          if (rel != nullptr) {
            exec.delta_literal = split;
            exec.partition_src = rel;
            exec.delta_pred = rel->pred();
            partitioned = true;
          }
        }
      }
      if (!partitioned) {
        tasks.push_back(Task{e, nullptr, 0});
        continue;
      }
      if (exec.partition_src->empty()) continue;  // derives nothing
      exec.partition_probe_cols =
          executor.ProbeColumnsFor(exec.plan, exec.delta_literal);
      auto it = partition_cache.find(exec.partition_src);
      if (it == partition_cache.end()) {
        it = partition_cache
                 .emplace(exec.partition_src,
                          PartitionRelation(*exec.partition_src, parts))
                 .first;
      }
      exec.partitions = &it->second;
      // Index the slices now, while single-threaded: workers must never
      // build indexes (Relation::Probe requires them pre-declared).
      for (size_t w = 0; w < it->second.size(); ++w) {
        const std::unique_ptr<Relation>& slice = it->second[w];
        if (slice->empty()) continue;
        if (!exec.partition_probe_cols.empty()) {
          slice->EnsureIndex(exec.partition_probe_cols);
        }
        tasks.push_back(Task{e, slice.get(), w});
      }
    }
    plan_span.AddArg("tasks", static_cast<int64_t>(tasks.size()));
    plan_span.AddArg("partitioned_relations",
                     static_cast<int64_t>(partition_cache.size()));
  }
  round_span.AddArg("tasks", static_cast<int64_t>(tasks.size()));
  if (tasks.empty()) return false;

  if (options.collect_metrics) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("exec.rounds").Add(1);
    registry.GetCounter("exec.tasks").Add(tasks.size());
    registry.GetGauge("exec.queue_depth")
        .Set(static_cast<int64_t>(tasks.size()));
  }

  // Fan out. Workers read the frozen EDB/IDB and their private delta
  // slice, buffering derivations per task into flat arenas; no shared
  // mutable state and no per-tuple heap allocation.
  std::vector<TupleBuffer> buffers;
  buffers.reserve(tasks.size());
  for (const Task& task : tasks) {
    buffers.emplace_back(execs[task.exec_index].rule->head.arity);
  }
  std::vector<EvalStats> task_stats(tasks.size());
  bool changed = false;
  {
    InternerFreezeGuard freeze;
    SEMOPT_RETURN_IF_ERROR(pool.ParallelFor(
        tasks.size(), [&](size_t i) -> Status {
          const Task& task = tasks[i];
          const Execution& exec = execs[task.exec_index];
          obs::TraceSpan task_span(TaskSpanName(exec));
          task_span.AddArg("slot", static_cast<int64_t>(task.slot));
          SnapshotSource source(&edb, &idb, &idb_preds);
          if (task.partition != nullptr) {
            source.SetDelta(exec.delta_pred, task.partition);
            task_span.AddArg(
                "partition_rows",
                static_cast<int64_t>(task.partition->size()));
          }
          TupleBuffer& buffer = buffers[i];
          if (options.batch_size <= 1) {
            exec.rule->executor.ExecutePlan(
                exec.plan, source, exec.delta_literal,
                [&buffer](RowRef t) { buffer.Append(t); }, &task_stats[i]);
          } else {
            exec.rule->executor.ExecutePlanBatched(
                exec.plan, source, exec.delta_literal,
                [&buffer](const TupleBuffer& block) {
                  buffer.AppendAll(block);
                },
                &task_stats[i], options.batch_size);
          }
          task_span.AddArg("produced", static_cast<int64_t>(buffer.size()));
          return Status::Ok();
        }));

    // Merge with a single owner per head relation: tasks are grouped by
    // head predicate and replayed in task order, so the result (and the
    // idb row order) is deterministic for a fixed thread count.
    std::map<PredicateId, std::vector<size_t>> by_head;
    for (size_t i = 0; i < tasks.size(); ++i) {
      by_head[execs[tasks[i].exec_index].rule->head].push_back(i);
    }
    std::vector<std::pair<PredicateId, std::vector<size_t>*>> owners;
    owners.reserve(by_head.size());
    for (auto& [pred, task_ids] : by_head) {
      owners.emplace_back(pred, &task_ids);
    }
    // Inserted/duplicate counts per task (filled by the owning merge
    // worker), folded into totals and per-rule stats afterwards.
    std::vector<size_t> task_inserted(tasks.size(), 0);
    std::vector<size_t> task_duplicate(tasks.size(), 0);
    std::vector<char> owner_changed(owners.size(), 0);
    obs::TraceSpan merge_span("parallel.merge");
    merge_span.AddArg("owners", static_cast<int64_t>(owners.size()));
    SEMOPT_RETURN_IF_ERROR(pool.ParallelFor(
        owners.size(), [&](size_t j) -> Status {
          obs::TraceSpan owner_span("merge");
          const PredicateId& pred = owners[j].first;
          Relation* target = idb.FindMutable(pred);
          // at(): the component pre-created every delta relation, and
          // operator[] would mutate the (shared) map on a miss.
          Relation* delta_target =
              next_delta != nullptr ? next_delta->at(pred).get() : nullptr;
          size_t inserted = 0;
          for (size_t i : *owners[j].second) {
            // Chunked commit: hash a short run of rows (prefetching the
            // dedup slot each will probe), then insert reusing every
            // row's hash for both the full and delta relations.
            const TupleBuffer& buffer = buffers[i];
            const size_t rows = buffer.size();
            constexpr size_t kChunk = 128;
            size_t hashes[kChunk];
            for (size_t start = 0; start < rows; start += kChunk) {
              const size_t m = std::min(kChunk, rows - start);
              for (size_t k = 0; k < m; ++k) {
                hashes[k] = HashValues(buffer.row(start + k));
                target->PrefetchInsert(hashes[k]);
              }
              for (size_t k = 0; k < m; ++k) {
                RowRef t = buffer.row(start + k);
                if (target->Insert(t, hashes[k])) {
                  owner_changed[j] = 1;
                  if (delta_target != nullptr) {
                    delta_target->Insert(t, hashes[k]);
                  }
                  ++task_inserted[i];
                } else {
                  ++task_duplicate[i];
                }
              }
            }
            inserted += task_inserted[i];
          }
          owner_span.AddArg("tasks",
                            static_cast<int64_t>(owners[j].second->size()));
          owner_span.AddArg("inserted", static_cast<int64_t>(inserted));
          return Status::Ok();
        }));
    if (stats != nullptr) {
      for (const EvalStats& s : task_stats) stats->Add(s);
      for (size_t i = 0; i < tasks.size(); ++i) {
        stats->derived_tuples += task_inserted[i];
        stats->duplicate_tuples += task_duplicate[i];
      }
      if (options.collect_metrics) {
        // Per-rule attribution: every task belongs to exactly one rule.
        for (size_t i = 0; i < tasks.size(); ++i) {
          RuleStats& rs = stats->per_rule[TaskRuleKey(execs[tasks[i].exec_index])];
          ++rs.applications;
          rs.derived += task_inserted[i];
          rs.duplicates += task_duplicate[i];
        }
        // Tuples produced per partition slot: the balance the merged
        // totals hide. Unpartitioned single tasks land in slot 0.
        std::vector<size_t> slot_tuples(parts, 0);
        for (size_t i = 0; i < tasks.size(); ++i) {
          slot_tuples[tasks[i].slot] += buffers[i].size();
        }
        RoundBalance balance;
        balance.round = round;
        balance.workers = parts;
        balance.min_tuples = slot_tuples[0];
        for (size_t tuples : slot_tuples) {
          balance.min_tuples = std::min(balance.min_tuples, tuples);
          balance.max_tuples = std::max(balance.max_tuples, tuples);
          balance.total_tuples += tuples;
        }
        stats->round_balance.push_back(balance);
      }
    }
    for (char c : owner_changed) {
      if (c) changed = true;
    }
  }
  round_span.AddArg("changed", changed ? 1 : 0);
  return changed;
}

Status CheckIterationBudget(size_t iterations, const EvalOptions& options) {
  if (options.max_iterations > 0 && iterations > options.max_iterations) {
    return Status::FailedPrecondition(
        StrCat("evaluation exceeded max_iterations=",
               options.max_iterations));
  }
  return Status::Ok();
}

}  // namespace

Result<Database> EvaluateParallel(const Program& program, const Database& edb,
                                  const EvalOptions& options,
                                  EvalStats* stats) {
  // Direct callers (not routed through Evaluate) still honor
  // EvalOptions::trace_path; no-op when a session is already active.
  obs::ScopedTraceFile trace_file(options.trace_path);
  obs::TraceSpan eval_span("eval.parallel");

  ThreadPool pool(ResolveNumThreads(options));
  eval_span.AddArg("threads", static_cast<int64_t>(pool.num_threads()));
  // Shared across every round of the evaluation (and, when the caller
  // supplied a session cache, across evaluations); only the coordinator
  // (RunRound's single-threaded planning block) touches it.
  PlanCache local_plan_cache;
  PlanCache& plan_cache =
      options.plan_cache != nullptr ? *options.plan_cache : local_plan_cache;
  SEMOPT_ASSIGN_OR_RETURN(std::vector<EvalComponent> components,
                          PlanComponents(program));
  std::set<PredicateId> idb_preds = program.IdbPredicates();

  Database idb;
  // Pre-create IDB relations so concurrent Find() never mutates.
  for (const PredicateId& p : idb_preds) idb.GetOrCreate(p);

  size_t global_round = 0;
  int64_t component_index = -1;
  for (EvalComponent& component : components) {
    ++component_index;
    if (component.rules.empty()) continue;  // EDB-only component

    obs::TraceSpan stratum_span("stratum");
    stratum_span.AddArg("index", component_index);
    stratum_span.AddArg("rules", static_cast<int64_t>(component.rules.size()));
    stratum_span.AddArg("recursive", component.recursive ? 1 : 0);

    auto all_rules = [&]() {
      std::vector<Execution> execs;
      execs.reserve(component.rules.size());
      for (const PlannedRule& pr : component.rules) {
        Execution e;
        e.rule = &pr;
        execs.push_back(std::move(e));
      }
      return execs;
    };

    if (!component.recursive) {
      // One (parallel) pass suffices.
      if (stats != nullptr) ++stats->iterations;
      ++global_round;
      std::vector<Execution> execs = all_rules();
      Result<bool> pass = RunRound(pool, plan_cache, edb, idb, idb_preds,
                                   execs, /*next_delta=*/nullptr, options,
                                   stats, global_round);
      if (!pass.ok()) return pass.status();
      continue;
    }

    if (options.strategy == EvalStrategy::kNaive) {
      // Jacobi-style naive rounds: every rule re-runs against the state
      // frozen at the top of the round, until nothing new appears.
      size_t local_iterations = 0;
      bool changed = true;
      while (changed) {
        ++local_iterations;
        if (stats != nullptr) ++stats->iterations;
        ++global_round;
        SEMOPT_RETURN_IF_ERROR(
            CheckIterationBudget(local_iterations, options));
        std::vector<Execution> execs = all_rules();
        SEMOPT_ASSIGN_OR_RETURN(
            changed, RunRound(pool, plan_cache, edb, idb, idb_preds, execs,
                              /*next_delta=*/nullptr, options, stats,
                              global_round));
      }
      continue;
    }

    // Semi-naive with synchronous rounds: round 0 runs every rule on
    // the frozen state (recursive literals see empty component
    // relations; anything they miss is caught via the delta in later
    // rounds), then each round partitions the delta across workers.
    std::map<PredicateId, std::unique_ptr<Relation>> delta;
    std::map<PredicateId, std::unique_ptr<Relation>> next_delta;
    for (const PredicateId& p : component.preds) {
      delta[p] = std::make_unique<Relation>(p);
      next_delta[p] = std::make_unique<Relation>(p);
    }

    if (stats != nullptr) ++stats->iterations;
    ++global_round;
    {
      std::vector<Execution> execs = all_rules();
      Result<bool> seeded =
          RunRound(pool, plan_cache, edb, idb, idb_preds, execs, &delta,
                   options, stats, global_round);
      if (!seeded.ok()) return seeded.status();
    }

    size_t local_iterations = 1;
    auto delta_nonempty = [&]() {
      for (const auto& [p, rel] : delta) {
        if (!rel->empty()) return true;
      }
      return false;
    };

    while (delta_nonempty()) {
      ++local_iterations;
      if (stats != nullptr) ++stats->iterations;
      ++global_round;
      SEMOPT_RETURN_IF_ERROR(CheckIterationBudget(local_iterations, options));

      std::vector<Execution> execs;
      for (const PlannedRule& pr : component.rules) {
        for (int lit_index : pr.recursive_literals) {
          const Literal& lit = pr.executor.rule().body()[lit_index];
          const Relation* d = delta[lit.atom().pred_id()].get();
          if (d->empty()) continue;  // nothing new through this literal
          Execution e;
          e.rule = &pr;
          e.delta_literal = lit_index;
          e.partition_src = d;
          execs.push_back(std::move(e));
        }
      }
      Result<bool> round = RunRound(pool, plan_cache, edb, idb, idb_preds,
                                    execs, &next_delta, options, stats,
                                    global_round);
      if (!round.ok()) return round.status();
      // Arena double-buffer: Clear keeps capacity, swap moves pointers;
      // steady-state rounds recycle delta storage without reallocating.
      for (const PredicateId& p : component.preds) {
        delta[p]->Clear();
        std::swap(delta[p], next_delta[p]);
      }
    }
  }

  return idb;
}

}  // namespace semopt
