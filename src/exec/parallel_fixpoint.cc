#include "exec/parallel_fixpoint.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "eval/component_plan.h"
#include "eval/plan_cache.h"
#include "eval/rule_executor.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/vector_kernels.h"
#include "util/interner.h"
#include "util/string_util.h"

namespace semopt {

size_t ResolveNumThreads(const EvalOptions& options) {
  if (options.num_threads != 0) return options.num_threads;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

size_t ResolveMorselSize(const EvalOptions& options) {
  if (options.morsel_size != 0) return options.morsel_size;
  // Auto: a morsel fills at least one executor block (so the batched
  // pipeline always runs full frames) and never drops below 64 rows
  // (so the shared-cursor claim stays negligible per morsel).
  return std::max<size_t>(options.batch_size, 64);
}

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Read-only view over the frozen EDB + IDB with at most one delta
/// binding: the frozen delta relation an execution reads at its delta
/// literal. One instance per morsel; Full/Delta only read shared state.
class SnapshotSource : public RelationSource {
 public:
  SnapshotSource(const Database* edb, const Database* idb,
                 const std::set<PredicateId>* idb_preds)
      : edb_(edb), idb_(idb), idb_preds_(idb_preds) {}

  const Relation* Full(const PredicateId& pred) const override {
    if (idb_preds_->count(pred) > 0) return idb_->Find(pred);
    return edb_->Find(pred);
  }

  const Relation* Delta(const PredicateId& pred) const override {
    if (delta_rel_ != nullptr && pred == delta_pred_) return delta_rel_;
    return nullptr;
  }

  void SetDelta(const PredicateId& pred, const Relation* rel) {
    delta_pred_ = pred;
    delta_rel_ = rel;
  }

 private:
  const Database* edb_;
  const Database* idb_;
  const std::set<PredicateId>* idb_preds_;
  PredicateId delta_pred_{0, 0};
  const Relation* delta_rel_ = nullptr;
};

/// One rule application of a round. The plan is prepared in partitioned
/// mode: its driving step (the rotated delta occurrence, or the first
/// positive step when the execution has no delta) is executed as a
/// range scan, and morsels carve that relation's row range across
/// workers. Every worker executes the SAME plan against the SAME frozen
/// relations — only the driving row range differs per morsel — so no
/// literal is ever re-scanned per task and the logical counters split
/// exactly across morsels.
struct Execution {
  const PlannedRule* rule = nullptr;
  /// Original-body index of the delta occurrence; -1 = read all Full.
  int delta_literal = -1;
  /// The frozen delta relation for `delta_literal` (null when -1).
  const Relation* delta_rel = nullptr;
  PredicateId delta_pred{0, 0};
  RuleExecutor::PreparedPlan plan;
  /// Original-body index of the plan's driving step; -1 when the body
  /// has no positive relational literal (run as one unrestricted task).
  int driving_literal = -1;
  /// The relation morsels carve (the delta when the driving step IS the
  /// delta occurrence, else that literal's full relation).
  const Relation* driving_rel = nullptr;
};

/// One unit of parallel work: a contiguous row range of an execution's
/// driving relation. `end == kNoMorsel` marks the single unrestricted
/// task of a driverless execution.
struct Morsel {
  size_t exec_index = 0;
  size_t begin = 0;
  size_t end = RuleExecutor::kNoMorsel;
};

/// Derived rows plus their precomputed HashValues hashes: workers pay
/// the hash cost in parallel, the owning merge task reuses it for the
/// dedup probe and both inserts (full + next delta).
struct HashedRows {
  TupleBuffer rows{0};
  std::vector<size_t> hashes;
};

/// Per-lane working state, cache-line aligned so two lanes bumping
/// their counters never share a line. Lanes are the thread pool's
/// stable ids, so nothing here needs synchronization.
struct alignas(64) WorkerState {
  /// One sink per execution (the merge groups by execution, and an
  /// execution's head arity fixes the buffer shape).
  std::vector<HashedRows> sinks;
  RuleExecutor::BatchScratch scratch;
  EvalStats stats;
  size_t morsels = 0;
  size_t steals = 0;
  /// Per-execution morsel wall time (collect_metrics only): summed into
  /// RuleStats::exec_ns after the round.
  std::vector<uint64_t> exec_ns;
};

/// Span name for one morsel: the rule's label when set, so per-rule
/// lanes aggregate by name in the trace viewer.
std::string_view MorselSpanName(const Execution& exec) {
  const std::string& label = exec.rule->executor.rule().label();
  return label.empty() ? std::string_view("morsel") : std::string_view(label);
}

/// Key for EvalStats::per_rule.
std::string ExecRuleKey(const Execution& exec) {
  const std::string& label = exec.rule->executor.rule().label();
  return label.empty() ? exec.rule->head.ToString() : label;
}

/// Executes one round, morsel-driven: plans every execution against the
/// frozen state (partitioned plans; driving literal marked), carves
/// each driving relation into ~morsel_size row ranges, lets worker
/// lanes pull morsels off the pool's shared cursor and stream them
/// through the batched executor into per-(lane, execution) hashed
/// sinks, then merges the sinks into `idb` (and `next_delta` if given)
/// with one owner per head relation reusing the worker hashes. Returns
/// true when any new tuple was inserted. `round` is the 1-based global
/// round index (trace/stats labeling).
Result<bool> RunRound(
    ThreadPool& pool, PlanCacheInterface& plan_cache, const Database& edb,
    Database& idb, const std::set<PredicateId>& idb_preds,
    std::vector<Execution>& execs,
    std::map<PredicateId, std::unique_ptr<Relation>>* next_delta,
    const EvalOptions& options, EvalStats* stats, size_t round,
    size_t stratum, size_t delta_in) {
  const uint64_t round_start_ns = NowNs();
  // Appends the finished round to the stats timeline (always when stats
  // are collected; feeds the per-query log).
  auto record_round = [&](size_t delta_out, size_t derived) {
    if (stats == nullptr) return;
    RoundTiming rt;
    rt.stratum = stratum;
    rt.round = round;
    rt.ns = NowNs() - round_start_ns;
    rt.delta_in = delta_in;
    rt.delta_out = delta_out;
    rt.derived = derived;
    stats->rounds.push_back(rt);
    if (delta_out > stats->peak_delta_tuples) {
      stats->peak_delta_tuples = delta_out;
    }
  };
  const size_t lanes = pool.num_threads();
  const size_t morsel_size = ResolveMorselSize(options);
  SnapshotSource planning_source(&edb, &idb, &idb_preds);

  obs::TraceSpan round_span("parallel.round");
  round_span.AddArg("round", static_cast<int64_t>(round));
  round_span.AddArg("workers", static_cast<int64_t>(lanes));

  // Plan and pre-build indexes, single-threaded, then carve morsels.
  std::vector<Morsel> morsels;
  {
    obs::TraceSpan plan_span("parallel.plan");
    plan_span.AddArg("executions", static_cast<int64_t>(execs.size()));
    for (size_t e = 0; e < execs.size(); ++e) {
      Execution& exec = execs[e];
      const RuleExecutor& executor = exec.rule->executor;
      if (exec.delta_rel != nullptr) {
        exec.delta_pred = exec.delta_rel->pred();
        planning_source.SetDelta(exec.delta_pred, exec.delta_rel);
      } else {
        planning_source.SetDelta(PredicateId{0, 0}, nullptr);
      }
      // Plans are memoized per (rule, delta literal, partitioned
      // regime, cardinality-band signature): rounds in an already-seen
      // regime reuse the plan with indexes re-verified. Partitioned
      // plans rotate the delta occurrence to the front and mark it
      // driving; the driving step's index is never built (it runs as a
      // morsel range scan).
      SEMOPT_ASSIGN_OR_RETURN(
          exec.plan,
          plan_cache.Get(executor, planning_source, exec.delta_literal,
                         stats, options.cardinality_planning,
                         /*skip_delta_index=*/false, /*partitioned=*/true,
                         options.planner));
      exec.driving_literal = executor.DrivingLiteral(exec.plan);
      if (exec.driving_literal < 0) {
        // No positive relational step (constant-only body): one
        // unrestricted task.
        morsels.push_back(Morsel{e, 0, RuleExecutor::kNoMorsel});
        continue;
      }
      if (exec.driving_literal == exec.delta_literal &&
          exec.delta_rel != nullptr) {
        exec.driving_rel = exec.delta_rel;
      } else {
        const Literal& lit =
            executor.rule().body()[static_cast<size_t>(exec.driving_literal)];
        exec.driving_rel = planning_source.Full(lit.atom().pred_id());
      }
      if (exec.driving_rel == nullptr || exec.driving_rel->empty()) {
        continue;  // a positive literal over nothing derives nothing
      }
      const size_t n = exec.driving_rel->size();
      for (size_t begin = 0; begin < n; begin += morsel_size) {
        morsels.push_back(Morsel{e, begin, std::min(begin + morsel_size, n)});
      }
    }
    plan_span.AddArg("morsels", static_cast<int64_t>(morsels.size()));
  }
  round_span.AddArg("morsels", static_cast<int64_t>(morsels.size()));
  if (morsels.empty()) {
    record_round(0, 0);
    return false;
  }
  const size_t total_morsels = morsels.size();

  if (options.collect_metrics) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("exec.rounds").Add(1);
    registry.GetCounter("exec.morsels").Add(total_morsels);
    registry.GetGauge("exec.queue_depth")
        .Set(static_cast<int64_t>(total_morsels));
  }

  // Per-lane state: sinks per execution, one reusable batch scratch,
  // private stats. Lanes are stable, so the worker phase touches no
  // shared mutable state at all.
  std::vector<WorkerState> workers(lanes);
  for (WorkerState& ws : workers) {
    ws.sinks.resize(execs.size());
    if (options.collect_metrics) ws.exec_ns.assign(execs.size(), 0);
    for (size_t e = 0; e < execs.size(); ++e) {
      ws.sinks[e].rows.Reset(execs[e].rule->head.arity);
    }
  }

  bool changed = false;
  size_t round_derived = 0;
  {
    InternerFreezeGuard freeze;
    SEMOPT_RETURN_IF_ERROR(pool.ParallelForWorkers(
        total_morsels, [&](size_t lane, size_t i) -> Status {
          const Morsel& m = morsels[i];
          const Execution& exec = execs[m.exec_index];
          WorkerState& ws = workers[lane];
          // Worker-lane query attribution: spans this morsel records
          // carry the query id of the evaluation that scheduled it.
          obs::QueryIdScope qid_scope(options.query_id);
          const uint64_t morsel_start_ns =
              options.collect_metrics ? NowNs() : 0;
          ++ws.morsels;
          // A steal is a morsel claimed by a lane other than the one a
          // static contiguous split would have assigned it to — the
          // load balancing a fixed partition scheme forgoes.
          if (i * lanes / total_morsels != lane) ++ws.steals;
          obs::TraceSpan span(MorselSpanName(exec));
          span.AddArg("lane", static_cast<int64_t>(lane));
          span.AddArg("rows", m.end == RuleExecutor::kNoMorsel
                                  ? int64_t{-1}
                                  : static_cast<int64_t>(m.end - m.begin));
          SnapshotSource source(&edb, &idb, &idb_preds);
          if (exec.delta_rel != nullptr) {
            source.SetDelta(exec.delta_pred, exec.delta_rel);
          }
          HashedRows& sink = ws.sinks[m.exec_index];
          if (options.batch_size <= 1) {
            exec.rule->executor.ExecutePlan(
                exec.plan, source, exec.delta_literal,
                [&sink](RowRef t) {
                  sink.rows.Append(t);
                  sink.hashes.push_back(HashValues(t));
                },
                &ws.stats, m.begin, m.end);
          } else {
            exec.rule->executor.ExecutePlanBatched(
                exec.plan, source, exec.delta_literal,
                [&sink](const TupleBuffer& block) {
                  sink.rows.AppendAll(block);
                  // Hash the whole (flat) head block with the batch
                  // kernel — this is the worker-side share of the
                  // commit cost, off the serial merge path.
                  const size_t n = block.size();
                  if (n == 0) return;
                  const size_t base = sink.hashes.size();
                  sink.hashes.resize(base + n);
                  HashValuesBatch(block.row(0).data(), block.arity(), n,
                                  sink.hashes.data() + base);
                },
                &ws.stats, options.batch_size, m.begin, m.end, &ws.scratch,
                ResolveSimdMode(options.simd));
          }
          if (options.collect_metrics) {
            ws.exec_ns[m.exec_index] += NowNs() - morsel_start_ns;
          }
          return Status::Ok();
        }));

    // Merge with a single owner per head relation: sinks are replayed
    // in (execution, lane) order, so the result (and the idb row
    // order) is deterministic for a fixed thread count. Worker hashes
    // are reused for the dedup probe and both inserts.
    std::map<PredicateId, std::vector<size_t>> by_head;
    for (size_t e = 0; e < execs.size(); ++e) {
      by_head[execs[e].rule->head].push_back(e);
    }
    std::vector<std::pair<PredicateId, std::vector<size_t>*>> owners;
    owners.reserve(by_head.size());
    for (auto& [pred, exec_ids] : by_head) {
      owners.emplace_back(pred, &exec_ids);
    }
    // Inserted/duplicate counts per execution (filled by the owning
    // merge worker), folded into totals and per-rule stats afterwards.
    std::vector<size_t> exec_inserted(execs.size(), 0);
    std::vector<size_t> exec_duplicate(execs.size(), 0);
    obs::TraceSpan merge_span("parallel.merge");
    merge_span.AddArg("owners", static_cast<int64_t>(owners.size()));
    SEMOPT_RETURN_IF_ERROR(pool.ParallelFor(
        owners.size(), [&](size_t j) -> Status {
          obs::TraceSpan owner_span("merge");
          const PredicateId& pred = owners[j].first;
          Relation* target = idb.FindMutable(pred);
          // at(): the component pre-created every delta relation, and
          // operator[] would mutate the (shared) map on a miss.
          Relation* delta_target =
              next_delta != nullptr ? next_delta->at(pred).get() : nullptr;
          size_t inserted = 0;
          for (size_t e : *owners[j].second) {
            for (size_t w = 0; w < lanes; ++w) {
              const HashedRows& sink = workers[w].sinks[e];
              if (sink.rows.size() == 0) continue;
              Relation::CommitCounts counts = target->CommitHashed(
                  sink.rows, sink.hashes.data(), delta_target);
              exec_inserted[e] += counts.inserted;
              exec_duplicate[e] += counts.duplicates;
              inserted += counts.inserted;
            }
          }
          owner_span.AddArg("inserted", static_cast<int64_t>(inserted));
          return Status::Ok();
        }));
    for (size_t e = 0; e < execs.size(); ++e) {
      if (exec_inserted[e] > 0) changed = true;
      round_derived += exec_inserted[e];
    }

    if (stats != nullptr) {
      for (const WorkerState& ws : workers) {
        stats->Add(ws.stats);
        stats->morsels += ws.morsels;
        stats->morsel_steals += ws.steals;
      }
      for (size_t e = 0; e < execs.size(); ++e) {
        stats->derived_tuples += exec_inserted[e];
        stats->duplicate_tuples += exec_duplicate[e];
      }
      if (options.collect_metrics) {
        obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
        size_t steals = 0;
        for (const WorkerState& ws : workers) steals += ws.steals;
        registry.GetCounter("exec.morsel_steals").Add(steals);
        // Per-rule attribution: every execution belongs to one rule.
        for (size_t e = 0; e < execs.size(); ++e) {
          RuleStats& rs = stats->per_rule[ExecRuleKey(execs[e])];
          ++rs.applications;
          rs.derived += exec_inserted[e];
          rs.duplicates += exec_duplicate[e];
          for (const WorkerState& ws : workers) {
            rs.exec_ns += ws.exec_ns[e];
          }
        }
        // Tuples produced and morsels claimed per lane: the balance
        // the merged totals hide.
        RoundBalance balance;
        balance.round = round;
        balance.workers = lanes;
        balance.min_tuples = SIZE_MAX;
        balance.min_morsels = SIZE_MAX;
        for (const WorkerState& ws : workers) {
          size_t produced = 0;
          for (const HashedRows& sink : ws.sinks) {
            produced += sink.rows.size();
          }
          balance.min_tuples = std::min(balance.min_tuples, produced);
          balance.max_tuples = std::max(balance.max_tuples, produced);
          balance.total_tuples += produced;
          balance.min_morsels = std::min(balance.min_morsels, ws.morsels);
          balance.max_morsels = std::max(balance.max_morsels, ws.morsels);
          balance.total_morsels += ws.morsels;
        }
        stats->round_balance.push_back(balance);
      }
    }
  }
  round_span.AddArg("changed", changed ? 1 : 0);
  size_t delta_out = 0;
  if (next_delta != nullptr) {
    // next_delta only holds this round's insertions (the caller clears
    // and swaps per round), so its total IS the produced delta.
    for (const auto& [p, rel] : *next_delta) delta_out += rel->size();
  }
  record_round(delta_out, round_derived);
  return changed;
}

/// Round-granularity safety valves: iteration cap and wall-clock
/// budget (elapsed since `eval_start_ns`, the EvaluateParallel entry).
Status CheckRoundBudgets(size_t iterations, uint64_t eval_start_ns,
                         const EvalOptions& options) {
  if (options.max_iterations > 0 && iterations > options.max_iterations) {
    return Status::FailedPrecondition(
        StrCat("evaluation exceeded max_iterations=",
               options.max_iterations));
  }
  if (options.budget_us > 0) {
    const uint64_t elapsed_us = (NowNs() - eval_start_ns) / 1000;
    if (elapsed_us > options.budget_us) {
      return Status::FailedPrecondition(
          StrCat("evaluation exceeded budget_us=", options.budget_us,
                 " (elapsed ", elapsed_us, " us)"));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Database> EvaluateParallel(const Program& program, const Database& edb,
                                  const EvalOptions& options,
                                  EvalStats* stats) {
  SEMOPT_RETURN_IF_ERROR(ValidateEvalOptions(options));
  // Direct callers (not routed through Evaluate) still honor
  // EvalOptions::trace_path; no-op when a session is already active.
  obs::ScopedTraceFile trace_file(options.trace_path);
  // Coordinator attribution (workers re-open the scope per morsel).
  obs::QueryIdScope qid_scope(options.query_id);
  obs::TraceSpan eval_span("eval.parallel");
  const uint64_t eval_start_ns = NowNs();

  ThreadPool pool(ResolveNumThreads(options));
  eval_span.AddArg("threads", static_cast<int64_t>(pool.num_threads()));
  eval_span.AddArg("morsel_size",
                   static_cast<int64_t>(ResolveMorselSize(options)));
  // Shared across every round of the evaluation (and, when the caller
  // supplied a session cache, across evaluations); only the coordinator
  // (RunRound's single-threaded planning block) touches it.
  PlanCache local_plan_cache;
  PlanCacheInterface& plan_cache =
      options.plan_cache != nullptr ? *options.plan_cache : local_plan_cache;
  SEMOPT_ASSIGN_OR_RETURN(std::vector<EvalComponent> components,
                          PlanComponents(program));
  std::set<PredicateId> idb_preds = program.IdbPredicates();

  Database idb;
  // Pre-create IDB relations so concurrent Find() never mutates.
  for (const PredicateId& p : idb_preds) idb.GetOrCreate(p);

  size_t global_round = 0;
  int64_t component_index = -1;
  for (EvalComponent& component : components) {
    ++component_index;
    if (component.rules.empty()) continue;  // EDB-only component

    obs::TraceSpan stratum_span("stratum");
    stratum_span.AddArg("index", component_index);
    stratum_span.AddArg("rules", static_cast<int64_t>(component.rules.size()));
    stratum_span.AddArg("recursive", component.recursive ? 1 : 0);

    auto all_rules = [&]() {
      std::vector<Execution> execs;
      execs.reserve(component.rules.size());
      for (const PlannedRule& pr : component.rules) {
        Execution e;
        e.rule = &pr;
        execs.push_back(std::move(e));
      }
      return execs;
    };

    if (!component.recursive) {
      // One (parallel) pass suffices.
      if (stats != nullptr) ++stats->iterations;
      ++global_round;
      std::vector<Execution> execs = all_rules();
      Result<bool> pass = RunRound(
          pool, plan_cache, edb, idb, idb_preds, execs,
          /*next_delta=*/nullptr, options, stats, global_round,
          static_cast<size_t>(component_index), /*delta_in=*/0);
      if (!pass.ok()) return pass.status();
      continue;
    }

    if (options.strategy == EvalStrategy::kNaive) {
      // Jacobi-style naive rounds: every rule re-runs against the state
      // frozen at the top of the round, until nothing new appears.
      size_t local_iterations = 0;
      bool changed = true;
      while (changed) {
        ++local_iterations;
        if (stats != nullptr) ++stats->iterations;
        ++global_round;
        SEMOPT_RETURN_IF_ERROR(
            CheckRoundBudgets(local_iterations, eval_start_ns, options));
        std::vector<Execution> execs = all_rules();
        SEMOPT_ASSIGN_OR_RETURN(
            changed,
            RunRound(pool, plan_cache, edb, idb, idb_preds, execs,
                     /*next_delta=*/nullptr, options, stats, global_round,
                     static_cast<size_t>(component_index), /*delta_in=*/0));
      }
      continue;
    }

    // Semi-naive with synchronous rounds: round 0 runs every rule on
    // the frozen state (recursive literals see empty component
    // relations; anything they miss is caught via the delta in later
    // rounds), then each round carves the frozen delta into morsels.
    std::map<PredicateId, std::unique_ptr<Relation>> delta;
    std::map<PredicateId, std::unique_ptr<Relation>> next_delta;
    for (const PredicateId& p : component.preds) {
      delta[p] = std::make_unique<Relation>(p);
      next_delta[p] = std::make_unique<Relation>(p);
    }

    if (stats != nullptr) ++stats->iterations;
    ++global_round;
    {
      std::vector<Execution> execs = all_rules();
      Result<bool> seeded = RunRound(
          pool, plan_cache, edb, idb, idb_preds, execs, &delta, options,
          stats, global_round, static_cast<size_t>(component_index),
          /*delta_in=*/0);
      if (!seeded.ok()) return seeded.status();
    }

    size_t local_iterations = 1;
    auto delta_total = [&]() {
      size_t total = 0;
      for (const auto& [p, rel] : delta) total += rel->size();
      return total;
    };

    size_t pending = delta_total();
    while (pending > 0) {
      ++local_iterations;
      if (stats != nullptr) ++stats->iterations;
      ++global_round;
      SEMOPT_RETURN_IF_ERROR(
          CheckRoundBudgets(local_iterations, eval_start_ns, options));

      std::vector<Execution> execs;
      for (const PlannedRule& pr : component.rules) {
        for (int lit_index : pr.recursive_literals) {
          const Literal& lit = pr.executor.rule().body()[lit_index];
          const Relation* d = delta[lit.atom().pred_id()].get();
          if (d->empty()) continue;  // nothing new through this literal
          Execution e;
          e.rule = &pr;
          e.delta_literal = lit_index;
          e.delta_rel = d;
          execs.push_back(std::move(e));
        }
      }
      Result<bool> round = RunRound(
          pool, plan_cache, edb, idb, idb_preds, execs, &next_delta, options,
          stats, global_round, static_cast<size_t>(component_index), pending);
      if (!round.ok()) return round.status();
      // Arena double-buffer: Clear keeps capacity, swap moves pointers;
      // steady-state rounds recycle delta storage without reallocating.
      for (const PredicateId& p : component.preds) {
        delta[p]->Clear();
        std::swap(delta[p], next_delta[p]);
      }
      pending = delta_total();
    }
  }

  return idb;
}

}  // namespace semopt
