#include "exec/parallel_fixpoint.h"

#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "eval/component_plan.h"
#include "eval/rule_executor.h"
#include "exec/thread_pool.h"
#include "util/interner.h"
#include "util/string_util.h"

namespace semopt {

size_t ResolveNumThreads(const EvalOptions& options) {
  if (options.num_threads != 0) return options.num_threads;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

/// Read-only view over the frozen EDB + IDB with at most one delta
/// binding: the partition (or full delta) a single execution reads at
/// its delta literal. One instance per task; Full/Delta only read
/// shared state.
class SnapshotSource : public RelationSource {
 public:
  SnapshotSource(const Database* edb, const Database* idb,
                 const std::set<PredicateId>* idb_preds)
      : edb_(edb), idb_(idb), idb_preds_(idb_preds) {}

  const Relation* Full(const PredicateId& pred) const override {
    if (idb_preds_->count(pred) > 0) return idb_->Find(pred);
    return edb_->Find(pred);
  }

  const Relation* Delta(const PredicateId& pred) const override {
    if (delta_rel_ != nullptr && pred == delta_pred_) return delta_rel_;
    return nullptr;
  }

  void SetDelta(const PredicateId& pred, const Relation* rel) {
    delta_pred_ = pred;
    delta_rel_ = rel;
  }

 private:
  const Database* edb_;
  const Database* idb_;
  const std::set<PredicateId>* idb_preds_;
  PredicateId delta_pred_{0, 0};
  const Relation* delta_rel_ = nullptr;
};

/// One rule application of a round: the rule, the original-body literal
/// whose relation is split across workers (-1 = run as a single task),
/// and the relation being split.
struct Execution {
  const PlannedRule* rule = nullptr;
  int delta_literal = -1;
  const Relation* partition_src = nullptr;
  RuleExecutor::PreparedPlan plan;
  PredicateId delta_pred{0, 0};
  std::vector<uint32_t> partition_probe_cols;
  /// Hash partitions of partition_src (possibly shared between
  /// executions reading the same delta relation).
  const std::vector<std::unique_ptr<Relation>>* partitions = nullptr;
};

/// Hash-splits `rel`'s rows into `parts` relations.
std::vector<std::unique_ptr<Relation>> PartitionRelation(const Relation& rel,
                                                         size_t parts) {
  std::vector<std::unique_ptr<Relation>> out;
  out.reserve(parts);
  for (size_t w = 0; w < parts; ++w) {
    out.push_back(std::make_unique<Relation>(rel.pred()));
  }
  TupleHash hash;
  for (const Tuple& t : rel.rows()) {
    out[hash(t) % parts]->Insert(t);
  }
  return out;
}

struct Task {
  size_t exec_index = 0;
  /// The delta slice this task reads; null for unpartitioned tasks.
  const Relation* partition = nullptr;
};

/// Executes one round: plans every execution against the frozen state,
/// partitions, fans the tasks out over `pool`, and merges the buffered
/// derivations into `idb` (and `next_delta` if given) with one owner
/// per head relation. Returns true when any new tuple was inserted.
Result<bool> RunRound(
    ThreadPool& pool, const Database& edb, Database& idb,
    const std::set<PredicateId>& idb_preds,
    std::vector<Execution>& execs,
    std::map<PredicateId, std::unique_ptr<Relation>>* next_delta,
    const EvalOptions& options, EvalStats* stats) {
  const size_t parts = pool.num_threads();
  SnapshotSource planning_source(&edb, &idb, &idb_preds);

  // Plan and pre-build indexes, single-threaded. Partitions of the same
  // delta relation are shared between executions.
  std::map<const Relation*, std::vector<std::unique_ptr<Relation>>>
      partition_cache;
  std::vector<Task> tasks;
  for (size_t e = 0; e < execs.size(); ++e) {
    Execution& exec = execs[e];
    const RuleExecutor& executor = exec.rule->executor;
    bool partitioned = exec.partition_src != nullptr;
    if (partitioned) {
      exec.delta_pred = exec.partition_src->pred();
      planning_source.SetDelta(exec.delta_pred, exec.partition_src);
    } else {
      planning_source.SetDelta(PredicateId{0, 0}, nullptr);
    }
    SEMOPT_ASSIGN_OR_RETURN(
        exec.plan,
        executor.Prepare(planning_source, exec.delta_literal,
                         options.cardinality_planning,
                         /*skip_delta_index=*/partitioned));
    if (!partitioned) {
      // No delta to split: split the plan's outermost positive literal
      // so one-pass components and naive rounds scale too.
      int split = executor.FirstPositiveStep(exec.plan);
      if (split >= 0) {
        const Literal& lit = exec.rule->executor.rule().body()[split];
        const Relation* rel = planning_source.Full(lit.atom().pred_id());
        if (rel != nullptr) {
          exec.delta_literal = split;
          exec.partition_src = rel;
          exec.delta_pred = rel->pred();
          partitioned = true;
        }
      }
    }
    if (!partitioned) {
      tasks.push_back(Task{e, nullptr});
      continue;
    }
    if (exec.partition_src->empty()) continue;  // derives nothing
    exec.partition_probe_cols =
        executor.ProbeColumnsFor(exec.plan, exec.delta_literal);
    auto it = partition_cache.find(exec.partition_src);
    if (it == partition_cache.end()) {
      it = partition_cache
               .emplace(exec.partition_src,
                        PartitionRelation(*exec.partition_src, parts))
               .first;
    }
    exec.partitions = &it->second;
    // Index the slices now, while single-threaded: workers must never
    // build indexes (Relation::Probe requires them pre-declared).
    for (const std::unique_ptr<Relation>& slice : it->second) {
      if (slice->empty()) continue;
      if (!exec.partition_probe_cols.empty()) {
        slice->EnsureIndex(exec.partition_probe_cols);
      }
      tasks.push_back(Task{e, slice.get()});
    }
  }
  if (tasks.empty()) return false;

  // Fan out. Workers read the frozen EDB/IDB and their private delta
  // slice, buffering derivations per task; no shared mutable state.
  std::vector<std::vector<Tuple>> buffers(tasks.size());
  std::vector<EvalStats> task_stats(tasks.size());
  {
    InternerFreezeGuard freeze;
    SEMOPT_RETURN_IF_ERROR(pool.ParallelFor(
        tasks.size(), [&](size_t i) -> Status {
          const Task& task = tasks[i];
          const Execution& exec = execs[task.exec_index];
          SnapshotSource source(&edb, &idb, &idb_preds);
          if (task.partition != nullptr) {
            source.SetDelta(exec.delta_pred, task.partition);
          }
          std::vector<Tuple>& buffer = buffers[i];
          exec.rule->executor.ExecutePlan(
              exec.plan, source, exec.delta_literal,
              [&buffer](const Tuple& t) { buffer.push_back(t); },
              &task_stats[i]);
          return Status::Ok();
        }));

    // Merge with a single owner per head relation: tasks are grouped by
    // head predicate and replayed in task order, so the result (and the
    // idb row order) is deterministic for a fixed thread count.
    std::map<PredicateId, std::vector<size_t>> by_head;
    for (size_t i = 0; i < tasks.size(); ++i) {
      by_head[execs[tasks[i].exec_index].rule->head].push_back(i);
    }
    std::vector<std::pair<PredicateId, std::vector<size_t>*>> owners;
    owners.reserve(by_head.size());
    for (auto& [pred, task_ids] : by_head) {
      owners.emplace_back(pred, &task_ids);
    }
    std::vector<EvalStats> merge_stats(owners.size());
    std::vector<char> owner_changed(owners.size(), 0);
    SEMOPT_RETURN_IF_ERROR(pool.ParallelFor(
        owners.size(), [&](size_t j) -> Status {
          const PredicateId& pred = owners[j].first;
          Relation* target = idb.FindMutable(pred);
          // at(): the component pre-created every delta relation, and
          // operator[] would mutate the (shared) map on a miss.
          Relation* delta_target =
              next_delta != nullptr ? next_delta->at(pred).get() : nullptr;
          for (size_t i : *owners[j].second) {
            for (Tuple& t : buffers[i]) {
              if (target->Insert(t)) {
                owner_changed[j] = 1;
                if (delta_target != nullptr) delta_target->Insert(t);
                ++merge_stats[j].derived_tuples;
              } else {
                ++merge_stats[j].duplicate_tuples;
              }
            }
          }
          return Status::Ok();
        }));
    if (stats != nullptr) {
      for (const EvalStats& s : task_stats) stats->Add(s);
      for (const EvalStats& s : merge_stats) stats->Add(s);
    }
    for (char c : owner_changed) {
      if (c) return true;
    }
  }
  return false;
}

Status CheckIterationBudget(size_t iterations, const EvalOptions& options) {
  if (options.max_iterations > 0 && iterations > options.max_iterations) {
    return Status::FailedPrecondition(
        StrCat("evaluation exceeded max_iterations=",
               options.max_iterations));
  }
  return Status::Ok();
}

}  // namespace

Result<Database> EvaluateParallel(const Program& program, const Database& edb,
                                  const EvalOptions& options,
                                  EvalStats* stats) {
  ThreadPool pool(ResolveNumThreads(options));
  SEMOPT_ASSIGN_OR_RETURN(std::vector<EvalComponent> components,
                          PlanComponents(program));
  std::set<PredicateId> idb_preds = program.IdbPredicates();

  Database idb;
  // Pre-create IDB relations so concurrent Find() never mutates.
  for (const PredicateId& p : idb_preds) idb.GetOrCreate(p);

  for (EvalComponent& component : components) {
    if (component.rules.empty()) continue;  // EDB-only component

    auto all_rules = [&]() {
      std::vector<Execution> execs;
      execs.reserve(component.rules.size());
      for (const PlannedRule& pr : component.rules) {
        Execution e;
        e.rule = &pr;
        execs.push_back(std::move(e));
      }
      return execs;
    };

    if (!component.recursive) {
      // One (parallel) pass suffices.
      if (stats != nullptr) ++stats->iterations;
      std::vector<Execution> execs = all_rules();
      Result<bool> pass = RunRound(pool, edb, idb, idb_preds, execs,
                                   /*next_delta=*/nullptr, options, stats);
      if (!pass.ok()) return pass.status();
      continue;
    }

    if (options.strategy == EvalStrategy::kNaive) {
      // Jacobi-style naive rounds: every rule re-runs against the state
      // frozen at the top of the round, until nothing new appears.
      size_t local_iterations = 0;
      bool changed = true;
      while (changed) {
        ++local_iterations;
        if (stats != nullptr) ++stats->iterations;
        SEMOPT_RETURN_IF_ERROR(
            CheckIterationBudget(local_iterations, options));
        std::vector<Execution> execs = all_rules();
        SEMOPT_ASSIGN_OR_RETURN(
            changed, RunRound(pool, edb, idb, idb_preds, execs,
                              /*next_delta=*/nullptr, options, stats));
      }
      continue;
    }

    // Semi-naive with synchronous rounds: round 0 runs every rule on
    // the frozen state (recursive literals see empty component
    // relations; anything they miss is caught via the delta in later
    // rounds), then each round partitions the delta across workers.
    std::map<PredicateId, std::unique_ptr<Relation>> delta;
    std::map<PredicateId, std::unique_ptr<Relation>> next_delta;
    for (const PredicateId& p : component.preds) {
      delta[p] = std::make_unique<Relation>(p);
      next_delta[p] = std::make_unique<Relation>(p);
    }

    if (stats != nullptr) ++stats->iterations;
    {
      std::vector<Execution> execs = all_rules();
      Result<bool> seeded =
          RunRound(pool, edb, idb, idb_preds, execs, &delta, options, stats);
      if (!seeded.ok()) return seeded.status();
    }

    size_t local_iterations = 1;
    auto delta_nonempty = [&]() {
      for (const auto& [p, rel] : delta) {
        if (!rel->empty()) return true;
      }
      return false;
    };

    while (delta_nonempty()) {
      ++local_iterations;
      if (stats != nullptr) ++stats->iterations;
      SEMOPT_RETURN_IF_ERROR(CheckIterationBudget(local_iterations, options));

      std::vector<Execution> execs;
      for (const PlannedRule& pr : component.rules) {
        for (int lit_index : pr.recursive_literals) {
          const Literal& lit = pr.executor.rule().body()[lit_index];
          const Relation* d = delta[lit.atom().pred_id()].get();
          if (d->empty()) continue;  // nothing new through this literal
          Execution e;
          e.rule = &pr;
          e.delta_literal = lit_index;
          e.partition_src = d;
          execs.push_back(std::move(e));
        }
      }
      Result<bool> round = RunRound(pool, edb, idb, idb_preds, execs,
                                    &next_delta, options, stats);
      if (!round.ok()) return round.status();
      for (const PredicateId& p : component.preds) {
        delta[p]->Clear();
        std::swap(delta[p], next_delta[p]);
      }
    }
  }

  return idb;
}

}  // namespace semopt
