#include "exec/thread_pool.h"

#include <exception>

#include "util/string_util.h"

namespace semopt {

namespace {

/// Runs one task, converting a thrown exception into a Status.
Status RunOne(const std::function<Status(size_t, size_t)>& fn, size_t lane,
              size_t index) {
  try {
    return fn(lane, index);
  } catch (const std::exception& e) {
    return Status::Internal(StrCat("task threw: ", e.what()));
  } catch (...) {
    return Status::Internal("task threw a non-std exception");
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  size_t background = num_threads > 0 ? num_threads - 1 : 0;
  workers_.reserve(background);
  for (size_t i = 0; i < background; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(/*lane=*/i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(size_t lane) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && generation_ != seen_generation);
    });
    if (stop_) return;
    seen_generation = generation_;
    Job* job = job_;
    ++active_workers_;
    lock.unlock();
    RunTasks(job, lane);
    lock.lock();
    --active_workers_;
    if (active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::RunTasks(Job* job, size_t lane) {
  while (true) {
    size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) return;
    Status status = RunOne(*job->fn, lane, i);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job->failed || i < job->error_index) {
        job->failed = true;
        job->error_index = i;
        job->error = std::move(status);
      }
      // Cancel the unclaimed tail; in-flight tasks run to completion.
      size_t expected = job->next.load(std::memory_order_relaxed);
      while (expected < job->n &&
             !job->next.compare_exchange_weak(expected, job->n)) {
      }
    }
  }
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& fn) {
  return ParallelForWorkers(
      n, [&fn](size_t /*lane*/, size_t index) { return fn(index); });
}

Status ThreadPool::ParallelForWorkers(
    size_t n, const std::function<Status(size_t, size_t)>& fn) {
  if (n == 0) return Status::Ok();
  if (workers_.empty() || n == 1) {
    // Inline fast path: no synchronization; the caller is lane 0.
    for (size_t i = 0; i < n; ++i) {
      Status status = RunOne(fn, /*lane=*/0, i);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

  Job job;
  job.n = n;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();
  RunTasks(&job, /*lane=*/0);  // the calling thread participates
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return active_workers_ == 0 &&
           job.next.load(std::memory_order_relaxed) >= job.n;
  });
  job_ = nullptr;
  return job.failed ? job.error : Status::Ok();
}

}  // namespace semopt
