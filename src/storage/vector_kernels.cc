#include "storage/vector_kernels.h"

#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#define SEMOPT_SIMD_X86 1
#include <immintrin.h>
#endif

namespace semopt {

namespace {

/// Branch-light scalar select: unconditional index store, conditional
/// advance. No data-dependent branches, so mispredict cost is flat
/// regardless of selectivity.
void SelectLaneEqScalar(const uint64_t* lane, uint32_t begin, uint32_t end,
                        uint64_t value, std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin));
  uint32_t* out = sel->data() + base;
  size_t o = 0;
  for (uint32_t i = begin; i < end; ++i) {
    out[o] = i;
    o += lane[i] == value ? 1 : 0;
  }
  sel->resize(base + o);
}

void SelectLanesEqScalar(const uint64_t* a, const uint64_t* b, uint32_t begin,
                         uint32_t end, std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin));
  uint32_t* out = sel->data() + base;
  size_t o = 0;
  for (uint32_t i = begin; i < end; ++i) {
    out[o] = i;
    o += a[i] == b[i] ? 1 : 0;
  }
  sel->resize(base + o);
}

#ifdef SEMOPT_SIMD_X86

/// Appends the set bits of a 4-lane movemask as indices i+bit.
inline void AppendMask(unsigned mask, uint32_t i, std::vector<uint32_t>* sel) {
  while (mask != 0) {
    sel->push_back(i + static_cast<uint32_t>(__builtin_ctz(mask)));
    mask &= mask - 1;
  }
}

__attribute__((target("avx2"))) void SelectLaneEqAvx2(
    const uint64_t* lane, uint32_t begin, uint32_t end, uint64_t value,
    std::vector<uint32_t>* sel) {
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  uint32_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lane + i));
    const __m256i eq = _mm256_cmpeq_epi64(x, v);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    AppendMask(mask, i, sel);
  }
  for (; i < end; ++i) {
    if (lane[i] == value) sel->push_back(i);
  }
}

__attribute__((target("avx2"))) void SelectLanesEqAvx2(
    const uint64_t* a, const uint64_t* b, uint32_t begin, uint32_t end,
    std::vector<uint32_t>* sel) {
  uint32_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i xa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i xb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i eq = _mm256_cmpeq_epi64(xa, xb);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    AppendMask(mask, i, sel);
  }
  for (; i < end; ++i) {
    if (a[i] == b[i]) sel->push_back(i);
  }
}

/// SSE2 has no 64-bit compare: compare the 32-bit halves and AND each
/// pair (a u64 is equal iff both halves are).
inline __m128i CmpEq64Sse2(__m128i x, __m128i y) {
  const __m128i eq32 = _mm_cmpeq_epi32(x, y);
  const __m128i swapped = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1));
  return _mm_and_si128(eq32, swapped);
}

void SelectLaneEqSse2(const uint64_t* lane, uint32_t begin, uint32_t end,
                      uint64_t value, std::vector<uint32_t>* sel) {
  const __m128i v = _mm_set1_epi64x(static_cast<long long>(value));
  uint32_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lane + i));
    const unsigned mask = static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(CmpEq64Sse2(x, v))));
    AppendMask(mask, i, sel);
  }
  for (; i < end; ++i) {
    if (lane[i] == value) sel->push_back(i);
  }
}

void SelectLanesEqSse2(const uint64_t* a, const uint64_t* b, uint32_t begin,
                       uint32_t end, std::vector<uint32_t>* sel) {
  uint32_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const __m128i xa =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i xb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const unsigned mask = static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(CmpEq64Sse2(xa, xb))));
    AppendMask(mask, i, sel);
  }
  for (; i < end; ++i) {
    if (a[i] == b[i]) sel->push_back(i);
  }
}

#endif  // SEMOPT_SIMD_X86

}  // namespace

void HashValuesBatchScalar(const Value* rows, size_t arity, size_t count,
                           size_t* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = HashValues(rows + i * arity, arity);
  }
}

void HashValuesBatch(const Value* rows, size_t arity, size_t count,
                     size_t* out) {
  if (!simd::KernelsEnabled()) {
    HashValuesBatchScalar(rows, arity, count, out);
    return;
  }
  // Four independent HashCombine chains. Each row's chain is the exact
  // scalar recipe (HashCombine over its values, then MixBits), so the
  // results are bit-identical to HashValues — only the schedule is
  // data-parallel: the column loop advances all four accumulators per
  // trip, turning a serial dependency chain per row into four
  // overlapping ones. (Wider interleaves lose to register pressure;
  // the batch form's bigger win is feeding the callers' dedup-slot
  // prefetch lookahead a block of hashes at a time.)
  constexpr size_t kLanes = 4;
  size_t i = 0;
  for (; i + kLanes <= count; i += kLanes) {
    size_t acc[kLanes] = {};
    const Value* base = rows + i * arity;
    for (size_t c = 0; c < arity; ++c) {
      for (size_t l = 0; l < kLanes; ++l) {
        HashCombine(&acc[l], base[l * arity + c]);
      }
    }
    for (size_t l = 0; l < kLanes; ++l) {
      out[i + l] = static_cast<size_t>(MixBits(acc[l]));
    }
  }
  for (; i < count; ++i) {
    out[i] = HashValues(rows + i * arity, arity);
  }
}

void SelectLaneEq(const uint64_t* lane, uint32_t begin, uint32_t end,
                  uint64_t value, std::vector<uint32_t>* sel) {
#ifdef SEMOPT_SIMD_X86
  switch (simd::ActiveLevel()) {
    case simd::Level::kAVX2:
      SelectLaneEqAvx2(lane, begin, end, value, sel);
      return;
    case simd::Level::kSSE2:
      SelectLaneEqSse2(lane, begin, end, value, sel);
      return;
    case simd::Level::kScalar:
      break;
  }
#endif
  SelectLaneEqScalar(lane, begin, end, value, sel);
}

void SelectLanesEq(const uint64_t* a, const uint64_t* b, uint32_t begin,
                   uint32_t end, std::vector<uint32_t>* sel) {
#ifdef SEMOPT_SIMD_X86
  switch (simd::ActiveLevel()) {
    case simd::Level::kAVX2:
      SelectLanesEqAvx2(a, b, begin, end, sel);
      return;
    case simd::Level::kSSE2:
      SelectLanesEqSse2(a, b, begin, end, sel);
      return;
    case simd::Level::kScalar:
      break;
  }
#endif
  SelectLanesEqScalar(a, b, begin, end, sel);
}

void RefineLaneEq(const uint64_t* lane, uint64_t value,
                  std::vector<uint32_t>* sel) {
  uint32_t* data = sel->data();
  const size_t n = sel->size();
  size_t o = 0;
  for (size_t k = 0; k < n; ++k) {
    data[o] = data[k];
    o += lane[data[k]] == value ? 1 : 0;
  }
  sel->resize(o);
}

void RefineLanesEq(const uint64_t* a, const uint64_t* b,
                   std::vector<uint32_t>* sel) {
  uint32_t* data = sel->data();
  const size_t n = sel->size();
  size_t o = 0;
  for (size_t k = 0; k < n; ++k) {
    data[o] = data[k];
    o += a[data[k]] == b[data[k]] ? 1 : 0;
  }
  sel->resize(o);
}

void RefineKindEq(const uint8_t* kinds, uint8_t kind,
                  std::vector<uint32_t>* sel) {
  uint32_t* data = sel->data();
  const size_t n = sel->size();
  size_t o = 0;
  for (size_t k = 0; k < n; ++k) {
    data[o] = data[k];
    o += kinds[data[k]] == kind ? 1 : 0;
  }
  sel->resize(o);
}

}  // namespace semopt
