#include "storage/vector_kernels.h"

#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#define SEMOPT_SIMD_X86 1
#include <immintrin.h>
#endif

namespace semopt {

namespace {

/// Branch-light scalar select: unconditional index store, conditional
/// advance. No data-dependent branches, so mispredict cost is flat
/// regardless of selectivity.
void SelectLaneEqScalar(const uint64_t* lane, uint32_t begin, uint32_t end,
                        uint64_t value, std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin));
  uint32_t* out = sel->data() + base;
  size_t o = 0;
  for (uint32_t i = begin; i < end; ++i) {
    out[o] = i;
    o += lane[i] == value ? 1 : 0;
  }
  sel->resize(base + o);
}

void SelectLanesEqScalar(const uint64_t* a, const uint64_t* b, uint32_t begin,
                         uint32_t end, std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin));
  uint32_t* out = sel->data() + base;
  size_t o = 0;
  for (uint32_t i = begin; i < end; ++i) {
    out[o] = i;
    o += a[i] == b[i] ? 1 : 0;
  }
  sel->resize(base + o);
}

#ifdef SEMOPT_SIMD_X86

/// Appends the set bits of a 4-lane movemask as indices i+bit.
inline void AppendMask(unsigned mask, uint32_t i, std::vector<uint32_t>* sel) {
  while (mask != 0) {
    sel->push_back(i + static_cast<uint32_t>(__builtin_ctz(mask)));
    mask &= mask - 1;
  }
}

__attribute__((target("avx2"))) void SelectLaneEqAvx2(
    const uint64_t* lane, uint32_t begin, uint32_t end, uint64_t value,
    std::vector<uint32_t>* sel) {
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  uint32_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lane + i));
    const __m256i eq = _mm256_cmpeq_epi64(x, v);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    AppendMask(mask, i, sel);
  }
  for (; i < end; ++i) {
    if (lane[i] == value) sel->push_back(i);
  }
}

__attribute__((target("avx2"))) void SelectLanesEqAvx2(
    const uint64_t* a, const uint64_t* b, uint32_t begin, uint32_t end,
    std::vector<uint32_t>* sel) {
  uint32_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i xa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i xb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i eq = _mm256_cmpeq_epi64(xa, xb);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    AppendMask(mask, i, sel);
  }
  for (; i < end; ++i) {
    if (a[i] == b[i]) sel->push_back(i);
  }
}

/// SSE2 has no 64-bit compare: compare the 32-bit halves and AND each
/// pair (a u64 is equal iff both halves are).
inline __m128i CmpEq64Sse2(__m128i x, __m128i y) {
  const __m128i eq32 = _mm_cmpeq_epi32(x, y);
  const __m128i swapped = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1));
  return _mm_and_si128(eq32, swapped);
}

void SelectLaneEqSse2(const uint64_t* lane, uint32_t begin, uint32_t end,
                      uint64_t value, std::vector<uint32_t>* sel) {
  const __m128i v = _mm_set1_epi64x(static_cast<long long>(value));
  uint32_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lane + i));
    const unsigned mask = static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(CmpEq64Sse2(x, v))));
    AppendMask(mask, i, sel);
  }
  for (; i < end; ++i) {
    if (lane[i] == value) sel->push_back(i);
  }
}

void SelectLanesEqSse2(const uint64_t* a, const uint64_t* b, uint32_t begin,
                       uint32_t end, std::vector<uint32_t>* sel) {
  uint32_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const __m128i xa =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i xb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const unsigned mask = static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(CmpEq64Sse2(xa, xb))));
    AppendMask(mask, i, sel);
  }
  for (; i < end; ++i) {
    if (a[i] == b[i]) sel->push_back(i);
  }
}

/// The HashValues recipe, four rows wide over gathered lanes. Each
/// 64-bit lane runs one row's exact scalar chain — seed from the kind
/// byte, HashCombine of the payload per value, HashCombine of the
/// value hashes into the row seed, SplitMix64 finalizer — so the
/// results are bit-identical to HashValues. Gathers pull the payload
/// (and kind) qwords of four rows' column c straight out of the
/// row-major Value array (16-byte stride), which keeps the four
/// dependency chains fed without the scalar interleave's register
/// juggling. AVX2 has no 64-bit multiply, so the finalizer's two
/// multiplies run as three 32x32 partial products each.

__attribute__((target("avx2"))) inline __m256i Mul64Avx2(__m256i a,
                                                         uint64_t m) {
  const __m256i b = _mm256_set1_epi64x(static_cast<long long>(m));
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);        // a_lo * b_lo
  const __m256i cross1 = _mm256_mul_epu32(a_hi, b);  // a_hi * b_lo
  const __m256i cross2 = _mm256_mul_epu32(a, b_hi);  // a_lo * b_hi
  const __m256i cross = _mm256_add_epi64(cross1, cross2);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// seed ^= h + C + (seed << 6) + (seed >> 2), lane-wise.
__attribute__((target("avx2"))) inline __m256i HashCombineAvx2(__m256i seed,
                                                               __m256i h) {
  const __m256i c =
      _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  __m256i t = _mm256_add_epi64(h, c);
  t = _mm256_add_epi64(t, _mm256_slli_epi64(seed, 6));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(seed, 2));
  return _mm256_xor_si256(seed, t);
}

__attribute__((target("avx2"))) void HashValuesBatchAvx2(const Value* rows,
                                                         size_t arity,
                                                         size_t count,
                                                         size_t* out) {
  static_assert(sizeof(Value) == 16,
                "gather stride assumes two-word Terms (kind, payload)");
  const long long* base = reinterpret_cast<const long long*>(rows);
  const __m256i byte_mask = _mm256_set1_epi64x(0xFF);
  // Lane l reads row i+l: value (i+l)*arity + c sits at qword index
  // ((i+l)*arity + c) * 2, its payload one qword later.
  const __m256i lane_step = _mm256_setr_epi64x(
      0, static_cast<long long>(arity) * 2,
      static_cast<long long>(arity) * 4, static_cast<long long>(arity) * 6);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i acc = _mm256_setzero_si256();
    const long long row_base = static_cast<long long>(i * arity) * 2;
    for (size_t c = 0; c < arity; ++c) {
      const __m256i kind_idx = _mm256_add_epi64(
          lane_step,
          _mm256_set1_epi64x(row_base + static_cast<long long>(c) * 2));
      const __m256i payload_idx =
          _mm256_add_epi64(kind_idx, _mm256_set1_epi64x(1));
      // The kind qword's low byte is the TermKind; the upper seven
      // bytes are struct padding, masked off below.
      const __m256i kind = _mm256_and_si256(
          _mm256_i64gather_epi64(base, kind_idx, 8), byte_mask);
      const __m256i payload = _mm256_i64gather_epi64(base, payload_idx, 8);
      // Term::Hash: seed = kind; HashCombine(&seed, payload).
      const __m256i term_hash = HashCombineAvx2(kind, payload);
      acc = HashCombineAvx2(acc, term_hash);
    }
    // MixBits finalizer.
    acc = Mul64Avx2(_mm256_xor_si256(acc, _mm256_srli_epi64(acc, 30)),
                    0xbf58476d1ce4e5b9ULL);
    acc = Mul64Avx2(_mm256_xor_si256(acc, _mm256_srli_epi64(acc, 27)),
                    0x94d049bb133111ebULL);
    acc = _mm256_xor_si256(acc, _mm256_srli_epi64(acc, 31));
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    out[i] = static_cast<size_t>(lanes[0]);
    out[i + 1] = static_cast<size_t>(lanes[1]);
    out[i + 2] = static_cast<size_t>(lanes[2]);
    out[i + 3] = static_cast<size_t>(lanes[3]);
  }
  for (; i < count; ++i) {
    out[i] = HashValues(rows + i * arity, arity);
  }
}

#endif  // SEMOPT_SIMD_X86

}  // namespace

void HashValuesBatchScalar(const Value* rows, size_t arity, size_t count,
                           size_t* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = HashValues(rows + i * arity, arity);
  }
}

void HashValuesBatch(const Value* rows, size_t arity, size_t count,
                     size_t* out) {
  if (!simd::KernelsEnabled()) {
    HashValuesBatchScalar(rows, arity, count, out);
    return;
  }
#ifdef SEMOPT_SIMD_X86
  // AVX2: gather the payload/kind lanes and run four rows' chains in
  // one vector register (see HashValuesBatchAvx2). Arity 0 rows all
  // hash to MixBits(0); the scalar loop handles that degenerate shape.
  if (arity > 0 && simd::ActiveLevel() == simd::Level::kAVX2) {
    HashValuesBatchAvx2(rows, arity, count, out);
    return;
  }
#endif
  // Four independent HashCombine chains. Each row's chain is the exact
  // scalar recipe (HashCombine over its values, then MixBits), so the
  // results are bit-identical to HashValues — only the schedule is
  // data-parallel: the column loop advances all four accumulators per
  // trip, turning a serial dependency chain per row into four
  // overlapping ones. (Wider interleaves lose to register pressure;
  // the batch form's bigger win is feeding the callers' dedup-slot
  // prefetch lookahead a block of hashes at a time.)
  constexpr size_t kLanes = 4;
  size_t i = 0;
  for (; i + kLanes <= count; i += kLanes) {
    size_t acc[kLanes] = {};
    const Value* base = rows + i * arity;
    for (size_t c = 0; c < arity; ++c) {
      for (size_t l = 0; l < kLanes; ++l) {
        HashCombine(&acc[l], base[l * arity + c]);
      }
    }
    for (size_t l = 0; l < kLanes; ++l) {
      out[i + l] = static_cast<size_t>(MixBits(acc[l]));
    }
  }
  for (; i < count; ++i) {
    out[i] = HashValues(rows + i * arity, arity);
  }
}

void SelectLaneEq(const uint64_t* lane, uint32_t begin, uint32_t end,
                  uint64_t value, std::vector<uint32_t>* sel) {
#ifdef SEMOPT_SIMD_X86
  switch (simd::ActiveLevel()) {
    case simd::Level::kAVX2:
      SelectLaneEqAvx2(lane, begin, end, value, sel);
      return;
    case simd::Level::kSSE2:
      SelectLaneEqSse2(lane, begin, end, value, sel);
      return;
    case simd::Level::kScalar:
      break;
  }
#endif
  SelectLaneEqScalar(lane, begin, end, value, sel);
}

void SelectLanesEq(const uint64_t* a, const uint64_t* b, uint32_t begin,
                   uint32_t end, std::vector<uint32_t>* sel) {
#ifdef SEMOPT_SIMD_X86
  switch (simd::ActiveLevel()) {
    case simd::Level::kAVX2:
      SelectLanesEqAvx2(a, b, begin, end, sel);
      return;
    case simd::Level::kSSE2:
      SelectLanesEqSse2(a, b, begin, end, sel);
      return;
    case simd::Level::kScalar:
      break;
  }
#endif
  SelectLanesEqScalar(a, b, begin, end, sel);
}

void RefineLaneEq(const uint64_t* lane, uint64_t value,
                  std::vector<uint32_t>* sel) {
  uint32_t* data = sel->data();
  const size_t n = sel->size();
  size_t o = 0;
  for (size_t k = 0; k < n; ++k) {
    data[o] = data[k];
    o += lane[data[k]] == value ? 1 : 0;
  }
  sel->resize(o);
}

void RefineLanesEq(const uint64_t* a, const uint64_t* b,
                   std::vector<uint32_t>* sel) {
  uint32_t* data = sel->data();
  const size_t n = sel->size();
  size_t o = 0;
  for (size_t k = 0; k < n; ++k) {
    data[o] = data[k];
    o += a[data[k]] == b[data[k]] ? 1 : 0;
  }
  sel->resize(o);
}

void RefineKindEq(const uint8_t* kinds, uint8_t kind,
                  std::vector<uint32_t>* sel) {
  uint32_t* data = sel->data();
  const size_t n = sel->size();
  size_t o = 0;
  for (size_t k = 0; k < n; ++k) {
    data[o] = data[k];
    o += kinds[data[k]] == kind ? 1 : 0;
  }
  sel->resize(o);
}

}  // namespace semopt
