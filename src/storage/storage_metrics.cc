#include "storage/storage_metrics.h"

#include <atomic>

#include "obs/metrics.h"

namespace semopt {
namespace storage_metrics {

namespace {
std::atomic<int64_t> g_tuple_bytes{0};
std::atomic<int64_t> g_columns_bytes{0};
std::atomic<uint64_t> g_rehashes{0};
// Rehash count already folded into a registry counter; PublishTo adds
// only the delta so the registry counter stays monotonic.
std::atomic<uint64_t> g_rehashes_published{0};
}  // namespace

void AddTupleBytes(int64_t delta) {
  g_tuple_bytes.fetch_add(delta, std::memory_order_relaxed);
}

void AddColumnsBytes(int64_t delta) {
  g_columns_bytes.fetch_add(delta, std::memory_order_relaxed);
}

void AddRehash(uint64_t n) {
  g_rehashes.fetch_add(n, std::memory_order_relaxed);
}

int64_t LiveTupleBytes() {
  return g_tuple_bytes.load(std::memory_order_relaxed);
}

int64_t LiveColumnsBytes() {
  return g_columns_bytes.load(std::memory_order_relaxed);
}

uint64_t TotalRehashes() {
  return g_rehashes.load(std::memory_order_relaxed);
}

void PublishTo(obs::MetricsRegistry& registry) {
  registry.GetGauge("storage.tuples_bytes").Set(LiveTupleBytes());
  registry.GetGauge("storage.columns_bytes").Set(LiveColumnsBytes());
  uint64_t total = TotalRehashes();
  uint64_t prev = g_rehashes_published.exchange(total,
                                                std::memory_order_relaxed);
  if (total > prev) {
    registry.GetCounter("storage.rehash").Add(total - prev);
  }
}

}  // namespace storage_metrics
}  // namespace semopt
