#include "storage/relation.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "storage/column_view.h"
#include "storage/storage_metrics.h"
#include "storage/vector_kernels.h"
#include "util/string_util.h"

namespace semopt {

namespace {
constexpr size_t kMinIndexSlots = 16;

bool NeedsGrowth(size_t buckets, size_t slots) {
  return slots == 0 || (buckets + 1) * 4 > slots * 3;
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = kMinIndexSlots;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

std::string TupleToString(RowRef row) {
  return StrCat("(", JoinToString(row, ", "), ")");
}

std::string TupleToString(const Tuple& tuple) {
  return TupleToString(RowRef(tuple));
}

Relation::~Relation() { FreeIndexes(); }

void Relation::FreeIndexes() {
  IndexNode* node = index_head_.load(std::memory_order_acquire);
  index_head_.store(nullptr, std::memory_order_relaxed);
  while (node != nullptr) {
    IndexNode* next = node->next;
    delete node;
    node = next;
  }
}

void Relation::CopyIndexesFrom(const Relation& other) {
  // Rebuild the list in the same order (push-front reverses, so walk
  // into a vector first). Exclusive access on both sides by contract.
  std::vector<const IndexNode*> nodes;
  for (const IndexNode* n = other.index_head_.load(std::memory_order_acquire);
       n != nullptr; n = n->next) {
    nodes.push_back(n);
  }
  IndexNode* head = nullptr;
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    IndexNode* copy = new IndexNode{(*it)->index, head};
    head = copy;
  }
  index_head_.store(head, std::memory_order_release);
}

Relation::Relation(const Relation& other)
    : pred_(other.pred_),
      store_(other.store_),
      index_mu_(std::make_unique<std::mutex>()) {
  CopyIndexesFrom(other);
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  pred_ = other.pred_;
  store_ = other.store_;
  FreeIndexes();
  CopyIndexesFrom(other);
  if (index_mu_ == nullptr) index_mu_ = std::make_unique<std::mutex>();
  columns_.reset();
  stats_.reset();
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : pred_(other.pred_),
      store_(std::move(other.store_)),
      index_head_(other.index_head_.load(std::memory_order_acquire)),
      index_mu_(std::move(other.index_mu_)),
      columns_(std::move(other.columns_)),
      stats_(std::move(other.stats_)) {
  other.index_head_.store(nullptr, std::memory_order_relaxed);
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  pred_ = other.pred_;
  store_ = std::move(other.store_);
  FreeIndexes();
  index_head_.store(other.index_head_.load(std::memory_order_acquire),
                    std::memory_order_relaxed);
  other.index_head_.store(nullptr, std::memory_order_relaxed);
  index_mu_ = std::move(other.index_mu_);
  columns_ = std::move(other.columns_);
  stats_ = std::move(other.stats_);
  return *this;
}

bool Relation::Insert(RowRef row) {
  return Insert(row, HashValues(row.data(), arity()));
}

bool Relation::Insert(RowRef row, size_t hash) {
  assert(row.size() == arity());
  auto [id, inserted] = store_.InsertIfAbsent(row.data(), hash);
  if (!inserted) return false;
  // Mutation is exclusive by contract, so the stale columnar snapshot
  // can be dropped without the lock. The null check keeps the common
  // bulk-insert case (cache already gone) a single branch.
  if (columns_ != nullptr) columns_.reset();
  if (stats_ != nullptr) stats_.reset();
  for (IndexNode* n = index_head_.load(std::memory_order_acquire);
       n != nullptr; n = n->next) {
    IndexInsert(n->index, id);
  }
  return true;
}

Relation::CommitCounts Relation::Commit(const TupleBuffer& rows,
                                        Relation* delta_target) {
  CommitCounts counts;
  // Hash in short runs ahead of the inserts: the hash pass streams the
  // flat buffer while prefetching the dedup slot each row will probe,
  // and every hash is computed once and reused across the full and
  // delta inserts.
  constexpr size_t kChunk = 128;
  size_t hashes[kChunk];
  const size_t n = rows.size();
  const uint32_t width = rows.arity();
  for (size_t start = 0; start < n; start += kChunk) {
    const size_t m = std::min(kChunk, n - start);
    // The buffer is flat, so the chunk's rows are one contiguous
    // value run — exactly HashValuesBatch's layout.
    HashValuesBatch(rows.row(start).data(), width, m, hashes);
    for (size_t j = 0; j < m; ++j) PrefetchInsert(hashes[j]);
    for (size_t j = 0; j < m; ++j) {
      RowRef t = rows.row(start + j);
      if (Insert(t, hashes[j])) {
        ++counts.inserted;
        if (delta_target != nullptr) delta_target->Insert(t, hashes[j]);
      } else {
        ++counts.duplicates;
      }
    }
  }
  return counts;
}

Relation::CommitCounts Relation::CommitHashed(const TupleBuffer& rows,
                                              const size_t* hashes,
                                              Relation* delta_target) {
  CommitCounts counts;
  // Hashes arrive precomputed (the morsel workers pay that cost in
  // parallel); this pass only prefetches dedup slots ahead of the
  // probes and inserts.
  constexpr size_t kChunk = 128;
  const size_t n = rows.size();
  for (size_t start = 0; start < n; start += kChunk) {
    const size_t m = std::min(kChunk, n - start);
    for (size_t j = 0; j < m; ++j) PrefetchInsert(hashes[start + j]);
    for (size_t j = 0; j < m; ++j) {
      RowRef t = rows.row(start + j);
      if (Insert(t, hashes[start + j])) {
        ++counts.inserted;
        if (delta_target != nullptr) {
          delta_target->Insert(t, hashes[start + j]);
        }
      } else {
        ++counts.duplicates;
      }
    }
  }
  return counts;
}

Relation::CommitCounts Relation::CommitCounted(const TupleBuffer& rows,
                                               Relation* delta_target,
                                               std::vector<RowId>* row_ids) {
  CommitCounts counts;
  const size_t n = rows.size();
  row_ids->resize(n);
  constexpr size_t kChunk = 128;
  size_t hashes[kChunk];
  const uint32_t width = rows.arity();
  for (size_t start = 0; start < n; start += kChunk) {
    const size_t m = std::min(kChunk, n - start);
    HashValuesBatch(rows.row(start).data(), width, m, hashes);
    for (size_t j = 0; j < m; ++j) PrefetchInsert(hashes[j]);
    for (size_t j = 0; j < m; ++j) {
      RowRef t = rows.row(start + j);
      auto [id, inserted] = store_.InsertIfAbsent(t.data(), hashes[j]);
      (*row_ids)[start + j] = id;
      if (inserted) {
        if (columns_ != nullptr) columns_.reset();
        if (stats_ != nullptr) stats_.reset();
        for (IndexNode* node = index_head_.load(std::memory_order_acquire);
             node != nullptr; node = node->next) {
          IndexInsert(node->index, id);
        }
        ++counts.inserted;
        if (delta_target != nullptr) delta_target->Insert(t, hashes[j]);
      } else {
        ++counts.duplicates;
      }
    }
  }
  return counts;
}

size_t Relation::Erase(const TupleBuffer& victims,
                       std::vector<std::pair<RowId, RowId>>* moves) {
  if (moves != nullptr) moves->clear();
  if (victims.empty() || store_.empty()) return 0;
  assert(victims.arity() == arity());
  size_t erased = 0;
  for (size_t i = 0; i < victims.size(); ++i) {
    // Find handles absent victims and in-batch repeats alike: once a
    // row is swap-removed, an equal later victim simply misses.
    const RowId id = store_.Find(victims.row(i).data());
    if (id == kInvalidRowId) continue;
    // Patch every index while both the victim's and the last row's
    // data are still in the arena; the store swap happens after.
    const RowId last = static_cast<RowId>(store_.size() - 1);
    for (IndexNode* n = index_head_.load(std::memory_order_acquire);
         n != nullptr; n = n->next) {
      IndexErase(n->index, id, last);
    }
    const RowId from = store_.SwapRemove(id);
    if (from != kInvalidRowId && moves != nullptr) {
      moves->emplace_back(from, id);
    }
    ++erased;
  }
  if (erased > 0) {
    columns_.reset();
    stats_.reset();
  }
  return erased;
}

size_t Relation::ProjectionHash(RowId r,
                                const std::vector<uint32_t>& columns) const {
  const Value* vals = store_.row_data(r);
  size_t seed = 0;
  for (uint32_t c : columns) HashCombine(&seed, vals[c]);
  // Must match the hash Probe computes over caller-supplied keys
  // (HashValues), including its final avalanche.
  return static_cast<size_t>(MixBits(seed));
}

bool Relation::ProjectionEquals(RowId r, const std::vector<uint32_t>& columns,
                                const Value* key) const {
  const Value* vals = store_.row_data(r);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (!(vals[columns[i]] == key[i])) return false;
  }
  return true;
}

bool Relation::ProjectionsEqual(RowId a, RowId b,
                                const std::vector<uint32_t>& columns) const {
  const Value* va = store_.row_data(a);
  const Value* vb = store_.row_data(b);
  for (uint32_t c : columns) {
    if (!(va[c] == vb[c])) return false;
  }
  return true;
}

void Relation::IndexInsert(Index& index, RowId r) {
  if (NeedsGrowth(index.buckets.size(), index.slots.size())) {
    IndexRehash(index, NextPowerOfTwo((index.buckets.size() + 1) * 2));
  }
  const size_t h = ProjectionHash(r, index.columns);
  size_t idx = h & index.slot_mask;
  while (true) {
    const uint32_t b = index.slots[idx];
    if (b == kEmptySlot) break;
    Bucket& bucket = index.buckets[b];
    // A dead bucket (emptied by IndexErase) still occupies its slot so
    // probe runs stay contiguous; it can never match a key.
    if (bucket.first != kInvalidRowId && bucket.hash == h &&
        ProjectionsEqual(bucket.first, r, index.columns)) {
      bucket.rows.push_back(r);
      return;
    }
    idx = (idx + 1) & index.slot_mask;
  }
  index.slots[idx] = static_cast<uint32_t>(index.buckets.size());
  Bucket bucket;
  bucket.hash = h;
  bucket.first = r;
  bucket.rows.push_back(r);
  index.buckets.push_back(std::move(bucket));
}

void Relation::IndexErase(Index& index, RowId victim, RowId last) {
  if (index.slots.empty()) return;
  const std::vector<uint32_t>& columns = index.columns;
  // Drop the victim from its bucket. The slot keeps pointing at the
  // bucket even when it empties ("dead bucket"): vacating the slot
  // would break the probe runs of keys that collided past it, and
  // backward-shifting bucket slots is not worth the code — IndexRehash
  // garbage-collects dead buckets at the next growth.
  {
    const size_t h = ProjectionHash(victim, columns);
    size_t idx = h & index.slot_mask;
    while (true) {
      const uint32_t b = index.slots[idx];
      assert(b != kEmptySlot && "erased row missing from index");
      if (b == kEmptySlot) break;  // fail-safe in release
      Bucket& bucket = index.buckets[b];
      if (bucket.first != kInvalidRowId && bucket.hash == h &&
          ProjectionsEqual(bucket.first, victim, columns)) {
        std::vector<RowId>& rows = bucket.rows;
        for (size_t i = 0; i < rows.size(); ++i) {
          if (rows[i] == victim) {
            rows[i] = rows.back();
            rows.pop_back();
            break;
          }
        }
        if (rows.empty()) {
          bucket.first = kInvalidRowId;
        } else if (bucket.first == victim) {
          bucket.first = rows[0];
        }
        break;
      }
      idx = (idx + 1) & index.slot_mask;
    }
  }
  // The store is about to move row `last` into id `victim`; rename it
  // in its bucket. If the two rows shared a projection the bucket above
  // still holds `last` (it cannot have gone dead), so this finds it.
  if (last == victim) return;
  const size_t h = ProjectionHash(last, columns);
  size_t idx = h & index.slot_mask;
  while (true) {
    const uint32_t b = index.slots[idx];
    assert(b != kEmptySlot && "moved row missing from index");
    if (b == kEmptySlot) return;  // fail-safe in release
    Bucket& bucket = index.buckets[b];
    if (bucket.first != kInvalidRowId && bucket.hash == h &&
        ProjectionsEqual(bucket.first, last, columns)) {
      for (RowId& r : bucket.rows) {
        if (r == last) {
          r = victim;
          break;
        }
      }
      if (bucket.first == last) bucket.first = victim;
      return;
    }
    idx = (idx + 1) & index.slot_mask;
  }
}

void Relation::IndexRehash(Index& index, size_t new_slots) {
  const bool initial = index.slots.empty();
  // Every slot is reassigned anyway, so this is the free moment to
  // garbage-collect buckets that IndexErase emptied — bucket ids only
  // have meaning through the slot table.
  std::erase_if(index.buckets,
                [](const Bucket& b) { return b.first == kInvalidRowId; });
  index.slots.assign(new_slots, kEmptySlot);
  index.slot_mask = new_slots - 1;
  for (uint32_t b = 0; b < index.buckets.size(); ++b) {
    size_t idx = index.buckets[b].hash & index.slot_mask;
    while (index.slots[idx] != kEmptySlot) {
      idx = (idx + 1) & index.slot_mask;
    }
    index.slots[idx] = b;
  }
  if (!initial) storage_metrics::AddRehash();
}

const Relation::Index* Relation::FindIndex(
    const std::vector<uint32_t>& columns) const {
  for (const IndexNode* n = index_head_.load(std::memory_order_acquire);
       n != nullptr; n = n->next) {
    if (n->index.columns == columns) return &n->index;
  }
  return nullptr;
}

void Relation::EnsureIndex(const std::vector<uint32_t>& columns) {
  if (FindIndex(columns) != nullptr) return;
  std::lock_guard<std::mutex> lock(*index_mu_);
  // Another builder may have published this column set while we waited.
  if (FindIndex(columns) != nullptr) return;
  IndexNode* node = new IndexNode();
  node->index.columns = columns;
  const size_t n = store_.size();
  for (size_t r = 0; r < n; ++r) {
    IndexInsert(node->index, static_cast<RowId>(r));
  }
  // Publish only once fully built: concurrent FindIndex either misses
  // (and the caller serializes on the mutex) or sees a complete index.
  node->next = index_head_.load(std::memory_order_relaxed);
  index_head_.store(node, std::memory_order_release);
}

std::shared_ptr<const ColumnView> Relation::EnsureColumns() const {
  // Readers of a non-mutating relation may race each other here; the
  // shared_ptr itself is not atomic, so all access to the cache slot
  // goes through the builder mutex. EnsureColumns runs once per
  // executor step setup (not per row), so the lock is off any hot loop.
  std::lock_guard<std::mutex> lock(*index_mu_);
  if (columns_ == nullptr || columns_->rows() != store_.size()) {
    columns_ = ColumnView::Build(store_);
  }
  return columns_;
}

std::shared_ptr<const RelationStats> Relation::EnsureStats() const {
  std::lock_guard<std::mutex> lock(*index_mu_);
  if (stats_ != nullptr && stats_->rows == store_.size()) return stats_;

  // Linear-counting sketch: one bitmap of kSketchBits per column; a
  // value sets the bit its hash lands on, and the distinct count is
  // estimated from the fraction of bits still clear. Exact while
  // distinct << kSketchBits; saturates to the row count beyond that
  // (where "huge" is all the cost model needs to know).
  constexpr size_t kSketchBits = 4096;
  constexpr size_t kWords = kSketchBits / 64;
  const uint32_t width = arity();
  const size_t n = store_.size();
  auto stats = std::make_shared<RelationStats>();
  stats->rows = n;
  stats->distinct.assign(width, 0);
  if (n > 0 && width > 0) {
    std::vector<uint64_t> bitmaps(static_cast<size_t>(width) * kWords, 0);
    for (size_t r = 0; r < n; ++r) {
      const Value* vals = store_.row_data(static_cast<RowId>(r));
      for (uint32_t c = 0; c < width; ++c) {
        const size_t h = HashValues(&vals[c], 1) % kSketchBits;
        bitmaps[c * kWords + h / 64] |= uint64_t{1} << (h % 64);
      }
    }
    for (uint32_t c = 0; c < width; ++c) {
      size_t set_bits = 0;
      for (size_t w = 0; w < kWords; ++w) {
        set_bits += static_cast<size_t>(
            __builtin_popcountll(bitmaps[c * kWords + w]));
      }
      const size_t zero = kSketchBits - set_bits;
      double estimate;
      if (zero == 0) {
        estimate = static_cast<double>(n);
      } else {
        estimate = static_cast<double>(kSketchBits) *
                   std::log(static_cast<double>(kSketchBits) /
                            static_cast<double>(zero));
      }
      const double clamped =
          std::min(static_cast<double>(n), std::max(1.0, estimate));
      stats->distinct[c] = static_cast<size_t>(clamped + 0.5);
    }
  }
  stats_ = std::move(stats);
  return stats_;
}

size_t Relation::index_count() const {
  size_t count = 0;
  for (const IndexNode* n = index_head_.load(std::memory_order_acquire);
       n != nullptr; n = n->next) {
    ++count;
  }
  return count;
}

const std::vector<RowId>& Relation::Probe(
    const std::vector<uint32_t>& columns, const Value* key) const {
  static const std::vector<RowId> kEmpty;
  const Index* index = FindIndex(columns);
  // Callers must EnsureIndex during (single-threaded) planning; Probe
  // itself is read-only so concurrent probes never race. A missing
  // index is a caller bug: assert in debug, report no matches in
  // release (fail-safe, never mutates).
  assert(index != nullptr &&
         "Relation::Probe without a prior EnsureIndex for this column set");
  if (index == nullptr || index->slots.empty()) return kEmpty;
  const size_t h = HashValues(key, columns.size());
  size_t idx = h & index->slot_mask;
  while (true) {
    const uint32_t b = index->slots[idx];
    if (b == kEmptySlot) return kEmpty;
    const Bucket& bucket = index->buckets[b];
    if (bucket.first != kInvalidRowId && bucket.hash == h &&
        ProjectionEquals(bucket.first, columns, key)) {
      return bucket.rows;
    }
    idx = (idx + 1) & index->slot_mask;
  }
}

void Relation::ProbeBatch(const std::vector<uint32_t>& columns,
                          const Value* keys, size_t count,
                          std::vector<size_t>* hash_scratch,
                          std::vector<std::span<const RowId>>* out) const {
  // Below this slot count the whole index (slots, buckets, probed row
  // prefixes) is effectively cache-resident, so software prefetch is
  // pure overhead and the lean one-pass loop wins.
  constexpr size_t kPrefetchSlotThreshold = 16384;

  out->assign(count, std::span<const RowId>());
  if (count == 0) return;
  const Index* index = FindIndex(columns);
  assert(index != nullptr &&
         "Relation::ProbeBatch without a prior EnsureIndex");
  if (index == nullptr || index->slots.empty()) return;
  const size_t width = columns.size();
  const uint32_t* cols = columns.data();
  const size_t mask = index->slot_mask;
  const uint32_t* slots = index->slots.data();
  const Bucket* buckets = index->buckets.data();

  // ProjectionEquals, manually inlined: probing is the hottest loop in
  // the batched executor and the out-of-line call (plus the vector
  // indirection for the columns) is measurable at tens of millions of
  // keys.
  auto proj_eq = [&](RowId r, const Value* key) -> bool {
    const Value* vals = store_.row_data(r);
    for (size_t i = 0; i < width; ++i) {
      if (!(vals[cols[i]] == key[i])) return false;
    }
    return true;
  };
  auto walk = [&](size_t h, const Value* key) -> std::span<const RowId> {
    size_t idx = h & mask;
    while (true) {
      const uint32_t b = slots[idx];
      if (b == kEmptySlot) return {};
      const Bucket& bucket = buckets[b];
      if (bucket.first != kInvalidRowId && bucket.hash == h &&
          proj_eq(bucket.first, key)) {
        return std::span<const RowId>(bucket.rows);
      }
      idx = (idx + 1) & mask;
    }
  };

  if (index->slots.size() < kPrefetchSlotThreshold) {
    // One pass, no scratch. Consecutive equal keys are common (frames
    // fanned out from one delta row probe with the same binding):
    // reuse the previous walk.
    const Value* key = keys;
    size_t prev_h = 0;
    for (size_t k = 0; k < count; ++k, key += width) {
      const size_t h = HashValues(key, width);
      if (k > 0 && h == prev_h && ValuesEqual(key, key - width, width)) {
        (*out)[k] = (*out)[k - 1];
      } else {
        (*out)[k] = walk(h, key);
      }
      prev_h = h;
    }
    return;
  }

  // Large index: random slot/bucket/row reads miss cache, so overlap
  // them. Pass 1 hashes every key while the key block streams through
  // the cache, issuing a prefetch for the slot word each hash lands on.
  hash_scratch->resize(count);
  size_t* hashes = hash_scratch->data();
  // The key block is contiguous and row-major: hash it with the batch
  // kernel (8 interleaved chains), then issue the slot prefetches over
  // the finished hash lane.
  HashValuesBatch(keys, width, count, hashes);
  for (size_t k = 0; k < count; ++k) {
    __builtin_prefetch(slots + (hashes[k] & mask), /*rw=*/0, /*locality=*/1);
  }

  // Pass 2: walk the slots. A far lookahead prefetches the bucket
  // header a future key resolves to; a near lookahead — by which point
  // that header is usually cached — reads its inline first-row id and
  // prefetches the row data the key comparison will touch.
  constexpr size_t kFarLookahead = 8;
  constexpr size_t kNearLookahead = 3;
  const Value* key = keys;
  for (size_t k = 0; k < count; ++k, key += width) {
    if (k + kFarLookahead < count) {
      const uint32_t ahead = slots[hashes[k + kFarLookahead] & mask];
      if (ahead != kEmptySlot) {
        __builtin_prefetch(buckets + ahead, /*rw=*/0, /*locality=*/1);
      }
    }
    if (k + kNearLookahead < count) {
      const uint32_t near = slots[hashes[k + kNearLookahead] & mask];
      if (near != kEmptySlot && buckets[near].first != kInvalidRowId) {
        __builtin_prefetch(store_.row_data(buckets[near].first),
                           /*rw=*/0, /*locality=*/1);
      }
    }
    if (k > 0 && hashes[k] == hashes[k - 1] &&
        ValuesEqual(key, key - width, width)) {
      (*out)[k] = (*out)[k - 1];
      continue;
    }
    (*out)[k] = walk(hashes[k], key);
  }
}

std::vector<Tuple> Relation::CopyRows() const {
  std::vector<Tuple> out;
  out.reserve(store_.size());
  for (RowRef row : rows()) out.emplace_back(row.begin(), row.end());
  return out;
}

void Relation::Clear() {
  store_.Clear();
  // Clear + refill to the same size must not resurrect a stale view,
  // so the cache is dropped eagerly rather than trusting the row-count
  // check in EnsureColumns.
  columns_.reset();
  stats_.reset();
  for (IndexNode* n = index_head_.load(std::memory_order_acquire);
       n != nullptr; n = n->next) {
    std::fill(n->index.slots.begin(), n->index.slots.end(), kEmptySlot);
    n->index.buckets.clear();
  }
}

std::string Relation::ToString() const {
  std::ostringstream os;
  os << pred_.ToString() << " {";
  bool first = true;
  for (RowRef row : rows()) {
    if (!first) os << ", ";
    first = false;
    os << TupleToString(row);
  }
  os << "}";
  return os.str();
}

}  // namespace semopt
