#include "storage/relation.h"

#include <cassert>
#include <sstream>

#include "util/string_util.h"

namespace semopt {

std::string TupleToString(const Tuple& tuple) {
  return StrCat("(", JoinToString(tuple, ", "), ")");
}

bool Relation::Insert(const Tuple& tuple) {
  assert(tuple.size() == arity());
  auto [it, inserted] = dedup_.insert(tuple);
  if (!inserted) return false;
  uint32_t row_index = static_cast<uint32_t>(rows_.size());
  rows_.push_back(tuple);
  for (auto& [cols, index] : indexes_) {
    index.buckets[Project(tuple, cols)].push_back(row_index);
  }
  return true;
}

Tuple Relation::Project(const Tuple& row, const std::vector<uint32_t>& cols) {
  Tuple key;
  key.reserve(cols.size());
  for (uint32_t c : cols) key.push_back(row[c]);
  return key;
}

void Relation::EnsureIndex(const std::vector<uint32_t>& columns) {
  if (indexes_.count(columns) > 0) return;
  Index& index = indexes_[columns];
  for (uint32_t i = 0; i < rows_.size(); ++i) {
    index.buckets[Project(rows_[i], columns)].push_back(i);
  }
}

const std::vector<uint32_t>& Relation::Probe(
    const std::vector<uint32_t>& columns, const Tuple& key) const {
  static const std::vector<uint32_t> kEmpty;
  auto it = indexes_.find(columns);
  // Callers must EnsureIndex during (single-threaded) planning; Probe
  // itself is read-only so concurrent probes never race. A missing
  // index is a caller bug: assert in debug, report no matches in
  // release (fail-safe, never mutates).
  assert(it != indexes_.end() &&
         "Relation::Probe without a prior EnsureIndex for this column set");
  if (it == indexes_.end()) return kEmpty;
  auto bucket = it->second.buckets.find(key);
  if (bucket == it->second.buckets.end()) return kEmpty;
  return bucket->second;
}

void Relation::Clear() {
  rows_.clear();
  dedup_.clear();
  indexes_.clear();
}

std::string Relation::ToString() const {
  std::ostringstream os;
  os << pred_.ToString() << " {";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) os << ", ";
    os << TupleToString(rows_[i]);
  }
  os << "}";
  return os.str();
}

}  // namespace semopt
