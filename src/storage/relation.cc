#include "storage/relation.h"

#include <algorithm>
#include <sstream>

#include "storage/storage_metrics.h"
#include "util/string_util.h"

namespace semopt {

namespace {
constexpr size_t kMinIndexSlots = 16;

bool NeedsGrowth(size_t buckets, size_t slots) {
  return slots == 0 || (buckets + 1) * 4 > slots * 3;
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = kMinIndexSlots;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

std::string TupleToString(RowRef row) {
  return StrCat("(", JoinToString(row, ", "), ")");
}

std::string TupleToString(const Tuple& tuple) {
  return TupleToString(RowRef(tuple));
}

bool Relation::Insert(RowRef row) {
  assert(row.size() == arity());
  auto [id, inserted] = store_.InsertIfAbsent(row.data());
  if (!inserted) return false;
  for (Index& index : indexes_) IndexInsert(index, id);
  return true;
}

size_t Relation::ProjectionHash(RowId r,
                                const std::vector<uint32_t>& columns) const {
  const Value* vals = store_.row_data(r);
  size_t seed = 0;
  for (uint32_t c : columns) HashCombine(&seed, vals[c]);
  // Must match the hash Probe computes over caller-supplied keys
  // (HashValues), including its final avalanche.
  return static_cast<size_t>(MixBits(seed));
}

bool Relation::ProjectionEquals(RowId r, const std::vector<uint32_t>& columns,
                                const Value* key) const {
  const Value* vals = store_.row_data(r);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (!(vals[columns[i]] == key[i])) return false;
  }
  return true;
}

bool Relation::ProjectionsEqual(RowId a, RowId b,
                                const std::vector<uint32_t>& columns) const {
  const Value* va = store_.row_data(a);
  const Value* vb = store_.row_data(b);
  for (uint32_t c : columns) {
    if (!(va[c] == vb[c])) return false;
  }
  return true;
}

void Relation::IndexInsert(Index& index, RowId r) {
  if (NeedsGrowth(index.buckets.size(), index.slots.size())) {
    IndexRehash(index, NextPowerOfTwo((index.buckets.size() + 1) * 2));
  }
  const size_t h = ProjectionHash(r, index.columns);
  size_t idx = h & index.slot_mask;
  while (true) {
    const uint32_t b = index.slots[idx];
    if (b == kEmptySlot) break;
    Bucket& bucket = index.buckets[b];
    if (bucket.hash == h &&
        ProjectionsEqual(bucket.rows.front(), r, index.columns)) {
      bucket.rows.push_back(r);
      return;
    }
    idx = (idx + 1) & index.slot_mask;
  }
  index.slots[idx] = static_cast<uint32_t>(index.buckets.size());
  Bucket bucket;
  bucket.hash = h;
  bucket.rows.push_back(r);
  index.buckets.push_back(std::move(bucket));
}

void Relation::IndexRehash(Index& index, size_t new_slots) {
  const bool initial = index.slots.empty();
  index.slots.assign(new_slots, kEmptySlot);
  index.slot_mask = new_slots - 1;
  for (uint32_t b = 0; b < index.buckets.size(); ++b) {
    size_t idx = index.buckets[b].hash & index.slot_mask;
    while (index.slots[idx] != kEmptySlot) {
      idx = (idx + 1) & index.slot_mask;
    }
    index.slots[idx] = b;
  }
  if (!initial) storage_metrics::AddRehash();
}

const Relation::Index* Relation::FindIndex(
    const std::vector<uint32_t>& columns) const {
  for (const Index& index : indexes_) {
    if (index.columns == columns) return &index;
  }
  return nullptr;
}

void Relation::EnsureIndex(const std::vector<uint32_t>& columns) {
  if (FindIndex(columns) != nullptr) return;
  indexes_.emplace_back();
  Index& index = indexes_.back();
  index.columns = columns;
  const size_t n = store_.size();
  for (size_t r = 0; r < n; ++r) {
    IndexInsert(index, static_cast<RowId>(r));
  }
}

const std::vector<RowId>& Relation::Probe(
    const std::vector<uint32_t>& columns, const Value* key) const {
  static const std::vector<RowId> kEmpty;
  const Index* index = FindIndex(columns);
  // Callers must EnsureIndex during (single-threaded) planning; Probe
  // itself is read-only so concurrent probes never race. A missing
  // index is a caller bug: assert in debug, report no matches in
  // release (fail-safe, never mutates).
  assert(index != nullptr &&
         "Relation::Probe without a prior EnsureIndex for this column set");
  if (index == nullptr || index->slots.empty()) return kEmpty;
  const size_t h = HashValues(key, columns.size());
  size_t idx = h & index->slot_mask;
  while (true) {
    const uint32_t b = index->slots[idx];
    if (b == kEmptySlot) return kEmpty;
    const Bucket& bucket = index->buckets[b];
    if (bucket.hash == h &&
        ProjectionEquals(bucket.rows.front(), columns, key)) {
      return bucket.rows;
    }
    idx = (idx + 1) & index->slot_mask;
  }
}

std::vector<Tuple> Relation::CopyRows() const {
  std::vector<Tuple> out;
  out.reserve(store_.size());
  for (RowRef row : rows()) out.emplace_back(row.begin(), row.end());
  return out;
}

void Relation::Clear() {
  store_.Clear();
  for (Index& index : indexes_) {
    std::fill(index.slots.begin(), index.slots.end(), kEmptySlot);
    index.buckets.clear();
  }
}

std::string Relation::ToString() const {
  std::ostringstream os;
  os << pred_.ToString() << " {";
  bool first = true;
  for (RowRef row : rows()) {
    if (!first) os << ", ";
    first = false;
    os << TupleToString(row);
  }
  os << "}";
  return os.str();
}

}  // namespace semopt
