#include "storage/snapshot.h"

#include <utility>

#include "obs/metrics.h"

namespace semopt {

void DatabaseSnapshot::Release() {
  if (store_ != nullptr) {
    store_->Unpin(epoch_);
    store_ = nullptr;
  }
  db_.reset();
  unmanaged_ = nullptr;
}

SnapshotStore::SnapshotStore(Database initial)
    : head_(std::make_shared<const Database>(std::move(initial))) {
  obs::MetricsRegistry::Global()
      .GetGauge("storage.snapshot.live_generations")
      .Set(1);
}

SnapshotStore::~SnapshotStore() = default;

DatabaseSnapshot SnapshotStore::Pin() {
  DatabaseSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.epoch_ = epoch_;
    snap.db_ = head_;
    ++pins_[epoch_];
  }
  snap.store_ = this;
  obs::MetricsRegistry::Global().GetCounter("storage.snapshot.pins").Add(1);
  return snap;
}

void SnapshotStore::Unpin(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(epoch);
  if (it == pins_.end()) return;  // defensive; every pin registers
  if (--it->second == 0) pins_.erase(it);
  ReclaimLocked();
}

Result<uint64_t> SnapshotStore::Mutate(
    const std::function<Status(Database*)>& fn) {
  // Writers serialize here so two Mutate calls never interleave their
  // clone-apply-publish sequences; readers keep pinning the head
  // concurrently (they only touch mu_, held briefly below).
  std::lock_guard<std::mutex> writer_lock(writer_mu_);

  std::shared_ptr<const Database> base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    base = head_;
  }
  // Copy-on-write at relation granularity: the new generation starts
  // as pure pointer shares, and `fn` deep-copies (and counts, via
  // storage.snapshot.relations_cloned) only the relations it actually
  // writes. Untouched relations stay pointer-identical across
  // generations, indexes included.
  auto next = std::make_shared<Database>(base->CloneShared());
  SEMOPT_RETURN_IF_ERROR(fn(next.get()));

  uint64_t published_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++epoch_;
    published_epoch = epoch_;
    retired_.push_back(Retired{published_epoch, std::move(head_)});
    head_ = std::move(next);
    ReclaimLocked();
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("storage.snapshot.publishes").Add(1);
  registry.GetGauge("storage.snapshot.epoch")
      .Set(static_cast<int64_t>(published_epoch));
  return published_epoch;
}

void SnapshotStore::ReclaimLocked() {
  // A generation retired at epoch E was the head for epochs < E: it is
  // unreachable once no pin at an epoch < E remains.
  const uint64_t min_pinned =
      pins_.empty() ? UINT64_MAX : pins_.begin()->first;
  size_t kept = 0;
  for (Retired& r : retired_) {
    if (min_pinned < r.retired_at_epoch) {
      retired_[kept++] = std::move(r);
    } else {
      ++reclaimed_;
    }
  }
  const size_t dropped = retired_.size() - kept;
  retired_.resize(kept);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (dropped > 0) {
    registry.GetCounter("storage.snapshot.reclaimed")
        .Add(static_cast<uint64_t>(dropped));
  }
  registry.GetGauge("storage.snapshot.live_generations")
      .Set(static_cast<int64_t>(1 + retired_.size()));
}

uint64_t SnapshotStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t SnapshotStore::live_generations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return 1 + retired_.size();
}

uint64_t SnapshotStore::reclaimed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reclaimed_;
}

}  // namespace semopt
