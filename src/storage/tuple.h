#ifndef SEMOPT_STORAGE_TUPLE_H_
#define SEMOPT_STORAGE_TUPLE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ast/term.h"
#include "util/hash_util.h"

namespace semopt {

/// A stored value is a ground (constant) Term: an int64 or an interned
/// symbol. Reusing Term keeps the evaluation layer conversion-free.
using Value = Term;

/// A materialized database tuple: a fixed-arity row of ground values.
/// Storage keeps rows flat (see TupleStore); Tuple remains the owning
/// representation for construction-time APIs (parser, AddFact, tests).
using Tuple = std::vector<Value>;

/// Dense, stable address of a row within one relation: rows are never
/// removed, so a RowId handed out by Insert stays valid (and keeps
/// addressing the same tuple) for the relation's lifetime.
using RowId = uint32_t;
inline constexpr RowId kInvalidRowId = UINT32_MAX;

/// Zero-copy view of one stored row (or any contiguous run of values).
/// Two machine words; pass by value.
using RowRef = std::span<const Value>;

/// Hash of a contiguous value run — the single tuple-hash recipe every
/// storage structure (dedup table, hash indexes, the parallel
/// partitioner) agrees on.
inline size_t HashValues(const Value* vals, size_t n) {
  size_t seed = 0;
  for (size_t i = 0; i < n; ++i) HashCombine(&seed, vals[i]);
  // The consumers mask with a power of two, so finish with a full
  // avalanche — see MixBits.
  return static_cast<size_t>(MixBits(seed));
}
inline size_t HashValues(RowRef row) {
  return HashValues(row.data(), row.size());
}

inline bool ValuesEqual(const Value* a, const Value* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return HashValues(t.data(), t.size());
  }
};

/// A flat, fixed-arity append buffer: rows live back to back in one
/// vector, so buffering a derivation costs a bulk value copy instead of
/// a heap-allocated Tuple. `clear()` retains capacity, making reuse
/// across fixpoint rounds allocation-free in steady state.
class TupleBuffer {
 public:
  explicit TupleBuffer(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Append(RowRef row) {
    assert(row.size() == arity_);
    data_.insert(data_.end(), row.begin(), row.end());
    ++size_;
  }

  /// Bulk-appends every row of `other` (same arity) in one value copy —
  /// how batch sinks drain a head block into an accumulating buffer.
  void AppendAll(const TupleBuffer& other) {
    assert(other.arity_ == arity_);
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    size_ += other.size_;
  }

  RowRef row(size_t i) const {
    assert(i < size_);
    return RowRef(data_.data() + i * arity_, arity_);
  }

  void clear() {
    data_.clear();
    size_ = 0;
  }

  /// Clears and re-targets the buffer to a (possibly different) arity,
  /// keeping the arena's capacity — one buffer can serve rules of
  /// different head arities across a fixpoint without reallocating.
  void Reset(uint32_t arity) {
    clear();
    arity_ = arity;
  }

 private:
  uint32_t arity_;
  size_t size_ = 0;
  std::vector<Value> data_;
};

/// Renders "(v1, v2, ...)".
std::string TupleToString(const Tuple& tuple);
std::string TupleToString(RowRef row);

}  // namespace semopt

#endif  // SEMOPT_STORAGE_TUPLE_H_
