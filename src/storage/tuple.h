#ifndef SEMOPT_STORAGE_TUPLE_H_
#define SEMOPT_STORAGE_TUPLE_H_

#include <functional>
#include <string>
#include <vector>

#include "ast/term.h"
#include "util/hash_util.h"

namespace semopt {

/// A stored value is a ground (constant) Term: an int64 or an interned
/// symbol. Reusing Term keeps the evaluation layer conversion-free.
using Value = Term;

/// A database tuple: a fixed-arity row of ground values.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return HashRange(t.begin(), t.end());
  }
};

/// Renders "(v1, v2, ...)".
std::string TupleToString(const Tuple& tuple);

}  // namespace semopt

#endif  // SEMOPT_STORAGE_TUPLE_H_
