#include "storage/column_view.h"

#include "storage/storage_metrics.h"
#include "storage/vector_kernels.h"

namespace semopt {

namespace {

int64_t ColumnBytes(const std::vector<uint64_t>& payloads,
                    const std::vector<uint8_t>& kind_lane) {
  return static_cast<int64_t>(payloads.capacity() * sizeof(uint64_t) +
                              kind_lane.capacity() * sizeof(uint8_t));
}

/// Keeps sel entries whose kind bytes agree across two mixed lanes.
void RefineKindsEqual(const uint8_t* a, const uint8_t* b,
                      std::vector<uint32_t>* sel) {
  uint32_t* data = sel->data();
  const size_t n = sel->size();
  size_t o = 0;
  for (size_t k = 0; k < n; ++k) {
    data[o] = data[k];
    o += a[data[k]] == b[data[k]] ? 1 : 0;
  }
  sel->resize(o);
}

/// In-place compaction of sel's suffix [base, size): keeps entries
/// whose kind byte equals `kind` — the mixed-column follow-up to a
/// payload select, without a temporary vector.
void RefineSuffixKindEq(const uint8_t* kinds, uint8_t kind, size_t base,
                        std::vector<uint32_t>* sel) {
  uint32_t* data = sel->data();
  const size_t n = sel->size();
  size_t o = base;
  for (size_t k = base; k < n; ++k) {
    data[o] = data[k];
    o += kinds[data[k]] == kind ? 1 : 0;
  }
  sel->resize(o);
}

void RefineSuffixKindsEqual(const uint8_t* a, const uint8_t* b, size_t base,
                            std::vector<uint32_t>* sel) {
  uint32_t* data = sel->data();
  const size_t n = sel->size();
  size_t o = base;
  for (size_t k = base; k < n; ++k) {
    data[o] = data[k];
    o += a[data[k]] == b[data[k]] ? 1 : 0;
  }
  sel->resize(o);
}

}  // namespace

std::shared_ptr<const ColumnView> ColumnView::Build(const TupleStore& store) {
  // shared_ptr<ColumnView> first (the constructor is private to this
  // class, so no make_shared), exposed const to callers.
  std::shared_ptr<ColumnView> view(new ColumnView());
  const size_t rows = store.size();
  const uint32_t arity = store.arity();
  view->rows_ = rows;
  view->columns_.resize(arity);
  for (uint32_t c = 0; c < arity; ++c) {
    Column& col = view->columns_[c];
    col.payloads.resize(rows);
    col.kind_lane.resize(rows);
  }
  // One streaming pass over the row-major arena, scattered into the
  // per-column lanes (the lanes are the only write targets, so each
  // stays write-hot in cache for small arities).
  for (size_t r = 0; r < rows; ++r) {
    const Value* vals = store.row_data(static_cast<RowId>(r));
    for (uint32_t c = 0; c < arity; ++c) {
      Column& col = view->columns_[c];
      col.payloads[r] = PayloadBits(vals[c]);
      col.kind_lane[r] = static_cast<uint8_t>(vals[c].kind());
    }
  }
  for (uint32_t c = 0; c < arity; ++c) {
    Column& col = view->columns_[c];
    col.uniform = true;
    if (rows > 0) {
      const uint8_t first = col.kind_lane[0];
      for (size_t r = 1; r < rows; ++r) {
        if (col.kind_lane[r] != first) {
          col.uniform = false;
          break;
        }
      }
      col.kind = static_cast<TermKind>(col.kind_lane[0]);
    }
    if (col.uniform) {
      // Dictionary-implied kind: drop the side lane entirely.
      col.kind_lane.clear();
      col.kind_lane.shrink_to_fit();
    }
    view->bytes_ += ColumnBytes(col.payloads, col.kind_lane);
  }
  storage_metrics::AddColumnsBytes(view->bytes_);
  return view;
}

ColumnView::~ColumnView() { storage_metrics::AddColumnsBytes(-bytes_); }

Value ColumnView::value(size_t row, uint32_t col) const {
  const Column& c = columns_[col];
  const TermKind kind = c.uniform ? c.kind
                                  : static_cast<TermKind>(c.kind_lane[row]);
  const uint64_t payload = c.payloads[row];
  switch (kind) {
    case TermKind::kIntConst:
      return Term::Int(static_cast<int64_t>(payload));
    case TermKind::kSymConst:
      return Term::Sym(static_cast<SymbolId>(payload));
    case TermKind::kVariable:
      break;
  }
  return Term::Var(static_cast<SymbolId>(payload));
}

void ColumnView::SelectEq(uint32_t col, const Value& v, uint32_t begin,
                          uint32_t end, std::vector<uint32_t>* sel) const {
  const Column& c = columns_[col];
  const uint8_t vkind = static_cast<uint8_t>(v.kind());
  if (c.uniform) {
    // Dictionary-implied kind: a kind mismatch rules out the whole
    // column without touching a single row.
    if (end > begin && static_cast<uint8_t>(c.kind) != vkind) return;
    SelectLaneEq(c.payloads.data(), begin, end, PayloadBits(v), sel);
    return;
  }
  const size_t base = sel->size();
  SelectLaneEq(c.payloads.data(), begin, end, PayloadBits(v), sel);
  // Payload survivors still need the kind byte to agree; compact the
  // freshly appended run in place.
  RefineSuffixKindEq(c.kind_lane.data(), vkind, base, sel);
}

void ColumnView::RefineEq(uint32_t col, const Value& v,
                          std::vector<uint32_t>* sel) const {
  const Column& c = columns_[col];
  const uint8_t vkind = static_cast<uint8_t>(v.kind());
  if (c.uniform) {
    if (!sel->empty() && static_cast<uint8_t>(c.kind) != vkind) {
      sel->clear();
      return;
    }
    RefineLaneEq(c.payloads.data(), PayloadBits(v), sel);
    return;
  }
  RefineLaneEq(c.payloads.data(), PayloadBits(v), sel);
  RefineKindEq(c.kind_lane.data(), vkind, sel);
}

void ColumnView::SelectEqColumns(uint32_t col_a, uint32_t col_b,
                                 uint32_t begin, uint32_t end,
                                 std::vector<uint32_t>* sel) const {
  const Column& a = columns_[col_a];
  const Column& b = columns_[col_b];
  if (a.uniform && b.uniform && a.kind != b.kind && end > begin) return;
  const size_t base = sel->size();
  SelectLanesEq(a.payloads.data(), b.payloads.data(), begin, end, sel);
  if (a.uniform && b.uniform) return;
  if (a.uniform) {
    RefineSuffixKindEq(b.kind_lane.data(), static_cast<uint8_t>(a.kind), base,
                       sel);
  } else if (b.uniform) {
    RefineSuffixKindEq(a.kind_lane.data(), static_cast<uint8_t>(b.kind), base,
                       sel);
  } else {
    RefineSuffixKindsEqual(a.kind_lane.data(), b.kind_lane.data(), base, sel);
  }
}

void ColumnView::RefineEqColumns(uint32_t col_a, uint32_t col_b,
                                 std::vector<uint32_t>* sel) const {
  const Column& a = columns_[col_a];
  const Column& b = columns_[col_b];
  if (a.uniform && b.uniform && a.kind != b.kind) {
    sel->clear();
    return;
  }
  RefineLanesEq(a.payloads.data(), b.payloads.data(), sel);
  if (a.uniform && b.uniform) return;
  if (a.uniform) {
    RefineKindEq(b.kind_lane.data(), static_cast<uint8_t>(a.kind), sel);
  } else if (b.uniform) {
    RefineKindEq(a.kind_lane.data(), static_cast<uint8_t>(b.kind), sel);
  } else {
    RefineKindsEqual(a.kind_lane.data(), b.kind_lane.data(), sel);
  }
}

}  // namespace semopt
