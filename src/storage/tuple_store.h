#ifndef SEMOPT_STORAGE_TUPLE_STORE_H_
#define SEMOPT_STORAGE_TUPLE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "storage/tuple.h"

namespace semopt {

/// Flat, arena-backed tuple set with fixed arity.
///
/// Rows live contiguously in one row-major value arena and are
/// addressed by dense RowId (0..size-1). Inserts never move existing
/// rows, so RowIds — and the row data they point at between inserts —
/// are stable across growth. Removal (`SwapRemove`) keeps the id space
/// dense by moving the last row into the vacated id: exactly one
/// surviving row changes id per removal and everything else stays put,
/// so deleting k rows costs O(k), not a compaction pass. Deduplication
/// is an open-addressing (linear probing) hash table that stores only
/// RowIds: the arena holds the single copy of every tuple, and lookups
/// compare candidate rows in place against a cached per-row hash.
///
/// `Clear()` keeps all capacity, so a store used as a fixpoint delta
/// double-buffer is allocation-free in steady state.
class TupleStore {
 public:
  explicit TupleStore(uint32_t arity) : arity_(arity) {}
  ~TupleStore();

  TupleStore(const TupleStore& other);
  TupleStore& operator=(const TupleStore& other);
  TupleStore(TupleStore&& other) noexcept;
  TupleStore& operator=(TupleStore&& other) noexcept;

  uint32_t arity() const { return arity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pointer to row `id`'s first value (rows are `arity()` wide).
  const Value* row_data(RowId id) const {
    return data_.data() + static_cast<size_t>(id) * arity_;
  }
  RowRef row(RowId id) const { return RowRef(row_data(id), arity_); }

  /// The cached hash of row `id` (HashValues recipe).
  size_t row_hash(RowId id) const { return hashes_[id]; }

  /// Inserts the `arity()`-wide row at `vals` unless an equal row is
  /// already stored. Returns {row id, inserted?}.
  std::pair<RowId, bool> InsertIfAbsent(const Value* vals) {
    return InsertIfAbsent(vals, HashValues(vals, arity_));
  }

  /// Same, with the row's HashValues hash precomputed by the caller —
  /// the batched commit path hashes each derived block once and reuses
  /// the hash for the full-relation and delta inserts.
  std::pair<RowId, bool> InsertIfAbsent(const Value* vals, size_t hash);

  /// Prefetches the dedup slot `hash` lands on, so a commit loop can
  /// issue the (random) table read a few rows ahead of the insert that
  /// needs it. Purely a hint; never mutates.
  void PrefetchSlot(size_t hash) const {
    if (!slots_.empty()) {
      __builtin_prefetch(slots_.data() + (hash & slot_mask_), /*rw=*/0,
                         /*locality=*/1);
    }
  }

  /// RowId of the equal stored row, or kInvalidRowId.
  RowId Find(const Value* vals) const;
  /// Same, with the row's HashValues hash precomputed — the batched
  /// negation filter hashes a whole block of membership rows at once
  /// (HashValuesBatch) and probes with the slots prefetched.
  RowId Find(const Value* vals, size_t hash) const;
  bool Contains(const Value* vals) const {
    return Find(vals) != kInvalidRowId;
  }
  bool Contains(const Value* vals, size_t hash) const {
    return Find(vals, hash) != kInvalidRowId;
  }

  /// Removes row `id` in O(probe run): the last row is moved into
  /// `id`'s arena slot (keeping RowIds dense) and the dedup table is
  /// patched with backward-shift deletion (no tombstones, so probe
  /// sequences never degrade). Returns the *old* id of the row that
  /// moved into `id` (always the former last row), or kInvalidRowId
  /// when the removed row was itself the last — callers maintaining
  /// RowId-parallel side columns apply the same move. Insertion order
  /// is not preserved across removals.
  RowId SwapRemove(RowId id);

  /// Pre-sizes the arena and dedup table for `rows` rows.
  void Reserve(size_t rows);

  /// Removes all rows but keeps arena and table capacity.
  void Clear();

  /// Bytes currently reserved by the arena, hash cache and dedup table.
  int64_t ByteSize() const;

 private:
  /// Grows the slot table to `new_slots` (a power of two) and
  /// reinserts every row by its cached hash.
  void Rehash(size_t new_slots);

  /// Re-syncs the process-wide byte gauge after any capacity change.
  void SyncByteMetric();

  uint32_t arity_;
  size_t size_ = 0;
  std::vector<Value> data_;     // row-major arena, size_ * arity_ values
  std::vector<size_t> hashes_;  // per-row cached hash
  std::vector<RowId> slots_;    // open addressing; kInvalidRowId = empty
  size_t slot_mask_ = 0;
  int64_t accounted_bytes_ = 0;
};

/// Iterable view over a store's rows yielding RowRef, so callers write
/// `for (RowRef row : relation.rows())`.
class RowRange {
 public:
  class Iterator {
   public:
    Iterator(const TupleStore* store, size_t i) : store_(store), i_(i) {}
    RowRef operator*() const { return store_->row(static_cast<RowId>(i_)); }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const Iterator& o) const { return i_ == o.i_; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }

   private:
    const TupleStore* store_;
    size_t i_;
  };

  explicit RowRange(const TupleStore* store) : store_(store) {}
  Iterator begin() const { return Iterator(store_, 0); }
  Iterator end() const { return Iterator(store_, store_->size()); }
  size_t size() const { return store_->size(); }
  bool empty() const { return store_->empty(); }

 private:
  const TupleStore* store_;
};

}  // namespace semopt

#endif  // SEMOPT_STORAGE_TUPLE_STORE_H_
