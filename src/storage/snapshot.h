#ifndef SEMOPT_STORAGE_SNAPSHOT_H_
#define SEMOPT_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/database.h"
#include "util/result.h"

namespace semopt {

class SnapshotStore;

/// A pinned, immutable view of one database generation — the unit of
/// snapshot read isolation. While a DatabaseSnapshot is alive, the
/// generation it addresses is guaranteed to stay materialized and
/// unchanging: writers publish *new* generations, never mutate a
/// published one, and the store defers reclamation of superseded
/// generations until every snapshot pinning them is gone.
///
/// Obtain one from SnapshotStore::Pin() (or Unmanaged() to wrap a
/// caller-owned database behind the same interface — the local shell
/// path). Movable, not copyable; unpins on destruction.
class DatabaseSnapshot {
 public:
  DatabaseSnapshot() = default;
  ~DatabaseSnapshot() { Release(); }

  DatabaseSnapshot(DatabaseSnapshot&& other) noexcept
      : store_(other.store_), epoch_(other.epoch_), db_(std::move(other.db_)),
        unmanaged_(other.unmanaged_) {
    other.store_ = nullptr;
    other.unmanaged_ = nullptr;
  }
  DatabaseSnapshot& operator=(DatabaseSnapshot&& other) noexcept {
    if (this == &other) return *this;
    Release();
    store_ = other.store_;
    epoch_ = other.epoch_;
    db_ = std::move(other.db_);
    unmanaged_ = other.unmanaged_;
    other.store_ = nullptr;
    other.unmanaged_ = nullptr;
    return *this;
  }
  DatabaseSnapshot(const DatabaseSnapshot&) = delete;
  DatabaseSnapshot& operator=(const DatabaseSnapshot&) = delete;

  /// Wraps a caller-owned database (no pinning, no reclamation): lets
  /// single-owner embedders (the interactive shell) run through the
  /// same read path as server sessions. The database must outlive the
  /// snapshot and not be mutated while it is read through this view.
  static DatabaseSnapshot Unmanaged(const Database* db) {
    DatabaseSnapshot snap;
    snap.unmanaged_ = db;
    return snap;
  }

  bool valid() const { return unmanaged_ != nullptr || db_ != nullptr; }

  /// The frozen database this snapshot pins. Immutable for the
  /// snapshot's lifetime.
  const Database& db() const { return unmanaged_ != nullptr ? *unmanaged_ : *db_; }

  /// The generation number this snapshot reads (0 for Unmanaged).
  uint64_t epoch() const { return epoch_; }

 private:
  friend class SnapshotStore;
  void Release();

  SnapshotStore* store_ = nullptr;
  uint64_t epoch_ = 0;
  std::shared_ptr<const Database> db_;
  const Database* unmanaged_ = nullptr;
};

/// Multi-version concurrency control for one shared Database: an epoch
/// counter, an atomically-published head generation, and deferred
/// reclamation of superseded generations.
///
/// Protocol:
///  - Readers call Pin(): a short critical section records their epoch
///    and hands back the head generation. Everything after that — the
///    whole query evaluation — runs lock-free against the frozen
///    generation. Pins from different threads never block each other
///    on more than the registration mutex.
///  - A writer calls Mutate(fn): writers serialize on a dedicated
///    writer mutex (never blocking readers), clone the head generation,
///    apply `fn` to the private clone, then publish it as the new head
///    under the state mutex, bumping the epoch. Readers pinned to older
///    generations keep reading them untouched; new Pins see the new
///    head. Publication is a pointer swap — no reader can ever observe
///    a half-applied batch.
///  - Reclamation is deferred: a superseded generation is parked on a
///    retired list and destroyed only once no live pin references an
///    epoch at or below its retirement point (checked on every unpin
///    and publish). live_generations() exposes the backlog; metrics
///    land in the global registry under storage.snapshot.*.
class SnapshotStore {
 public:
  /// Starts at epoch 1 with `initial` as the first generation.
  explicit SnapshotStore(Database initial);
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Pins the current head generation for reading.
  DatabaseSnapshot Pin();

  /// Applies `fn` to a private clone of the head generation and
  /// publishes the result as the next generation. Returns the new
  /// epoch, or `fn`'s error (in which case nothing is published).
  /// Writers serialize; readers are never blocked.
  Result<uint64_t> Mutate(const std::function<Status(Database*)>& fn);

  /// The current head epoch (the generation new Pins will read).
  uint64_t epoch() const;

  /// Generations currently materialized: the head plus any retired
  /// generations still pinned by readers.
  size_t live_generations() const;

  /// Total retired generations whose storage has been reclaimed.
  uint64_t reclaimed() const;

 private:
  struct Retired {
    uint64_t retired_at_epoch = 0;  // epoch that superseded it
    std::shared_ptr<const Database> db;
  };

  friend class DatabaseSnapshot;
  void Unpin(uint64_t epoch);
  /// Drops retired generations no pinned reader can still reach.
  /// Caller holds mu_.
  void ReclaimLocked();

  mutable std::mutex mu_;          // guards head_, epoch_, pins_, retired_
  std::mutex writer_mu_;           // serializes Mutate bodies
  std::shared_ptr<const Database> head_;
  uint64_t epoch_ = 1;
  /// Live pin count per epoch. A retired generation (superseded at
  /// epoch E) is reclaimable once no pin with epoch < E remains.
  std::map<uint64_t, size_t> pins_;
  std::vector<Retired> retired_;
  uint64_t reclaimed_ = 0;
};

}  // namespace semopt

#endif  // SEMOPT_STORAGE_SNAPSHOT_H_
