#ifndef SEMOPT_STORAGE_COLUMN_VIEW_H_
#define SEMOPT_STORAGE_COLUMN_VIEW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ast/term.h"
#include "storage/tuple.h"
#include "storage/tuple_store.h"

namespace semopt {

/// The raw 8-byte payload of a stored value: the int64 bits for integer
/// constants, the (zero-extended) SymbolId for symbols/variables. Two
/// values are equal iff their kinds and payload bits are — which is
/// what lets a column filter run as flat u64 lane compares.
inline uint64_t PayloadBits(const Value& v) {
  return v.kind() == TermKind::kIntConst
             ? static_cast<uint64_t>(v.int_value())
             : static_cast<uint64_t>(v.symbol());
}

/// A structure-of-arrays snapshot of a TupleStore: one contiguous
/// uint64_t payload lane per column, with the kind byte either
/// dictionary-implied for the whole column (the overwhelmingly common
/// case — a column holds all ints or all symbols) or carried in a
/// per-row side lane when the column mixes kinds. Term is two machine
/// words, so this halves the bytes a column filter streams and turns
/// the batched scan checks into flat lane compares the SIMD kernels
/// (vector_kernels.h) can chew through.
///
/// A view is an immutable snapshot of the rows present at Build time;
/// Relation caches one per store and drops the cache on any mutation.
/// Build/destruction maintain the process-wide storage.columns_bytes
/// gauge (storage_metrics).
class ColumnView {
 public:
  /// Materializes the view of `store`'s current rows.
  static std::shared_ptr<const ColumnView> Build(const TupleStore& store);

  ~ColumnView();
  ColumnView(const ColumnView&) = delete;
  ColumnView& operator=(const ColumnView&) = delete;

  size_t rows() const { return rows_; }
  uint32_t arity() const { return static_cast<uint32_t>(columns_.size()); }

  /// The flat payload lane of column `col` (rows() entries).
  const uint64_t* payloads(uint32_t col) const {
    return columns_[col].payloads.data();
  }

  /// True when every row of column `col` has the same kind (then
  /// column_kind is that kind and kinds() is null).
  bool uniform_kind(uint32_t col) const { return columns_[col].uniform; }
  TermKind column_kind(uint32_t col) const { return columns_[col].kind; }

  /// Per-row kind lane of a mixed column; nullptr when uniform.
  const uint8_t* kinds(uint32_t col) const {
    return columns_[col].uniform ? nullptr : columns_[col].kind_lane.data();
  }

  /// Reconstructs the stored value at (row, col).
  Value value(size_t row, uint32_t col) const;

  /// Appends to *sel the row indices in [begin, end) whose column `col`
  /// equals `v` (kind and payload), ascending. Selection-vector form of
  /// the executor's kCheckConst / kCheckSlot scan checks.
  void SelectEq(uint32_t col, const Value& v, uint32_t begin, uint32_t end,
                std::vector<uint32_t>* sel) const;

  /// Compacts *sel, keeping rows whose column `col` equals `v`.
  void RefineEq(uint32_t col, const Value& v,
                std::vector<uint32_t>* sel) const;

  /// Appends to *sel the rows in [begin, end) where columns `col_a` and
  /// `col_b` hold equal values (kCheckRepeat).
  void SelectEqColumns(uint32_t col_a, uint32_t col_b, uint32_t begin,
                       uint32_t end, std::vector<uint32_t>* sel) const;

  /// Compacts *sel, keeping rows where `col_a` equals `col_b`.
  void RefineEqColumns(uint32_t col_a, uint32_t col_b,
                       std::vector<uint32_t>* sel) const;

  /// Bytes this view holds live (lanes + bookkeeping).
  int64_t ByteSize() const { return bytes_; }

 private:
  struct Column {
    std::vector<uint64_t> payloads;
    std::vector<uint8_t> kind_lane;  // empty when uniform
    TermKind kind = TermKind::kIntConst;  // valid when uniform
    bool uniform = true;
  };

  ColumnView() = default;

  size_t rows_ = 0;
  std::vector<Column> columns_;
  int64_t bytes_ = 0;
};

}  // namespace semopt

#endif  // SEMOPT_STORAGE_COLUMN_VIEW_H_
