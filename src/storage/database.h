#ifndef SEMOPT_STORAGE_DATABASE_H_
#define SEMOPT_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ast/atom.h"
#include "storage/relation.h"
#include "util/result.h"

namespace semopt {

/// A database instance: a set of named relations (typically the EDB; the
/// evaluation engine materializes IDB relations into a separate Database).
/// Relations are created on first reference.
///
/// Relations are held by shared_ptr so two databases can share unchanged
/// relations copy-on-write: `CloneShared` is O(#relations) pointer
/// copies, and a shared relation is deep-copied ("detached") only when a
/// mutable accessor actually reaches for it. SnapshotStore::Mutate
/// builds each new generation this way, so a write batch clones exactly
/// the relations it touches (counted by the
/// `storage.snapshot.relations_cloned` metric) while every other
/// relation — and its already-built indexes — stays pointer-identical
/// across generations.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// The relation for `pred`, creating an empty one if absent. Detaches
  /// a relation shared with another database before returning it.
  Relation& GetOrCreate(const PredicateId& pred);

  /// The relation for `pred`, or nullptr when absent. The mutable form
  /// detaches a shared relation before returning it.
  const Relation* Find(const PredicateId& pred) const;
  Relation* FindMutable(const PredicateId& pred);

  /// Inserts a fact given as a ground atom. Fails on non-ground args.
  Status AddFact(const Atom& fact);

  /// Convenience: `AddFact` on "pred(v1, ..., vn)" built from values.
  void AddTuple(std::string_view predicate, Tuple tuple);

  /// All predicates with a (possibly empty) relation.
  std::vector<PredicateId> Predicates() const;

  /// Total number of stored tuples across relations.
  size_t TotalTuples() const;

  /// Deep copy (for differential testing: evaluate two programs on the
  /// same EDB without sharing index state).
  Database Clone() const;

  /// Shallow copy-on-write copy: the new database shares every relation
  /// with this one (pointer copies only); either side deep-copies a
  /// relation the moment it mutates it. This is the snapshot-store
  /// write path — cloning a multi-gigabyte generation costs one map of
  /// pointers, not a tuple copy.
  Database CloneShared() const;

  /// Shares every relation of `other` into this database (pointer
  /// copies, replacing same-predicate entries). This is how a
  /// materialized view's IDB is published into a write generation:
  /// O(#relations), and the CoW discipline protects both sides — if the
  /// view later maintains a shared relation, its mutable accessor
  /// detaches first, leaving the published generation frozen.
  void MergeSharedFrom(const Database& other);

  /// True if both databases contain exactly the same facts (index and
  /// insertion-order insensitive).
  bool SameFactsAs(const Database& other) const;

  /// Renders every relation on its own line, predicates sorted.
  std::string ToString() const;

 private:
  /// Deep-copies `*slot` if it is shared with another database, so the
  /// caller can hand out a mutable reference. Bumps the
  /// `storage.snapshot.relations_cloned` metric when it copies.
  static void DetachIfShared(std::shared_ptr<Relation>* slot);

  std::map<PredicateId, std::shared_ptr<Relation>> relations_;
};

}  // namespace semopt

#endif  // SEMOPT_STORAGE_DATABASE_H_
