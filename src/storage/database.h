#ifndef SEMOPT_STORAGE_DATABASE_H_
#define SEMOPT_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ast/atom.h"
#include "storage/relation.h"
#include "util/result.h"

namespace semopt {

/// A database instance: a set of named relations (typically the EDB; the
/// evaluation engine materializes IDB relations into a separate Database).
/// Relations are created on first reference.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// The relation for `pred`, creating an empty one if absent.
  Relation& GetOrCreate(const PredicateId& pred);

  /// The relation for `pred`, or nullptr when absent.
  const Relation* Find(const PredicateId& pred) const;
  Relation* FindMutable(const PredicateId& pred);

  /// Inserts a fact given as a ground atom. Fails on non-ground args.
  Status AddFact(const Atom& fact);

  /// Convenience: `AddFact` on "pred(v1, ..., vn)" built from values.
  void AddTuple(std::string_view predicate, Tuple tuple);

  /// All predicates with a (possibly empty) relation.
  std::vector<PredicateId> Predicates() const;

  /// Total number of stored tuples across relations.
  size_t TotalTuples() const;

  /// Deep copy (for differential testing: evaluate two programs on the
  /// same EDB without sharing index state).
  Database Clone() const;

  /// True if both databases contain exactly the same facts (index and
  /// insertion-order insensitive).
  bool SameFactsAs(const Database& other) const;

  /// Renders every relation on its own line, predicates sorted.
  std::string ToString() const;

 private:
  std::map<PredicateId, Relation> relations_;
};

}  // namespace semopt

#endif  // SEMOPT_STORAGE_DATABASE_H_
