#include "storage/tuple_store.h"

#include <algorithm>

#include "storage/storage_metrics.h"

namespace semopt {

namespace {
constexpr size_t kMinSlots = 16;

/// Grow when the table would exceed 3/4 occupancy.
bool NeedsGrowth(size_t rows, size_t slots) {
  return slots == 0 || (rows + 1) * 4 > slots * 3;
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = kMinSlots;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

TupleStore::~TupleStore() {
  storage_metrics::AddTupleBytes(-accounted_bytes_);
}

TupleStore::TupleStore(const TupleStore& other)
    : arity_(other.arity_),
      size_(other.size_),
      data_(other.data_),
      hashes_(other.hashes_),
      slots_(other.slots_),
      slot_mask_(other.slot_mask_) {
  SyncByteMetric();
}

TupleStore& TupleStore::operator=(const TupleStore& other) {
  if (this == &other) return *this;
  arity_ = other.arity_;
  size_ = other.size_;
  data_ = other.data_;
  hashes_ = other.hashes_;
  slots_ = other.slots_;
  slot_mask_ = other.slot_mask_;
  SyncByteMetric();
  return *this;
}

TupleStore::TupleStore(TupleStore&& other) noexcept
    : arity_(other.arity_),
      size_(other.size_),
      data_(std::move(other.data_)),
      hashes_(std::move(other.hashes_)),
      slots_(std::move(other.slots_)),
      slot_mask_(other.slot_mask_),
      accounted_bytes_(other.accounted_bytes_) {
  other.size_ = 0;
  other.slot_mask_ = 0;
  other.accounted_bytes_ = 0;
}

TupleStore& TupleStore::operator=(TupleStore&& other) noexcept {
  if (this == &other) return *this;
  storage_metrics::AddTupleBytes(-accounted_bytes_);
  arity_ = other.arity_;
  size_ = other.size_;
  data_ = std::move(other.data_);
  hashes_ = std::move(other.hashes_);
  slots_ = std::move(other.slots_);
  slot_mask_ = other.slot_mask_;
  accounted_bytes_ = other.accounted_bytes_;
  other.size_ = 0;
  other.slot_mask_ = 0;
  other.accounted_bytes_ = 0;
  return *this;
}

RowId TupleStore::Find(const Value* vals) const {
  return Find(vals, HashValues(vals, arity_));
}

RowId TupleStore::Find(const Value* vals, size_t hash) const {
  assert(hash == HashValues(vals, arity_));
  if (slots_.empty()) return kInvalidRowId;
  const size_t h = hash;
  size_t idx = h & slot_mask_;
  while (true) {
    const RowId r = slots_[idx];
    if (r == kInvalidRowId) return kInvalidRowId;
    if (hashes_[r] == h && ValuesEqual(row_data(r), vals, arity_)) return r;
    idx = (idx + 1) & slot_mask_;
  }
}

std::pair<RowId, bool> TupleStore::InsertIfAbsent(const Value* vals,
                                                  size_t hash) {
  assert(hash == HashValues(vals, arity_));
  if (NeedsGrowth(size_, slots_.size())) {
    Rehash(NextPowerOfTwo((size_ + 1) * 2));
  }
  const size_t h = hash;
  size_t idx = h & slot_mask_;
  while (true) {
    const RowId r = slots_[idx];
    if (r == kInvalidRowId) break;
    if (hashes_[r] == h && ValuesEqual(row_data(r), vals, arity_)) {
      return {r, false};
    }
    idx = (idx + 1) & slot_mask_;
  }
  const RowId id = static_cast<RowId>(size_);
  data_.insert(data_.end(), vals, vals + arity_);
  hashes_.push_back(h);
  slots_[idx] = id;
  ++size_;
  SyncByteMetric();
  return {id, true};
}

RowId TupleStore::SwapRemove(RowId id) {
  assert(id < size_);
  // Unlink `id` from the dedup table with backward-shift deletion:
  // every entry in the probe run after the hole whose ideal slot lies
  // at or before the hole shifts back into it, so no tombstone is left
  // and every remaining probe sequence stays contiguous.
  size_t hole = hashes_[id] & slot_mask_;
  while (slots_[hole] != id) hole = (hole + 1) & slot_mask_;
  size_t idx = hole;
  while (true) {
    idx = (idx + 1) & slot_mask_;
    const RowId r = slots_[idx];
    if (r == kInvalidRowId) break;
    const size_t ideal = hashes_[r] & slot_mask_;
    if (((idx - ideal) & slot_mask_) >= ((idx - hole) & slot_mask_)) {
      slots_[hole] = r;
      hole = idx;
    }
  }
  slots_[hole] = kInvalidRowId;

  const RowId last = static_cast<RowId>(size_ - 1);
  RowId moved = kInvalidRowId;
  if (id != last) {
    // Move the last row into the vacated arena slot and point its
    // (post-shift) table entry at the new id.
    size_t li = hashes_[last] & slot_mask_;
    while (slots_[li] != last) li = (li + 1) & slot_mask_;
    slots_[li] = id;
    std::copy(row_data(last), row_data(last) + arity_,
              data_.begin() + static_cast<size_t>(id) * arity_);
    hashes_[id] = hashes_[last];
    moved = last;
  }
  --size_;
  // erase, not resize: Value has no default constructor.
  data_.erase(data_.begin() + size_ * arity_, data_.end());
  hashes_.resize(size_);
  return moved;
}

void TupleStore::Rehash(size_t new_slots) {
  const bool initial = slots_.empty();
  slots_.assign(new_slots, kInvalidRowId);
  slot_mask_ = new_slots - 1;
  for (RowId r = 0; r < size_; ++r) {
    size_t idx = hashes_[r] & slot_mask_;
    while (slots_[idx] != kInvalidRowId) idx = (idx + 1) & slot_mask_;
    slots_[idx] = r;
  }
  if (!initial) storage_metrics::AddRehash();
  SyncByteMetric();
}

void TupleStore::Reserve(size_t rows) {
  data_.reserve(rows * arity_);
  hashes_.reserve(rows);
  const size_t want = NextPowerOfTwo(rows * 2);
  if (want > slots_.size()) Rehash(want);
  SyncByteMetric();
}

void TupleStore::Clear() {
  size_ = 0;
  data_.clear();
  hashes_.clear();
  std::fill(slots_.begin(), slots_.end(), kInvalidRowId);
  SyncByteMetric();
}

int64_t TupleStore::ByteSize() const {
  return static_cast<int64_t>(data_.capacity() * sizeof(Value) +
                              hashes_.capacity() * sizeof(size_t) +
                              slots_.capacity() * sizeof(RowId));
}

void TupleStore::SyncByteMetric() {
  const int64_t now = ByteSize();
  if (now != accounted_bytes_) {
    storage_metrics::AddTupleBytes(now - accounted_bytes_);
    accounted_bytes_ = now;
  }
}

}  // namespace semopt
