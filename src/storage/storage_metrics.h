#ifndef SEMOPT_STORAGE_STORAGE_METRICS_H_
#define SEMOPT_STORAGE_STORAGE_METRICS_H_

#include <cstdint>

namespace semopt {
namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Process-wide storage instrumentation. TupleStore instances report
/// arena growth/shrink and dedup/index rehashes here through relaxed
/// atomics (no locks on the insert path); `PublishTo` folds the totals
/// into a metrics registry as `storage.tuples_bytes` (gauge: live
/// arena bytes across all relations) and `storage.rehash` (counter).
namespace storage_metrics {

/// Adjusts the live tuple-arena byte total (may be negative).
void AddTupleBytes(int64_t delta);

/// Adjusts the live columnar-view byte total (may be negative);
/// ColumnView build/destruction report here. Published as the
/// `storage.columns_bytes` gauge.
void AddColumnsBytes(int64_t delta);

/// Records `n` hash-table rehashes (dedup table or index growth).
void AddRehash(uint64_t n = 1);

/// Current live arena bytes across all TupleStores.
int64_t LiveTupleBytes();

/// Current live bytes across all materialized ColumnViews.
int64_t LiveColumnsBytes();

/// Total rehashes since process start.
uint64_t TotalRehashes();

/// Publishes into `registry`: sets the `storage.tuples_bytes` gauge to
/// the live total and adds the rehashes accumulated since the previous
/// publish to the `storage.rehash` counter. Intended for the global
/// registry (the delta tracking is process-wide, not per-registry).
void PublishTo(obs::MetricsRegistry& registry);

}  // namespace storage_metrics
}  // namespace semopt

#endif  // SEMOPT_STORAGE_STORAGE_METRICS_H_
