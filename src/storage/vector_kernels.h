#ifndef SEMOPT_STORAGE_VECTOR_KERNELS_H_
#define SEMOPT_STORAGE_VECTOR_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/tuple.h"

namespace semopt {

/// Data-parallel kernels over flat value/payload lanes. Every kernel is
/// bit-identical to its scalar reference: the vector forms only change
/// the evaluation *schedule* (independent per-row accumulator chains,
/// SIMD compares), never the per-row arithmetic, so hashes, selection
/// vectors and counters match the scalar paths exactly. Explicit
/// SSE2/AVX2 paths sit behind simd::ActiveLevel() runtime dispatch with
/// a scalar fallback; SEMOPT_DISABLE_SIMD (CMake option or environment
/// variable) pins everything to the fallbacks.

/// Hashes `count` contiguous row-major rows (`arity` values each):
/// out[i] == HashValues(rows + i*arity, arity) for every i. The batch
/// form runs 4 independent HashCombine chains side by side — the scalar
/// loop's chain is sequentially dependent within a row, so interleaving
/// rows is where the instruction-level parallelism comes from. On AVX2
/// the four chains run in one vector register over gathered payload
/// lanes (16-byte Value stride), including a 32x32-partial-product
/// SplitMix64 finalizer; results stay bit-identical to HashValues.
void HashValuesBatch(const Value* rows, size_t arity, size_t count,
                     size_t* out);

/// The plain per-row reference loop, exposed for differential tests and
/// the scalar legs of the ablation benches.
void HashValuesBatchScalar(const Value* rows, size_t arity, size_t count,
                           size_t* out);

/// Appends every index i in [begin, end) with lane[i] == value to *sel,
/// in ascending order. AVX2/SSE2 compare+movemask behind dispatch.
void SelectLaneEq(const uint64_t* lane, uint32_t begin, uint32_t end,
                  uint64_t value, std::vector<uint32_t>* sel);

/// Appends every index i in [begin, end) with a[i] == b[i] to *sel.
void SelectLanesEq(const uint64_t* a, const uint64_t* b, uint32_t begin,
                   uint32_t end, std::vector<uint32_t>* sel);

/// Compacts *sel in place, keeping entries i with lane[i] == value
/// (branch-light store-and-advance; order preserved).
void RefineLaneEq(const uint64_t* lane, uint64_t value,
                  std::vector<uint32_t>* sel);

/// Compacts *sel in place, keeping entries i with a[i] == b[i].
void RefineLanesEq(const uint64_t* a, const uint64_t* b,
                   std::vector<uint32_t>* sel);

/// Compacts *sel in place, keeping entries i with kinds[i] == kind
/// (the mixed-kind column side lane).
void RefineKindEq(const uint8_t* kinds, uint8_t kind,
                  std::vector<uint32_t>* sel);

}  // namespace semopt

#endif  // SEMOPT_STORAGE_VECTOR_KERNELS_H_
